//! Quickstart: write and run your first FLASH program.
//!
//! Implements the paper's BFS (Algorithm 2) from scratch on a small
//! synthetic graph, showing the three primitives — `vertexSubset`,
//! `VERTEXMAP` and `EDGEMAP` — and how to read results and execution
//! statistics back out.
//!
//! Run with: `cargo run --release --example quickstart`

use flash_core::prelude::*;
use std::sync::Arc;

/// Per-vertex state: just the BFS distance. `full_sync!` declares every
/// field critical (synchronized to mirrors).
#[derive(Clone)]
struct Vertex {
    dis: u32,
}
flash_runtime::full_sync!(Vertex);

const INF: u32 = u32::MAX;

fn main() {
    // A small-world graph: 1000 vertices, ring + shortcuts.
    let graph = Arc::new(flash_graph::generators::watts_strogatz(1000, 6, 0.1, 42));
    println!(
        "graph: {} vertices, {} arcs",
        graph.num_vertices(),
        graph.num_edges()
    );

    // A 4-worker simulated cluster (hash partitioned), with an in-memory
    // trace sink attached: the runtime streams one structured event per
    // superstep phase into it (see DESIGN.md §7).
    let sink = Arc::new(flash_obs::CollectSink::new());
    let config = ClusterConfig::with_workers(4).sink(Arc::clone(&sink) as Arc<dyn flash_obs::Sink>);
    let mut ctx: FlashContext<Vertex> =
        FlashContext::build(Arc::clone(&graph), config, |_| Vertex { dis: INF })
            .expect("cluster construction");

    // --- the FLASH program (paper Algorithm 2) ---
    let root = 0u32;
    let all = ctx.all();
    ctx.vertex_map(
        &all,
        |_, _| true,
        |v, val| val.dis = if v == root { 0 } else { INF },
    );
    let mut frontier = ctx.vertex_filter(&all, |v, _| v == root);
    let mut level = 0;
    while !frontier.is_empty() {
        println!("level {level}: frontier size {}", frontier.len());
        frontier = ctx.edge_map(
            &frontier,
            &EdgeSet::forward(),
            |_, _, _| true,              // F: always applicable
            |_, s, d| d.dis = s.dis + 1, // M: update the distance
            |_, d| d.dis == INF,         // C: only unvisited targets
            |t, d| d.dis = t.dis,        // R: any proposal wins (all equal)
        );
        level += 1;
    }

    // --- results ---
    let dist = ctx.collect(|_, val| val.dis);
    let reached = dist.iter().filter(|&&d| d != INF).count();
    let ecc = dist.iter().filter(|&&d| d != INF).max().unwrap();
    println!(
        "\nreached {reached}/{} vertices; eccentricity of {root} = {ecc}",
        dist.len()
    );

    // --- execution record ---
    let stats = ctx.take_stats();
    let (vmaps, dense, sparse, _) = stats.kind_counts();
    println!(
        "supersteps: {} ({} vertex maps, {} dense + {} sparse edge maps)",
        stats.num_supersteps(),
        vmaps,
        dense,
        sparse
    );
    println!(
        "cross-worker traffic: {} messages, {} bytes",
        stats.total_messages(),
        stats.total_bytes()
    );

    // --- the trace the sink captured ---
    let events = sink.events();
    println!(
        "trace: {} events captured; adaptive EDGEMAP decisions:",
        events.len()
    );
    for e in &events {
        if let flash_obs::EventKind::ModeDecision {
            frontier,
            frontier_edges,
            threshold_edges,
            chosen,
            ..
        } = &e.kind
        {
            println!(
                "  |U|={frontier} measure={frontier_edges} threshold={threshold_edges} -> {chosen}"
            );
        }
    }
}
