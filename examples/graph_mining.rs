//! Graph mining: the counting algorithms no other framework in the
//! paper's survey could express — rectangles via two-hop `join(E,E)`
//! edge sets and k-cliques via arbitrary-vertex `get` — next to the
//! classic triangle count and k-core decomposition.
//!
//! Run with: `cargo run --release --example graph_mining`

use flash_graph::prelude::*;
use flash_runtime::ClusterConfig;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let g = Arc::new(Dataset::Uk2002.load_small());
    let stats = flash_graph::stats::graph_stats(&g);
    println!(
        "uk-2002-sim (small): |V|={} |E|={} maxdeg={}",
        stats.vertices,
        stats.edges / 2,
        stats.max_degree
    );
    let cfg = || ClusterConfig::with_workers(4);

    let t = Instant::now();
    let tc = flash_algos::tc::run(&g, cfg()).expect("tc");
    println!("\n[tc]  {:>12} triangles   in {:?}", tc.result, t.elapsed());

    let t = Instant::now();
    let rc = flash_algos::rc::run(&g, cfg()).expect("rc");
    println!(
        "[rc]  {:>12} rectangles  in {:?}  (two-hop edge set)",
        rc.result,
        t.elapsed()
    );

    let t = Instant::now();
    let cl = flash_algos::clique::run(&g, cfg(), 4).expect("cl");
    println!(
        "[cl4] {:>12} 4-cliques   in {:?}  (recursive FLASHWARE get)",
        cl.result,
        t.elapsed()
    );

    let t = Instant::now();
    let kc = flash_algos::kcore_opt::run(&g, cfg()).expect("kcore");
    let max_core = kc.result.iter().max().copied().unwrap_or(0);
    println!(
        "[kc]  max core number {max_core}       in {:?}",
        t.elapsed()
    );

    // Core-number histogram: the "layers" view of the network.
    let mut hist = vec![0usize; max_core as usize + 1];
    for &c in &kc.result {
        hist[c as usize] += 1;
    }
    println!("\ncore-number distribution (top 8 layers):");
    for (k, n) in hist.iter().enumerate().rev().take(8) {
        if *n > 0 {
            println!("  {k:>3}-core: {n} vertices");
        }
    }

    // Density sanity-check the counts against each other: every 4-clique
    // contains 3 rectangles and 4 triangles.
    assert!(tc.result >= cl.result, "each 4-clique holds 4 triangles");
    println!("\nconsistency: triangles ≥ 4-cliques ✓");
}
