//! Road-network analysis: the large-diameter regime where FLASH's
//! expressiveness pays off most (§V-B).
//!
//! Compares label-propagation CC against the star-contraction CC-opt —
//! the paper's 6262-vs-7-iterations result — then runs weighted routing
//! (SSSP) and the minimum spanning forest.
//!
//! Run with: `cargo run --release --example road_network`

use flash_graph::prelude::*;
use flash_runtime::ClusterConfig;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let g = Arc::new(Dataset::RoadUsa.load());
    let stats = flash_graph::stats::graph_stats(&g);
    println!(
        "road-usa-sim: |V|={} |E|={} avgdeg={:.1} diam≈{}",
        stats.vertices,
        stats.edges / 2,
        stats.avg_degree,
        stats.pseudo_diameter
    );
    let cfg = || ClusterConfig::with_workers(4);

    // Label propagation crawls one hop per superstep ...
    let t = Instant::now();
    let basic = flash_algos::cc::run(&g, cfg()).expect("cc");
    let t_basic = t.elapsed();
    println!(
        "\n[cc-basic] {} supersteps, {:?}",
        basic.supersteps(),
        t_basic
    );

    // ... star contraction converges in O(log |V|) rounds over *virtual*
    // parent edges — communication beyond the neighborhood.
    let t = Instant::now();
    let opt = flash_algos::cc_opt::run(&g, cfg()).expect("cc-opt");
    let t_opt = t.elapsed();
    println!(
        "[cc-opt]   {} contraction rounds ({} supersteps), {:?}",
        flash_algos::cc_opt::rounds_of(&opt.stats),
        opt.supersteps(),
        t_opt
    );
    println!(
        "           same components: {}",
        flash_algos::reference::canonicalize(&opt.result) == basic.result
    );
    println!(
        "           speedup {:.1}x (paper: an order of magnitude on road-USA)",
        t_basic.as_secs_f64() / t_opt.as_secs_f64().max(1e-9)
    );

    // Weighted routing: travel times as random weights.
    let weighted = Arc::new(flash_graph::generators::with_random_weights(
        &g, 1.0, 10.0, 7,
    ));
    let t = Instant::now();
    let sssp = flash_algos::sssp::run(&weighted, cfg(), 0).expect("sssp");
    let reachable: Vec<f64> = sssp
        .result
        .iter()
        .copied()
        .filter(|d| d.is_finite())
        .collect();
    println!(
        "\n[sssp]     {} reachable, max travel cost {:.1}, in {:?}",
        reachable.len(),
        reachable.iter().fold(0.0f64, |a, &b| a.max(b)),
        t.elapsed()
    );

    // Network design: the minimum spanning forest.
    let t = Instant::now();
    let msf = flash_algos::msf::run(&weighted, cfg()).expect("msf");
    println!(
        "[msf]      {} edges, total weight {:.1}, in {:?}",
        msf.result.edges.len(),
        msf.result.total_weight,
        t.elapsed()
    );

    // Maintenance crews: biconnected components expose the bridges.
    let t = Instant::now();
    let bcc = flash_algos::bcc::run(&g, cfg()).expect("bcc");
    let bccs = {
        let mut l: Vec<u32> = (0..g.num_vertices() as u32)
            .filter(|&v| bcc.result.parent[v as usize].is_some())
            .map(|v| bcc.result.label[v as usize])
            .collect();
        l.sort_unstable();
        l.dedup();
        l.len()
    };
    println!(
        "[bcc]      {bccs} biconnected components, in {:?}",
        t.elapsed()
    );
}
