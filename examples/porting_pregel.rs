//! Porting a Pregel program to FLASH (paper Appendix A).
//!
//! FLASH subsumes the vertex-centric models: any Pregel `compute()` can
//! run unchanged through the simulation layer (`flash_core::vc`), one
//! `VERTEXMAP` + one `EDGEMAP` per superstep. This example ports a
//! classic Pregel SSSP program and checks it against FLASH's native SSSP.
//!
//! Run with: `cargo run --release --example porting_pregel`

use flash_core::vc::{run_vertex_centric, Outbox, VertexProgram};
use flash_graph::{generators, Graph, VertexId};
use flash_runtime::ClusterConfig;
use std::sync::Arc;
use std::time::Instant;

/// A textbook Pregel SSSP vertex program, written exactly as it would be
/// for Pregel/Giraph: relax on incoming distance messages, forward
/// improved distances along out-edges.
struct PregelSssp {
    root: VertexId,
}

impl VertexProgram for PregelSssp {
    type Value = f64;
    type Message = f64;

    fn init(&self, _v: VertexId, _g: &Graph) -> f64 {
        f64::INFINITY
    }

    fn compute(
        &self,
        v: VertexId,
        g: &Graph,
        value: &mut f64,
        inbox: &[f64],
        superstep: usize,
        out: &mut Outbox<f64>,
    ) {
        let proposal = if superstep == 0 && v == self.root {
            Some(0.0)
        } else {
            inbox.iter().copied().reduce(f64::min)
        };
        if let Some(d) = proposal {
            if d < *value {
                *value = d;
                for (t, w) in g.out_edges(v) {
                    out.send(t, d + w as f64);
                }
            }
        }
        // No explicit vote_to_halt: a vertex without messages stays idle.
    }

    fn combine(&self, a: &f64, b: &f64) -> Option<f64> {
        Some(a.min(*b)) // Pregel's min-combiner
    }
}

fn main() {
    let g = generators::erdos_renyi(5_000, 20_000, 11);
    let g = Arc::new(generators::with_random_weights(&g, 0.5, 5.0, 12));
    println!("graph: |V|={} |E|={}", g.num_vertices(), g.num_edges());

    // The ported Pregel program, executed through FLASH primitives.
    let t = Instant::now();
    let ported = run_vertex_centric(
        Arc::clone(&g),
        ClusterConfig::with_workers(4),
        PregelSssp { root: 0 },
        100_000,
    )
    .expect("ported program");
    println!(
        "\n[ported pregel] {} supersteps in {:?}",
        ported.supersteps,
        t.elapsed()
    );

    // FLASH's native SSSP.
    let t = Instant::now();
    let native = flash_algos::sssp::run(&g, ClusterConfig::with_workers(4), 0).expect("native");
    println!(
        "[native flash]  {} supersteps in {:?}",
        native.supersteps(),
        t.elapsed()
    );

    // Same answers, to the bit.
    let agree = ported
        .values
        .iter()
        .zip(&native.result)
        .all(|(a, b)| (a.is_infinite() && b.is_infinite()) || (a - b).abs() < 1e-9);
    println!("\nported == native: {agree}");
    assert!(agree);

    let reached = native.result.iter().filter(|d| d.is_finite()).count();
    println!(
        "{reached}/{} vertices reachable from the root",
        g.num_vertices()
    );
}
