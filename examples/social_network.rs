//! Social-network analysis: the workload class the paper's introduction
//! motivates — centrality, communities and structure on a skewed graph.
//!
//! Loads the soc-orkut stand-in and runs a small analysis pipeline:
//! connected components → PageRank → single-source betweenness →
//! label-propagation communities → triangle count.
//!
//! Run with: `cargo run --release --example social_network`

use flash_graph::prelude::*;
use flash_runtime::ClusterConfig;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let g = Arc::new(Dataset::Orkut.load_small());
    let stats = flash_graph::stats::graph_stats(&g);
    println!(
        "soc-orkut-sim (small): |V|={} |E|={} maxdeg={} diam≈{}",
        stats.vertices,
        stats.edges / 2,
        stats.max_degree,
        stats.pseudo_diameter
    );
    let cfg = || ClusterConfig::with_workers(4);

    // 1. Connectivity.
    let t = Instant::now();
    let cc = flash_algos::cc::run(&g, cfg()).expect("cc");
    let components = {
        let mut labels = cc.result.clone();
        labels.sort_unstable();
        labels.dedup();
        labels.len()
    };
    println!(
        "\n[cc]       {components} components in {:?} ({} supersteps)",
        t.elapsed(),
        cc.supersteps()
    );

    // 2. Influence: PageRank.
    let t = Instant::now();
    let pr = flash_algos::pagerank::run(&g, cfg(), 20).expect("pagerank");
    let mut top: Vec<(u32, f64)> = pr
        .result
        .iter()
        .copied()
        .enumerate()
        .map(|(v, r)| (v as u32, r))
        .collect();
    top.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("[pagerank] top-3 vertices by rank (in {:?}):", t.elapsed());
    for (v, r) in top.iter().take(3) {
        println!("           v{v}: rank {r:.5}, degree {}", g.degree(*v));
    }

    // 3. Brokerage: betweenness from the top-ranked vertex.
    let hub = top[0].0;
    let t = Instant::now();
    let bc = flash_algos::bc::run(&g, cfg(), hub).expect("bc");
    let broker = bc
        .result
        .iter()
        .enumerate()
        .filter(|&(v, _)| v as u32 != hub) // the source's own score is not meaningful
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(v, _)| v as u32)
        .unwrap();
    println!(
        "[bc]       most dependent broker for source v{hub}: v{broker} (in {:?})",
        t.elapsed()
    );

    // 4. Communities: label propagation.
    let t = Instant::now();
    let lpa = flash_algos::lpa::run(&g, cfg(), 10).expect("lpa");
    let communities = {
        let mut l = lpa.result.clone();
        l.sort_unstable();
        l.dedup();
        l.len()
    };
    println!(
        "[lpa]      {communities} communities after 10 rounds (in {:?})",
        t.elapsed()
    );

    // 5. Cohesion: triangles and the clustering signal.
    let t = Instant::now();
    let tc = flash_algos::tc::run(&g, cfg()).expect("tc");
    println!("[tc]       {} triangles (in {:?})", tc.result, t.elapsed());

    let wedges: u64 = g
        .vertices()
        .map(|v| {
            let d = g.degree(v) as u64;
            d * d.saturating_sub(1) / 2
        })
        .sum();
    println!(
        "           global clustering coefficient ≈ {:.4}",
        3.0 * tc.result as f64 / wedges.max(1) as f64
    );
}
