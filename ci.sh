#!/usr/bin/env bash
# Canonical offline verification for the FLASH reproduction workspace.
# No network access is required: the workspace has zero external
# dependencies (see Cargo.toml).
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (all targets, -D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> chaos smoke (fault injection + recovery must be exact)"
cargo run --release -q -p flash-bench --bin fig_chaos -- --smoke

echo "==> elastic smoke (permanent loss + repartitioning must be exact)"
cargo run --release -q -p flash-bench --bin fig_elastic -- --smoke

echo "==> lossy smoke (drop/dup/reorder channel + retransmit must be exact)"
cargo run --release -q -p flash-bench --bin fig_lossy -- --smoke

echo "==> OK"
