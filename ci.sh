#!/usr/bin/env bash
# Canonical offline verification for the FLASH reproduction workspace.
# No network access is required: the workspace has zero external
# dependencies (see Cargo.toml).
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (all targets, -D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo clippy (hot-path crates, deny redundant clones / index loops)"
cargo clippy -p flash-runtime -p flash-core --all-targets -- \
    -D warnings -D clippy::redundant_clone -D clippy::needless_range_loop

echo "==> cargo clippy (obs crate, deny float-precision casts in metrics)"
cargo clippy -p flash-obs --all-targets -- \
    -D warnings -D clippy::cast_precision_loss

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> chaos smoke (fault injection + recovery must be exact)"
cargo run --release -q -p flash-bench --bin fig_chaos -- --smoke

echo "==> elastic smoke (permanent loss + repartitioning must be exact)"
cargo run --release -q -p flash-bench --bin fig_elastic -- --smoke

echo "==> lossy smoke (drop/dup/reorder channel + retransmit must be exact)"
cargo run --release -q -p flash-bench --bin fig_lossy -- --smoke

echo "==> consensus smoke (leader crashes + lying workers must be exact)"
cargo run --release -q -p flash-bench --bin fig_consensus -- --smoke

echo "==> durability smoke (cold restarts + torn/bitrot scrub fallback must be exact)"
cargo run --release -q -p flash-bench --bin fig_durable -- --smoke

echo "==> hot-path smoke (pooled-parallel vs fresh-serial must be bit-identical)"
cargo run --release -q -p flash-bench --bin perf_hotpath -- --smoke

echo "==> trace analyzer smoke (record, validate schema, critical path, Chrome export)"
cargo run --release -q -p flash-bench --bin flash_trace -- --smoke

echo "==> block-storage smoke (out-of-core engine must be bit-identical)"
cargo run --release -q -p flash-bench --bin fig_scale -- --smoke

echo "==> serving smoke (concurrent sessions + incremental repair must be exact)"
cargo run --release -q -p flash-bench --bin fig_serve -- --smoke

echo "==> bench snapshot (regenerates BENCH_flash.json at the repo root)"
FLASH_SCALE=small cargo run --release -q -p flash-bench --bin bench_flash

echo "==> perf-regression gate (supersteps/total_bytes enforced; timing warn-only)"
FLASH_SCALE=small FLASH_BASELINE_WARN=1 \
    cargo run --release -q -p flash-bench --bin bench_flash -- --baseline BENCH_flash.json

echo "==> OK"
