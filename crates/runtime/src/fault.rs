//! Deterministic fault injection for the simulated cluster.
//!
//! A real FLASH deployment sits on an MPI cluster where workers crash,
//! network buffers arrive corrupted and stragglers stall barriers. The
//! simulated cluster reproduces those failure modes *deterministically*: a
//! [`FaultPlan`] attached to [`ClusterConfig`](crate::ClusterConfig)
//! scripts exactly which worker fails at which superstep, and the
//! corruption nonces come from the workspace's xoshiro PRNG
//! ([`flash_graph::Prng`]) seeded from the plan. The same plan over the
//! same program therefore fires at the same points every run — which is
//! what lets tests assert the recovery invariant: results must be
//! **bit-identical** with and without injected faults (see
//! [`checkpoint`](crate::checkpoint) and DESIGN.md §8).
//!
//! # Plan grammar
//!
//! A plan is a comma-separated list of fault specs and `key=value`
//! options:
//!
//! ```text
//! crash@3:w1            crash worker 1 at superstep 3
//! corrupt@5:w0          corrupt worker 0's sync payload at superstep 5
//! straggle@2:w1:400us   delay worker 1's compute by 400 µs at superstep 2
//! crash@3:w1:x2         the crash fires on the first two attempts
//! retries=2             retry budget per superstep (default 3)
//! backoff=500us         base of the capped exponential backoff
//! cap=16ms              backoff cap
//! seed=42               PRNG seed for corruption nonces
//! ```
//!
//! Durations accept `us`, `ms` and `s` suffixes.

use flash_graph::Prng;
use std::time::Duration;

/// Default retry budget per superstep before recovery gives up.
pub const DEFAULT_MAX_RETRIES: u32 = 3;
/// Default base of the capped exponential retry backoff.
pub const DEFAULT_BACKOFF_BASE: Duration = Duration::from_millis(1);
/// Default backoff cap.
pub const DEFAULT_BACKOFF_CAP: Duration = Duration::from_millis(64);
/// Default PRNG seed for corruption nonces.
pub const DEFAULT_SEED: u64 = 0xF1A5;
/// Default straggler delay when a `straggle` spec omits one.
pub const DEFAULT_STRAGGLE_DELAY: Duration = Duration::from_millis(1);

/// What kind of failure a [`FaultSpec`] injects.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The worker dies mid-superstep: its compute output is lost at the
    /// barrier and the whole superstep must roll back (BSP recovery is
    /// all-or-nothing).
    Crash,
    /// The worker's serialized sync payload is corrupted in transit. The
    /// receiver detects the damage by recomputing the payload checksum,
    /// and the superstep rolls back exactly like a crash.
    CorruptSync,
    /// The worker straggles: its compute phase is charged an extra delay,
    /// visible as barrier skew. No recovery is needed.
    Straggler,
}

impl FaultKind {
    /// Stable label used in trace events and the CLI grammar.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::Crash => "crash",
            FaultKind::CorruptSync => "corrupt",
            FaultKind::Straggler => "straggle",
        }
    }
}

/// One scripted fault.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultSpec {
    /// Global superstep id (trace step id) the fault fires at.
    pub step: u64,
    /// Worker the fault targets.
    pub worker: usize,
    /// Failure kind.
    pub kind: FaultKind,
    /// How many attempts of that superstep the fault fires on. `1` means
    /// the first attempt only, so a single retry recovers; values larger
    /// than the retry budget exhaust it and degrade the run to a clean
    /// [`RuntimeError::RecoveryExhausted`](crate::RuntimeError).
    pub times: u32,
    /// Extra compute delay for [`FaultKind::Straggler`]; ignored for other
    /// kinds.
    pub delay: Duration,
}

/// A scripted fault-injection plan plus the recovery policy.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// The scripted faults, in no particular order.
    pub specs: Vec<FaultSpec>,
    /// Retry budget per superstep before recovery degrades to a clean
    /// error.
    pub max_retries: u32,
    /// Base of the capped exponential retry backoff. Backoff is *charged*
    /// as simulated time, never slept.
    pub backoff_base: Duration,
    /// Upper bound on a single retry's backoff.
    pub backoff_cap: Duration,
    /// Seed for the xoshiro PRNG generating corruption nonces (and
    /// [`FaultPlan::chaos`] schedules).
    pub seed: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            specs: Vec::new(),
            max_retries: DEFAULT_MAX_RETRIES,
            backoff_base: DEFAULT_BACKOFF_BASE,
            backoff_cap: DEFAULT_BACKOFF_CAP,
            seed: DEFAULT_SEED,
        }
    }
}

impl FaultPlan {
    /// An empty plan with default policy (useful as a builder base).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds one fault spec (builder style).
    pub fn spec(mut self, kind: FaultKind, step: u64, worker: usize) -> Self {
        self.specs.push(FaultSpec {
            step,
            worker,
            kind,
            times: 1,
            delay: DEFAULT_STRAGGLE_DELAY,
        });
        self
    }

    /// Sets the retry budget (builder style).
    pub fn retries(mut self, n: u32) -> Self {
        self.max_retries = n;
        self
    }

    /// Parses the plan grammar described in the module docs.
    pub fn parse(text: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for part in text.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            if let Some((key, value)) = part.split_once('=') {
                let value = value.trim();
                match key.trim() {
                    "retries" => {
                        plan.max_retries = value
                            .parse()
                            .map_err(|_| format!("invalid retries value {value:?}"))?;
                    }
                    "backoff" => plan.backoff_base = parse_duration(value)?,
                    "cap" => plan.backoff_cap = parse_duration(value)?,
                    "seed" => {
                        plan.seed = value
                            .parse()
                            .map_err(|_| format!("invalid seed value {value:?}"))?;
                    }
                    other => return Err(format!("unknown fault-plan option {other:?}")),
                }
                continue;
            }
            plan.specs.push(parse_spec(part)?);
        }
        Ok(plan)
    }

    /// A randomized plan drawn from the workspace PRNG: one crash, one
    /// corrupted sync buffer and one straggler, each at a superstep in
    /// `1..max_step` on a worker in `0..workers`. Deterministic in `seed`.
    pub fn chaos(seed: u64, workers: usize, max_step: u64) -> FaultPlan {
        let mut prng = Prng::seed_from_u64(seed);
        let workers = workers.max(1) as u64;
        let span = max_step.max(2);
        let mut draw = |kind: FaultKind| FaultSpec {
            step: 1 + prng.next_u64() % (span - 1),
            worker: (prng.next_u64() % workers) as usize,
            kind,
            times: 1,
            delay: Duration::from_micros(100 + prng.next_u64() % 900),
        };
        FaultPlan {
            specs: vec![
                draw(FaultKind::Crash),
                draw(FaultKind::CorruptSync),
                draw(FaultKind::Straggler),
            ],
            seed,
            ..FaultPlan::default()
        }
    }

    /// The simulated backoff charged before retry number `attempt`
    /// (0-based): `base * 2^attempt`, capped.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let factor = 1u32.checked_shl(attempt).unwrap_or(u32::MAX);
        self.backoff_base
            .checked_mul(factor)
            .unwrap_or(self.backoff_cap)
            .min(self.backoff_cap)
    }

    /// The largest worker id any spec targets, for validation against the
    /// cluster size.
    pub fn max_worker(&self) -> Option<usize> {
        self.specs.iter().map(|s| s.worker).max()
    }

    /// Renders the plan back into its grammar (options only when they
    /// differ from the defaults) — the echo written into `results/*.json`.
    pub fn summary(&self) -> String {
        let mut parts: Vec<String> = self
            .specs
            .iter()
            .map(|s| {
                let mut out = format!("{}@{}:w{}", s.kind.label(), s.step, s.worker);
                if s.kind == FaultKind::Straggler {
                    out.push_str(&format!(":{}us", s.delay.as_micros()));
                }
                if s.times != 1 {
                    out.push_str(&format!(":x{}", s.times));
                }
                out
            })
            .collect();
        if self.max_retries != DEFAULT_MAX_RETRIES {
            parts.push(format!("retries={}", self.max_retries));
        }
        if self.seed != DEFAULT_SEED {
            parts.push(format!("seed={}", self.seed));
        }
        parts.join(",")
    }
}

fn parse_spec(part: &str) -> Result<FaultSpec, String> {
    let (kind_s, rest) = part
        .split_once('@')
        .ok_or_else(|| format!("fault spec {part:?} needs '@' (e.g. crash@3:w1)"))?;
    let kind = match kind_s.trim() {
        "crash" => FaultKind::Crash,
        "corrupt" => FaultKind::CorruptSync,
        "straggle" | "straggler" => FaultKind::Straggler,
        other => {
            return Err(format!(
                "unknown fault kind {other:?} (expected crash, corrupt or straggle)"
            ))
        }
    };
    let mut segs = rest.split(':');
    let step_s = segs.next().unwrap_or_default().trim();
    let step: u64 = step_s
        .parse()
        .map_err(|_| format!("invalid superstep {step_s:?} in fault spec {part:?}"))?;
    let worker_s = segs
        .next()
        .ok_or_else(|| format!("fault spec {part:?} needs a worker (e.g. {kind_s}@{step}:w1)"))?
        .trim();
    let worker: usize = worker_s
        .strip_prefix('w')
        .and_then(|w| w.parse().ok())
        .ok_or_else(|| format!("invalid worker {worker_s:?} in fault spec {part:?}"))?;
    let mut spec = FaultSpec {
        step,
        worker,
        kind,
        times: 1,
        delay: DEFAULT_STRAGGLE_DELAY,
    };
    for seg in segs {
        let seg = seg.trim();
        if let Some(n) = seg.strip_prefix('x') {
            spec.times = n
                .parse()
                .map_err(|_| format!("invalid repeat count {seg:?} in fault spec {part:?}"))?;
        } else {
            spec.delay = parse_duration(seg)?;
        }
    }
    Ok(spec)
}

/// Parses `123us`, `5ms` or `2s` into a [`Duration`].
pub fn parse_duration(text: &str) -> Result<Duration, String> {
    let text = text.trim();
    let (digits, unit): (&str, fn(u64) -> Duration) = if let Some(d) = text.strip_suffix("us") {
        (d, Duration::from_micros)
    } else if let Some(d) = text.strip_suffix("ms") {
        (d, Duration::from_millis)
    } else if let Some(d) = text.strip_suffix('s') {
        (d, Duration::from_secs)
    } else {
        return Err(format!("duration {text:?} needs a us/ms/s suffix"));
    };
    digits
        .parse()
        .map(unit)
        .map_err(|_| format!("invalid duration {text:?}"))
}

/// Runtime state of the injector: the plan plus per-spec fire counts and
/// the nonce PRNG. Owned by the cluster; `active` flips off after the
/// retry budget is exhausted so the rest of the run executes fault-free.
#[derive(Debug)]
pub(crate) struct FaultInjector {
    plan: FaultPlan,
    fired: Vec<u32>,
    prng: Prng,
    pub(crate) active: bool,
}

impl FaultInjector {
    pub(crate) fn new(plan: FaultPlan) -> Self {
        let fired = vec![0; plan.specs.len()];
        let prng = Prng::seed_from_u64(plan.seed);
        FaultInjector {
            plan,
            fired,
            prng,
            active: true,
        }
    }

    pub(crate) fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Crash/corruption specs firing at `step` on the current attempt,
    /// consuming one fire from each.
    pub(crate) fn failures(&mut self, step: u64) -> Vec<FaultSpec> {
        self.take(step, |k| k != FaultKind::Straggler)
    }

    /// Straggler specs firing at `step`, consuming one fire from each.
    pub(crate) fn stragglers(&mut self, step: u64) -> Vec<FaultSpec> {
        self.take(step, |k| k == FaultKind::Straggler)
    }

    /// A spec fires at the first *eligible* superstep at or after its
    /// scripted step: global-reduce supersteps never ship vertex state and
    /// are skipped by the fault paths, so `corrupt@3` on a program whose
    /// superstep 3 is a fold lands on the next compute superstep instead
    /// of silently never firing.
    fn take(&mut self, step: u64, want: impl Fn(FaultKind) -> bool) -> Vec<FaultSpec> {
        if !self.active {
            return Vec::new();
        }
        let mut out = Vec::new();
        for (i, spec) in self.plan.specs.iter().enumerate() {
            if spec.step <= step && want(spec.kind) && self.fired[i] < spec.times {
                self.fired[i] += 1;
                out.push(spec.clone());
            }
        }
        out
    }

    /// A nonzero value XOR-ed into a transmitted checksum to simulate
    /// in-flight corruption (nonzero guarantees the mismatch is
    /// detectable).
    pub(crate) fn corruption_nonce(&mut self) -> u64 {
        loop {
            let n = self.prng.next_u64();
            if n != 0 {
                return n;
            }
        }
    }
}

/// Order-independent FNV-1a checksum over a sync payload's framing: each
/// `(vertex, byte-length)` record hashes independently and the digests
/// combine commutatively, so the iteration order of the staging maps does
/// not affect the result.
pub fn payload_checksum<I: IntoIterator<Item = (u32, usize)>>(items: I) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x1000_0000_01b3;
    let mut sum = OFFSET;
    for (v, len) in items {
        let mut h = OFFSET;
        for byte in v
            .to_le_bytes()
            .iter()
            .chain((len as u64).to_le_bytes().iter())
        {
            h ^= u64::from(*byte);
            h = h.wrapping_mul(PRIME);
        }
        sum = sum.wrapping_add(h);
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_grammar() {
        let p =
            FaultPlan::parse("crash@3:w1,corrupt@5:w0:x2,straggle@2:w1:400us,retries=2").unwrap();
        assert_eq!(p.specs.len(), 3);
        assert_eq!(p.max_retries, 2);
        assert_eq!(
            p.specs[0],
            FaultSpec {
                step: 3,
                worker: 1,
                kind: FaultKind::Crash,
                times: 1,
                delay: DEFAULT_STRAGGLE_DELAY,
            }
        );
        assert_eq!(p.specs[1].times, 2);
        assert_eq!(p.specs[2].delay, Duration::from_micros(400));
        assert_eq!(p.max_worker(), Some(1));
    }

    #[test]
    fn parses_policy_options() {
        let p = FaultPlan::parse("backoff=500us,cap=16ms,seed=42").unwrap();
        assert_eq!(p.backoff_base, Duration::from_micros(500));
        assert_eq!(p.backoff_cap, Duration::from_millis(16));
        assert_eq!(p.seed, 42);
        assert!(p.specs.is_empty());
    }

    #[test]
    fn rejects_malformed_specs() {
        assert!(FaultPlan::parse("explode@1:w0").is_err());
        assert!(FaultPlan::parse("crash@x:w0").is_err());
        assert!(FaultPlan::parse("crash@1").is_err());
        assert!(FaultPlan::parse("crash@1:3").is_err());
        assert!(FaultPlan::parse("straggle@1:w0:4parsecs").is_err());
        assert!(FaultPlan::parse("warp=9").is_err());
    }

    #[test]
    fn summary_round_trips() {
        let text = "crash@3:w1,straggle@2:w0:400us,corrupt@5:w2:x2,retries=2";
        let p = FaultPlan::parse(text).unwrap();
        let again = FaultPlan::parse(&p.summary()).unwrap();
        assert_eq!(p, again);
    }

    #[test]
    fn backoff_is_capped_exponential() {
        let p = FaultPlan::default();
        assert_eq!(p.backoff(0), DEFAULT_BACKOFF_BASE);
        assert_eq!(p.backoff(1), DEFAULT_BACKOFF_BASE * 2);
        assert_eq!(p.backoff(2), DEFAULT_BACKOFF_BASE * 4);
        assert_eq!(p.backoff(40), DEFAULT_BACKOFF_CAP, "large attempts cap");
    }

    #[test]
    fn injector_fires_each_spec_times_then_stops() {
        let plan = FaultPlan::parse("crash@2:w0:x2").unwrap();
        let mut inj = FaultInjector::new(plan);
        assert_eq!(inj.failures(1).len(), 0);
        assert_eq!(inj.failures(2).len(), 1);
        assert_eq!(inj.failures(2).len(), 1);
        assert_eq!(inj.failures(2).len(), 0, "budget of 2 fires consumed");
        inj.active = false;
        let plan2 = FaultPlan::parse("crash@5:w0").unwrap();
        let mut inj2 = FaultInjector::new(plan2);
        inj2.active = false;
        assert!(inj2.failures(5).is_empty(), "inactive injector never fires");
    }

    #[test]
    fn stragglers_and_failures_are_disjoint() {
        let plan = FaultPlan::parse("crash@1:w0,straggle@1:w1:200us").unwrap();
        let mut inj = FaultInjector::new(plan);
        let stragglers = inj.stragglers(1);
        let failures = inj.failures(1);
        assert_eq!(stragglers.len(), 1);
        assert_eq!(stragglers[0].kind, FaultKind::Straggler);
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].kind, FaultKind::Crash);
    }

    #[test]
    fn checksum_is_order_independent_and_length_sensitive() {
        let a = payload_checksum([(1u32, 8usize), (2, 16), (3, 8)]);
        let b = payload_checksum([(3u32, 8usize), (1, 8), (2, 16)]);
        assert_eq!(a, b);
        let c = payload_checksum([(1u32, 9usize), (2, 16), (3, 8)]);
        assert_ne!(a, c, "payload length is part of the frame");
        let d = payload_checksum(std::iter::empty::<(u32, usize)>());
        assert_ne!(a, d);
    }

    #[test]
    fn corruption_nonce_is_nonzero_and_deterministic() {
        let plan = FaultPlan::default();
        let mut i1 = FaultInjector::new(plan.clone());
        let mut i2 = FaultInjector::new(plan);
        for _ in 0..16 {
            let n = i1.corruption_nonce();
            assert_ne!(n, 0);
            assert_eq!(n, i2.corruption_nonce(), "same seed, same nonces");
        }
    }

    #[test]
    fn chaos_plan_is_deterministic_and_in_bounds() {
        let a = FaultPlan::chaos(7, 4, 10);
        let b = FaultPlan::chaos(7, 4, 10);
        assert_eq!(a, b);
        assert_eq!(a.specs.len(), 3);
        for s in &a.specs {
            assert!(s.worker < 4);
            assert!(s.step >= 1 && s.step < 10);
        }
        let c = FaultPlan::chaos(8, 4, 10);
        assert_ne!(a, c, "different seeds draw different schedules");
    }
}
