//! Deterministic fault injection for the simulated cluster.
//!
//! A real FLASH deployment sits on an MPI cluster where workers crash,
//! network buffers arrive corrupted and stragglers stall barriers. The
//! simulated cluster reproduces those failure modes *deterministically*: a
//! [`FaultPlan`] attached to [`ClusterConfig`](crate::ClusterConfig)
//! scripts exactly which worker fails at which superstep, and the
//! corruption nonces come from the workspace's xoshiro PRNG
//! ([`flash_graph::Prng`]) seeded from the plan. The same plan over the
//! same program therefore fires at the same points every run — which is
//! what lets tests assert the recovery invariant: results must be
//! **bit-identical** with and without injected faults (see
//! [`checkpoint`](crate::checkpoint) and DESIGN.md §8).
//!
//! # Plan grammar
//!
//! A plan is a comma-separated list of fault specs and `key=value`
//! options:
//!
//! ```text
//! crash@3:w1            crash worker 1 at superstep 3
//! corrupt@5:w0          corrupt worker 0's sync payload at superstep 5
//! straggle@2:w1:400us   delay worker 1's compute by 400 µs at superstep 2
//! crash@3:w1:x2         the crash fires on the first two attempts
//! die@3:w1              worker 1 dies for good at superstep 3 (elastic
//!                       membership declares it dead once the retry budget
//!                       is spent; see DESIGN.md §9)
//! rejoin@6:w1           a previously dead worker 1 rejoins at superstep 6
//! drop@3:w1             the lossy channel eats every cross-host batch
//!                       worker 1 sends at superstep 3 (first transmission;
//!                       retransmission recovers it)
//! drop@3:w1:x4          the drop swallows the first four transmission
//!                       attempts of each affected batch — more than the
//!                       retry budget exhausts delivery
//! dup@3:w1              worker 1's batches are delivered twice (the
//!                       receive-side dedup window discards the copy)
//! reorder@3:w1          worker 1's batches arrive a round late, after the
//!                       sender has already retransmitted them
//! leader@4              crash whichever host currently leads the
//!                       replicated control plane at superstep 4, forcing
//!                       the survivors to elect a new leader mid-run (the
//!                       spec names no worker — it targets whoever leads)
//! lie@5:w2              worker 2 returns a checksum-mismatched sync
//!                       payload at superstep 5; the replica checksum
//!                       quorum detects the lie and escalates it to a
//!                       death declaration through the consensus log
//! ioerr@4               the durable checkpoint store's write/fsync fails
//!                       at superstep 4: the commit is skipped (and never
//!                       fed to the consensus log) and the store self-heals
//!                       on its next write. Names no worker — it targets
//!                       the store itself (DESIGN.md §15)
//! torn@4                the newest committed checkpoint generation is
//!                       truncated mid-frame after superstep 4's commit,
//!                       simulating a crash mid-write; the scrub pass at
//!                       the next cold start detects the damage and falls
//!                       back to the previous generation
//! bitrot@4:b17          byte 17 of the newest committed checkpoint
//!                       generation is flipped (seeded nonzero mask) after
//!                       superstep 4's commit — at-rest corruption the
//!                       scrub pass must detect via frame checksums
//! loss=0.05             seeded probabilistic mode: every cross-host batch
//!                       transmission is dropped with probability 0.05
//! dupRate=0.01          every delivered batch is duplicated with
//!                       probability 0.01
//! corruptRate=0.01      every batch copy arrives with a flipped wire
//!                       checksum with probability 0.01 (detected, nacked
//!                       and retransmitted)
//! retries=2             retry budget per superstep — and per-batch
//!                       retransmit budget (default 3)
//! backoff=500us         base of the capped exponential backoff
//! cap=16ms              backoff cap
//! detector=50ms         failure-detector deadline: a straggler that delays
//!                       the barrier by at least this much simulated time
//!                       is declared permanently dead (default 100ms)
//! seed=42               PRNG seed for corruption nonces and channel draws
//! ```
//!
//! Durations accept `ns`, `us`, `ms` and `s` suffixes, with optional
//! fractional values (`1.5ms`); bare numbers are rejected as ambiguous.
//! Plans are validated when the cluster is built — out-of-range workers,
//! steps beyond [`MAX_PLAUSIBLE_STEP`], duplicate specs, a `rejoin` with no
//! preceding `die`, or a plan that kills every worker all fail fast.

use flash_graph::Prng;
use std::time::Duration;

/// Default retry budget per superstep before recovery gives up.
pub const DEFAULT_MAX_RETRIES: u32 = 3;
/// Default base of the capped exponential retry backoff.
pub const DEFAULT_BACKOFF_BASE: Duration = Duration::from_millis(1);
/// Default backoff cap.
pub const DEFAULT_BACKOFF_CAP: Duration = Duration::from_millis(64);
/// Default PRNG seed for corruption nonces.
pub const DEFAULT_SEED: u64 = 0xF1A5;
/// Default straggler delay when a `straggle` spec omits one.
pub const DEFAULT_STRAGGLE_DELAY: Duration = Duration::from_millis(1);
/// Default failure-detector deadline: a worker whose simulated barrier
/// delay reaches this is declared permanently dead rather than merely slow.
pub const DEFAULT_DETECTOR_TIMEOUT: Duration = Duration::from_millis(100);
/// Largest superstep id a fault spec may target. Catalogue programs finish
/// in well under a thousand supersteps; a spec beyond this horizon would
/// silently never fire, so validation rejects it.
pub const MAX_PLAUSIBLE_STEP: u64 = 100_000;

/// What kind of failure a [`FaultSpec`] injects.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The worker dies mid-superstep: its compute output is lost at the
    /// barrier and the whole superstep must roll back (BSP recovery is
    /// all-or-nothing).
    Crash,
    /// The worker's serialized sync payload is corrupted in transit. The
    /// receiver detects the damage by recomputing the payload checksum,
    /// and the superstep rolls back exactly like a crash.
    CorruptSync,
    /// The worker straggles: its compute phase is charged an extra delay,
    /// visible as barrier skew. No recovery is needed — unless the delay
    /// reaches the failure-detector deadline, in which case the worker is
    /// declared permanently dead.
    Straggler,
    /// The worker dies permanently: the fault fires on *every* attempt, so
    /// once the retry budget is spent the cluster declares the worker dead
    /// and re-homes its partition onto the survivors (elastic membership).
    Die,
    /// A previously dead worker comes back at the scripted superstep and
    /// reclaims its home partition. Must be paired with an earlier `die`
    /// on the same worker.
    Rejoin,
    /// The lossy channel silently discards every cross-host batch the
    /// worker sends at the scripted superstep. The `:xN` repeat count is
    /// the number of *transmission attempts* swallowed per batch, so a
    /// count above the retry budget exhausts delivery.
    Drop,
    /// Every cross-host batch the worker sends at the scripted superstep
    /// is delivered twice; the receive-side dedup window discards the
    /// extra copy.
    Duplicate,
    /// Every cross-host batch the worker sends at the scripted superstep
    /// is delayed past the ack deadline and arrives a round late, racing
    /// its own retransmission; the dedup window keeps exactly one copy.
    Reorder,
    /// The host currently leading the replicated control plane crashes
    /// permanently at the scripted superstep, forcing the surviving hosts
    /// to elect a new leader mid-run. The spec names no worker: it targets
    /// *whoever leads* when it fires (DESIGN.md §14).
    Leader,
    /// The worker lies: its sync payload checksum does not match what the
    /// replica quorum recomputes. Detection accuses the worker and
    /// escalates to a death declaration committed through the consensus
    /// log — the byzantine fault of DESIGN.md §14.
    Lie,
    /// The durable checkpoint store's write/fsync fails at the scripted
    /// superstep: the generation commit is skipped (and never fed to the
    /// consensus log), and the store self-heals on the next write by
    /// rewriting the whole generation. Names no worker — it targets the
    /// store itself (DESIGN.md §15).
    Ioerr,
    /// The newest *committed* checkpoint generation is truncated mid-frame
    /// after the scripted superstep's commit — the on-disk damage a crash
    /// mid-write leaves behind. Detected by the scrub pass at the next
    /// cold start, which falls back to the previous valid generation.
    Torn,
    /// One byte of the newest committed checkpoint generation is flipped
    /// (seeded nonzero mask) after the scripted superstep's commit —
    /// at-rest corruption detected by the scrub pass via frame checksums.
    Bitrot,
}

impl FaultKind {
    /// Stable label used in trace events and the CLI grammar.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::Crash => "crash",
            FaultKind::CorruptSync => "corrupt",
            FaultKind::Straggler => "straggle",
            FaultKind::Die => "die",
            FaultKind::Rejoin => "rejoin",
            FaultKind::Drop => "drop",
            FaultKind::Duplicate => "dup",
            FaultKind::Reorder => "reorder",
            FaultKind::Leader => "leader",
            FaultKind::Lie => "lie",
            FaultKind::Ioerr => "ioerr",
            FaultKind::Torn => "torn",
            FaultKind::Bitrot => "bitrot",
        }
    }

    /// Whether this kind targets the message channel (handled by the
    /// reliable-delivery transport) rather than worker compute state
    /// (handled by checkpoint/rollback recovery).
    pub fn is_channel(self) -> bool {
        matches!(
            self,
            FaultKind::Drop | FaultKind::Duplicate | FaultKind::Reorder
        )
    }

    /// Whether this kind targets the durable checkpoint store (handled by
    /// [`crate::durable`]) rather than a worker or the channel.
    pub fn is_disk(self) -> bool {
        matches!(self, FaultKind::Ioerr | FaultKind::Torn | FaultKind::Bitrot)
    }

    /// Whether the spec names no worker: `leader@` targets whoever leads,
    /// and the disk kinds target the durable store itself.
    pub fn is_workerless(self) -> bool {
        self == FaultKind::Leader || self.is_disk()
    }
}

/// One scripted fault.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultSpec {
    /// Global superstep id (trace step id) the fault fires at.
    pub step: u64,
    /// Worker the fault targets.
    pub worker: usize,
    /// Failure kind.
    pub kind: FaultKind,
    /// How many attempts of that superstep the fault fires on. `1` means
    /// the first attempt only, so a single retry recovers; values larger
    /// than the retry budget exhaust it and degrade the run to a clean
    /// [`RuntimeError::RecoveryExhausted`](crate::RuntimeError).
    pub times: u32,
    /// Extra compute delay for [`FaultKind::Straggler`]; ignored for other
    /// kinds.
    pub delay: Duration,
    /// Byte offset the [`FaultKind::Bitrot`] flip lands on (clamped to the
    /// generation's length at fire time); ignored for other kinds.
    pub byte: u64,
}

/// A scripted fault-injection plan plus the recovery policy.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// The scripted faults, in no particular order.
    pub specs: Vec<FaultSpec>,
    /// Retry budget per superstep before recovery degrades to a clean
    /// error.
    pub max_retries: u32,
    /// Base of the capped exponential retry backoff. Backoff is *charged*
    /// as simulated time, never slept.
    pub backoff_base: Duration,
    /// Upper bound on a single retry's backoff.
    pub backoff_cap: Duration,
    /// Seed for the xoshiro PRNG generating corruption nonces (and
    /// [`FaultPlan::chaos`] schedules).
    pub seed: u64,
    /// Failure-detector deadline: a straggler whose simulated delay reaches
    /// this is declared permanently dead at the barrier instead of merely
    /// charging skew.
    pub detector_timeout: Duration,
    /// Probabilistic channel loss: every cross-host batch transmission is
    /// dropped with this probability (seeded, so deterministic per plan).
    pub loss: f64,
    /// Probabilistic duplication: every delivered batch is delivered a
    /// second time with this probability.
    pub dup_rate: f64,
    /// Probabilistic wire corruption: every delivered batch copy arrives
    /// with a flipped checksum with this probability. The receiver detects
    /// the mismatch, nacks, and the sender retransmits.
    pub corrupt_rate: f64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            specs: Vec::new(),
            max_retries: DEFAULT_MAX_RETRIES,
            backoff_base: DEFAULT_BACKOFF_BASE,
            backoff_cap: DEFAULT_BACKOFF_CAP,
            seed: DEFAULT_SEED,
            detector_timeout: DEFAULT_DETECTOR_TIMEOUT,
            loss: 0.0,
            dup_rate: 0.0,
            corrupt_rate: 0.0,
        }
    }
}

impl FaultPlan {
    /// An empty plan with default policy (useful as a builder base).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds one fault spec (builder style). `die` specs fire on every
    /// attempt (that is what makes the failure permanent).
    pub fn spec(mut self, kind: FaultKind, step: u64, worker: usize) -> Self {
        self.specs.push(FaultSpec {
            step,
            worker,
            kind,
            times: if kind == FaultKind::Die { u32::MAX } else { 1 },
            delay: DEFAULT_STRAGGLE_DELAY,
            byte: 0,
        });
        self
    }

    /// Sets the retry budget (builder style).
    pub fn retries(mut self, n: u32) -> Self {
        self.max_retries = n;
        self
    }

    /// Parses the plan grammar described in the module docs.
    pub fn parse(text: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for part in text.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            if let Some((key, value)) = part.split_once('=') {
                let value = value.trim();
                match key.trim() {
                    "retries" => {
                        plan.max_retries = value
                            .parse()
                            .map_err(|_| format!("invalid retries value {value:?}"))?;
                    }
                    "backoff" => plan.backoff_base = parse_duration(value)?,
                    "cap" => plan.backoff_cap = parse_duration(value)?,
                    "detector" => plan.detector_timeout = parse_duration(value)?,
                    "seed" => {
                        plan.seed = value
                            .parse()
                            .map_err(|_| format!("invalid seed value {value:?}"))?;
                    }
                    "loss" => plan.loss = parse_rate("loss", value)?,
                    "dupRate" => plan.dup_rate = parse_rate("dupRate", value)?,
                    "corruptRate" => plan.corrupt_rate = parse_rate("corruptRate", value)?,
                    other => return Err(format!("unknown fault-plan option {other:?}")),
                }
                continue;
            }
            plan.specs.push(parse_spec(part)?);
        }
        Ok(plan)
    }

    /// A randomized plan drawn from the workspace PRNG: one crash, one
    /// corrupted sync buffer and one straggler, each at a superstep in
    /// `1..max_step` on a worker in `0..workers`. Deterministic in `seed`.
    pub fn chaos(seed: u64, workers: usize, max_step: u64) -> FaultPlan {
        let mut prng = Prng::seed_from_u64(seed);
        let workers = workers.max(1) as u64;
        let span = max_step.max(2);
        let mut draw = |kind: FaultKind| FaultSpec {
            step: 1 + prng.next_u64() % (span - 1),
            worker: (prng.next_u64() % workers) as usize,
            kind,
            times: 1,
            delay: Duration::from_micros(100 + prng.next_u64() % 900),
            byte: 0,
        };
        FaultPlan {
            specs: vec![
                draw(FaultKind::Crash),
                draw(FaultKind::CorruptSync),
                draw(FaultKind::Straggler),
            ],
            seed,
            ..FaultPlan::default()
        }
    }

    /// The simulated backoff charged before retry number `attempt`
    /// (0-based): `base * 2^attempt`, capped.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let factor = 1u32.checked_shl(attempt).unwrap_or(u32::MAX);
        self.backoff_base
            .checked_mul(factor)
            .unwrap_or(self.backoff_cap)
            .min(self.backoff_cap)
    }

    /// The largest worker id any spec targets, for validation against the
    /// cluster size.
    pub fn max_worker(&self) -> Option<usize> {
        self.specs.iter().map(|s| s.worker).max()
    }

    /// Whether the plan exercises the channel at all — scripted
    /// drop/dup/reorder specs or a nonzero probabilistic rate. The cluster
    /// uses this to decide whether delivery bookkeeping is worth charging.
    pub fn has_channel_faults(&self) -> bool {
        self.specs.iter().any(|s| s.kind.is_channel())
            || self.loss > 0.0
            || self.dup_rate > 0.0
            || self.corrupt_rate > 0.0
    }

    /// Whether the plan attacks the replicated control plane directly — a
    /// scripted `leader@` crash or a byzantine `lie@` worker.
    pub fn has_consensus_faults(&self) -> bool {
        self.specs
            .iter()
            .any(|s| matches!(s.kind, FaultKind::Leader | FaultKind::Lie))
    }

    /// Whether the plan attacks the durable checkpoint store — a scripted
    /// `ioerr@`, `torn@` or `bitrot@` spec.
    pub fn has_disk_faults(&self) -> bool {
        self.specs.iter().any(|s| s.kind.is_disk())
    }

    /// Validates the plan against a cluster of `workers` workers. Called
    /// when the plan is attached so a spec that could never fire (or would
    /// kill the whole cluster) fails fast instead of silently doing
    /// nothing. Checks: worker indices in range, steps within
    /// [`MAX_PLAUSIBLE_STEP`], no duplicate `(kind, step, worker)` specs,
    /// every `rejoin` paired with an earlier `die` on the same worker, and
    /// at least one worker never targeted by a `die`.
    pub fn validate(&self, workers: usize) -> Result<(), String> {
        for (i, s) in self.specs.iter().enumerate() {
            if s.worker >= workers {
                return Err(format!(
                    "{}@{}:w{} targets worker {} but the cluster has only {workers} workers",
                    s.kind.label(),
                    s.step,
                    s.worker,
                    s.worker
                ));
            }
            if s.step > MAX_PLAUSIBLE_STEP {
                return Err(format!(
                    "{}@{}:w{} is beyond the plausible superstep horizon ({MAX_PLAUSIBLE_STEP}) \
                     and would never fire",
                    s.kind.label(),
                    s.step,
                    s.worker
                ));
            }
            if self.specs[..i]
                .iter()
                .any(|p| p.kind == s.kind && p.step == s.step && p.worker == s.worker)
            {
                return Err(format!(
                    "duplicate fault spec {}@{}:w{}",
                    s.kind.label(),
                    s.step,
                    s.worker
                ));
            }
            if s.kind == FaultKind::Rejoin
                && !self
                    .specs
                    .iter()
                    .any(|p| p.kind == FaultKind::Die && p.worker == s.worker && p.step < s.step)
            {
                return Err(format!(
                    "rejoin@{}:w{} has no earlier die@ spec for worker {}",
                    s.step, s.worker, s.worker
                ));
            }
        }
        let dying: Vec<usize> = {
            let mut ws: Vec<usize> = self
                .specs
                .iter()
                .filter(|s| s.kind == FaultKind::Die)
                .map(|s| s.worker)
                .collect();
            ws.sort_unstable();
            ws.dedup();
            ws
        };
        // Every `leader@` crash kills one live host, so together with the
        // scripted deaths the plan must still leave at least one survivor.
        let leader_kills = self
            .specs
            .iter()
            .filter(|s| s.kind == FaultKind::Leader)
            .count();
        if (!dying.is_empty() || leader_kills > 0) && dying.len() + leader_kills >= workers {
            return Err("the plan kills every worker; at least one must survive".into());
        }
        for (name, rate) in [
            ("loss", self.loss),
            ("dupRate", self.dup_rate),
            ("corruptRate", self.corrupt_rate),
        ] {
            if !(0.0..=1.0).contains(&rate) || !rate.is_finite() {
                return Err(format!(
                    "{name}={rate} is not a probability; rates must lie in [0, 1]"
                ));
            }
        }
        Ok(())
    }

    /// Renders the plan back into its grammar (options only when they
    /// differ from the defaults) — the echo written into `results/*.json`.
    pub fn summary(&self) -> String {
        let mut parts: Vec<String> = self
            .specs
            .iter()
            .map(|s| {
                // Worker-less kinds name no worker: `leader` targets
                // whoever leads, the disk kinds target the durable store.
                let mut out = if s.kind == FaultKind::Bitrot {
                    format!("bitrot@{}:b{}", s.step, s.byte)
                } else if s.kind.is_workerless() {
                    format!("{}@{}", s.kind.label(), s.step)
                } else {
                    format!("{}@{}:w{}", s.kind.label(), s.step, s.worker)
                };
                if s.kind == FaultKind::Straggler {
                    out.push_str(&format!(":{}", format_duration(s.delay)));
                }
                // `die` is implicitly every-attempt; `rejoin`, `lie` and
                // the worker-less kinds fire once — none takes an :xN in
                // the grammar.
                if s.times != 1
                    && !matches!(s.kind, FaultKind::Die | FaultKind::Rejoin | FaultKind::Lie)
                    && !s.kind.is_workerless()
                {
                    out.push_str(&format!(":x{}", s.times));
                }
                out
            })
            .collect();
        if self.max_retries != DEFAULT_MAX_RETRIES {
            parts.push(format!("retries={}", self.max_retries));
        }
        if self.detector_timeout != DEFAULT_DETECTOR_TIMEOUT {
            parts.push(format!(
                "detector={}",
                format_duration(self.detector_timeout)
            ));
        }
        if self.seed != DEFAULT_SEED {
            parts.push(format!("seed={}", self.seed));
        }
        for (name, rate) in [
            ("loss", self.loss),
            ("dupRate", self.dup_rate),
            ("corruptRate", self.corrupt_rate),
        ] {
            if rate != 0.0 {
                parts.push(format!("{name}={rate}"));
            }
        }
        parts.join(",")
    }
}

/// Parses a probabilistic channel-fault rate in `[0, 1]`.
fn parse_rate(name: &str, value: &str) -> Result<f64, String> {
    let rate: f64 = value
        .parse()
        .map_err(|_| format!("invalid {name} value {value:?}"))?;
    if !rate.is_finite() || !(0.0..=1.0).contains(&rate) {
        return Err(format!(
            "{name}={value} is not a probability; rates must lie in [0, 1]"
        ));
    }
    Ok(rate)
}

fn parse_spec(part: &str) -> Result<FaultSpec, String> {
    let (kind_s, rest) = part
        .split_once('@')
        .ok_or_else(|| format!("fault spec {part:?} needs '@' (e.g. crash@3:w1)"))?;
    let kind = match kind_s.trim() {
        "crash" => FaultKind::Crash,
        "corrupt" => FaultKind::CorruptSync,
        "straggle" | "straggler" => FaultKind::Straggler,
        "die" => FaultKind::Die,
        "rejoin" => FaultKind::Rejoin,
        "drop" => FaultKind::Drop,
        "dup" => FaultKind::Duplicate,
        "reorder" => FaultKind::Reorder,
        "leader" => FaultKind::Leader,
        "lie" => FaultKind::Lie,
        "ioerr" => FaultKind::Ioerr,
        "torn" => FaultKind::Torn,
        "bitrot" => FaultKind::Bitrot,
        other => {
            return Err(format!(
                "unknown fault kind {other:?} (expected crash, corrupt, straggle, die, \
                 rejoin, drop, dup, reorder, leader, lie, ioerr, torn or bitrot)"
            ))
        }
    };
    let mut segs = rest.split(':');
    let step_s = segs.next().unwrap_or_default().trim();
    let step: u64 = step_s
        .parse()
        .map_err(|_| format!("invalid superstep {step_s:?} in fault spec {part:?}"))?;
    if kind.is_workerless() {
        // `bitrot@STEP:bB` carries the byte offset of the flip; the other
        // worker-less kinds take nothing after the step.
        let mut byte = 0u64;
        if kind == FaultKind::Bitrot {
            if let Some(seg) = segs.next() {
                byte = seg
                    .trim()
                    .strip_prefix('b')
                    .and_then(|b| b.parse().ok())
                    .ok_or_else(|| {
                        format!(
                            "invalid byte offset {:?} in fault spec {part:?} (expected \
                             bitrot@{step}:bB)",
                            seg.trim()
                        )
                    })?;
            }
        }
        if let Some(extra) = segs.next() {
            return Err(format!(
                "{} faults target {} and take no worker or extra segment; {:?} does not \
                 apply in {part:?}",
                kind.label(),
                if kind == FaultKind::Leader {
                    "whoever leads at the step"
                } else {
                    "the durable checkpoint store"
                },
                extra.trim()
            ));
        }
        return Ok(FaultSpec {
            step,
            worker: 0,
            kind,
            times: 1,
            delay: DEFAULT_STRAGGLE_DELAY,
            byte,
        });
    }
    let worker_s = segs
        .next()
        .ok_or_else(|| format!("fault spec {part:?} needs a worker (e.g. {kind_s}@{step}:w1)"))?
        .trim();
    let worker: usize = worker_s
        .strip_prefix('w')
        .and_then(|w| w.parse().ok())
        .ok_or_else(|| format!("invalid worker {worker_s:?} in fault spec {part:?}"))?;
    let mut spec = FaultSpec {
        step,
        worker,
        kind,
        times: if kind == FaultKind::Die { u32::MAX } else { 1 },
        delay: DEFAULT_STRAGGLE_DELAY,
        byte: 0,
    };
    for seg in segs {
        let seg = seg.trim();
        if matches!(kind, FaultKind::Die | FaultKind::Rejoin) {
            return Err(format!(
                "{} faults are permanent membership events; {seg:?} does not apply in {part:?}",
                kind.label()
            ));
        }
        if kind == FaultKind::Lie {
            return Err(format!(
                "lie faults are one-shot accusations; {seg:?} does not apply in {part:?}"
            ));
        }
        if matches!(kind, FaultKind::Duplicate | FaultKind::Reorder) {
            return Err(format!(
                "{} faults take no extra segment; {seg:?} does not apply in {part:?}",
                kind.label()
            ));
        }
        if let Some(n) = seg.strip_prefix('x') {
            spec.times = n
                .parse()
                .map_err(|_| format!("invalid repeat count {seg:?} in fault spec {part:?}"))?;
        } else if kind == FaultKind::Drop {
            return Err(format!(
                "drop faults take only an :xN attempt count; {seg:?} does not apply in {part:?}"
            ));
        } else {
            spec.delay = parse_duration(seg)?;
        }
    }
    Ok(spec)
}

/// Parses `123us`, `5ms`, `2s`, `750ns` — optionally fractional, e.g.
/// `1.5ms` — into a [`Duration`]. A bare number is ambiguous and rejected
/// with an error naming the accepted suffixes.
pub fn parse_duration(text: &str) -> Result<Duration, String> {
    let text = text.trim();
    let (digits, nanos_per_unit): (&str, f64) = if let Some(d) = text.strip_suffix("ns") {
        (d, 1.0)
    } else if let Some(d) = text.strip_suffix("us") {
        (d, 1_000.0)
    } else if let Some(d) = text.strip_suffix("ms") {
        (d, 1_000_000.0)
    } else if let Some(d) = text.strip_suffix('s') {
        (d, 1_000_000_000.0)
    } else if text.parse::<f64>().is_ok() {
        return Err(format!(
            "duration {text:?} has no unit and is ambiguous; add one of the suffixes \
             ns, us, ms or s (e.g. \"{text}ms\")"
        ));
    } else {
        return Err(format!("duration {text:?} needs a ns/us/ms/s suffix"));
    };
    let value: f64 = digits
        .trim()
        .parse()
        .map_err(|_| format!("invalid duration {text:?}"))?;
    if !value.is_finite() || value < 0.0 {
        return Err(format!(
            "duration {text:?} must be a finite, non-negative value"
        ));
    }
    let nanos = value * nanos_per_unit;
    if nanos > u64::MAX as f64 {
        return Err(format!("duration {text:?} overflows"));
    }
    Ok(Duration::from_nanos(nanos.round() as u64))
}

/// Renders a [`Duration`] in the coarsest unit that loses nothing —
/// the inverse of [`parse_duration`], so any duration round-trips exactly:
/// `parse_duration(&format_duration(d)) == Ok(d)`.
pub fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos == 0 {
        "0s".into()
    } else if nanos.is_multiple_of(1_000_000_000) {
        format!("{}s", nanos / 1_000_000_000)
    } else if nanos.is_multiple_of(1_000_000) {
        format!("{}ms", nanos / 1_000_000)
    } else if nanos.is_multiple_of(1_000) {
        format!("{}us", nanos / 1_000)
    } else {
        format!("{nanos}ns")
    }
}

/// Runtime state of the injector: the plan plus per-spec fire counts and
/// the nonce PRNG. Owned by the cluster; `active` flips off after the
/// retry budget is exhausted so the rest of the run executes fault-free.
#[derive(Debug)]
pub(crate) struct FaultInjector {
    plan: FaultPlan,
    fired: Vec<u32>,
    prng: Prng,
    pub(crate) active: bool,
    /// Workers declared permanently dead: their remaining specs (except a
    /// `rejoin`) never fire — a dead worker cannot crash again.
    dead: Vec<bool>,
}

impl FaultInjector {
    pub(crate) fn new(plan: FaultPlan, workers: usize) -> Self {
        let fired = vec![0; plan.specs.len()];
        let prng = Prng::seed_from_u64(plan.seed);
        FaultInjector {
            plan,
            fired,
            prng,
            active: true,
            dead: vec![false; workers],
        }
    }

    pub(crate) fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Suppresses all further specs (except `rejoin`) targeting `w`.
    pub(crate) fn mark_dead(&mut self, w: usize) {
        self.dead[w] = true;
    }

    /// Re-arms specs targeting `w` after a rejoin. The scripted death
    /// already happened — the returning worker is a fresh replacement — so
    /// `die` specs for `w` are spent rather than re-armed (they would
    /// otherwise re-fire forever).
    pub(crate) fn mark_alive(&mut self, w: usize) {
        self.dead[w] = false;
        for (i, spec) in self.plan.specs.iter().enumerate() {
            if spec.worker == w && spec.kind == FaultKind::Die {
                self.fired[i] = spec.times;
            }
        }
    }

    /// Crash/corruption/die specs firing at `step` on the current attempt,
    /// consuming one fire from each. Channel faults are *not* failures —
    /// they never roll a superstep back; the transport handles them below
    /// the barrier.
    pub(crate) fn failures(&mut self, step: u64) -> Vec<FaultSpec> {
        self.take(step, |k| {
            matches!(
                k,
                FaultKind::Crash | FaultKind::CorruptSync | FaultKind::Die
            )
        })
    }

    /// Channel-fault specs armed at `step` whose target worker actually
    /// sends cross-host traffic this round (per the `sends` predicate).
    /// Fully consumed: the transport replays the spec across transmission
    /// attempts itself, so the injector's per-attempt accounting does not
    /// apply. Guarding on `sends` keeps a spec armed until a round where
    /// it can observably fire instead of silently burning out.
    pub(crate) fn channel_faults(
        &mut self,
        step: u64,
        sends: impl Fn(usize) -> bool,
    ) -> Vec<FaultSpec> {
        if !self.active {
            return Vec::new();
        }
        let mut out = Vec::new();
        for (i, spec) in self.plan.specs.iter().enumerate() {
            if self.dead[spec.worker] {
                continue;
            }
            if spec.kind.is_channel()
                && spec.step <= step
                && self.fired[i] < spec.times.max(1)
                && sends(spec.worker)
            {
                self.fired[i] = spec.times.max(1);
                out.push(spec.clone());
            }
        }
        out
    }

    /// Straggler specs firing at `step`, consuming one fire from each.
    pub(crate) fn stragglers(&mut self, step: u64) -> Vec<FaultSpec> {
        self.take(step, |k| k == FaultKind::Straggler)
    }

    /// How many `leader@` crashes fire at `step`, consuming each. The
    /// spec's worker field is a placeholder ("whoever leads"), so the
    /// usual dead-worker suppression does not apply — a leader crash
    /// always hits a live host by definition.
    pub(crate) fn leader_crashes(&mut self, step: u64) -> u32 {
        if !self.active {
            return 0;
        }
        let mut fires = 0;
        for (i, spec) in self.plan.specs.iter().enumerate() {
            if spec.kind == FaultKind::Leader && spec.step <= step && self.fired[i] < spec.times {
                self.fired[i] += 1;
                fires += 1;
            }
        }
        fires
    }

    /// Workers whose `lie@` spec fires at `step`, consuming each. A dead
    /// worker cannot lie, so the usual suppression applies.
    pub(crate) fn liars(&mut self, step: u64) -> Vec<usize> {
        self.take(step, |k| k == FaultKind::Lie)
            .into_iter()
            .map(|s| s.worker)
            .collect()
    }

    /// Rejoin specs firing at `step`, consuming each (they fire once).
    pub(crate) fn rejoins(&mut self, step: u64) -> Vec<FaultSpec> {
        self.take(step, |k| k == FaultKind::Rejoin)
    }

    /// Disk-fault specs (`ioerr@`/`torn@`/`bitrot@`) firing at `step`,
    /// consuming each. The spec's worker field is a placeholder (the
    /// faults target the durable store, not a worker), so the dead-worker
    /// suppression does not apply.
    pub(crate) fn disk_faults(&mut self, step: u64) -> Vec<FaultSpec> {
        if !self.active {
            return Vec::new();
        }
        let mut out = Vec::new();
        for (i, spec) in self.plan.specs.iter().enumerate() {
            if spec.kind.is_disk() && spec.step <= step && self.fired[i] < spec.times.max(1) {
                self.fired[i] += 1;
                out.push(spec.clone());
            }
        }
        out
    }

    /// Consumes every spec scripted strictly before `step` without firing
    /// it. A resumed run fast-forwarding through supersteps already
    /// reflected in the durable log uses this so faults that fired before
    /// the original run died do not re-fire at a later, wrong superstep.
    pub(crate) fn drain_through(&mut self, step: u64) {
        for (i, spec) in self.plan.specs.iter().enumerate() {
            if spec.step < step {
                self.fired[i] = spec.times.max(1);
            }
        }
    }

    /// A spec fires at the first *eligible* superstep at or after its
    /// scripted step: global-reduce supersteps never ship vertex state and
    /// are skipped by the fault paths, so `corrupt@3` on a program whose
    /// superstep 3 is a fold lands on the next compute superstep instead
    /// of silently never firing.
    fn take(&mut self, step: u64, want: impl Fn(FaultKind) -> bool) -> Vec<FaultSpec> {
        if !self.active {
            return Vec::new();
        }
        let mut out = Vec::new();
        for (i, spec) in self.plan.specs.iter().enumerate() {
            if self.dead[spec.worker] && spec.kind != FaultKind::Rejoin {
                continue;
            }
            if spec.step <= step && want(spec.kind) && self.fired[i] < spec.times {
                self.fired[i] += 1;
                out.push(spec.clone());
            }
        }
        out
    }

    /// A nonzero value XOR-ed into a transmitted checksum to simulate
    /// in-flight corruption (nonzero guarantees the mismatch is
    /// detectable).
    pub(crate) fn corruption_nonce(&mut self) -> u64 {
        loop {
            let n = self.prng.next_u64();
            if n != 0 {
                return n;
            }
        }
    }
}

/// Order-independent FNV-1a checksum over a sync payload's framing: each
/// `(vertex, byte-length)` record hashes independently and the digests
/// combine commutatively, so the iteration order of the staging maps does
/// not affect the result.
pub fn payload_checksum<I: IntoIterator<Item = (u32, usize)>>(items: I) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x1000_0000_01b3;
    let mut sum = OFFSET;
    for (v, len) in items {
        let mut h = OFFSET;
        for byte in v
            .to_le_bytes()
            .iter()
            .chain((len as u64).to_le_bytes().iter())
        {
            h ^= u64::from(*byte);
            h = h.wrapping_mul(PRIME);
        }
        sum = sum.wrapping_add(h);
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_grammar() {
        let p =
            FaultPlan::parse("crash@3:w1,corrupt@5:w0:x2,straggle@2:w1:400us,retries=2").unwrap();
        assert_eq!(p.specs.len(), 3);
        assert_eq!(p.max_retries, 2);
        assert_eq!(
            p.specs[0],
            FaultSpec {
                step: 3,
                worker: 1,
                kind: FaultKind::Crash,
                times: 1,
                delay: DEFAULT_STRAGGLE_DELAY,
                byte: 0,
            }
        );
        assert_eq!(p.specs[1].times, 2);
        assert_eq!(p.specs[2].delay, Duration::from_micros(400));
        assert_eq!(p.max_worker(), Some(1));
    }

    #[test]
    fn parses_policy_options() {
        let p = FaultPlan::parse("backoff=500us,cap=16ms,seed=42").unwrap();
        assert_eq!(p.backoff_base, Duration::from_micros(500));
        assert_eq!(p.backoff_cap, Duration::from_millis(16));
        assert_eq!(p.seed, 42);
        assert!(p.specs.is_empty());
    }

    #[test]
    fn rejects_malformed_specs() {
        assert!(FaultPlan::parse("explode@1:w0").is_err());
        assert!(FaultPlan::parse("crash@x:w0").is_err());
        assert!(FaultPlan::parse("crash@1").is_err());
        assert!(FaultPlan::parse("crash@1:3").is_err());
        assert!(FaultPlan::parse("straggle@1:w0:4parsecs").is_err());
        assert!(FaultPlan::parse("warp=9").is_err());
    }

    #[test]
    fn summary_round_trips() {
        let text = "crash@3:w1,straggle@2:w0:400us,corrupt@5:w2:x2,retries=2";
        let p = FaultPlan::parse(text).unwrap();
        let again = FaultPlan::parse(&p.summary()).unwrap();
        assert_eq!(p, again);
    }

    #[test]
    fn backoff_is_capped_exponential() {
        let p = FaultPlan::default();
        assert_eq!(p.backoff(0), DEFAULT_BACKOFF_BASE);
        assert_eq!(p.backoff(1), DEFAULT_BACKOFF_BASE * 2);
        assert_eq!(p.backoff(2), DEFAULT_BACKOFF_BASE * 4);
        assert_eq!(p.backoff(40), DEFAULT_BACKOFF_CAP, "large attempts cap");
    }

    #[test]
    fn injector_fires_each_spec_times_then_stops() {
        let plan = FaultPlan::parse("crash@2:w0:x2").unwrap();
        let mut inj = FaultInjector::new(plan, 4);
        assert_eq!(inj.failures(1).len(), 0);
        assert_eq!(inj.failures(2).len(), 1);
        assert_eq!(inj.failures(2).len(), 1);
        assert_eq!(inj.failures(2).len(), 0, "budget of 2 fires consumed");
        inj.active = false;
        let plan2 = FaultPlan::parse("crash@5:w0").unwrap();
        let mut inj2 = FaultInjector::new(plan2, 4);
        inj2.active = false;
        assert!(inj2.failures(5).is_empty(), "inactive injector never fires");
    }

    #[test]
    fn stragglers_and_failures_are_disjoint() {
        let plan = FaultPlan::parse("crash@1:w0,straggle@1:w1:200us").unwrap();
        let mut inj = FaultInjector::new(plan, 4);
        let stragglers = inj.stragglers(1);
        let failures = inj.failures(1);
        assert_eq!(stragglers.len(), 1);
        assert_eq!(stragglers[0].kind, FaultKind::Straggler);
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].kind, FaultKind::Crash);
    }

    #[test]
    fn checksum_is_order_independent_and_length_sensitive() {
        let a = payload_checksum([(1u32, 8usize), (2, 16), (3, 8)]);
        let b = payload_checksum([(3u32, 8usize), (1, 8), (2, 16)]);
        assert_eq!(a, b);
        let c = payload_checksum([(1u32, 9usize), (2, 16), (3, 8)]);
        assert_ne!(a, c, "payload length is part of the frame");
        let d = payload_checksum(std::iter::empty::<(u32, usize)>());
        assert_ne!(a, d);
    }

    #[test]
    fn corruption_nonce_is_nonzero_and_deterministic() {
        let plan = FaultPlan::default();
        let mut i1 = FaultInjector::new(plan.clone(), 4);
        let mut i2 = FaultInjector::new(plan, 4);
        for _ in 0..16 {
            let n = i1.corruption_nonce();
            assert_ne!(n, 0);
            assert_eq!(n, i2.corruption_nonce(), "same seed, same nonces");
        }
    }

    #[test]
    fn parses_die_and_rejoin_specs() {
        let p = FaultPlan::parse("die@3:w1,rejoin@6:w1").unwrap();
        assert_eq!(p.specs.len(), 2);
        assert_eq!(p.specs[0].kind, FaultKind::Die);
        assert_eq!(p.specs[0].times, u32::MAX, "die fires on every attempt");
        assert_eq!(p.specs[1].kind, FaultKind::Rejoin);
        assert_eq!(p.specs[1].times, 1);
        // Membership events take no :xN or delay segment.
        assert!(FaultPlan::parse("die@3:w1:x2").is_err());
        assert!(FaultPlan::parse("rejoin@6:w1:500us").is_err());
        // And the summary round-trips without an :xN.
        let again = FaultPlan::parse(&p.summary()).unwrap();
        assert_eq!(p, again);
    }

    #[test]
    fn parses_disk_fault_specs() {
        let p = FaultPlan::parse("ioerr@4,torn@6,bitrot@8:b17").unwrap();
        assert_eq!(p.specs.len(), 3);
        assert_eq!(p.specs[0].kind, FaultKind::Ioerr);
        assert_eq!(p.specs[1].kind, FaultKind::Torn);
        assert_eq!(p.specs[2].kind, FaultKind::Bitrot);
        assert_eq!(p.specs[2].byte, 17);
        assert!(p.has_disk_faults());
        assert!(!FaultPlan::parse("crash@1:w0").unwrap().has_disk_faults());
        // The summary round-trips, including the byte offset.
        let again = FaultPlan::parse(&p.summary()).unwrap();
        assert_eq!(p, again);
        // Disk faults name no worker and take no worker segment; bitrot's
        // byte offset must be b-prefixed.
        assert!(FaultPlan::parse("ioerr@4:w1").is_err());
        assert!(FaultPlan::parse("torn@4:x2").is_err());
        assert!(FaultPlan::parse("bitrot@4:17").is_err());
        assert!(FaultPlan::parse("bitrot@4:b1:b2").is_err());
        // A bitrot without an offset defaults to byte 0.
        assert_eq!(FaultPlan::parse("bitrot@4").unwrap().specs[0].byte, 0);
    }

    #[test]
    fn disk_faults_fire_once_and_ignore_dead_workers() {
        let plan = FaultPlan::parse("ioerr@2,bitrot@3:b9").unwrap();
        let mut inj = FaultInjector::new(plan, 4);
        inj.mark_dead(0); // the placeholder worker being dead is irrelevant
        assert!(inj.disk_faults(1).is_empty());
        let fired = inj.disk_faults(2);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].kind, FaultKind::Ioerr);
        let fired = inj.disk_faults(3);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].byte, 9);
        assert!(inj.disk_faults(4).is_empty(), "each spec fires once");
    }

    #[test]
    fn drain_through_spends_earlier_specs() {
        let plan = FaultPlan::parse("crash@2:w0,die@3:w1,crash@5:w0").unwrap();
        let mut inj = FaultInjector::new(plan, 4);
        inj.drain_through(4);
        assert!(inj.failures(4).is_empty(), "pre-frontier specs are spent");
        let late = inj.failures(5);
        assert_eq!(late.len(), 1);
        assert_eq!(late[0].step, 5, "post-frontier specs still fire");
    }

    #[test]
    fn parses_detector_option() {
        let p = FaultPlan::parse("detector=50ms").unwrap();
        assert_eq!(p.detector_timeout, Duration::from_millis(50));
        let again = FaultPlan::parse(&p.summary()).unwrap();
        assert_eq!(p.detector_timeout, again.detector_timeout);
        assert_eq!(
            FaultPlan::default().detector_timeout,
            DEFAULT_DETECTOR_TIMEOUT
        );
    }

    #[test]
    fn validate_catches_unfireable_and_lethal_plans() {
        let ok = FaultPlan::parse("crash@1:w0,die@2:w1,rejoin@5:w1").unwrap();
        assert!(ok.validate(3).is_ok());
        // Worker out of range.
        let e = FaultPlan::parse("crash@1:w7").unwrap().validate(2);
        assert!(e.as_ref().is_err_and(|m| m.contains("w7")), "{e:?}");
        // Step beyond the horizon.
        let e = FaultPlan::parse("crash@999999:w0").unwrap().validate(2);
        assert!(e.as_ref().is_err_and(|m| m.contains("horizon")), "{e:?}");
        // Duplicate (kind, step, worker).
        let e = FaultPlan::parse("crash@1:w0,crash@1:w0")
            .unwrap()
            .validate(2);
        assert!(e.as_ref().is_err_and(|m| m.contains("duplicate")), "{e:?}");
        // Rejoin without an earlier die.
        let e = FaultPlan::parse("rejoin@5:w1").unwrap().validate(2);
        assert!(e.as_ref().is_err_and(|m| m.contains("die")), "{e:?}");
        let e = FaultPlan::parse("die@5:w1,rejoin@5:w1")
            .unwrap()
            .validate(2);
        assert!(e.is_err(), "rejoin must come strictly after the die");
        // Killing every worker.
        let e = FaultPlan::parse("die@1:w0,die@2:w1").unwrap().validate(2);
        assert!(e.as_ref().is_err_and(|m| m.contains("survive")), "{e:?}");
        assert!(FaultPlan::parse("die@1:w0,die@2:w1")
            .unwrap()
            .validate(3)
            .is_ok());
    }

    #[test]
    fn bare_numbers_are_rejected_with_suffix_hint() {
        for text in ["1.5", "0", "42", "  7 "] {
            let e = parse_duration(text).expect_err("bare number must fail");
            assert!(e.contains("ns, us, ms or s"), "{e}");
        }
        assert!(parse_duration("1.5ms").is_ok());
        assert_eq!(
            parse_duration("1.5ms").unwrap(),
            Duration::from_micros(1500)
        );
        assert_eq!(parse_duration("750ns").unwrap(), Duration::from_nanos(750));
        assert_eq!(parse_duration("0.5us").unwrap(), Duration::from_nanos(500));
        assert!(parse_duration("-1ms").is_err());
        assert!(parse_duration("nanms").is_err());
    }

    #[test]
    fn durations_round_trip_through_format_and_parse() {
        // Hand-rolled property test (workspace style): random durations at
        // every granularity must satisfy parse(format(d)) == d.
        let mut prng = Prng::seed_from_u64(0xD17A);
        for _ in 0..96 {
            let d = match prng.next_u64() % 4 {
                0 => Duration::from_nanos(prng.next_u64() % 10_000_000),
                1 => Duration::from_micros(prng.next_u64() % 10_000_000),
                2 => Duration::from_millis(prng.next_u64() % 1_000_000),
                _ => Duration::from_secs(prng.next_u64() % 100_000),
            };
            let text = format_duration(d);
            assert_eq!(
                parse_duration(&text),
                Ok(d),
                "round trip failed for {d:?} via {text:?}"
            );
        }
        assert_eq!(
            parse_duration(&format_duration(Duration::ZERO)),
            Ok(Duration::ZERO)
        );
    }

    #[test]
    fn injector_suppresses_dead_workers_until_rejoin() {
        let plan = FaultPlan::parse("crash@1:w0,crash@3:w0,straggle@4:w0:200us").unwrap();
        let mut inj = FaultInjector::new(plan, 2);
        assert_eq!(inj.failures(1).len(), 1);
        inj.mark_dead(0);
        assert!(inj.failures(3).is_empty(), "dead worker cannot crash");
        assert!(inj.stragglers(4).is_empty(), "dead worker cannot straggle");
        inj.mark_alive(0);
        assert_eq!(inj.failures(3).len(), 1, "specs re-arm after rejoin");
    }

    #[test]
    fn rejoins_fire_once_even_for_dead_workers() {
        let plan = FaultPlan::parse("die@1:w1,rejoin@4:w1").unwrap();
        let mut inj = FaultInjector::new(plan, 2);
        let f = inj.failures(1);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].kind, FaultKind::Die);
        inj.mark_dead(1);
        assert!(inj.rejoins(3).is_empty());
        let r = inj.rejoins(4);
        assert_eq!(r.len(), 1, "rejoin fires despite the dead mark");
        assert_eq!(r[0].kind, FaultKind::Rejoin);
        assert!(inj.rejoins(5).is_empty(), "rejoin is one-shot");
    }

    #[test]
    fn parses_channel_specs_and_rates() {
        let p = FaultPlan::parse("drop@3:w1,dup@4:w0,reorder@5:w2,loss=0.05,dupRate=0.01").unwrap();
        assert_eq!(p.specs.len(), 3);
        assert_eq!(p.specs[0].kind, FaultKind::Drop);
        assert_eq!(p.specs[0].times, 1);
        assert_eq!(p.specs[1].kind, FaultKind::Duplicate);
        assert_eq!(p.specs[2].kind, FaultKind::Reorder);
        assert_eq!(p.loss, 0.05);
        assert_eq!(p.dup_rate, 0.01);
        assert_eq!(p.corrupt_rate, 0.0);
        assert!(p.has_channel_faults());
        assert!(!FaultPlan::parse("crash@1:w0").unwrap().has_channel_faults());
        assert!(FaultPlan::parse("corruptRate=0.5")
            .unwrap()
            .has_channel_faults());
        // Drop takes an :xN attempt count; dup/reorder take no segment.
        assert_eq!(FaultPlan::parse("drop@3:w1:x4").unwrap().specs[0].times, 4);
        assert!(FaultPlan::parse("drop@3:w1:400us").is_err());
        assert!(FaultPlan::parse("dup@3:w1:x2").is_err());
        assert!(FaultPlan::parse("reorder@3:w1:400us").is_err());
        // Rates must be probabilities.
        assert!(FaultPlan::parse("loss=1.5").is_err());
        assert!(FaultPlan::parse("dupRate=-0.1").is_err());
        assert!(FaultPlan::parse("corruptRate=nan").is_err());
        // And the summary round-trips.
        let again = FaultPlan::parse(&p.summary()).unwrap();
        assert_eq!(p, again);
        let q = FaultPlan::parse("drop@3:w1:x4,corruptRate=0.25").unwrap();
        assert_eq!(FaultPlan::parse(&q.summary()).unwrap(), q);
    }

    #[test]
    fn channel_faults_wait_for_a_sending_round() {
        let plan = FaultPlan::parse("drop@2:w1,dup@2:w0").unwrap();
        let mut inj = FaultInjector::new(plan, 3);
        assert!(inj.channel_faults(1, |_| true).is_empty(), "not armed yet");
        // Worker 1 sends nothing this round: its spec stays armed.
        let fired = inj.channel_faults(2, |w| w == 0);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].kind, FaultKind::Duplicate);
        // Next round worker 1 sends — the drop fires now, and only once.
        let fired = inj.channel_faults(3, |_| true);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].kind, FaultKind::Drop);
        assert!(inj.channel_faults(4, |_| true).is_empty(), "fully consumed");
    }

    #[test]
    fn channel_faults_never_surface_as_failures() {
        let plan = FaultPlan::parse("drop@1:w0,dup@1:w1,reorder@1:w2,crash@1:w0").unwrap();
        let mut inj = FaultInjector::new(plan, 3);
        let failures = inj.failures(1);
        assert_eq!(failures.len(), 1, "only the crash rolls the step back");
        assert_eq!(failures[0].kind, FaultKind::Crash);
    }

    #[test]
    fn parses_leader_and_lie_specs() {
        let p = FaultPlan::parse("leader@4,lie@5:w2").unwrap();
        assert_eq!(p.specs.len(), 2);
        assert_eq!(p.specs[0].kind, FaultKind::Leader);
        assert_eq!(p.specs[0].step, 4);
        assert_eq!(p.specs[0].times, 1, "a leader crash fires once");
        assert_eq!(p.specs[1].kind, FaultKind::Lie);
        assert_eq!(p.specs[1].worker, 2);
        assert!(p.has_consensus_faults());
        assert!(!FaultPlan::parse("crash@1:w0")
            .unwrap()
            .has_consensus_faults());
        // `leader` names no worker; `lie` requires one; neither takes an
        // extra segment.
        assert!(FaultPlan::parse("leader@4:w1").is_err());
        assert!(FaultPlan::parse("leader@4:x2").is_err());
        assert!(FaultPlan::parse("lie@5").is_err());
        assert!(FaultPlan::parse("lie@5:w2:x2").is_err());
        assert!(FaultPlan::parse("lie@5:w2:400us").is_err());
        // And the summary round-trips without a worker on the leader spec.
        let summary = p.summary();
        assert!(summary.contains("leader@4"), "{summary}");
        assert!(!summary.contains("leader@4:w"), "{summary}");
        assert_eq!(FaultPlan::parse(&summary).unwrap(), p);
    }

    #[test]
    fn validate_counts_leader_crashes_as_kills() {
        let p = FaultPlan::parse("leader@2,die@3:w1").unwrap();
        assert!(p.validate(3).is_ok());
        assert!(
            p.validate(2).is_err(),
            "leader crash + die would kill both workers"
        );
        assert!(FaultPlan::parse("leader@2").unwrap().validate(1).is_err());
        assert!(FaultPlan::parse("leader@2").unwrap().validate(2).is_ok());
        // Duplicate leader specs at the same step are still caught.
        assert!(FaultPlan::parse("leader@2,leader@2")
            .unwrap()
            .validate(4)
            .is_err());
        assert!(FaultPlan::parse("leader@2,leader@5")
            .unwrap()
            .validate(4)
            .is_ok());
    }

    #[test]
    fn injector_fires_leader_crashes_and_liars() {
        let plan = FaultPlan::parse("leader@2,lie@3:w1").unwrap();
        let mut inj = FaultInjector::new(plan, 4);
        assert_eq!(inj.leader_crashes(1), 0, "not armed yet");
        assert!(inj.liars(2).is_empty());
        assert_eq!(inj.leader_crashes(2), 1);
        assert_eq!(inj.leader_crashes(3), 0, "one-shot");
        assert_eq!(inj.liars(3), vec![1]);
        assert!(inj.liars(4).is_empty(), "one-shot");
        // Neither kind surfaces through the rollback-failure path.
        let plan = FaultPlan::parse("leader@1,lie@1:w0,crash@1:w2").unwrap();
        let mut inj = FaultInjector::new(plan, 4);
        let failures = inj.failures(1);
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].kind, FaultKind::Crash);
        // A dead worker cannot lie.
        let plan = FaultPlan::parse("lie@3:w1").unwrap();
        let mut inj = FaultInjector::new(plan, 4);
        inj.mark_dead(1);
        assert!(inj.liars(3).is_empty(), "dead workers cannot lie");
    }

    #[test]
    fn chaos_plan_is_deterministic_and_in_bounds() {
        let a = FaultPlan::chaos(7, 4, 10);
        let b = FaultPlan::chaos(7, 4, 10);
        assert_eq!(a, b);
        assert_eq!(a.specs.len(), 3);
        for s in &a.specs {
            assert!(s.worker < 4);
            assert!(s.step >= 1 && s.step < 10);
        }
        let c = FaultPlan::chaos(8, 4, 10);
        assert_ne!(a, c, "different seeds draw different schedules");
    }
}
