//! Per-superstep execution statistics.
//!
//! The §V-E time breakdown divides execution into computation,
//! communication and serialization; every superstep records those buckets
//! plus exact message/byte counts, which also back the micro-benchmarks
//! (mode switching, sync-policy ablations) and Fig. 4(a)'s frontier sizes.

use std::time::Duration;

/// Which kernel a superstep ran.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepKind {
    /// `VERTEXMAP` (local compute + mirror sync).
    VertexMap,
    /// `EDGEMAPDENSE` (pull).
    EdgeMapDense,
    /// `EDGEMAPSPARSE` (push, two message rounds).
    EdgeMapSparse,
    /// A global auxiliary operator (`REDUCE`, gather, fold).
    Global,
}

impl StepKind {
    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            StepKind::VertexMap => "vmap",
            StepKind::EdgeMapDense => "dense",
            StepKind::EdgeMapSparse => "sparse",
            StepKind::Global => "global",
        }
    }
}

/// Statistics of one superstep.
#[derive(Clone, Debug)]
pub struct StepStats {
    /// Kernel kind.
    pub kind: StepKind,
    /// Size of the input active set (frontier), when the kernel has one.
    pub active: usize,
    /// Mirror→master messages (sparse phase 2) crossing workers.
    pub upd_messages: u64,
    /// Bytes of mirror→master messages crossing workers.
    pub upd_bytes: u64,
    /// Master→mirror synchronization messages crossing workers.
    pub sync_messages: u64,
    /// Bytes of master→mirror synchronization crossing workers.
    pub sync_bytes: u64,
    /// Wall time of the compute phase (on a single-core host, the *sum*
    /// of all workers' compute time, since threads timeshare).
    pub compute: Duration,
    /// Maximum per-worker compute time — what the phase would cost on a
    /// cluster with one core per worker (the BSP parallel makespan).
    pub compute_max: Duration,
    /// Wall time spent materializing and routing message buffers.
    pub serialize: Duration,
    /// Wall time spent applying remote updates and mirror syncs.
    pub communicate: Duration,
    /// Simulated network time (see [`crate::netmodel::NetworkModel`]).
    pub simulated_net: Duration,
}

impl StepStats {
    pub(crate) fn new(kind: StepKind, active: usize) -> Self {
        StepStats {
            kind,
            active,
            upd_messages: 0,
            upd_bytes: 0,
            sync_messages: 0,
            sync_bytes: 0,
            compute: Duration::ZERO,
            compute_max: Duration::ZERO,
            serialize: Duration::ZERO,
            communicate: Duration::ZERO,
            simulated_net: Duration::ZERO,
        }
    }

    /// Total cross-worker bytes this superstep.
    pub fn total_bytes(&self) -> u64 {
        self.upd_bytes + self.sync_bytes
    }

    /// Total cross-worker messages this superstep.
    pub fn total_messages(&self) -> u64 {
        self.upd_messages + self.sync_messages
    }
}

/// Accumulated statistics of a run (a sequence of supersteps).
#[derive(Clone, Debug, Default)]
pub struct RunStats {
    steps: Vec<StepStats>,
}

impl RunStats {
    /// Appends one superstep's record.
    pub(crate) fn push(&mut self, s: StepStats) {
        self.steps.push(s);
    }

    /// All recorded supersteps, in execution order.
    pub fn steps(&self) -> &[StepStats] {
        &self.steps
    }

    /// Number of supersteps recorded.
    pub fn num_supersteps(&self) -> usize {
        self.steps.len()
    }

    /// Clears all records.
    pub fn clear(&mut self) {
        self.steps.clear();
    }

    /// Total cross-worker bytes over the run.
    pub fn total_bytes(&self) -> u64 {
        self.steps.iter().map(StepStats::total_bytes).sum()
    }

    /// Total cross-worker messages over the run.
    pub fn total_messages(&self) -> u64 {
        self.steps.iter().map(StepStats::total_messages).sum()
    }

    /// Summed compute time (wall; a sum over workers on single-core hosts).
    pub fn compute_time(&self) -> Duration {
        self.steps.iter().map(|s| s.compute).sum()
    }

    /// Summed per-superstep *maximum* worker compute time: the compute
    /// makespan of an ideal one-core-per-worker cluster. This is what the
    /// scaling experiments report, because wall-clock parallel speedups
    /// are unobservable on a single-core host.
    pub fn parallel_compute_time(&self) -> Duration {
        self.steps.iter().map(|s| s.compute_max).sum()
    }

    /// The simulated end-to-end parallel runtime: per-superstep worker
    /// makespan + measured communication + serialization + the simulated
    /// network charge.
    pub fn simulated_parallel_time(&self) -> Duration {
        self.steps
            .iter()
            .map(|s| s.compute_max + s.serialize + s.communicate + s.simulated_net)
            .sum()
    }

    /// Summed serialization time.
    pub fn serialize_time(&self) -> Duration {
        self.steps.iter().map(|s| s.serialize).sum()
    }

    /// Summed communication time (measured, excluding simulated network).
    pub fn communicate_time(&self) -> Duration {
        self.steps.iter().map(|s| s.communicate).sum()
    }

    /// Summed simulated network time.
    pub fn simulated_net_time(&self) -> Duration {
        self.steps.iter().map(|s| s.simulated_net).sum()
    }

    /// Frontier size per superstep, for Fig. 4(a)-style plots; only
    /// kernels with a frontier (`vmap`/`dense`/`sparse`) are included.
    pub fn frontier_sizes(&self) -> Vec<usize> {
        self.steps
            .iter()
            .filter(|s| s.kind != StepKind::Global)
            .map(|s| s.active)
            .collect()
    }

    /// Counts supersteps per kernel kind: `(vmap, dense, sparse, global)`.
    pub fn kind_counts(&self) -> (usize, usize, usize, usize) {
        let mut c = (0, 0, 0, 0);
        for s in &self.steps {
            match s.kind {
                StepKind::VertexMap => c.0 += 1,
                StepKind::EdgeMapDense => c.1 += 1,
                StepKind::EdgeMapSparse => c.2 += 1,
                StepKind::Global => c.3 += 1,
            }
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step(kind: StepKind, active: usize, upd: u64, sync: u64) -> StepStats {
        let mut s = StepStats::new(kind, active);
        s.upd_bytes = upd;
        s.upd_messages = upd / 8;
        s.sync_bytes = sync;
        s.sync_messages = sync / 8;
        s
    }

    #[test]
    fn totals_accumulate() {
        let mut r = RunStats::default();
        r.push(step(StepKind::EdgeMapSparse, 10, 80, 40));
        r.push(step(StepKind::EdgeMapDense, 100, 0, 160));
        assert_eq!(r.num_supersteps(), 2);
        assert_eq!(r.total_bytes(), 280);
        assert_eq!(r.total_messages(), 10 + 5 + 20);
    }

    #[test]
    fn frontier_sizes_skip_global() {
        let mut r = RunStats::default();
        r.push(step(StepKind::VertexMap, 5, 0, 0));
        r.push(step(StepKind::Global, 0, 0, 0));
        r.push(step(StepKind::EdgeMapSparse, 3, 0, 0));
        assert_eq!(r.frontier_sizes(), vec![5, 3]);
    }

    #[test]
    fn kind_counts() {
        let mut r = RunStats::default();
        r.push(step(StepKind::VertexMap, 1, 0, 0));
        r.push(step(StepKind::EdgeMapSparse, 1, 0, 0));
        r.push(step(StepKind::EdgeMapSparse, 1, 0, 0));
        assert_eq!(r.kind_counts(), (1, 0, 2, 0));
    }

    #[test]
    fn clear_resets() {
        let mut r = RunStats::default();
        r.push(step(StepKind::VertexMap, 1, 1, 1));
        r.clear();
        assert_eq!(r.num_supersteps(), 0);
        assert_eq!(r.total_bytes(), 0);
    }

    #[test]
    fn labels() {
        assert_eq!(StepKind::VertexMap.label(), "vmap");
        assert_eq!(StepKind::EdgeMapDense.label(), "dense");
        assert_eq!(StepKind::EdgeMapSparse.label(), "sparse");
        assert_eq!(StepKind::Global.label(), "global");
    }
}
