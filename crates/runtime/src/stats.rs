//! Per-superstep execution statistics.
//!
//! The §V-E time breakdown divides execution into computation,
//! communication and serialization; every superstep records those buckets
//! plus exact message/byte counts, which also back the micro-benchmarks
//! (mode switching, sync-policy ablations) and Fig. 4(a)'s frontier sizes.

use flash_obs::{Json, MetricsRegistry};
use std::time::Duration;

/// Renders a duration in microseconds, rounded half-up — so a 600 ns phase
/// reports `1` rather than truncating to `0`. All `*_us` fields in stats
/// JSON and trace events use this; exact values live in the paired `*_ns`
/// fields.
pub fn us_half_up(d: Duration) -> u64 {
    ((d.as_nanos() + 500) / 1000) as u64
}

/// Renders a duration in nanoseconds (saturating at `u64::MAX`, ~584
/// years — unreachable for measured phases).
pub fn ns_u64(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// Which kernel a superstep ran.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepKind {
    /// `VERTEXMAP` (local compute + mirror sync).
    VertexMap,
    /// `EDGEMAPDENSE` (pull).
    EdgeMapDense,
    /// `EDGEMAPSPARSE` (push, two message rounds).
    EdgeMapSparse,
    /// A global auxiliary operator (`REDUCE`, gather, fold).
    Global,
}

impl StepKind {
    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            StepKind::VertexMap => "vmap",
            StepKind::EdgeMapDense => "dense",
            StepKind::EdgeMapSparse => "sparse",
            StepKind::Global => "global",
        }
    }
}

/// Statistics of one superstep.
#[derive(Clone, Debug)]
pub struct StepStats {
    /// Kernel kind.
    pub kind: StepKind,
    /// Size of the input active set (frontier), when the kernel has one.
    pub active: usize,
    /// Mirror→master messages (sparse phase 2) crossing workers.
    pub upd_messages: u64,
    /// Bytes of mirror→master messages crossing workers.
    pub upd_bytes: u64,
    /// Master→mirror synchronization messages crossing workers.
    pub sync_messages: u64,
    /// Bytes of master→mirror synchronization crossing workers.
    pub sync_bytes: u64,
    /// Wall time of the compute phase (on a single-core host, the *sum*
    /// of all workers' compute time, since threads timeshare).
    pub compute: Duration,
    /// Maximum per-worker compute time — what the phase would cost on a
    /// cluster with one core per worker (the BSP parallel makespan).
    pub compute_max: Duration,
    /// Minimum per-worker compute time. The gap to [`StepStats::compute_max`]
    /// is the *barrier skew*: how long the fastest worker idles at the BSP
    /// barrier waiting for the slowest (§V-E load-balance discussion).
    pub compute_min: Duration,
    /// Wall time spent materializing and routing message buffers.
    pub serialize: Duration,
    /// Serialization makespan on an ideal one-core-per-worker cluster: the
    /// slowest bucketing thread's time under the pooled-parallel hot path
    /// (equal to [`StepStats::serialize`] when bucketing ran on one
    /// thread). The serialize-phase analogue of
    /// [`StepStats::compute_max`], and what
    /// [`RunStats::simulated_parallel_time`] charges.
    pub serialize_max: Duration,
    /// Time spent applying remote updates and mirror syncs. When the
    /// mirror-sync fan-out scan runs on multiple threads, the scan portion
    /// is charged at its parallel *makespan* (slowest range) rather than
    /// its wall time, so single-core thread-spawn overhead — which an
    /// ideal one-core-per-worker cluster would not pay — does not inflate
    /// the phase.
    pub communicate: Duration,
    /// Wall time of the reliable-delivery protocol (ack/retransmit rounds
    /// run by [`crate::transport::Transport`]); zero without channel
    /// faults. Previously this landed in no phase at all, under-reporting
    /// lossy supersteps.
    pub delivery: Duration,
    /// Simulated network time (see [`crate::netmodel::NetworkModel`]).
    pub simulated_net: Duration,
    /// Block bytes streamed from out-of-core storage this superstep
    /// (zero outside [`StorageMode::Block`](crate::StorageMode) runs).
    pub streamed_bytes: u64,
    /// Edge blocks streamed from out-of-core storage this superstep.
    pub streamed_blocks: u64,
    /// Block touches served from a worker's dense-block cache.
    pub block_cache_hits: u64,
}

impl StepStats {
    pub(crate) fn new(kind: StepKind, active: usize) -> Self {
        StepStats {
            kind,
            active,
            upd_messages: 0,
            upd_bytes: 0,
            sync_messages: 0,
            sync_bytes: 0,
            compute: Duration::ZERO,
            compute_max: Duration::ZERO,
            compute_min: Duration::ZERO,
            serialize: Duration::ZERO,
            serialize_max: Duration::ZERO,
            communicate: Duration::ZERO,
            delivery: Duration::ZERO,
            simulated_net: Duration::ZERO,
            streamed_bytes: 0,
            streamed_blocks: 0,
            block_cache_hits: 0,
        }
    }

    /// Total cross-worker bytes this superstep.
    pub fn total_bytes(&self) -> u64 {
        self.upd_bytes + self.sync_bytes
    }

    /// Total cross-worker messages this superstep.
    pub fn total_messages(&self) -> u64 {
        self.upd_messages + self.sync_messages
    }

    /// Barrier skew: `compute_max − compute_min`, the idle time the fastest
    /// worker spends waiting at the superstep barrier.
    pub fn barrier_skew(&self) -> Duration {
        self.compute_max.saturating_sub(self.compute_min)
    }

    /// Machine-readable rendering of this superstep. Every phase carries a
    /// µs field (rounded half-up) and an exact ns field, so
    /// microbench-scale steps never flatten to zero.
    pub fn to_json(&self) -> Json {
        let mut j = Json::object()
            .set("kind", self.kind.label())
            .set("active", self.active)
            .set("upd_messages", self.upd_messages)
            .set("upd_bytes", self.upd_bytes)
            .set("sync_messages", self.sync_messages)
            .set("sync_bytes", self.sync_bytes)
            .set("compute_us", us_half_up(self.compute))
            .set("compute_max_us", us_half_up(self.compute_max))
            .set("compute_min_us", us_half_up(self.compute_min))
            .set("barrier_skew_us", us_half_up(self.barrier_skew()))
            .set("serialize_us", us_half_up(self.serialize))
            .set("serialize_max_us", us_half_up(self.serialize_max))
            .set("communicate_us", us_half_up(self.communicate))
            .set("delivery_us", us_half_up(self.delivery))
            .set("simulated_net_us", us_half_up(self.simulated_net))
            .set("compute_ns", ns_u64(self.compute))
            .set("compute_max_ns", ns_u64(self.compute_max))
            .set("compute_min_ns", ns_u64(self.compute_min))
            .set("barrier_skew_ns", ns_u64(self.barrier_skew()))
            .set("serialize_ns", ns_u64(self.serialize))
            .set("serialize_max_ns", ns_u64(self.serialize_max))
            .set("communicate_ns", ns_u64(self.communicate))
            .set("delivery_ns", ns_u64(self.delivery))
            .set("simulated_net_ns", ns_u64(self.simulated_net));
        // Streaming counters appear only on block-storage supersteps, so
        // in-memory stats JSON stays byte-for-byte what it always was.
        if self.streamed_bytes + self.streamed_blocks + self.block_cache_hits > 0 {
            j = j
                .set("streamed_bytes", self.streamed_bytes)
                .set("streamed_blocks", self.streamed_blocks)
                .set("block_cache_hits", self.block_cache_hits);
        }
        j
    }
}

/// Fault-tolerance counters of a run: checkpoint, fault-injection and
/// rollback/replay activity (all zero on fault-free runs). See
/// [`crate::fault`] and [`crate::checkpoint`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Checkpoints taken at superstep boundaries.
    pub checkpoints: u64,
    /// Serialized bytes of all checkpoints (masters only).
    pub checkpoint_bytes: u64,
    /// Simulated time spent persisting checkpoints.
    pub checkpoint_time: Duration,
    /// Crash/corrupted-sync faults injected (each detected at a barrier).
    pub faults_injected: u64,
    /// Straggler delays injected.
    pub stragglers: u64,
    /// Total compute delay charged to stragglers.
    pub straggler_delay: Duration,
    /// Rollbacks performed (one per recovery retry).
    pub rollbacks: u64,
    /// Supersteps replayed from the redo log across all rollbacks.
    pub replayed_supersteps: u64,
    /// Accumulated capped exponential retry backoff (simulated, not slept).
    pub retry_backoff: Duration,
    /// Simulated network time of checkpoint restores and delta replays.
    pub replay_net: Duration,
    /// Membership epochs entered (one per rebalance or rejoin; zero on a
    /// run with stable membership).
    pub membership_epochs: u64,
    /// Workers declared permanently dead (by an exhausted `die` fault or a
    /// failure-detector deadline).
    pub workers_lost: u64,
    /// Previously dead workers that rejoined the cluster.
    pub workers_rejoined: u64,
    /// Master vertices migrated between hosts by membership changes.
    pub vertices_migrated: u64,
    /// Serialized bytes of migrated master state.
    pub migrated_bytes: u64,
    /// Simulated network time of state migration (transfer bytes plus one
    /// routing-rebuild round per moved partition).
    pub migration_net: Duration,
}

impl RecoveryStats {
    /// Total simulated recovery overhead added to the parallel runtime:
    /// checkpoint persistence + retry backoff + rollback/replay traffic +
    /// membership-change migration traffic. Straggler delay is *not*
    /// included — it is already charged into the affected superstep's
    /// `compute_max`.
    pub fn overhead(&self) -> Duration {
        self.checkpoint_time + self.retry_backoff + self.replay_net + self.migration_net
    }

    /// Machine-readable rendering (durations in µs).
    pub fn to_json(&self) -> Json {
        Json::object()
            .set("checkpoints", self.checkpoints)
            .set("checkpoint_bytes", self.checkpoint_bytes)
            .set("checkpoint_us", self.checkpoint_time.as_micros() as u64)
            .set("faults_injected", self.faults_injected)
            .set("stragglers", self.stragglers)
            .set(
                "straggler_delay_us",
                self.straggler_delay.as_micros() as u64,
            )
            .set("rollbacks", self.rollbacks)
            .set("replayed_supersteps", self.replayed_supersteps)
            .set("retry_backoff_us", self.retry_backoff.as_micros() as u64)
            .set("replay_net_us", self.replay_net.as_micros() as u64)
            .set("membership_epochs", self.membership_epochs)
            .set("workers_lost", self.workers_lost)
            .set("workers_rejoined", self.workers_rejoined)
            .set("vertices_migrated", self.vertices_migrated)
            .set("migrated_bytes", self.migrated_bytes)
            .set("migration_net_us", self.migration_net.as_micros() as u64)
            .set("overhead_us", self.overhead().as_micros() as u64)
    }
}

/// Reliable-delivery counters of a run: lossy-channel activity and the
/// ack/retransmit protocol's work (all zero on runs without channel
/// faults). See [`crate::transport`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DeliveryStats {
    /// Cross-host batches handed to the transport (one per
    /// (sender-host, receiver-host) pair per message round).
    pub batches_sent: u64,
    /// Transmission attempts lost on the wire (scripted `drop@` or
    /// probabilistic `loss=`).
    pub batches_dropped: u64,
    /// Batches delivered more than once by the channel (scripted `dup@` or
    /// probabilistic `dupRate=`).
    pub batches_duplicated: u64,
    /// Batches delayed past the ack deadline by a scripted `reorder@`,
    /// arriving a round late alongside their own retransmission.
    pub batches_reordered: u64,
    /// Retransmissions performed after a missed ack.
    pub retransmits: u64,
    /// Payload bytes re-shipped by retransmissions.
    pub retransmitted_bytes: u64,
    /// Batch copies discarded by the receive-side dedup window.
    pub dedup_hits: u64,
    /// Batch copies rejected for a wire-checksum mismatch (each nacked and
    /// retransmitted).
    pub checksum_failures: u64,
    /// Simulated network time of all retransmissions (one ack-deadline
    /// round of latency plus the re-shipped bytes, per retransmit).
    pub retransmit_net: Duration,
}

impl DeliveryStats {
    /// Total simulated delivery overhead added to the parallel runtime:
    /// the retransmission traffic charged through the network model.
    pub fn overhead(&self) -> Duration {
        self.retransmit_net
    }

    /// Machine-readable rendering (durations in µs).
    pub fn to_json(&self) -> Json {
        Json::object()
            .set("batches_sent", self.batches_sent)
            .set("batches_dropped", self.batches_dropped)
            .set("batches_duplicated", self.batches_duplicated)
            .set("batches_reordered", self.batches_reordered)
            .set("retransmits", self.retransmits)
            .set("retransmitted_bytes", self.retransmitted_bytes)
            .set("dedup_hits", self.dedup_hits)
            .set("checksum_failures", self.checksum_failures)
            .set("retransmit_net_us", self.retransmit_net.as_micros() as u64)
            .set("overhead_us", self.overhead().as_micros() as u64)
    }
}

/// Replicated control-plane counters of a run: elections held, log
/// entries committed by majority, and byzantine accusations (all zero on
/// runs without a fault plan). See [`crate::consensus`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ConsensusStats {
    /// Elections held: the initial election plus every re-election after a
    /// leader crash.
    pub elections: u64,
    /// Leader hosts crashed by `leader@` faults.
    pub leader_crashes: u64,
    /// Entries appended to the replicated decision log.
    pub entries_appended: u64,
    /// Entries committed by a majority of live hosts (and only then
    /// applied).
    pub entries_committed: u64,
    /// Workers accused of lying by the checksum quorum and escalated to a
    /// death declaration.
    pub accusations: u64,
    /// Simulated network time of election rounds (vote request and grant
    /// per live host).
    pub election_net: Duration,
    /// Simulated network time of log replication (append and ack per live
    /// host, per committed entry).
    pub commit_net: Duration,
}

impl ConsensusStats {
    /// Total simulated control-plane overhead added to the parallel
    /// runtime: election traffic plus log-replication traffic.
    pub fn overhead(&self) -> Duration {
        self.election_net + self.commit_net
    }

    /// Machine-readable rendering (durations in µs).
    pub fn to_json(&self) -> Json {
        Json::object()
            .set("elections", self.elections)
            .set("leader_crashes", self.leader_crashes)
            .set("entries_appended", self.entries_appended)
            .set("entries_committed", self.entries_committed)
            .set("accusations", self.accusations)
            .set("election_net_us", self.election_net.as_micros() as u64)
            .set("commit_net_us", self.commit_net.as_micros() as u64)
            .set("overhead_us", self.overhead().as_micros() as u64)
    }
}

/// Durable-checkpoint-store counters of a run: generations committed to
/// disk, bytes fsynced, and the scrub pass's damage accounting (all zero
/// on runs without a durable directory). See [`crate::durable`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DurabilityStats {
    /// Checkpoint generations committed to disk (tmp + fsync + rename).
    pub generations_written: u64,
    /// Bytes written and fsynced across every generation rewrite,
    /// including the per-step delta-log appends.
    pub bytes_fsynced: u64,
    /// Delta-log frames appended after their generation's checkpoint.
    pub delta_frames: u64,
    /// Damaged generations the scrub pass detected (and skipped) at open.
    pub scrub_repairs: u64,
    /// Times the scrub pass fell back to an older generation because a
    /// newer one was damaged.
    pub fallbacks: u64,
    /// Durable writes skipped because an injected `ioerr@` fault failed
    /// the write/fsync (the store self-heals on its next write).
    pub io_errors: u64,
    /// Supersteps fast-forwarded from the durable log on a resumed run.
    pub resumed_steps: u64,
}

impl DurabilityStats {
    /// Machine-readable rendering.
    pub fn to_json(&self) -> Json {
        Json::object()
            .set("generations_written", self.generations_written)
            .set("bytes_fsynced", self.bytes_fsynced)
            .set("delta_frames", self.delta_frames)
            .set("scrub_repairs", self.scrub_repairs)
            .set("fallbacks", self.fallbacks)
            .set("io_errors", self.io_errors)
            .set("resumed_steps", self.resumed_steps)
    }
}

/// Storage-engine facts of a run: which engine served the adjacency and
/// how much state stayed resident. All-defaults on in-memory runs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StorageInfo {
    /// Engine label: `"in-memory"` (default) or `"block"`.
    pub mode: &'static str,
    /// Peak resident vertex-state bytes across all workers (replicated
    /// master+mirror arrays) — the state that must fit in memory when the
    /// adjacency streams from disk.
    pub resident_state_bytes: u64,
    /// Graph bytes on the owned heap (adjacency arrays, in-memory mode).
    pub graph_heap_bytes: u64,
    /// Graph bytes served from the mapped block file.
    pub graph_mapped_bytes: u64,
    /// Non-empty dense blocks in the M-Flash grid (0 when in-memory).
    pub dense_blocks: u64,
    /// Non-empty sparse blocks in the M-Flash grid (0 when in-memory).
    pub sparse_blocks: u64,
}

impl Default for StorageInfo {
    fn default() -> Self {
        StorageInfo {
            mode: "in-memory",
            resident_state_bytes: 0,
            graph_heap_bytes: 0,
            graph_mapped_bytes: 0,
            dense_blocks: 0,
            sparse_blocks: 0,
        }
    }
}

impl StorageInfo {
    /// Machine-readable rendering (the `storage` object of the summary).
    pub fn to_json(&self) -> Json {
        Json::object()
            .set("mode", self.mode)
            .set("peak_resident_state_bytes", self.resident_state_bytes)
            .set("graph_heap_bytes", self.graph_heap_bytes)
            .set("graph_mapped_bytes", self.graph_mapped_bytes)
            .set("dense_blocks", self.dense_blocks)
            .set("sparse_blocks", self.sparse_blocks)
    }
}

/// Accumulated statistics of a run (a sequence of supersteps).
#[derive(Clone, Debug, Default)]
pub struct RunStats {
    steps: Vec<StepStats>,
    /// Fault-tolerance activity of the run (zeros when no fault plan or
    /// checkpointing was configured).
    pub recovery: RecoveryStats,
    /// Reliable-delivery activity of the run (zeros when the plan has no
    /// channel faults).
    pub delivery: DeliveryStats,
    /// Replicated control-plane activity of the run (zeros when no fault
    /// plan was configured — fault-free runs skip the consensus layer).
    pub consensus: ConsensusStats,
    /// Durable-checkpoint-store activity of the run (zeros when no
    /// durable directory was configured — the store is fully inert).
    pub durability: DurabilityStats,
    /// Percentile histograms and counters of superstep phases, transport
    /// activity and recovery work. Empty unless the cluster was configured
    /// with [`ClusterConfig::metrics`](crate::ClusterConfig::metrics);
    /// recording never changes results (only already-measured durations
    /// are aggregated).
    pub metrics: MetricsRegistry,
    /// Storage-engine facts (mode, resident state, block counts).
    pub storage: StorageInfo,
}

impl RunStats {
    /// Appends one superstep's record.
    pub(crate) fn push(&mut self, s: StepStats) {
        self.steps.push(s);
    }

    /// All recorded supersteps, in execution order.
    pub fn steps(&self) -> &[StepStats] {
        &self.steps
    }

    /// Number of supersteps recorded.
    pub fn num_supersteps(&self) -> usize {
        self.steps.len()
    }

    /// Clears all records, including recovery/delivery counters and
    /// metrics.
    pub fn clear(&mut self) {
        self.steps.clear();
        self.recovery = RecoveryStats::default();
        self.delivery = DeliveryStats::default();
        self.consensus = ConsensusStats::default();
        self.durability = DurabilityStats::default();
        self.metrics.clear();
        self.storage = StorageInfo::default();
    }

    /// Total block bytes streamed from out-of-core storage over the run.
    pub fn bytes_streamed(&self) -> u64 {
        self.steps.iter().map(|s| s.streamed_bytes).sum()
    }

    /// Total edge blocks streamed from out-of-core storage over the run.
    pub fn blocks_streamed(&self) -> u64 {
        self.steps.iter().map(|s| s.streamed_blocks).sum()
    }

    /// Total block touches served from dense-block caches over the run.
    pub fn block_cache_hits(&self) -> u64 {
        self.steps.iter().map(|s| s.block_cache_hits).sum()
    }

    /// Total cross-worker bytes over the run.
    pub fn total_bytes(&self) -> u64 {
        self.steps.iter().map(StepStats::total_bytes).sum()
    }

    /// Total cross-worker messages over the run.
    pub fn total_messages(&self) -> u64 {
        self.steps.iter().map(StepStats::total_messages).sum()
    }

    /// Summed compute time (wall; a sum over workers on single-core hosts).
    pub fn compute_time(&self) -> Duration {
        self.steps.iter().map(|s| s.compute).sum()
    }

    /// Summed per-superstep *maximum* worker compute time: the compute
    /// makespan of an ideal one-core-per-worker cluster. This is what the
    /// scaling experiments report, because wall-clock parallel speedups
    /// are unobservable on a single-core host.
    pub fn parallel_compute_time(&self) -> Duration {
        self.steps.iter().map(|s| s.compute_max).sum()
    }

    /// The simulated end-to-end parallel runtime: per-superstep worker
    /// makespans (compute and serialization) + measured communication and
    /// delivery-protocol time + the simulated network charge, plus the
    /// recovery overhead (checkpointing, retry backoff and rollback/replay
    /// traffic), the reliable-delivery overhead (retransmission traffic)
    /// and the control-plane overhead (election and log-replication
    /// traffic).
    pub fn simulated_parallel_time(&self) -> Duration {
        self.steps
            .iter()
            .map(|s| s.compute_max + s.serialize_max + s.communicate + s.delivery + s.simulated_net)
            .sum::<Duration>()
            + self.recovery.overhead()
            + self.delivery.overhead()
            + self.consensus.overhead()
    }

    /// Summed serialization time.
    pub fn serialize_time(&self) -> Duration {
        self.steps.iter().map(|s| s.serialize).sum()
    }

    /// Summed per-superstep serialization *makespan* (slowest bucketing
    /// thread): the serialize-phase analogue of
    /// [`RunStats::parallel_compute_time`] — the number the hot-path
    /// scaling experiments report, because wall-clock parallel speedups are
    /// unobservable on a single-core host.
    pub fn parallel_serialize_time(&self) -> Duration {
        self.steps.iter().map(|s| s.serialize_max).sum()
    }

    /// Summed reliable-delivery protocol wall time.
    pub fn delivery_time(&self) -> Duration {
        self.steps.iter().map(|s| s.delivery).sum()
    }

    /// Summed communication time (measured, excluding simulated network).
    pub fn communicate_time(&self) -> Duration {
        self.steps.iter().map(|s| s.communicate).sum()
    }

    /// Summed simulated network time.
    pub fn simulated_net_time(&self) -> Duration {
        self.steps.iter().map(|s| s.simulated_net).sum()
    }

    /// Frontier size per superstep, for Fig. 4(a)-style plots; only
    /// kernels with a frontier (`vmap`/`dense`/`sparse`) are included.
    pub fn frontier_sizes(&self) -> Vec<usize> {
        self.steps
            .iter()
            .filter(|s| s.kind != StepKind::Global)
            .map(|s| s.active)
            .collect()
    }

    /// Counts supersteps per kernel kind: `(vmap, dense, sparse, global)`.
    pub fn kind_counts(&self) -> (usize, usize, usize, usize) {
        let mut c = (0, 0, 0, 0);
        for s in &self.steps {
            match s.kind {
                StepKind::VertexMap => c.0 += 1,
                StepKind::EdgeMapDense => c.1 += 1,
                StepKind::EdgeMapSparse => c.2 += 1,
                StepKind::Global => c.3 += 1,
            }
        }
        c
    }

    /// Summed per-superstep barrier skew: total worker idle time at
    /// barriers on an ideal one-core-per-worker cluster.
    pub fn barrier_skew_time(&self) -> Duration {
        self.steps.iter().map(StepStats::barrier_skew).sum()
    }

    /// The largest single-superstep barrier skew of the run.
    pub fn max_barrier_skew(&self) -> Duration {
        self.steps
            .iter()
            .map(StepStats::barrier_skew)
            .max()
            .unwrap_or_default()
    }

    /// Aggregate totals as JSON, without the per-step array — the payload
    /// of `results/*.json` summaries. Durations come in µs (rounded
    /// half-up) with exact ns companions.
    pub fn summary_json(&self) -> Json {
        let (vmap, dense, sparse, global) = self.kind_counts();
        Json::object()
            .set("supersteps", self.num_supersteps())
            .set("total_bytes", self.total_bytes())
            .set("total_messages", self.total_messages())
            .set("compute_us", us_half_up(self.compute_time()))
            .set(
                "parallel_compute_us",
                us_half_up(self.parallel_compute_time()),
            )
            .set("serialize_us", us_half_up(self.serialize_time()))
            .set(
                "parallel_serialize_us",
                us_half_up(self.parallel_serialize_time()),
            )
            .set("communicate_us", us_half_up(self.communicate_time()))
            .set("delivery_us", us_half_up(self.delivery_time()))
            .set("simulated_net_us", us_half_up(self.simulated_net_time()))
            .set(
                "simulated_parallel_us",
                us_half_up(self.simulated_parallel_time()),
            )
            .set("barrier_skew_us", us_half_up(self.barrier_skew_time()))
            .set("compute_ns", ns_u64(self.compute_time()))
            .set("parallel_compute_ns", ns_u64(self.parallel_compute_time()))
            .set("serialize_ns", ns_u64(self.serialize_time()))
            .set(
                "parallel_serialize_ns",
                ns_u64(self.parallel_serialize_time()),
            )
            .set("communicate_ns", ns_u64(self.communicate_time()))
            .set("delivery_ns", ns_u64(self.delivery_time()))
            .set("simulated_net_ns", ns_u64(self.simulated_net_time()))
            .set(
                "simulated_parallel_ns",
                ns_u64(self.simulated_parallel_time()),
            )
            .set("barrier_skew_ns", ns_u64(self.barrier_skew_time()))
            .set(
                "kind_counts",
                Json::object()
                    .set("vmap", vmap)
                    .set("dense", dense)
                    .set("sparse", sparse)
                    .set("global", global),
            )
            .set("recovery", self.recovery.to_json())
            .set("delivery", self.delivery.to_json())
            .set("consensus", self.consensus.to_json())
            .set("durability", self.durability.to_json())
            .set("metrics", self.metrics.to_json())
            .set(
                "storage",
                self.storage
                    .to_json()
                    .set("bytes_streamed", self.bytes_streamed())
                    .set("blocks_streamed", self.blocks_streamed())
                    .set("cache_hits", self.block_cache_hits()),
            )
    }

    /// Full machine-readable rendering: the summary plus every superstep.
    pub fn to_json(&self) -> Json {
        self.summary_json().set(
            "steps",
            Json::Arr(self.steps.iter().map(StepStats::to_json).collect()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step(kind: StepKind, active: usize, upd: u64, sync: u64) -> StepStats {
        let mut s = StepStats::new(kind, active);
        s.upd_bytes = upd;
        s.upd_messages = upd / 8;
        s.sync_bytes = sync;
        s.sync_messages = sync / 8;
        s
    }

    #[test]
    fn totals_accumulate() {
        let mut r = RunStats::default();
        r.push(step(StepKind::EdgeMapSparse, 10, 80, 40));
        r.push(step(StepKind::EdgeMapDense, 100, 0, 160));
        assert_eq!(r.num_supersteps(), 2);
        assert_eq!(r.total_bytes(), 280);
        assert_eq!(r.total_messages(), 10 + 5 + 20);
    }

    #[test]
    fn frontier_sizes_skip_global() {
        let mut r = RunStats::default();
        r.push(step(StepKind::VertexMap, 5, 0, 0));
        r.push(step(StepKind::Global, 0, 0, 0));
        r.push(step(StepKind::EdgeMapSparse, 3, 0, 0));
        assert_eq!(r.frontier_sizes(), vec![5, 3]);
    }

    #[test]
    fn kind_counts() {
        let mut r = RunStats::default();
        r.push(step(StepKind::VertexMap, 1, 0, 0));
        r.push(step(StepKind::EdgeMapSparse, 1, 0, 0));
        r.push(step(StepKind::EdgeMapSparse, 1, 0, 0));
        assert_eq!(r.kind_counts(), (1, 0, 2, 0));
    }

    #[test]
    fn clear_resets() {
        let mut r = RunStats::default();
        r.push(step(StepKind::VertexMap, 1, 1, 1));
        r.storage.mode = "block";
        r.storage.resident_state_bytes = 64;
        r.clear();
        assert_eq!(r.num_supersteps(), 0);
        assert_eq!(r.total_bytes(), 0);
        assert_eq!(r.storage, StorageInfo::default(), "clear resets storage");
    }

    #[test]
    fn streaming_counters_accumulate_and_render() {
        let mut r = RunStats::default();
        let mut s = step(StepKind::EdgeMapSparse, 10, 80, 40);
        s.streamed_bytes = 1024;
        s.streamed_blocks = 3;
        s.block_cache_hits = 2;
        r.push(s);
        r.push(step(StepKind::VertexMap, 10, 0, 0));
        r.storage.mode = "block";
        r.storage.resident_state_bytes = 4096;
        r.storage.dense_blocks = 5;
        assert_eq!(r.bytes_streamed(), 1024);
        assert_eq!(r.blocks_streamed(), 3);
        assert_eq!(r.block_cache_hits(), 2);
        let j = r.to_json();
        let storage = j.get("storage").expect("storage object");
        assert_eq!(storage.get("mode").and_then(Json::as_str), Some("block"));
        assert_eq!(
            storage
                .get("peak_resident_state_bytes")
                .and_then(Json::as_u64),
            Some(4096)
        );
        assert_eq!(
            storage.get("bytes_streamed").and_then(Json::as_u64),
            Some(1024)
        );
        assert_eq!(storage.get("cache_hits").and_then(Json::as_u64), Some(2));
        let steps = j.get("steps").and_then(Json::as_array).unwrap();
        assert_eq!(
            steps[0].get("streamed_bytes").and_then(Json::as_u64),
            Some(1024)
        );
        // In-memory steps carry no streaming keys at all.
        assert_eq!(steps[1].get("streamed_bytes"), None);
    }

    #[test]
    fn barrier_skew_is_max_minus_min() {
        let mut s = StepStats::new(StepKind::EdgeMapSparse, 4);
        s.compute_max = Duration::from_micros(500);
        s.compute_min = Duration::from_micros(380);
        assert_eq!(s.barrier_skew(), Duration::from_micros(120));

        let mut r = RunStats::default();
        r.push(s.clone());
        s.compute_max = Duration::from_micros(50);
        s.compute_min = Duration::from_micros(50);
        r.push(s);
        assert_eq!(r.barrier_skew_time(), Duration::from_micros(120));
        assert_eq!(r.max_barrier_skew(), Duration::from_micros(120));
    }

    #[test]
    fn json_matches_accessors() {
        let mut r = RunStats::default();
        r.push(step(StepKind::EdgeMapSparse, 10, 80, 40));
        r.push(step(StepKind::EdgeMapDense, 100, 0, 160));
        let j = r.to_json();
        assert_eq!(j.get("supersteps").and_then(Json::as_u64), Some(2));
        assert_eq!(
            j.get("total_bytes").and_then(Json::as_u64),
            Some(r.total_bytes())
        );
        assert_eq!(
            j.get("total_messages").and_then(Json::as_u64),
            Some(r.total_messages())
        );
        let kinds = j.get("kind_counts").unwrap();
        assert_eq!(kinds.get("sparse").and_then(Json::as_u64), Some(1));
        assert_eq!(kinds.get("dense").and_then(Json::as_u64), Some(1));
        let steps = j.get("steps").and_then(Json::as_array).unwrap();
        assert_eq!(steps.len(), 2);
        assert_eq!(steps[0].get("upd_bytes").and_then(Json::as_u64), Some(80));
        // The rendering round-trips through the flash-obs parser.
        let back = flash_obs::json::parse(&j.to_pretty_string()).unwrap();
        assert_eq!(back, j);
        // summary_json is to_json minus the steps array.
        assert_eq!(r.summary_json().get("steps"), None);
    }

    #[test]
    fn recovery_overhead_feeds_simulated_time() {
        let mut r = RunStats::default();
        let mut s = StepStats::new(StepKind::VertexMap, 1);
        s.compute_max = Duration::from_micros(100);
        r.push(s);
        let base = r.simulated_parallel_time();
        r.recovery.retry_backoff = Duration::from_micros(40);
        r.recovery.replay_net = Duration::from_micros(10);
        r.recovery.checkpoint_time = Duration::from_micros(5);
        r.recovery.migration_net = Duration::from_micros(25);
        assert_eq!(r.recovery.overhead(), Duration::from_micros(80));
        assert_eq!(
            r.simulated_parallel_time(),
            base + Duration::from_micros(80)
        );
        r.clear();
        assert_eq!(
            r.recovery,
            RecoveryStats::default(),
            "clear resets recovery"
        );
    }

    #[test]
    fn recovery_json_reports_counters() {
        let mut r = RunStats::default();
        r.recovery.checkpoints = 2;
        r.recovery.rollbacks = 3;
        r.recovery.replayed_supersteps = 5;
        r.recovery.membership_epochs = 2;
        r.recovery.workers_lost = 1;
        r.recovery.workers_rejoined = 1;
        r.recovery.vertices_migrated = 40;
        r.recovery.migrated_bytes = 320;
        let j = r.summary_json();
        let rec = j.get("recovery").expect("summary carries recovery");
        assert_eq!(rec.get("checkpoints").and_then(Json::as_u64), Some(2));
        assert_eq!(rec.get("rollbacks").and_then(Json::as_u64), Some(3));
        assert_eq!(
            rec.get("replayed_supersteps").and_then(Json::as_u64),
            Some(5)
        );
        assert_eq!(rec.get("membership_epochs").and_then(Json::as_u64), Some(2));
        assert_eq!(rec.get("workers_lost").and_then(Json::as_u64), Some(1));
        assert_eq!(rec.get("workers_rejoined").and_then(Json::as_u64), Some(1));
        assert_eq!(
            rec.get("vertices_migrated").and_then(Json::as_u64),
            Some(40)
        );
        assert_eq!(rec.get("migrated_bytes").and_then(Json::as_u64), Some(320));
    }

    #[test]
    fn delivery_overhead_feeds_simulated_time_and_json() {
        let mut r = RunStats::default();
        let mut s = StepStats::new(StepKind::VertexMap, 1);
        s.compute_max = Duration::from_micros(100);
        r.push(s);
        let base = r.simulated_parallel_time();
        r.delivery.batches_sent = 12;
        r.delivery.batches_dropped = 2;
        r.delivery.batches_duplicated = 1;
        r.delivery.batches_reordered = 1;
        r.delivery.retransmits = 2;
        r.delivery.retransmitted_bytes = 256;
        r.delivery.dedup_hits = 2;
        r.delivery.checksum_failures = 1;
        r.delivery.retransmit_net = Duration::from_micros(60);
        assert_eq!(r.delivery.overhead(), Duration::from_micros(60));
        assert_eq!(
            r.simulated_parallel_time(),
            base + Duration::from_micros(60)
        );
        let j = r.summary_json();
        let d = j.get("delivery").expect("summary carries delivery");
        assert_eq!(d.get("batches_sent").and_then(Json::as_u64), Some(12));
        assert_eq!(d.get("batches_dropped").and_then(Json::as_u64), Some(2));
        assert_eq!(d.get("batches_duplicated").and_then(Json::as_u64), Some(1));
        assert_eq!(d.get("batches_reordered").and_then(Json::as_u64), Some(1));
        assert_eq!(d.get("retransmits").and_then(Json::as_u64), Some(2));
        assert_eq!(
            d.get("retransmitted_bytes").and_then(Json::as_u64),
            Some(256)
        );
        assert_eq!(d.get("dedup_hits").and_then(Json::as_u64), Some(2));
        assert_eq!(d.get("checksum_failures").and_then(Json::as_u64), Some(1));
        assert_eq!(d.get("retransmit_net_us").and_then(Json::as_u64), Some(60));
        r.clear();
        assert_eq!(
            r.delivery,
            DeliveryStats::default(),
            "clear resets delivery"
        );
    }

    #[test]
    fn consensus_overhead_feeds_simulated_time_and_json() {
        let mut r = RunStats::default();
        let mut s = StepStats::new(StepKind::VertexMap, 1);
        s.compute_max = Duration::from_micros(100);
        r.push(s);
        let base = r.simulated_parallel_time();
        r.consensus.elections = 2;
        r.consensus.leader_crashes = 1;
        r.consensus.entries_appended = 5;
        r.consensus.entries_committed = 5;
        r.consensus.accusations = 1;
        r.consensus.election_net = Duration::from_micros(30);
        r.consensus.commit_net = Duration::from_micros(20);
        assert_eq!(r.consensus.overhead(), Duration::from_micros(50));
        assert_eq!(
            r.simulated_parallel_time(),
            base + Duration::from_micros(50)
        );
        let j = r.summary_json();
        let c = j.get("consensus").expect("summary carries consensus");
        assert_eq!(c.get("elections").and_then(Json::as_u64), Some(2));
        assert_eq!(c.get("leader_crashes").and_then(Json::as_u64), Some(1));
        assert_eq!(c.get("entries_appended").and_then(Json::as_u64), Some(5));
        assert_eq!(c.get("entries_committed").and_then(Json::as_u64), Some(5));
        assert_eq!(c.get("accusations").and_then(Json::as_u64), Some(1));
        assert_eq!(c.get("election_net_us").and_then(Json::as_u64), Some(30));
        assert_eq!(c.get("commit_net_us").and_then(Json::as_u64), Some(20));
        assert_eq!(c.get("overhead_us").and_then(Json::as_u64), Some(50));
        r.clear();
        assert_eq!(
            r.consensus,
            ConsensusStats::default(),
            "clear resets consensus"
        );
    }

    #[test]
    fn durability_stats_render_and_clear() {
        let mut r = RunStats::default();
        r.durability.generations_written = 3;
        r.durability.bytes_fsynced = 4096;
        r.durability.delta_frames = 11;
        r.durability.scrub_repairs = 1;
        r.durability.fallbacks = 1;
        r.durability.io_errors = 2;
        r.durability.resumed_steps = 7;
        let j = r.summary_json();
        let d = j.get("durability").expect("summary carries durability");
        assert_eq!(d.get("generations_written").and_then(Json::as_u64), Some(3));
        assert_eq!(d.get("bytes_fsynced").and_then(Json::as_u64), Some(4096));
        assert_eq!(d.get("delta_frames").and_then(Json::as_u64), Some(11));
        assert_eq!(d.get("scrub_repairs").and_then(Json::as_u64), Some(1));
        assert_eq!(d.get("fallbacks").and_then(Json::as_u64), Some(1));
        assert_eq!(d.get("io_errors").and_then(Json::as_u64), Some(2));
        assert_eq!(d.get("resumed_steps").and_then(Json::as_u64), Some(7));
        r.clear();
        assert_eq!(
            r.durability,
            DurabilityStats::default(),
            "clear resets durability"
        );
    }

    #[test]
    fn us_rounds_half_up_and_ns_is_exact() {
        assert_eq!(us_half_up(Duration::from_nanos(499)), 0);
        assert_eq!(us_half_up(Duration::from_nanos(500)), 1);
        assert_eq!(us_half_up(Duration::from_nanos(600)), 1);
        assert_eq!(us_half_up(Duration::from_nanos(1499)), 1);
        assert_eq!(us_half_up(Duration::from_nanos(1500)), 2);
        assert_eq!(ns_u64(Duration::from_nanos(600)), 600);

        // Sub-µs phases are visible in step JSON via the ns fields and the
        // rounded µs fields — the truncation bug that zeroed
        // microbench-scale steps.
        let mut s = StepStats::new(StepKind::EdgeMapSparse, 1);
        s.serialize = Duration::from_nanos(700);
        s.delivery = Duration::from_nanos(900);
        let j = s.to_json();
        assert_eq!(j.get("serialize_us").and_then(Json::as_u64), Some(1));
        assert_eq!(j.get("serialize_ns").and_then(Json::as_u64), Some(700));
        assert_eq!(j.get("delivery_us").and_then(Json::as_u64), Some(1));
        assert_eq!(j.get("delivery_ns").and_then(Json::as_u64), Some(900));
    }

    #[test]
    fn serialize_max_and_delivery_feed_simulated_time() {
        let mut r = RunStats::default();
        let mut s = StepStats::new(StepKind::EdgeMapSparse, 4);
        s.compute_max = Duration::from_micros(100);
        s.serialize = Duration::from_micros(80); // wall: sum over threads
        s.serialize_max = Duration::from_micros(20); // makespan: slowest thread
        s.communicate = Duration::from_micros(10);
        s.delivery = Duration::from_micros(7);
        r.push(s);
        assert_eq!(r.serialize_time(), Duration::from_micros(80));
        assert_eq!(r.parallel_serialize_time(), Duration::from_micros(20));
        assert_eq!(r.delivery_time(), Duration::from_micros(7));
        // Simulated parallel time charges the makespan, not the wall sum.
        assert_eq!(
            r.simulated_parallel_time(),
            Duration::from_micros(100 + 20 + 10 + 7)
        );
        let j = r.summary_json();
        assert_eq!(
            j.get("parallel_serialize_us").and_then(Json::as_u64),
            Some(20)
        );
        assert_eq!(j.get("delivery_us").and_then(Json::as_u64), Some(7));
        assert_eq!(
            j.get("parallel_serialize_ns").and_then(Json::as_u64),
            Some(20_000)
        );
    }

    #[test]
    fn metrics_block_renders_and_clears() {
        let mut r = RunStats::default();
        r.metrics.record("step/compute_max_ns", 1000);
        r.metrics.record("step/compute_max_ns", 3000);
        r.metrics.counter_add("transport/dedup_hits", 2);
        let j = r.summary_json();
        let m = j.get("metrics").expect("summary carries metrics");
        let h = m
            .get("histograms")
            .and_then(|h| h.get("step/compute_max_ns"))
            .expect("histogram rendered");
        assert_eq!(h.get("count").and_then(Json::as_u64), Some(2));
        assert_eq!(h.get("max").and_then(Json::as_u64), Some(3000));
        assert!(h.get("p50").is_some() && h.get("p90").is_some() && h.get("p99").is_some());
        assert_eq!(
            m.get("counters")
                .and_then(|c| c.get("transport/dedup_hits"))
                .and_then(Json::as_u64),
            Some(2)
        );
        r.clear();
        assert!(r.metrics.is_empty(), "clear resets metrics");
    }

    #[test]
    fn labels() {
        assert_eq!(StepKind::VertexMap.label(), "vmap");
        assert_eq!(StepKind::EdgeMapDense.label(), "dense");
        assert_eq!(StepKind::EdgeMapSparse.label(), "sparse");
        assert_eq!(StepKind::Global.label(), "global");
    }
}
