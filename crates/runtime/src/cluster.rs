//! The simulated cluster: superstep orchestration, message exchange and
//! mirror synchronization.

use crate::checkpoint::{Checkpoint, RecoveryLog, StepDelta};
use crate::config::{
    ClusterConfig, HotPath, StorageMode, SyncMode, SyncScope, DEFAULT_CHECKPOINT_INTERVAL,
};
use crate::consensus::{checksum_quorum, Consensus, LogEntryKind};
use crate::ctx::WorkerCtx;
use crate::durable::{DiskWrite, DurableSession, DurableValue, ScrubReport};
use crate::error::RuntimeError;
use crate::fault::{payload_checksum, FaultInjector, FaultKind, FaultSpec};
use crate::par::{parallel_ranges, parallel_scratch_chunks};
use crate::state::{StepBuffers, WorkerState};
use crate::stats::{ns_u64, us_half_up, RunStats, StepKind, StepStats, StorageInfo};
use crate::transport::{RoundBatches, ScriptedChannelFault, Transport};
use crate::VertexData;
use flash_graph::{Graph, PartitionMap, RebalanceReport, StreamScope, StreamSnapshot, VertexId};
use flash_obs::{Event, EventKind};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The result of one superstep.
#[derive(Debug)]
pub struct StepOutput<Out> {
    /// Each worker's compute-closure return value, indexed by worker id.
    pub per_worker: Vec<Out>,
    /// Per *owner* worker: the sorted, deduplicated master vertices whose
    /// state changed this superstep (the candidates for the output
    /// vertexSubset of `EDGEMAP`).
    pub updated: Vec<Vec<VertexId>>,
}

impl<Out> StepOutput<Out> {
    /// Flattens the updated-master lists of all workers (already disjoint
    /// because masters are).
    pub fn updated_flat(self) -> Vec<VertexId> {
        let mut all: Vec<VertexId> = self.updated.into_iter().flatten().collect();
        all.sort_unstable();
        all
    }
}

/// A FLASH cluster: `m` workers over a partitioned graph, executing BSP
/// supersteps (§IV). See the crate docs for the simulation model.
pub struct Cluster<V: VertexData> {
    graph: Arc<Graph>,
    partition: Arc<PartitionMap>,
    config: ClusterConfig,
    states: Vec<WorkerState<V>>,
    stats: RunStats,
    /// Monotonic superstep counter for trace events. Unlike `stats`, it is
    /// *not* reset by [`Cluster::take_stats`], so step ids in a trace stay
    /// unique across multiple measured phases of one program.
    next_step: u64,
    /// Monotonic sequence number for trace events.
    next_seq: u64,
    /// Scripted fault injector, present only when the config carries a
    /// [`FaultPlan`](crate::fault::FaultPlan).
    injector: Option<FaultInjector>,
    /// Reliable-delivery transport, present only when the fault plan has
    /// channel faults (scripted or probabilistic).
    transport: Option<Transport>,
    /// Replicated control plane, present whenever a fault plan is attached
    /// (same condition as `injector`): control-plane decisions — epoch
    /// bumps, checkpoint commits, death declarations — replicate through
    /// its majority-committed log under an elected leader. Fault-free runs
    /// skip the layer entirely.
    consensus: Option<Consensus>,
    /// Last checkpoint plus the redo log of supersteps published since.
    recovery: RecoveryLog<V>,
    /// Effective checkpoint interval in supersteps (0 = disabled).
    checkpoint_every: u64,
    /// Terminal recovery failure: set once the retry budget of some
    /// superstep is exhausted, surfaced via [`Cluster::fault_error`].
    failed: Option<RuntimeError>,
    /// Durable checkpoint store session, present only when the cluster was
    /// built through [`Cluster::new_durable`] / [`Cluster::resume`] with a
    /// `durable_dir` configured. `None` keeps every durable hook inert —
    /// runs without the store execute byte-identically to before it
    /// existed (DESIGN.md §15).
    durable: Option<DurableSession<V>>,
    /// Whether an `ioerr@` disk fault fired for the current superstep: the
    /// durable write(s) of this step fail and their commits are skipped.
    disk_ioerr: bool,
    /// At-rest damage (`torn@`/`bitrot@`) to apply to the newest committed
    /// generation at this superstep's end: `(kind, byte offset, mask)`.
    disk_damage: Vec<(FaultKind, u64, u8)>,
    /// Pooled per-superstep scratch buffers, reused clear-don't-drop across
    /// supersteps under [`HotPath::PooledParallel`] (DESIGN.md §11).
    buffers: StepBuffers<V>,
    /// This cluster's private block-streaming scope: counters and FIFO
    /// caches for replays of this run's block touches. Owned per cluster
    /// (not per graph) so concurrent runs over one shared block-backed
    /// graph never charge each other's deltas.
    stream_scope: Arc<StreamScope>,
    /// Cumulative block-streaming counters already attributed to finished
    /// supersteps: `finish_step` charges each step the *delta* between the
    /// [`StreamScope`] snapshot and this mark.
    stream_mark: StreamSnapshot,
}

impl<V: VertexData> Cluster<V> {
    /// Builds a cluster whose every replica is initialized by `init`.
    ///
    /// `partition.num_workers()` must equal `config.workers`, and the
    /// partition must cover exactly the graph's vertices.
    pub fn new(
        graph: Arc<Graph>,
        partition: Arc<PartitionMap>,
        config: ClusterConfig,
        init: impl Fn(VertexId) -> V,
    ) -> Result<Self, RuntimeError> {
        if config.durable_dir.is_some() {
            return Err(RuntimeError::Storage(
                "durable_dir is configured but this constructor cannot serialize vertex \
                 state; build the cluster through Cluster::new_durable (the vertex type \
                 must implement DurableValue)"
                    .into(),
            ));
        }
        Self::new_inner(graph, partition, config, init, None, Vec::new())
    }

    /// Builds a cluster with the durable checkpoint store attached
    /// (`config.durable_dir` must be set): every checkpoint plus the
    /// per-step delta log is committed to disk through a crash-consistent
    /// two-phase commit, so a killed run can be resumed bit-identically by
    /// [`Cluster::resume`]. With `config.durable_resume` set, this *opens*
    /// the store instead of starting it fresh.
    pub fn new_durable(
        graph: Arc<Graph>,
        partition: Arc<PartitionMap>,
        config: ClusterConfig,
        init: impl Fn(VertexId) -> V,
    ) -> Result<Self, RuntimeError>
    where
        V: DurableValue,
    {
        let Some(dir) = config.durable_dir.clone() else {
            return Err(RuntimeError::Storage(
                "Cluster::new_durable requires config.durable_dir".into(),
            ));
        };
        if config.checkpoint_disabled {
            return Err(RuntimeError::Storage(
                "the durable store persists at checkpoint boundaries; checkpoint_off \
                 conflicts with durable_dir"
                    .into(),
            ));
        }
        let workers = config.workers;
        let vertices = graph.num_vertices();
        let halt = config.durable_halt_after;
        let (session, scrubs) = if config.durable_resume {
            DurableSession::open(&dir, workers, vertices, halt, V::encode, V::decode)?
        } else {
            (
                DurableSession::create(&dir, workers, vertices, halt, V::encode, V::decode)?,
                Vec::new(),
            )
        };
        Self::new_inner(graph, partition, config, init, Some(session), scrubs)
    }

    /// Resumes a killed run from the durable checkpoint store in
    /// `config.durable_dir`: the scrub pass loads the newest valid
    /// generation (falling back past damaged ones), the loaded checkpoint
    /// and delta log replay as the driver re-executes, and the run
    /// continues bit-identically to an uninterrupted one.
    pub fn resume(
        graph: Arc<Graph>,
        partition: Arc<PartitionMap>,
        mut config: ClusterConfig,
        init: impl Fn(VertexId) -> V,
    ) -> Result<Self, RuntimeError>
    where
        V: DurableValue,
    {
        config.durable_resume = true;
        Self::new_durable(graph, partition, config, init)
    }

    fn new_inner(
        graph: Arc<Graph>,
        partition: Arc<PartitionMap>,
        config: ClusterConfig,
        init: impl Fn(VertexId) -> V,
        durable: Option<DurableSession<V>>,
        scrubs: Vec<ScrubReport>,
    ) -> Result<Self, RuntimeError> {
        if config.workers == 0 {
            return Err(RuntimeError::NoWorkers);
        }
        if partition.num_workers() != config.workers {
            return Err(RuntimeError::PartitionMismatch {
                config: config.workers,
                partition: partition.num_workers(),
            });
        }
        if partition.num_vertices() != graph.num_vertices() {
            return Err(RuntimeError::GraphMismatch {
                graph: graph.num_vertices(),
                partition: partition.num_vertices(),
            });
        }
        if let Some(plan) = &config.fault_plan {
            plan.validate(config.workers)
                .map_err(RuntimeError::InvalidFaultPlan)?;
        }
        if config.storage == StorageMode::Block && graph.block_handle().is_none() {
            return Err(RuntimeError::Storage(
                "block storage requires a block-backed graph (open it via \
                 flash_graph::blocks::open_blocks)"
                    .into(),
            ));
        }
        let n = graph.num_vertices();
        let states = (0..config.workers)
            .map(|_| WorkerState::new(n, &init))
            .collect();
        let workers = config.workers;
        let transport = config
            .fault_plan
            .as_ref()
            .filter(|p| p.has_channel_faults())
            .map(|p| Transport::new(p, workers));
        let injector = config
            .fault_plan
            .clone()
            .map(|p| FaultInjector::new(p, workers));
        let consensus = injector.as_ref().map(|_| Consensus::new());
        // Rollback needs a checkpoint to roll back to, so a fault plan
        // forces periodic checkpointing on even if the config left the
        // interval at 0 (the `faults` builder normally sets it already) —
        // unless the config explicitly opted out via `checkpoint_off`.
        // (The durable store likewise persists at checkpoint boundaries,
        // so it forces the interval on the same way.)
        let checkpoint_every = if config.checkpoint_disabled {
            0
        } else if config.checkpoint_every == 0 && (injector.is_some() || durable.is_some()) {
            DEFAULT_CHECKPOINT_INTERVAL as u64
        } else {
            config.checkpoint_every as u64
        };
        // Scratch buffers come from the config's shared pool when one is
        // attached (serving sessions), else start fresh. Pooled buffers
        // are handed out pristine and returned at drop.
        let buffers = match &config.buffer_pool {
            Some(pool) => pool.checkout(),
            None => StepBuffers::new(),
        };
        let mut cluster = Cluster {
            graph,
            partition,
            config,
            states,
            stats: RunStats::default(),
            next_step: 0,
            next_seq: 0,
            injector,
            transport,
            consensus,
            recovery: RecoveryLog::new(),
            checkpoint_every,
            failed: None,
            durable,
            disk_ioerr: false,
            disk_damage: Vec::new(),
            buffers,
            // A fresh scope per cluster: counters start at zero and the
            // FIFO caches are cold, regardless of how many other clusters
            // already streamed from the same graph.
            stream_scope: Arc::new(StreamScope::new()),
            stream_mark: StreamSnapshot::default(),
        };
        cluster.stats.storage = cluster.storage_info();
        // The run_meta header is always the first trace line: analyzers
        // (flash_trace) validate its schema version before reading on.
        let hotpath = match cluster.config.hotpath {
            HotPath::PooledParallel => "pooled-parallel",
            HotPath::FreshSerial => "fresh-serial",
        };
        let (seed, fault_plan) = match &cluster.config.fault_plan {
            None => (0, "none".to_string()),
            Some(p) => (
                p.seed,
                format!(
                    "specs={} loss={} dup={} corrupt={} retries={}",
                    p.specs.len(),
                    p.loss,
                    p.dup_rate,
                    p.corrupt_rate,
                    p.max_retries
                ),
            ),
        };
        cluster.emit(EventKind::RunMeta {
            schema: flash_obs::TRACE_SCHEMA_VERSION,
            seed,
            workers: cluster.config.workers,
            hosts: cluster.partition.num_live_hosts(),
            hotpath: hotpath.to_string(),
            fault_plan,
        });
        let (net_latency_us, net_bandwidth_bps) = match &cluster.config.network {
            Some(net) => (
                net.latency.as_micros() as u64,
                net.bandwidth_bytes_per_sec as u64,
            ),
            None => (0, 0),
        };
        cluster.emit(EventKind::RunStart {
            workers: cluster.config.workers,
            vertices: cluster.graph.num_vertices(),
            edges: cluster.graph.num_edges(),
            net_latency_us,
            net_bandwidth_bps,
        });
        // A cluster under a fault plan seats its coordinator before the
        // first superstep, so every later decision has a leader to commit
        // it — and `leader@0` has someone to crash.
        let live = cluster.partition.live_hosts();
        cluster.elect_leader(0, &live);
        // Surface what the resume-time scrub pass found: each damaged
        // generation is one event (and one fallback hop when an older
        // generation remained to fall back to).
        for report in scrubs {
            cluster.stats.durability.scrub_repairs += 1;
            if report.fallback {
                cluster.stats.durability.fallbacks += 1;
            }
            cluster.emit(EventKind::CheckpointScrubbed {
                generation: report.generation,
                reason: report.reason,
                fallback: report.fallback,
            });
        }
        // Scripted faults wholly before the resume frontier already fired
        // in the killed run; spending them keeps a resumed run from
        // re-firing them *after* the frontier (where `step <= now` would
        // otherwise match). Within the replayed prefix the loaded frames
        // are authoritative anyway.
        if let Some(frontier) = cluster.durable.as_ref().and_then(|d| d.resume_frontier()) {
            if let Some(inj) = &mut cluster.injector {
                inj.drain_through(frontier);
            }
        }
        Ok(cluster)
    }

    /// The shared graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The shared graph, by owning handle.
    pub fn graph_arc(&self) -> Arc<Graph> {
        Arc::clone(&self.graph)
    }

    /// The partition map.
    pub fn partition(&self) -> &PartitionMap {
        &self.partition
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Mutable configuration access (e.g. to flip the mode policy between
    /// runs of a mode-ablation benchmark).
    pub fn config_mut(&mut self) -> &mut ClusterConfig {
        &mut self.config
    }

    /// Number of workers `m`.
    pub fn num_workers(&self) -> usize {
        self.config.workers
    }

    /// Number of vertices `|V|`.
    pub fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    /// Statistics recorded so far.
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// A fresh snapshot of the storage footprint: the configured mode,
    /// the resident vertex-state bytes (every worker holds a full replica
    /// of the `n`-slot state array — the only per-vertex data a streaming
    /// run keeps in memory), the graph's owned-heap vs memory-mapped
    /// split, and the dense/sparse block census when block-backed.
    fn storage_info(&self) -> StorageInfo {
        let mut info = StorageInfo {
            mode: match self.config.storage {
                StorageMode::InMemory => "in-memory",
                StorageMode::Block => "block",
            },
            resident_state_bytes: (self.states.len() as u64)
                .saturating_mul(self.graph.num_vertices() as u64)
                .saturating_mul(std::mem::size_of::<V>() as u64),
            graph_heap_bytes: self.graph.heap_bytes() as u64,
            graph_mapped_bytes: self.graph.mapped_bytes() as u64,
            dense_blocks: 0,
            sparse_blocks: 0,
        };
        if let Some(h) = self.graph.block_handle() {
            info.dense_blocks = h.grid().num_dense() as u64;
            info.sparse_blocks = h.grid().num_sparse() as u64;
        }
        info
    }

    /// Takes and resets the recorded statistics, emitting a `run_end`
    /// trace event summarizing them.
    pub fn take_stats(&mut self) -> RunStats {
        self.stats.storage = self.storage_info();
        let stats = std::mem::take(&mut self.stats);
        let simulated = stats.simulated_parallel_time();
        self.emit(EventKind::RunEnd {
            supersteps: stats.num_supersteps(),
            total_bytes: stats.total_bytes(),
            total_messages: stats.total_messages(),
            simulated_parallel_us: us_half_up(simulated),
            simulated_parallel_ns: ns_u64(simulated),
        });
        self.stats.storage = self.storage_info();
        stats
    }

    /// The id the next superstep will carry in trace events. Layered
    /// operators (the adaptive `EDGEMAP` dispatch) use it to tag decision
    /// events with the step they decide for.
    pub fn next_step_id(&self) -> u64 {
        self.next_step
    }

    /// This cluster's private block-streaming scope. Streamed kernels
    /// replay their block-touch lists against it so storage accounting
    /// stays per run even when several clusters share one graph.
    pub fn stream_scope(&self) -> &Arc<StreamScope> {
        &self.stream_scope
    }

    /// The terminal fault-recovery error, if some superstep exhausted its
    /// retry budget — or the reliable-delivery transport exhausted its
    /// retransmit budget for a batch. After exhaustion the failing layer
    /// (injector or transport) is disabled and the rest of the program
    /// executes normally (the simulation stays deterministic), so
    /// converged values remain well-defined — but the run must be
    /// reported as failed. Drivers check this once when finishing a run.
    pub fn fault_error(&self) -> Option<RuntimeError> {
        self.failed.clone()
    }

    /// Captures a consistent snapshot of every worker's replica — the same
    /// machinery the periodic checkpoint hook uses. Only valid at a
    /// superstep boundary (nothing staged), which is the only place driver
    /// code can call it.
    pub fn checkpoint(&self) -> Checkpoint<V> {
        Checkpoint::capture(self.next_step, &self.states, &self.partition)
    }

    /// Restores a snapshot taken by [`Cluster::checkpoint`], overwriting
    /// every replica and discarding staged writes. The superstep counter
    /// is *not* rewound: trace step ids stay unique across restores.
    pub fn restore(&mut self, cp: &Checkpoint<V>) {
        cp.restore(&mut self.states);
    }

    /// Emits a trace event to the configured sink (a no-op without one).
    /// Public so higher layers — kernel dispatch in `flash-core`, driver
    /// operators — can contribute events to the same ordered stream.
    pub fn emit(&mut self, kind: EventKind) {
        if let Some(sink) = &self.config.sink {
            let event = Event {
                seq: self.next_seq,
                kind,
            };
            self.next_seq += 1;
            sink.emit(&event);
        }
    }

    /// The authoritative (master) value of vertex `v`.
    pub fn value(&self, v: VertexId) -> &V {
        self.states[self.partition.owner(v)].current(v)
    }

    /// Extracts a result per vertex from the authoritative replicas.
    pub fn collect<T>(&self, f: impl Fn(VertexId, &V) -> T) -> Vec<T> {
        (0..self.graph.num_vertices() as VertexId)
            .map(|v| f(v, self.value(v)))
            .collect()
    }

    /// Overwrites `v`'s value on **all** replicas, outside any superstep.
    ///
    /// This is the escape hatch global/auxiliary operators (the paper's
    /// `REDUCE`, `dsu` reconciliation) use to install driver-computed
    /// results; callers account for its traffic via
    /// [`Cluster::record_global`].
    pub fn set_value_global(&mut self, v: VertexId, val: V) {
        if self.injector.is_some() {
            // Driver-side writes must be in the redo log too, or a later
            // rollback would replay past them and lose their effect.
            self.recovery
                .record(StepDelta::global(v, &val, self.states.len()));
        }
        // Clone into all replicas but the last, which takes ownership.
        if let Some((last, rest)) = self.states.split_last_mut() {
            for st in rest {
                st.current[v as usize].clone_from(&val);
            }
            last.current[v as usize] = val;
        }
    }

    /// Thread count for superstep bookkeeping phases (serialization
    /// bucketing, the sync fan-out scan): one thread per logical worker
    /// under the pooled-parallel hot path, matching the
    /// one-thread-per-worker compute simulation. Serial under
    /// [`HotPath::FreshSerial`] and under `.sequential()` configs, so
    /// deterministic-by-construction test setups stay single-threaded.
    fn hotpath_threads(&self) -> usize {
        if self.config.hotpath == HotPath::FreshSerial || !self.config.parallel_workers {
            1
        } else {
            self.config.workers
        }
    }

    /// Hands out the per-owner updated-master lists: pooled under
    /// [`HotPath::PooledParallel`], freshly allocated otherwise.
    fn take_updated(&mut self, m: usize) -> Vec<Vec<VertexId>> {
        if self.config.hotpath == HotPath::FreshSerial {
            vec![Vec::new(); m]
        } else {
            self.buffers.take_updated(m)
        }
    }

    /// Returns a consumed [`StepOutput::updated`] buffer to the pool so the
    /// next superstep reuses its allocations. Optional — skipping it just
    /// drops the buffer — and a no-op under [`HotPath::FreshSerial`].
    pub fn recycle_updated(&mut self, updated: Vec<Vec<VertexId>>) {
        if self.config.hotpath != HotPath::FreshSerial {
            self.buffers.recycle_updated(updated);
        }
    }

    /// Records a driver-side global operation (gather/broadcast) in the
    /// statistics: `messages`/`bytes` of cross-worker traffic taking
    /// `elapsed` of wall time.
    pub fn record_global(&mut self, messages: u64, bytes: u64, elapsed: Duration) {
        // A global operation is a BSP barrier too: scripted rejoins land
        // here as well, so a program whose tail is all driver-side
        // reductions (TC, MSF, RC, CL) can still re-grow the cluster.
        self.maybe_rejoin();
        self.emit(EventKind::StepStart {
            step: self.next_step,
            kind: StepKind::Global.label().to_string(),
            active: 0,
        });
        let mut s = StepStats::new(StepKind::Global, 0);
        s.upd_messages = messages;
        s.upd_bytes = bytes;
        s.communicate = elapsed;
        self.finish_step(s);
    }

    /// Runs a *direct* superstep: compute on every worker, publish
    /// whole-value master writes, then synchronize mirrors. Backs
    /// `VERTEXMAP` and `EDGEMAPDENSE`, which update masters without a
    /// reduce function.
    pub fn step_direct<Out: Send>(
        &mut self,
        kind: StepKind,
        active: usize,
        scope: SyncScope,
        f: impl Fn(&mut WorkerCtx<'_, V>) -> Out + Sync,
    ) -> StepOutput<Out> {
        self.maybe_rejoin();
        self.poll_disk_faults();
        self.maybe_checkpoint();
        let step_id = self.next_step;
        self.emit(EventKind::StepStart {
            step: step_id,
            kind: kind.label().to_string(),
            active,
        });
        self.emit_sync_plan(step_id, scope);
        let mut stats = StepStats::new(kind, active);

        let t0 = Instant::now();
        let (per_worker, durations) = self.compute_with_recovery(step_id, &f);
        stats.compute = t0.elapsed();
        let (host_max, host_min) = self.host_makespan(&durations);
        stats.compute_max = host_max;
        stats.compute_min = host_min;
        self.emit_worker_phases(step_id, &durations);

        debug_assert!(
            self.states.iter().all(|s| s.pending.is_empty()),
            "direct superstep must not stage reduce-updates; use step_reduce"
        );

        // Publish direct writes (master-local, no cross-worker traffic).
        let t1 = Instant::now();
        let m = self.states.len();
        let mut updated: Vec<Vec<VertexId>> = self.take_updated(m);
        for (w, st) in self.states.iter_mut().enumerate() {
            let writes = std::mem::take(&mut st.direct);
            updated[w].reserve(writes.len());
            for (v, val) in writes {
                st.current[v as usize] = val;
                updated[w].push(v);
            }
            updated[w].sort_unstable();
            updated[w].dedup();
        }
        stats.communicate = t1.elapsed();

        self.sync_mirrors(&updated, scope, &mut stats);
        self.record_delta(&mut updated);
        self.finish_step(stats);
        StepOutput {
            per_worker,
            updated,
        }
    }

    /// Runs a *reduce* superstep: compute on every worker, combine staged
    /// `put` temporaries into masters via `reduce` (mirror→master round),
    /// then synchronize mirrors (master→mirror round). Backs
    /// `EDGEMAPSPARSE` — the paper's three-phase procedure with "two rounds
    /// of message-passing".
    pub fn step_reduce<Out: Send>(
        &mut self,
        active: usize,
        scope: SyncScope,
        reduce: impl Fn(&V, &mut V) + Sync,
        f: impl Fn(&mut WorkerCtx<'_, V>) -> Out + Sync,
    ) -> StepOutput<Out> {
        self.maybe_rejoin();
        self.poll_disk_faults();
        self.maybe_checkpoint();
        let step_id = self.next_step;
        self.emit(EventKind::StepStart {
            step: step_id,
            kind: StepKind::EdgeMapSparse.label().to_string(),
            active,
        });
        self.emit_sync_plan(step_id, scope);
        let mut stats = StepStats::new(StepKind::EdgeMapSparse, active);

        let t0 = Instant::now();
        let (per_worker, durations) = self.compute_with_recovery(step_id, &f);
        stats.compute = t0.elapsed();
        let (host_max, host_min) = self.host_makespan(&durations);
        stats.compute_max = host_max;
        stats.compute_min = host_min;
        self.emit_worker_phases(step_id, &durations);

        debug_assert!(
            self.states.iter().all(|s| s.direct.is_empty()),
            "reduce superstep must not stage direct writes; use step_direct"
        );

        // Serialization: route mirror-side accumulated temporaries to the
        // owners of their target vertices — in parallel with pooled buffers
        // under the default hot path (see `route_updates_pooled` for the
        // bit-identical-ordering argument).
        let m = self.states.len();
        let fresh = self.config.hotpath == HotPath::FreshSerial;
        let (mut buckets, upd_batches) = if fresh {
            self.route_updates_serial(&mut stats)
        } else {
            self.route_updates_pooled(&mut stats)
        };
        stats.delivery += self.deliver_round(step_id, "upd", &upd_batches);

        // Communication round 1: masters merge incoming temporaries into
        // their current value (d_new = R(t, d) per Algorithm 6).
        let t2 = Instant::now();
        let mut updated: Vec<Vec<VertexId>> = self.take_updated(m);
        for (owner, bucket) in buckets.iter_mut().enumerate() {
            let st = &mut self.states[owner];
            updated[owner].reserve(bucket.len());
            for (v, temp) in bucket.drain(..) {
                reduce(&temp, &mut st.current[v as usize]);
                updated[owner].push(v);
            }
            updated[owner].sort_unstable();
            updated[owner].dedup();
        }
        stats.communicate = t2.elapsed();
        if !fresh {
            self.buffers.put_buckets(buckets);
            self.buffers.put_upd_batches(upd_batches);
        }

        self.sync_mirrors(&updated, scope, &mut stats);
        self.record_delta(&mut updated);
        self.finish_step(stats);
        StepOutput {
            per_worker,
            updated,
        }
    }

    /// The original single-threaded, fresh-allocation serialization pass,
    /// kept verbatim as the [`HotPath::FreshSerial`] baseline so A/B
    /// comparisons measure the real before/after, not a degraded variant.
    fn route_updates_serial(
        &mut self,
        stats: &mut StepStats,
    ) -> (Vec<Vec<(VertexId, V)>>, RoundBatches) {
        let t1 = Instant::now();
        let m = self.states.len();
        let track_batches = self.transport.is_some();
        let mut upd_batches = RoundBatches::new();
        let mut buckets: Vec<Vec<(VertexId, V)>> = vec![Vec::new(); m];
        for (w, st) in self.states.iter_mut().enumerate() {
            for (v, temp) in st.pending.drain() {
                let owner = self.partition.owner(v);
                // Traffic crosses the wire only between distinct physical
                // hosts: after an elastic rebalance several logical workers
                // may share a host, and their exchanges become local moves.
                let sender_host = self.partition.host_of_worker(w);
                let owner_host = self.partition.host_of_worker(owner);
                if owner_host != sender_host {
                    let bytes = (4 + temp.bytes()) as u64;
                    stats.upd_messages += 1;
                    stats.upd_bytes += bytes;
                    if track_batches {
                        let batch = upd_batches
                            .entry((sender_host, owner_host))
                            .or_insert((0, 0));
                        batch.0 += 1;
                        batch.1 += bytes;
                    }
                }
                buckets[owner].push((v, temp));
            }
        }
        stats.serialize = t1.elapsed();
        // One thread did everything: the per-thread makespan is the total.
        stats.serialize_max = stats.serialize;
        (buckets, upd_batches)
    }

    /// Pooled-parallel serialization: each thread drains a contiguous chunk
    /// of workers into its own (pooled) bucket set, and the sets are merged
    /// in chunk — i.e. ascending-worker — order.
    ///
    /// The merged bucket order is *bit-identical* to the serial pass: each
    /// worker's `pending` map is drained exactly once by exactly one
    /// thread, so its internal drain order is unchanged, and concatenating
    /// per-chunk buckets in chunk order reproduces the serial outer loop's
    /// front-to-back worker order. Message/byte counters and cross-host
    /// batch maps are commutative sums, merged in the same order for good
    /// measure (DESIGN.md §11).
    fn route_updates_pooled(
        &mut self,
        stats: &mut StepStats,
    ) -> (Vec<Vec<(VertexId, V)>>, RoundBatches) {
        let t1 = Instant::now();
        let m = self.states.len();
        let mut buckets = self.buffers.take_buckets(m);
        let mut upd_batches = self.buffers.take_upd_batches();
        let mut bucket_sets = std::mem::take(&mut self.buffers.bucket_sets);
        let track_batches = self.transport.is_some();
        let partition = Arc::clone(&self.partition);
        let threads = self.hotpath_threads().min(m);
        let partials = parallel_scratch_chunks(
            &mut self.states,
            &mut bucket_sets,
            threads,
            Vec::new,
            |base, chunk, set: &mut Vec<Vec<(VertexId, V)>>| {
                if set.len() != m {
                    set.resize_with(m, Vec::new);
                }
                let t = Instant::now();
                let mut messages = 0u64;
                let mut bytes_total = 0u64;
                let mut batches = RoundBatches::new();
                for (i, st) in chunk.iter_mut().enumerate() {
                    let sender_host = partition.host_of_worker(base + i);
                    for (v, temp) in st.pending.drain() {
                        let owner = partition.owner(v);
                        let owner_host = partition.host_of_worker(owner);
                        if owner_host != sender_host {
                            let bytes = (4 + temp.bytes()) as u64;
                            messages += 1;
                            bytes_total += bytes;
                            if track_batches {
                                let batch =
                                    batches.entry((sender_host, owner_host)).or_insert((0, 0));
                                batch.0 += 1;
                                batch.1 += bytes;
                            }
                        }
                        set[owner].push((v, temp));
                    }
                }
                (messages, bytes_total, batches, t.elapsed())
            },
        );
        let used_sets = partials.len();
        for (messages, bytes, batches, elapsed) in partials {
            stats.upd_messages += messages;
            stats.upd_bytes += bytes;
            for (key, (bm, bb)) in batches {
                let batch = upd_batches.entry(key).or_insert((0, 0));
                batch.0 += bm;
                batch.1 += bb;
            }
            // Simulated makespan of the phase: the slowest thread, the
            // analogue of `compute_max` for the compute phase.
            stats.serialize_max = stats.serialize_max.max(elapsed);
        }
        for set in bucket_sets.iter_mut().take(used_sets) {
            for (owner, local) in set.iter_mut().enumerate() {
                buckets[owner].append(local);
            }
        }
        self.buffers.bucket_sets = bucket_sets;
        stats.serialize = t1.elapsed();
        if threads == 1 {
            stats.serialize_max = stats.serialize;
        }
        (buckets, upd_batches)
    }

    /// Takes a periodic checkpoint when one is due: at the first superstep
    /// after checkpointing is enabled, then every `checkpoint_every`
    /// supersteps. Called at step entry, where nothing is staged — the BSP
    /// barrier is exactly where consistent snapshots are cheap.
    fn maybe_checkpoint(&mut self) {
        if self.checkpoint_every == 0 {
            return;
        }
        let due = match self.recovery.checkpoint_step() {
            None => true,
            Some(at) => self.next_step.saturating_sub(at) >= self.checkpoint_every,
        };
        if !due {
            return;
        }
        // Durable store first: on a resumed run the loaded checkpoint
        // frame is authoritative (it overwrites the re-executed state
        // before the snapshot below captures it), and on a live run the
        // two-phase commit must land *before* the consensus
        // CheckpointCommit — the replicated log never commits a
        // generation whose bytes are not durable. A failed write skips
        // the whole checkpoint (install, stats, consensus): the interval
        // logic then retries at the very next superstep, and the store
        // self-heals by rewriting the full generation.
        if self.durable.is_some() {
            let step = self.next_step;
            let ioerr = self.disk_ioerr;
            let mut outcome = Ok(DiskWrite::None);
            if let Some(d) = self.durable.as_mut() {
                outcome =
                    d.on_checkpoint(step, &mut self.states, ioerr, &mut self.stats.durability);
                debug_assert!(
                    d.last_apply_matched,
                    "resumed re-execution diverged from the durable log at the step-{step} \
                     checkpoint"
                );
            }
            match outcome {
                Ok(DiskWrite::None) => {}
                Ok(DiskWrite::Committed {
                    generation,
                    frames,
                    bytes,
                }) => {
                    self.emit(EventKind::CheckpointDurable {
                        generation,
                        step,
                        frames,
                        bytes,
                    });
                }
                Ok(DiskWrite::Failed { op }) => {
                    self.emit(EventKind::DurableIoError {
                        step,
                        op: op.to_string(),
                    });
                    return;
                }
                Err(e) => {
                    if self.failed.is_none() {
                        self.failed = Some(e);
                    }
                    return;
                }
            }
        }
        let cp = Checkpoint::capture(self.next_step, &self.states, &self.partition);
        self.stats.recovery.checkpoints += 1;
        self.stats.recovery.checkpoint_bytes += cp.bytes;
        if let Some(net) = &self.config.network {
            // Persisting a checkpoint costs one round of shipping the
            // master state off-worker.
            let cost = net.cost(1, cp.bytes);
            self.stats.recovery.checkpoint_time += cost;
            if self.config.metrics {
                self.stats
                    .metrics
                    .record_duration("recovery/checkpoint_ns", cost);
            }
        }
        self.emit(EventKind::CheckpointTaken {
            step: self.next_step,
            bytes: cp.bytes,
            interval: self.checkpoint_every,
        });
        // The snapshot becomes the durable recovery point only once a
        // majority of the live hosts commits it to the replicated log —
        // otherwise a survivor could roll back to a checkpoint the rest of
        // the cluster never heard about.
        let voters = self.partition.num_live_hosts();
        self.commit_decision(
            self.next_step,
            LogEntryKind::CheckpointCommit { bytes: cp.bytes },
            voters,
        );
        self.recovery.install(cp);
    }

    /// Consumes the disk-fault specs armed for the superstep about to run
    /// (`ioerr@`/`torn@`/`bitrot@`), splitting them into the write-failure
    /// flag the durable hooks consult and the at-rest damage
    /// [`Cluster::record_delta`] applies at the step's end. Inert without
    /// a durable store — the specs would have nothing to hit.
    fn poll_disk_faults(&mut self) {
        self.disk_ioerr = false;
        if self.durable.is_none() {
            return;
        }
        let step = self.next_step;
        let specs = match &mut self.injector {
            Some(inj) => inj.disk_faults(step),
            None => Vec::new(),
        };
        for spec in specs {
            self.emit(EventKind::FaultInjected {
                step,
                worker: spec.worker,
                kind: spec.kind.label().to_string(),
                attempt: 0,
            });
            if spec.kind == FaultKind::Ioerr {
                self.disk_ioerr = true;
            } else {
                // The mask is a seeded nonzero byte, so a bitrot flip is
                // guaranteed to actually change the file.
                let mask = match &mut self.injector {
                    Some(inj) => (inj.corruption_nonce() % 255 + 1) as u8,
                    None => 1,
                };
                self.disk_damage.push((spec.kind, spec.byte, mask));
            }
        }
    }

    /// Appends the superstep's published writes to the redo log (only
    /// while a fault plan is active — fault-free runs pay nothing), after
    /// feeding them through the durable store's delta hook. On a resumed
    /// run the loaded delta frame is authoritative: it overwrites both the
    /// re-executed state and the `updated` lists, so the driver's control
    /// flow continues exactly as the killed run's did.
    fn record_delta(&mut self, updated: &mut Vec<Vec<VertexId>>) {
        if self.durable.is_some() {
            let step = self.next_step;
            let ioerr = self.disk_ioerr;
            let mut outcome = Ok(DiskWrite::None);
            if let Some(d) = self.durable.as_mut() {
                outcome = d.on_delta(
                    step,
                    &mut self.states,
                    updated,
                    ioerr,
                    &mut self.stats.durability,
                );
                debug_assert!(
                    d.last_apply_matched,
                    "resumed re-execution diverged from the durable log at step {step}"
                );
            }
            match outcome {
                Ok(DiskWrite::Failed { op }) => {
                    self.emit(EventKind::DurableIoError {
                        step,
                        op: op.to_string(),
                    });
                }
                Ok(_) => {}
                Err(e) => {
                    if self.failed.is_none() {
                        self.failed = Some(e);
                    }
                }
            }
            // At-rest damage lands at the end of the step, after the
            // writes it is scripted to corrupt, and wedges the store so
            // no later rewrite masks it.
            let damage = std::mem::take(&mut self.disk_damage);
            if let Some(d) = self.durable.as_mut() {
                for (kind, byte, mask) in damage {
                    d.damage(kind, byte, mask);
                }
                // The scripted kill switch: persistence froze at this
                // step, so the in-memory run from here on is doomed work
                // a real kill would lose — the run degrades to a clean
                // `Halted` while compute continues deterministically
                // (the QuorumLost degradation pattern).
                if let Some(k) = d.halted_at() {
                    if self.failed.is_none() {
                        self.failed = Some(RuntimeError::Halted { step: k });
                    }
                }
            }
        }
        if self.injector.is_some() {
            self.recovery
                .record(StepDelta::capture(&self.states, updated));
        }
    }

    /// Runs the compute phase under the fault injector: detected failures
    /// (crashes, corrupted sync payloads) roll all workers back to the
    /// last checkpoint, replay the redo log, charge backoff, and retry.
    /// After `max_retries` failed retries the run degrades gracefully: the
    /// injector is disabled, the final attempt's output is kept (keeping
    /// the simulation deterministic), and a clean
    /// [`RuntimeError::RecoveryExhausted`] is surfaced via
    /// [`Cluster::fault_error`].
    fn compute_with_recovery<Out: Send>(
        &mut self,
        step_id: u64,
        f: &(impl Fn(&mut WorkerCtx<'_, V>) -> Out + Sync),
    ) -> (Vec<Out>, Vec<Duration>) {
        if self.injector.is_none() {
            return self.run_compute(f);
        }
        let mut attempt: u64 = 0;
        loop {
            let (outs, mut durations) = self.run_compute(f);

            // Stragglers: charge the delay into the worker's compute time
            // (it shows up as barrier skew); no recovery needed.
            let stragglers = match &mut self.injector {
                Some(inj) => inj.stragglers(step_id),
                None => Vec::new(),
            };
            for s in &stragglers {
                if let Some(d) = durations.get_mut(s.worker) {
                    *d += s.delay;
                }
                self.stats.recovery.stragglers += 1;
                self.stats.recovery.straggler_delay += s.delay;
                self.emit(EventKind::FaultInjected {
                    step: step_id,
                    worker: s.worker,
                    kind: s.kind.label().to_string(),
                    attempt,
                });
            }

            // Failure detector, deadline half: a straggler whose simulated
            // delay reaches the detector timeout missed the barrier for good
            // and is declared permanently dead right away. A config-level
            // override (`--detector-timeout`) wins over the plan's
            // `detector=` option.
            let detector = match self.config.detector_timeout {
                Some(d) => d,
                None => self
                    .injector
                    .as_ref()
                    .map_or(Duration::MAX, |i| i.plan().detector_timeout),
            };
            let mut deadline_dead: Vec<usize> = stragglers
                .iter()
                .filter(|s| s.delay >= detector)
                .map(|s| s.worker)
                .collect();
            deadline_dead.sort_unstable();
            deadline_dead.dedup();
            if !deadline_dead.is_empty() {
                match self.declare_dead(step_id, &deadline_dead, "deadline", attempt) {
                    Ok(()) => {
                        attempt = 0;
                        continue;
                    }
                    Err(e) => {
                        if self.failed.is_none() {
                            self.failed = Some(e);
                        }
                        if let Some(inj) = &mut self.injector {
                            inj.active = false;
                        }
                        return (outs, durations);
                    }
                }
            }

            // Coordinator crash: a `leader@` fault kills whichever host
            // currently leads the control plane. The survivors elect a new
            // leader, the death declaration commits under the new term, and
            // the superstep retries from the checkpoint like any other
            // permanent loss — so results stay bit-identical.
            let leader_fires = match &mut self.injector {
                Some(inj) => inj.leader_crashes(step_id),
                None => 0,
            };
            if leader_fires > 0 {
                let mut error = None;
                let mut crashed = false;
                for _ in 0..leader_fires {
                    let Some(leader) = self.consensus.as_ref().and_then(|c| c.leader()) else {
                        break;
                    };
                    crashed = true;
                    self.stats.consensus.leader_crashes += 1;
                    self.stats.recovery.faults_injected += 1;
                    self.emit(EventKind::FaultInjected {
                        step: step_id,
                        worker: leader,
                        kind: FaultKind::Leader.label().to_string(),
                        attempt,
                    });
                    if let Some(cons) = &mut self.consensus {
                        cons.vacate();
                    }
                    if let Err(e) = self.declare_dead(step_id, &[leader], "leader", attempt) {
                        error = Some(e);
                        break;
                    }
                }
                match error {
                    None if crashed => {
                        attempt = 0;
                        continue;
                    }
                    None => {}
                    Some(e) => {
                        if self.failed.is_none() {
                            self.failed = Some(e);
                        }
                        if let Some(inj) = &mut self.injector {
                            inj.active = false;
                        }
                        return (outs, durations);
                    }
                }
            }

            // Byzantine workers: a `lie@` fault makes a worker report a
            // checksum-mismatched sync payload. Every live host recomputes
            // the payload checksum independently; a strict majority
            // agreeing on the true value pins the lie on the worker, and
            // the accusation escalates to a committed death declaration.
            // Without enough honest replicas to form that majority the run
            // degrades to [`RuntimeError::QuorumLost`].
            let liars = match &mut self.injector {
                Some(inj) => inj.liars(step_id),
                None => Vec::new(),
            };
            if !liars.is_empty() {
                let mut error = None;
                let mut accused = false;
                for w in liars {
                    let st = &self.states[w];
                    let expected = payload_checksum(
                        st.pending
                            .iter()
                            .map(|(v, val)| (*v, val.bytes()))
                            .chain(st.direct.iter().map(|(v, val)| (*v, val.bytes()))),
                    );
                    let nonce = match &mut self.injector {
                        Some(inj) => inj.corruption_nonce(),
                        None => 1,
                    };
                    let observed = expected ^ nonce;
                    let liar_host = self.partition.host_of_worker(w);
                    let votes: Vec<(usize, u64)> = self
                        .partition
                        .live_hosts()
                        .into_iter()
                        .map(|h| (h, if h == liar_host { observed } else { expected }))
                        .collect();
                    self.stats.recovery.faults_injected += 1;
                    self.emit(EventKind::FaultInjected {
                        step: step_id,
                        worker: w,
                        kind: FaultKind::Lie.label().to_string(),
                        attempt,
                    });
                    match checksum_quorum(&votes) {
                        Ok(verdict) => {
                            self.stats.consensus.accusations += 1;
                            self.emit(EventKind::WorkerAccused {
                                step: step_id,
                                worker: w,
                                accusers: verdict.accusers,
                                quorum: verdict.quorum,
                                expected: verdict.expected,
                                observed,
                            });
                            accused = true;
                            if let Err(e) = self.declare_dead(step_id, &[w], "accused", attempt) {
                                error = Some(e);
                            }
                        }
                        Err(needed) => {
                            error = Some(RuntimeError::QuorumLost {
                                step: step_id,
                                live: votes.len(),
                                needed,
                            });
                        }
                    }
                    if error.is_some() {
                        break;
                    }
                }
                match error {
                    None if accused => {
                        attempt = 0;
                        continue;
                    }
                    None => {}
                    Some(e) => {
                        if self.failed.is_none() {
                            self.failed = Some(e);
                        }
                        if let Some(inj) = &mut self.injector {
                            inj.active = false;
                        }
                        return (outs, durations);
                    }
                }
            }

            let detected = self.detect_failures(step_id);
            if detected.is_empty() {
                return (outs, durations);
            }
            for spec in &detected {
                self.stats.recovery.faults_injected += 1;
                self.emit(EventKind::FaultInjected {
                    step: step_id,
                    worker: spec.worker,
                    kind: spec.kind.label().to_string(),
                    attempt,
                });
            }

            let budget = self
                .injector
                .as_ref()
                .map_or(0, |i| u64::from(i.plan().max_retries));
            if attempt >= budget {
                // Failure detector, retry half: a `die` fault re-fires on
                // every attempt, so an exhausted budget on one distinguishes
                // a permanent loss from a transient fault that merely kept
                // recurring. The dead worker's partition re-homes onto the
                // survivors and the superstep retries with a fresh budget.
                let mut dead: Vec<usize> = detected
                    .iter()
                    .filter(|s| s.kind == FaultKind::Die)
                    .map(|s| s.worker)
                    .collect();
                dead.sort_unstable();
                dead.dedup();
                if !dead.is_empty() {
                    match self.declare_dead(step_id, &dead, "die", attempt) {
                        Ok(()) => {
                            attempt = 0;
                            continue;
                        }
                        Err(e) => {
                            if self.failed.is_none() {
                                self.failed = Some(e);
                            }
                            if let Some(inj) = &mut self.injector {
                                inj.active = false;
                            }
                            return (outs, durations);
                        }
                    }
                }
                if self.failed.is_none() {
                    self.failed = Some(RuntimeError::RecoveryExhausted {
                        step: step_id,
                        attempts: (attempt + 1) as u32,
                    });
                }
                if let Some(inj) = &mut self.injector {
                    inj.active = false;
                }
                return (outs, durations);
            }
            self.rollback(step_id, attempt);
            attempt += 1;
        }
    }

    /// Decides which scripted failures actually fire this attempt. Crashes
    /// are detected at the barrier (missed heartbeat). Corruption is
    /// detected honestly: the worker's staged sync payload is framed as
    /// `(vertex, byte-length)` records, checksummed, and the transmitted
    /// checksum — which the fault XORs with a nonzero PRNG nonce — is
    /// compared against the recomputed one.
    fn detect_failures(&mut self, step_id: u64) -> Vec<FaultSpec> {
        let failures = match &mut self.injector {
            Some(inj) => inj.failures(step_id),
            None => Vec::new(),
        };
        let mut detected = Vec::new();
        for spec in failures {
            match spec.kind {
                FaultKind::Crash | FaultKind::Die => detected.push(spec),
                FaultKind::CorruptSync => {
                    let st = &self.states[spec.worker];
                    let computed = payload_checksum(
                        st.pending
                            .iter()
                            .map(|(v, val)| (*v, val.bytes()))
                            .chain(st.direct.iter().map(|(v, val)| (*v, val.bytes()))),
                    );
                    let nonce = match &mut self.injector {
                        Some(inj) => inj.corruption_nonce(),
                        None => 0,
                    };
                    let transmitted = computed ^ nonce;
                    if transmitted != computed {
                        detected.push(spec);
                    }
                }
                // Stragglers, rejoins, channel faults, the consensus
                // faults and the disk faults never surface here:
                // `failures()` filters them out (channel faults are
                // handled below the barrier by the transport; leader
                // crashes and lies have their own quorum paths in
                // `compute_with_recovery`; disk faults hit the durable
                // store through `poll_disk_faults`).
                FaultKind::Straggler
                | FaultKind::Rejoin
                | FaultKind::Drop
                | FaultKind::Duplicate
                | FaultKind::Reorder
                | FaultKind::Leader
                | FaultKind::Lie
                | FaultKind::Ioerr
                | FaultKind::Torn
                | FaultKind::Bitrot => {}
            }
        }
        detected
    }

    /// Replays any scripted `rejoin@` events due at the next superstep: the
    /// returning host reclaims its home partition (whose master state flows
    /// back over the simulated network) and its remaining fault specs
    /// re-arm. Adopted partitions stay where the rebalance put them.
    fn maybe_rejoin(&mut self) {
        let step_id = self.next_step;
        let rejoins = match &mut self.injector {
            Some(inj) => inj.rejoins(step_id),
            None => Vec::new(),
        };
        for spec in rejoins {
            let report = match Arc::make_mut(&mut self.partition).rejoin(spec.worker) {
                Ok(r) => r,
                // The worker was never actually declared dead (its `die`
                // never got to fire, or recovery already failed); the
                // rejoin has nothing to restore.
                Err(_) => continue,
            };
            if let Some(inj) = &mut self.injector {
                inj.mark_alive(spec.worker);
            }
            self.stats.recovery.workers_rejoined += 1;
            self.apply_migration(step_id, &report, "rejoin");
        }
    }

    /// Declares `dead` workers permanently lost at `step_id`: rolls every
    /// replica back to the last checkpoint (replaying the redo log to the
    /// current step), re-homes the dead hosts' partitions onto the
    /// survivors, and charges the migration traffic. Errors with
    /// [`RuntimeError::WorkerLost`] when no checkpoint exists to recover the
    /// lost masters from — survivors only hold stale mirrors, so without a
    /// checkpoint the authoritative state is simply gone.
    fn declare_dead(
        &mut self,
        step_id: u64,
        dead: &[usize],
        reason: &str,
        attempt: u64,
    ) -> Result<(), RuntimeError> {
        // This path is reached from fault handling, so it must degrade to
        // typed errors rather than panic — even on the "impossible" shapes
        // (an empty dead-set, a checkpoint that vanished between the check
        // and the rollback).
        let lost = dead.first().copied().unwrap_or(0);
        if self.recovery.checkpoint_step().is_none() {
            return Err(RuntimeError::WorkerLost {
                worker: lost,
                step: step_id,
            });
        }
        // Control plane first: the death is a replicated decision, voted
        // on by the survivors only (the dying hosts cannot acknowledge
        // their own funeral). If the current leader is among the dying —
        // or the leadership is already vacant — the survivors elect a new
        // leader before the declaration commits under its term.
        if self.consensus.is_some() {
            let survivors: Vec<usize> = self
                .partition
                .live_hosts()
                .into_iter()
                .filter(|h| !dead.contains(h))
                .collect();
            let leader_gone = match self.consensus.as_ref().and_then(|c| c.leader()) {
                None => true,
                Some(l) => dead.contains(&l) || !self.partition.is_host_live(l),
            };
            if leader_gone && !survivors.is_empty() {
                self.elect_leader(step_id, &survivors);
            }
            self.commit_decision(
                step_id,
                LogEntryKind::DeathDeclaration {
                    hosts: dead.to_vec(),
                    reason: reason.to_string(),
                },
                survivors.len(),
            );
        }
        for st in &mut self.states {
            st.discard_staged();
        }
        let (from_step, replayed, bytes) = match self.recovery.rollback(&mut self.states) {
            Some(r) => r,
            None => {
                return Err(RuntimeError::WorkerLost {
                    worker: lost,
                    step: step_id,
                })
            }
        };
        self.stats.recovery.rollbacks += 1;
        self.stats.recovery.replayed_supersteps += replayed;
        if let Some(net) = &self.config.network {
            let cost = net.recovery_cost(replayed, bytes);
            self.stats.recovery.replay_net += cost;
            if self.config.metrics {
                self.stats
                    .metrics
                    .record_duration("recovery/replay_ns", cost);
            }
        }
        self.emit(EventKind::RecoveryReplay {
            step: step_id,
            from_step,
            replayed,
            attempt,
            backoff_us: 0,
        });
        let report = Arc::make_mut(&mut self.partition)
            .rebalance(dead)
            .map_err(|_| RuntimeError::WorkerLost {
                worker: lost,
                step: step_id,
            })?;
        self.stats.recovery.workers_lost += dead.len() as u64;
        for &w in dead {
            if let Some(inj) = &mut self.injector {
                inj.mark_dead(w);
            }
            self.emit(EventKind::WorkerDeclaredDead {
                step: step_id,
                worker: w,
                reason: reason.to_string(),
                epoch: report.epoch,
            });
        }
        self.apply_migration(step_id, &report, reason);
        Ok(())
    }

    /// Applies one membership change: bumps the epoch counters, emits the
    /// `membership_epoch` and per-partition `state_migrated` events, and
    /// charges the bulk state transfer to the simulated network.
    fn apply_migration(&mut self, step_id: u64, report: &RebalanceReport, cause: &str) {
        self.stats.recovery.membership_epochs += 1;
        self.emit(EventKind::MembershipEpoch {
            epoch: report.epoch,
            step: step_id,
            live_hosts: self.partition.num_live_hosts(),
            moved_partitions: report.moved.len(),
            cause: cause.to_string(),
        });
        let mut total_bytes = 0u64;
        let mut migrated = Vec::with_capacity(report.moved.len());
        for mv in &report.moved {
            let masters = self.partition.masters(mv.worker);
            let st = &self.states[mv.worker];
            let bytes: u64 = masters
                .iter()
                .map(|&v| (4 + st.current[v as usize].bytes()) as u64)
                .sum();
            total_bytes += bytes;
            self.stats.recovery.vertices_migrated += masters.len() as u64;
            self.stats.recovery.migrated_bytes += bytes;
            migrated.push(EventKind::StateMigrated {
                epoch: report.epoch,
                partition: mv.worker,
                from: mv.from,
                to: mv.to,
                vertices: masters.len() as u64,
                bytes,
            });
        }
        for ev in migrated {
            self.emit(ev);
        }
        if !report.moved.is_empty() {
            if let Some(net) = &self.config.network {
                let cost = net.cost(1 + report.moved.len() as u32, total_bytes);
                self.stats.recovery.migration_net += cost;
                if self.config.metrics {
                    self.stats
                        .metrics
                        .record_duration("recovery/migration_ns", cost);
                }
            }
        }
        // The epoch bump is a control-plane decision: the survivors must
        // majority-commit it before acting under the new hosting.
        let voters = self.partition.num_live_hosts();
        self.commit_decision(
            step_id,
            LogEntryKind::EpochBump {
                epoch: report.epoch,
                cause: cause.to_string(),
            },
            voters,
        );
    }

    /// Wire bytes one replicated log record occupies per receiving
    /// replica: `(term, index, step)` plus a small tagged payload.
    const LOG_RECORD_BYTES: u64 = 64;

    /// Runs one election among `live` hosts through the control plane (a
    /// no-op without one): bumps the term, seats the smallest live host,
    /// charges the two-round vote traffic (RequestVote + grants) to the
    /// simulated network, and emits the `leader_elected` event.
    fn elect_leader(&mut self, step: u64, live: &[usize]) {
        let Some(cons) = &mut self.consensus else {
            return;
        };
        let Some(el) = cons.elect(live) else {
            // No live host to elect — the run is already degrading through
            // the membership error path; nothing to record here.
            return;
        };
        self.stats.consensus.elections += 1;
        if let Some(net) = &self.config.network {
            let cost = net.cost(2, Self::LOG_RECORD_BYTES * el.live_hosts as u64);
            self.stats.consensus.election_net += cost;
            if self.config.metrics {
                self.stats
                    .metrics
                    .record_duration("consensus/election_ns", cost);
            }
        }
        self.emit(EventKind::LeaderElected {
            term: el.term,
            leader: el.leader,
            step,
            votes: el.votes,
            live_hosts: el.live_hosts,
        });
    }

    /// Appends one decision to the replicated log and commits it with
    /// `voters` acknowledging replicas (a no-op without a control plane):
    /// charges the append + ack rounds to the simulated network and emits
    /// the `log_committed` event. A voter set that cannot form a majority
    /// degrades the run to [`RuntimeError::QuorumLost`] — set once, like
    /// every other terminal fault.
    fn commit_decision(&mut self, step: u64, kind: LogEntryKind, voters: usize) {
        let Some(cons) = &mut self.consensus else {
            return;
        };
        self.stats.consensus.entries_appended += 1;
        match cons.commit(step, kind.clone(), voters) {
            Ok(commit) => {
                self.stats.consensus.entries_committed += 1;
                if let Some(net) = &self.config.network {
                    let cost = net.cost(2, Self::LOG_RECORD_BYTES * voters as u64);
                    self.stats.consensus.commit_net += cost;
                    if self.config.metrics {
                        self.stats
                            .metrics
                            .record_duration("consensus/commit_ns", cost);
                    }
                }
                self.emit(EventKind::LogCommitted {
                    term: commit.term,
                    index: commit.index,
                    step,
                    kind: kind.label().to_string(),
                    acks: commit.acks,
                    quorum: commit.quorum,
                });
            }
            Err(needed) => {
                if self.failed.is_none() {
                    self.failed = Some(RuntimeError::QuorumLost {
                        step,
                        live: voters,
                        needed,
                    });
                }
            }
        }
    }

    /// Aggregates per-logical-worker compute durations into per-*host*
    /// makespans: co-hosted partitions execute serially on their shared
    /// host, so their durations add, and the barrier waits for the slowest
    /// live host. Fault-free (identity host map) this reduces to the plain
    /// max/min over workers.
    fn host_makespan(&self, durations: &[Duration]) -> (Duration, Duration) {
        let m = durations.len();
        let mut per_host = vec![Duration::ZERO; m];
        for (w, d) in durations.iter().enumerate() {
            per_host[self.partition.host_of_worker(w)] += *d;
        }
        let live = (0..m).filter(|&h| self.partition.is_host_live(h));
        let max = live.clone().map(|h| per_host[h]).max().unwrap_or_default();
        let min = live.map(|h| per_host[h]).min().unwrap_or_default();
        (max, min)
    }

    /// Rolls every worker back to the last checkpoint, replays the redo
    /// log, and charges the recovery cost (backoff + simulated replay
    /// traffic). Without a checkpoint (none due yet) the retry simply
    /// re-runs on the unmodified pre-step state, which the discarded
    /// staged writes make safe.
    fn rollback(&mut self, step_id: u64, attempt: u64) {
        for st in &mut self.states {
            st.discard_staged();
        }
        let (from_step, replayed, bytes) = match self.recovery.rollback(&mut self.states) {
            Some(r) => r,
            None => (step_id, 0, 0),
        };
        self.stats.recovery.rollbacks += 1;
        self.stats.recovery.replayed_supersteps += replayed;
        let backoff = self
            .injector
            .as_ref()
            .map(|i| i.plan().backoff(attempt as u32))
            .unwrap_or_default();
        self.stats.recovery.retry_backoff += backoff;
        if self.config.metrics {
            self.stats
                .metrics
                .record_duration("recovery/backoff_ns", backoff);
        }
        if let Some(net) = &self.config.network {
            let cost = net.recovery_cost(replayed, bytes);
            self.stats.recovery.replay_net += cost;
            if self.config.metrics {
                self.stats
                    .metrics
                    .record_duration("recovery/replay_ns", cost);
            }
        }
        self.emit(EventKind::RecoveryReplay {
            step: step_id,
            from_step,
            replayed,
            attempt,
            backoff_us: backoff.as_micros() as u64,
        });
    }

    /// Per-worker phase accounting at the barrier: takes (and resets) each
    /// worker's staged-op counters and emits one `worker_phase` event.
    fn emit_worker_phases(&mut self, step: u64, durations: &[Duration]) {
        for (w, dur) in durations.iter().enumerate() {
            // Counters reset unconditionally so a sink attached mid-run
            // never sees ops from earlier supersteps.
            let staged_puts = std::mem::take(&mut self.states[w].op_puts);
            let staged_writes = std::mem::take(&mut self.states[w].op_writes);
            if self.config.sink.is_some() {
                self.emit(EventKind::WorkerPhase {
                    step,
                    worker: w,
                    compute_us: us_half_up(*dur),
                    compute_ns: ns_u64(*dur),
                    staged_puts,
                    staged_writes,
                });
            }
        }
    }

    /// Emits the sync-plan decision for one superstep: payload policy,
    /// mirror scope, and the declared critical properties.
    fn emit_sync_plan(&mut self, step: u64, scope: SyncScope) {
        if self.config.sink.is_none() {
            return;
        }
        let mode = match self.config.sync_mode {
            SyncMode::CriticalOnly => "critical",
            SyncMode::Full => "full",
        };
        let scope_label = match scope {
            SyncScope::Necessary => "necessary",
            SyncScope::All => "all",
        };
        let properties = self.config.sync_properties.clone();
        self.emit(EventKind::SyncPlan {
            step,
            mode: mode.to_string(),
            scope: scope_label.to_string(),
            properties,
        });
    }

    /// Executes the compute closure on all workers (in parallel when
    /// configured), returning their outputs and wall-clock durations in
    /// worker order (the max duration is the BSP makespan of the phase).
    fn run_compute<Out: Send>(
        &mut self,
        f: &(impl Fn(&mut WorkerCtx<'_, V>) -> Out + Sync),
    ) -> (Vec<Out>, Vec<Duration>) {
        let graph = self.graph.as_ref();
        let partition = self.partition.as_ref();
        let threads = self.config.threads_per_worker;
        let timed = |w: usize, st: &mut WorkerState<V>| -> (Out, Duration) {
            let t = Instant::now();
            let mut ctx = WorkerCtx::new(w, graph, partition, st, threads);
            let out = f(&mut ctx);
            (out, t.elapsed())
        };
        let results: Vec<(Out, Duration)> = if self.config.parallel_workers && self.states.len() > 1
        {
            std::thread::scope(|s| {
                let timed = &timed;
                let handles: Vec<_> = self
                    .states
                    .iter_mut()
                    .enumerate()
                    .map(|(w, st)| s.spawn(move || timed(w, st)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| match h.join() {
                        Ok(out) => out,
                        Err(p) => std::panic::resume_unwind(p),
                    })
                    .collect()
            })
        } else {
            self.states
                .iter_mut()
                .enumerate()
                .map(|(w, st)| timed(w, st))
                .collect()
        };
        let (outs, durations) = results.into_iter().unzip();
        (outs, durations)
    }

    /// Communication round 2: masters broadcast their new state to mirrors.
    ///
    /// Under [`SyncScope::Necessary`] only workers with an incident edge
    /// receive the update; under [`SyncScope::All`] (virtual-edge steps)
    /// every worker does. Under [`SyncMode::CriticalOnly`] the payload is
    /// the critical projection; under [`SyncMode::Full`] the whole value.
    /// The round runs in two passes. Pass 1 (*scan*) is read-only: it
    /// counts wire traffic and builds the cross-host batch map, in parallel
    /// under the pooled hot path. Pass 2 (*commit*) serially applies each
    /// master's payload to its mirror replicas by reference. The split is
    /// bit-identical to the old interleaved loop: the scan reads only
    /// master slots `states[w].current[v]` for `v` owned by `w`, and the
    /// commit writes only mirror slots (`r != owner`), so no scan input is
    /// ever a commit output.
    fn sync_mirrors(&mut self, updated: &[Vec<VertexId>], scope: SyncScope, stats: &mut StepStats) {
        let m = self.states.len();
        if m <= 1 {
            return;
        }
        let step_id = self.next_step;
        let t = Instant::now();
        let sync_mode = self.config.sync_mode;
        let fresh = self.config.hotpath == HotPath::FreshSerial;
        let track_batches = self.transport.is_some();
        let mut sync_batches = if fresh {
            RoundBatches::new()
        } else {
            self.buffers.take_sync_batches()
        };
        let mut host_buf: Vec<u16> = if fresh {
            Vec::new()
        } else {
            std::mem::take(&mut self.buffers.host_buf)
        };
        let live_hosts: Vec<usize> = if track_batches {
            self.partition.live_hosts()
        } else {
            Vec::new()
        };

        // The parallel scan is charged at its *makespan* (slowest range),
        // like `serialize_max`: the spawn/idle gap between the scan's wall
        // time and its slowest range is a single-core simulation artifact
        // a one-core-per-worker cluster would not pay, so it is deducted
        // from the communicate phase.
        let mut scan_overhead = Duration::ZERO;
        {
            let partition = &*self.partition;
            let states = &self.states;
            let live_hosts = &live_hosts;
            let scan = |lo: usize,
                        hi: usize,
                        host_buf: &mut Vec<u16>,
                        batches: &mut RoundBatches|
             -> (u64, u64) {
                let mut messages = 0u64;
                let mut bytes_total = 0u64;
                for w in lo..hi {
                    let sender_host = partition.host_of_worker(w);
                    for &v in &updated[w] {
                        // Wire traffic is counted per distinct recipient
                        // *host*: after an elastic rebalance several logical
                        // partitions can share a host and one shipped payload
                        // serves all of them. The payload is still applied to
                        // every logical replica (pass 2) so co-hosted mirrors
                        // stay coherent.
                        let recipient_hosts = match scope {
                            SyncScope::Necessary => partition.necessary_mirror_hosts(v, host_buf),
                            SyncScope::All => partition.num_live_hosts().saturating_sub(1),
                        } as u64;
                        let master = &states[w].current[v as usize];
                        let bytes = match sync_mode {
                            SyncMode::Full => (4 + master.bytes()) as u64,
                            SyncMode::CriticalOnly => {
                                (4 + V::critical_bytes(&master.critical())) as u64
                            }
                        };
                        messages += recipient_hosts;
                        bytes_total += recipient_hosts * bytes;
                        if track_batches && recipient_hosts > 0 {
                            match scope {
                                SyncScope::Necessary => {
                                    for &h in host_buf.iter() {
                                        let batch = batches
                                            .entry((sender_host, h as usize))
                                            .or_insert((0, 0));
                                        batch.0 += 1;
                                        batch.1 += bytes;
                                    }
                                }
                                SyncScope::All => {
                                    for &h in live_hosts {
                                        if h != sender_host {
                                            let batch =
                                                batches.entry((sender_host, h)).or_insert((0, 0));
                                            batch.0 += 1;
                                            batch.1 += bytes;
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
                (messages, bytes_total)
            };
            let threads = self.hotpath_threads().min(m);
            if threads <= 1 {
                let (messages, bytes) = scan(0, m, &mut host_buf, &mut sync_batches);
                stats.sync_messages += messages;
                stats.sync_bytes += bytes;
            } else {
                let scan_wall = Instant::now();
                let partials = parallel_ranges(m, threads, |lo, hi| {
                    let range_timer = Instant::now();
                    let mut local_hosts = Vec::new();
                    let mut local_batches = RoundBatches::new();
                    let counts = scan(lo, hi, &mut local_hosts, &mut local_batches);
                    (counts, local_batches, range_timer.elapsed())
                });
                let mut scan_max = Duration::ZERO;
                for ((messages, bytes), batches, elapsed) in partials {
                    stats.sync_messages += messages;
                    stats.sync_bytes += bytes;
                    scan_max = scan_max.max(elapsed);
                    for (key, (bm, bb)) in batches {
                        let batch = sync_batches.entry(key).or_insert((0, 0));
                        batch.0 += bm;
                        batch.1 += bb;
                    }
                }
                scan_overhead = scan_wall.elapsed().saturating_sub(scan_max);
            }
        }
        // Scan time as charged: wall so far minus the single-core
        // thread-spawn artifact, exactly what `communicate` will include.
        let scan_charged = t.elapsed().saturating_sub(scan_overhead);
        let commit_timer = Instant::now();

        // Pass 2 — commit. Full mode clones master → mirror by reference
        // (`clone_from` reuses the destination's allocations; no owned
        // payload at all). Critical mode materializes one projection and
        // moves it into the *last* recipient, cloning only for the rest.
        let partition = Arc::clone(&self.partition);
        let states = &mut self.states[..];
        for (w, upd) in updated.iter().enumerate() {
            for &v in upd {
                let vi = v as usize;
                match sync_mode {
                    SyncMode::Full => match scope {
                        SyncScope::Necessary => {
                            for &r in partition.necessary_mirrors(v) {
                                clone_full_to(states, w, r as usize, vi);
                            }
                        }
                        SyncScope::All => {
                            for r in (0..m).filter(|&r| r != w) {
                                clone_full_to(states, w, r, vi);
                            }
                        }
                    },
                    SyncMode::CriticalOnly => {
                        let payload = states[w].current[vi].critical();
                        match scope {
                            SyncScope::Necessary => apply_critical_last_move(
                                states,
                                vi,
                                payload,
                                partition.necessary_mirrors(v).iter().map(|&r| r as usize),
                            ),
                            SyncScope::All => apply_critical_last_move(
                                states,
                                vi,
                                payload,
                                (0..m).filter(|&r| r != w),
                            ),
                        }
                    }
                }
            }
        }

        if self.config.metrics {
            self.stats
                .metrics
                .record_duration("step/mirror_scan_ns", scan_charged);
            self.stats
                .metrics
                .record_duration("step/commit_ns", commit_timer.elapsed());
        }
        stats.communicate += t.elapsed().saturating_sub(scan_overhead);
        stats.delivery += self.deliver_round(step_id, "sync", &sync_batches);
        if !fresh {
            self.buffers.host_buf = host_buf;
            self.buffers.put_sync_batches(sync_batches);
        }
    }

    /// Runs one message round's batches through the reliable-delivery
    /// transport (a no-op when the plan has no channel faults). The
    /// injector's channel faults due at this step fire here, resolved to
    /// sending hosts; protocol events are re-emitted in order, and an
    /// exhausted retransmit budget degrades the run exactly like
    /// [`RuntimeError::RecoveryExhausted`] — `failed` is set once, and the
    /// transport disables itself so the rest of the run stays
    /// deterministic.
    ///
    /// Returns the wall time the protocol spent, which callers charge to
    /// the step's `delivery` phase — previously this ran *after* the
    /// serialize timer had stopped and was attributed to no phase at all.
    fn deliver_round(&mut self, step_id: u64, round: &str, batches: &RoundBatches) -> Duration {
        let Some(transport) = &mut self.transport else {
            return Duration::ZERO;
        };
        let timer = Instant::now();
        let scripted: Vec<ScriptedChannelFault> = match &mut self.injector {
            Some(inj) => {
                let partition = &self.partition;
                inj.channel_faults(step_id, |w| {
                    let h = partition.host_of_worker(w);
                    batches.keys().any(|&(sender, _)| sender == h)
                })
                .into_iter()
                .map(|spec| (spec.kind, partition.host_of_worker(spec.worker), spec.times))
                .collect()
            }
            None => Vec::new(),
        };
        let outcome = transport.deliver(
            step_id,
            round,
            batches,
            &scripted,
            self.config.network.as_ref(),
            &mut self.stats.delivery,
            self.config.metrics.then_some(&mut self.stats.metrics),
        );
        for kind in outcome.events {
            self.emit(kind);
        }
        if let Some(err) = outcome.failure {
            if self.failed.is_none() {
                self.failed = Some(err);
            }
        }
        timer.elapsed()
    }

    /// Charges the simulated network, records the superstep, emits its
    /// `step_end` event and advances the step counter.
    fn finish_step(&mut self, mut stats: StepStats) {
        if self.graph.block_handle().is_some() {
            // Charge this step the streaming delta since the previous one:
            // the scope's counters are cumulative over this cluster's
            // lifetime (and private to it).
            let snap = self.stream_scope.snapshot();
            stats.streamed_bytes = snap
                .bytes_streamed
                .saturating_sub(self.stream_mark.bytes_streamed);
            stats.streamed_blocks = snap
                .blocks_streamed
                .saturating_sub(self.stream_mark.blocks_streamed);
            stats.block_cache_hits = snap.cache_hits.saturating_sub(self.stream_mark.cache_hits);
            self.stream_mark = snap;
            if self.config.metrics && stats.streamed_blocks > 0 {
                let m = &mut self.stats.metrics;
                m.counter_add("storage/bytes_streamed", stats.streamed_bytes);
                m.counter_add("storage/blocks_streamed", stats.streamed_blocks);
                m.counter_add("storage/cache_hits", stats.block_cache_hits);
                m.record("step/streamed_bytes", stats.streamed_bytes);
            }
        }
        if let Some(net) = &self.config.network {
            let rounds = u32::from(stats.upd_bytes > 0) + u32::from(stats.sync_bytes > 0);
            stats.simulated_net = net.cost(rounds, stats.total_bytes());
        }
        if self.config.metrics {
            let m = &mut self.stats.metrics;
            m.record_duration("step/compute_max_ns", stats.compute_max);
            m.record_duration("step/barrier_skew_ns", stats.barrier_skew());
            m.record_duration("step/serialize_ns", stats.serialize);
            m.record_duration("step/bucketing_ns", stats.serialize_max);
            m.record_duration("step/delivery_ns", stats.delivery);
            m.record_duration("step/simulated_net_ns", stats.simulated_net);
            m.gauge_set(
                "cluster/live_hosts",
                i64::try_from(self.partition.num_live_hosts()).unwrap_or(i64::MAX),
            );
        }
        let step_id = self.next_step;
        self.next_step += 1;
        if self.config.sink.is_some() {
            let skew = stats.barrier_skew();
            self.emit(EventKind::StepEnd {
                step: step_id,
                kind: stats.kind.label().to_string(),
                active: stats.active,
                upd_messages: stats.upd_messages,
                upd_bytes: stats.upd_bytes,
                sync_messages: stats.sync_messages,
                sync_bytes: stats.sync_bytes,
                compute_us: us_half_up(stats.compute),
                compute_max_us: us_half_up(stats.compute_max),
                compute_min_us: us_half_up(stats.compute_min),
                barrier_skew_us: us_half_up(skew),
                serialize_us: us_half_up(stats.serialize),
                serialize_max_us: us_half_up(stats.serialize_max),
                communicate_us: us_half_up(stats.communicate),
                delivery_us: us_half_up(stats.delivery),
                simulated_net_us: us_half_up(stats.simulated_net),
                compute_ns: ns_u64(stats.compute),
                compute_max_ns: ns_u64(stats.compute_max),
                compute_min_ns: ns_u64(stats.compute_min),
                barrier_skew_ns: ns_u64(skew),
                serialize_ns: ns_u64(stats.serialize),
                serialize_max_ns: ns_u64(stats.serialize_max),
                communicate_ns: ns_u64(stats.communicate),
                delivery_ns: ns_u64(stats.delivery),
                simulated_net_ns: ns_u64(stats.simulated_net),
            });
        }
        self.stats.push(stats);
    }
}

impl<V: VertexData> Drop for Cluster<V> {
    fn drop(&mut self) {
        // Return pooled scratch to the shared pool (reset happens at
        // checkin). Clusters without a pool just drop their buffers.
        if let Some(pool) = self.config.buffer_pool.clone() {
            pool.checkin(std::mem::replace(&mut self.buffers, StepBuffers::new()));
        }
    }
}

/// Clones `states[w].current[vi]` into `states[r].current[vi]` by
/// reference: `clone_from` reuses the destination's heap allocations, and
/// no owned payload is materialized. `w != r` is a caller invariant
/// (mirror lists never contain the owner).
fn clone_full_to<V: VertexData>(states: &mut [WorkerState<V>], w: usize, r: usize, vi: usize) {
    debug_assert_ne!(w, r);
    let (src, dst) = if w < r {
        let (head, tail) = states.split_at_mut(r);
        (&head[w], &mut tail[0])
    } else {
        let (head, tail) = states.split_at_mut(w);
        (&tail[0], &mut head[r])
    };
    dst.current[vi].clone_from(&src.current[vi]);
}

/// Applies one critical payload to every recipient replica, cloning for
/// all but the last recipient and *moving* the payload into the last —
/// saving one clone per synchronized vertex. Structured so the move is
/// provable to the compiler: the sync path runs at every barrier,
/// including mid-recovery, and must stay panic-free.
fn apply_critical_last_move<V: VertexData>(
    states: &mut [WorkerState<V>],
    vi: usize,
    payload: V::Critical,
    recipients: impl Iterator<Item = usize>,
) {
    let mut recipients = recipients.peekable();
    while let Some(r) = recipients.next() {
        if recipients.peek().is_some() {
            states[r].current[vi].apply_critical(payload.clone());
        } else {
            states[r].current[vi].apply_critical(payload);
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModePolicy;
    use flash_graph::{generators, HashPartitioner};

    #[derive(Clone, Default, Debug, PartialEq)]
    struct Val {
        x: u64,
    }
    crate::full_sync!(Val);

    fn cluster(workers: usize, n: usize) -> Cluster<Val> {
        let g = Arc::new(generators::path(n, true));
        let p = Arc::new(PartitionMap::build(&g, workers, &HashPartitioner).unwrap());
        let mut cfg = ClusterConfig::with_workers(workers);
        cfg.parallel_workers = false; // deterministic in unit tests
        Cluster::new(g, p, cfg, |v| Val { x: v as u64 }).unwrap()
    }

    #[test]
    fn new_validates_inputs() {
        let g = Arc::new(generators::path(4, true));
        let p = Arc::new(PartitionMap::build(&g, 2, &HashPartitioner).unwrap());
        let err = Cluster::<Val>::new(
            Arc::clone(&g),
            Arc::clone(&p),
            ClusterConfig::with_workers(3),
            |_| Val::default(),
        )
        .err()
        .unwrap();
        assert!(matches!(err, RuntimeError::PartitionMismatch { .. }));

        let g2 = Arc::new(generators::path(5, true));
        let err2 = Cluster::<Val>::new(g2, p, ClusterConfig::with_workers(2), |_| Val::default())
            .err()
            .unwrap();
        assert!(matches!(err2, RuntimeError::GraphMismatch { .. }));
    }

    #[test]
    fn direct_step_updates_masters_and_mirrors() {
        let mut c = cluster(2, 8);
        let out = c.step_direct(StepKind::VertexMap, 8, SyncScope::Necessary, |ctx| {
            for &v in ctx.masters() {
                let mut val = ctx.get(v).clone();
                val.x *= 10;
                ctx.write_master(v, val);
            }
            ctx.worker()
        });
        assert_eq!(out.per_worker, vec![0, 1]);
        for v in 0..8u32 {
            assert_eq!(c.value(v).x, v as u64 * 10);
        }
        // Mirrors along edges must have been synchronized too: every worker
        // replica agrees on every vertex that has a cross-worker edge.
        let stats = c.stats();
        assert_eq!(stats.num_supersteps(), 1);
        assert!(stats.steps()[0].sync_bytes > 0);
        assert_eq!(stats.steps()[0].upd_bytes, 0);
    }

    #[test]
    fn reduce_step_merges_across_workers() {
        let mut c = cluster(2, 4);
        // Every worker adds +1 to vertex 2 from each of its masters.
        let reduce = |t: &Val, acc: &mut Val| acc.x += t.x;
        let out = c.step_reduce(4, SyncScope::Necessary, reduce, |ctx| {
            for &v in ctx.masters() {
                let _ = v;
                ctx.put(2, Val { x: 1 }, &reduce);
            }
        });
        // Vertex 2 started at 2; 4 masters contributed 1 each.
        assert_eq!(c.value(2).x, 2 + 4);
        let updated = out.updated_flat();
        assert_eq!(updated, vec![2]);
    }

    #[test]
    fn reduce_step_counts_cross_worker_messages_only() {
        let mut c = cluster(2, 4);
        let owner2 = c.partition().owner(2);
        let reduce = |t: &Val, acc: &mut Val| acc.x += t.x;
        c.step_reduce(0, SyncScope::Necessary, reduce, |ctx| {
            // Only the worker that owns vertex 2 puts: a purely local update.
            if ctx.worker() == owner2 {
                ctx.put(2, Val { x: 5 }, &reduce);
            }
        });
        let s = &c.stats().steps()[0];
        assert_eq!(s.upd_messages, 0, "local put must not cross workers");
    }

    #[test]
    fn sync_scope_all_reaches_every_worker() {
        let mut c = cluster(4, 16);
        // Vertex 0's value changes; under All-scope every other worker's
        // replica must see it even without incident edges.
        let owner0 = c.partition().owner(0);
        c.step_direct(StepKind::VertexMap, 1, SyncScope::All, |ctx| {
            if ctx.worker() == owner0 {
                ctx.write_master(0, Val { x: 777 });
            }
        });
        let s = &c.stats().steps()[0];
        assert_eq!(s.sync_messages, 3, "3 mirrors under All scope");
    }

    #[test]
    fn single_worker_never_communicates() {
        let mut c = cluster(1, 10);
        let reduce = |t: &Val, acc: &mut Val| acc.x += t.x;
        c.step_reduce(10, SyncScope::All, reduce, |ctx| {
            for &v in ctx.masters() {
                ctx.put(v, Val { x: 1 }, &reduce);
            }
        });
        let s = &c.stats().steps()[0];
        assert_eq!(s.total_bytes(), 0);
        assert_eq!(s.total_messages(), 0);
    }

    #[test]
    fn parallel_workers_match_sequential() {
        let g = Arc::new(generators::erdos_renyi(64, 200, 3));
        let p = Arc::new(PartitionMap::build(&g, 4, &HashPartitioner).unwrap());
        let reduce = |t: &Val, acc: &mut Val| acc.x = acc.x.max(t.x);
        let run = |parallel: bool| {
            let mut cfg = ClusterConfig::with_workers(4).mode(ModePolicy::Adaptive);
            cfg.parallel_workers = parallel;
            let mut c =
                Cluster::new(Arc::clone(&g), Arc::clone(&p), cfg, |v| Val { x: v as u64 }).unwrap();
            // Propagate max neighbor id to each vertex (one push round).
            c.step_reduce(64, SyncScope::Necessary, reduce, |ctx| {
                for &v in ctx.masters() {
                    let val = ctx.get(v).clone();
                    for &d in ctx.graph().out_neighbors(v) {
                        ctx.put(d, val.clone(), &reduce);
                    }
                }
            });
            c.collect(|_, val| val.x)
        };
        assert_eq!(run(false), run(true));
    }

    /// The hot-path contract: the pooled-parallel route (buffer reuse +
    /// multi-threaded bucketing/scan) must be bit-identical to the literal
    /// old fresh-serial route — same values, same message/byte counters.
    #[test]
    fn pooled_parallel_hotpath_matches_fresh_serial_bitwise() {
        let g = Arc::new(generators::erdos_renyi(48, 160, 11));
        let p = Arc::new(PartitionMap::build(&g, 4, &HashPartitioner).unwrap());
        let run = |hp: HotPath| {
            let cfg = ClusterConfig::with_workers(4).hotpath(hp);
            let mut c =
                Cluster::new(Arc::clone(&g), Arc::clone(&p), cfg, |v| Val { x: v as u64 }).unwrap();
            let reduce = |t: &Val, acc: &mut Val| acc.x = acc.x.max(t.x);
            for _ in 0..4 {
                c.step_reduce(0, SyncScope::Necessary, reduce, |ctx| {
                    for &v in ctx.masters() {
                        let val = ctx.get(v).clone();
                        for &d in ctx.graph().out_neighbors(v) {
                            ctx.put(d, val.clone(), &reduce);
                        }
                    }
                });
            }
            let stats = c.take_stats();
            let counters: Vec<(u64, u64, u64, u64)> = stats
                .steps()
                .iter()
                .map(|s| (s.upd_messages, s.upd_bytes, s.sync_messages, s.sync_bytes))
                .collect();
            (c.collect(|_, val| val.x), counters)
        };
        assert_eq!(run(HotPath::PooledParallel), run(HotPath::FreshSerial));
    }

    #[test]
    fn network_model_charges_time() {
        let g = Arc::new(generators::path(8, true));
        let p = Arc::new(PartitionMap::build(&g, 2, &HashPartitioner).unwrap());
        let cfg = ClusterConfig::with_workers(2)
            .network(crate::NetworkModel::slow())
            .sequential();
        let mut c = Cluster::new(g, p, cfg, |v| Val { x: v as u64 }).unwrap();
        c.step_direct(StepKind::VertexMap, 8, SyncScope::Necessary, |ctx| {
            for &v in ctx.masters() {
                ctx.write_master(v, Val { x: 1 });
            }
        });
        assert!(c.stats().simulated_net_time() > Duration::ZERO);
    }

    #[test]
    fn record_global_appends_stats() {
        let mut c = cluster(2, 4);
        c.record_global(3, 120, Duration::from_micros(5));
        let s = c.take_stats();
        assert_eq!(s.num_supersteps(), 1);
        assert_eq!(s.total_bytes(), 120);
        assert_eq!(c.stats().num_supersteps(), 0, "take_stats resets");
    }

    #[test]
    fn trace_events_mirror_superstep_structure() {
        use flash_obs::CollectSink;
        let g = Arc::new(generators::path(8, true));
        let p = Arc::new(PartitionMap::build(&g, 2, &HashPartitioner).unwrap());
        let sink = Arc::new(CollectSink::new());
        let cfg = ClusterConfig::with_workers(2)
            .sequential()
            .sink(Arc::clone(&sink) as Arc<dyn flash_obs::Sink>);
        let mut c = Cluster::new(g, p, cfg, |v| Val { x: v as u64 }).unwrap();
        c.step_direct(StepKind::VertexMap, 8, SyncScope::Necessary, |ctx| {
            for &v in ctx.masters() {
                ctx.write_master(v, Val { x: 1 });
            }
        });
        let reduce = |t: &Val, acc: &mut Val| acc.x += t.x;
        c.step_reduce(8, SyncScope::Necessary, reduce, |ctx| {
            for &v in ctx.masters() {
                ctx.put(v, Val { x: 1 }, &reduce);
            }
        });
        let stats = c.take_stats();

        let events = sink.events();
        // Sequence numbers are dense and ordered.
        assert!(events.iter().enumerate().all(|(i, e)| e.seq == i as u64));
        assert!(matches!(
            events[0].kind,
            EventKind::RunMeta {
                schema: flash_obs::TRACE_SCHEMA_VERSION,
                workers: 2,
                ..
            }
        ));
        assert!(matches!(
            events[1].kind,
            EventKind::RunStart { workers: 2, .. }
        ));
        assert!(matches!(
            events.last().unwrap().kind,
            EventKind::RunEnd { .. }
        ));

        // One step_start/step_end pair per recorded superstep, in order.
        let starts: Vec<u64> = events
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::StepStart { step, .. } => Some(*step),
                _ => None,
            })
            .collect();
        let ends: Vec<u64> = events
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::StepEnd { step, .. } => Some(*step),
                _ => None,
            })
            .collect();
        assert_eq!(starts, vec![0, 1]);
        assert_eq!(ends, vec![0, 1]);
        assert_eq!(stats.num_supersteps(), 2);

        // step_end byte counts agree exactly with RunStats.
        let (bytes, msgs) = events.iter().fold((0u64, 0u64), |(b, m), e| match &e.kind {
            EventKind::StepEnd {
                upd_bytes,
                sync_bytes,
                upd_messages,
                sync_messages,
                ..
            } => (b + upd_bytes + sync_bytes, m + upd_messages + sync_messages),
            _ => (b, m),
        });
        assert_eq!(bytes, stats.total_bytes());
        assert_eq!(msgs, stats.total_messages());

        // Each superstep has one worker_phase per worker, and staged-op
        // counts reflect the kernels: step 0 wrote masters, step 1 put.
        for step in 0..2u64 {
            let phases: Vec<_> = events
                .iter()
                .filter_map(|e| match &e.kind {
                    EventKind::WorkerPhase {
                        step: s,
                        worker,
                        staged_puts,
                        staged_writes,
                        ..
                    } if *s == step => Some((*worker, *staged_puts, *staged_writes)),
                    _ => None,
                })
                .collect();
            assert_eq!(phases.len(), 2, "step {step}");
            let puts: u64 = phases.iter().map(|p| p.1).sum();
            let writes: u64 = phases.iter().map(|p| p.2).sum();
            if step == 0 {
                assert_eq!((puts, writes), (0, 8));
            } else {
                assert_eq!((puts, writes), (8, 0));
            }
        }

        // Sync-plan events carry the configured policy.
        assert!(events.iter().any(|e| matches!(
            &e.kind,
            EventKind::SyncPlan { mode, scope, .. }
                if mode == "critical" && scope == "necessary"
        )));
    }

    #[test]
    fn compute_min_never_exceeds_compute_max() {
        let mut c = cluster(4, 32);
        c.step_direct(StepKind::VertexMap, 32, SyncScope::Necessary, |ctx| {
            for &v in ctx.masters() {
                ctx.write_master(v, Val { x: 1 });
            }
        });
        let s = &c.stats().steps()[0];
        assert!(s.compute_min <= s.compute_max);
        assert_eq!(s.barrier_skew(), s.compute_max - s.compute_min);
    }

    #[test]
    fn set_value_global_updates_all_replicas() {
        let mut c = cluster(3, 6);
        c.set_value_global(4, Val { x: 99 });
        // Run a step where every worker reads vertex 4 and reports it.
        let out = c.step_direct(StepKind::VertexMap, 0, SyncScope::Necessary, |ctx| {
            ctx.get(4).x
        });
        assert_eq!(out.per_worker, vec![99, 99, 99]);
    }

    /// A deterministic 12-superstep program (6 rounds of max-propagation +
    /// increment) whose result depends on every intermediate state — the
    /// fixture for recovery determinism tests.
    fn run_program(cfg: ClusterConfig) -> (Vec<u64>, RunStats, Option<RuntimeError>) {
        let g = Arc::new(generators::erdos_renyi(48, 160, 11));
        let p = Arc::new(PartitionMap::build(&g, cfg.workers, &HashPartitioner).unwrap());
        let mut c = Cluster::new(g, p, cfg, |v| Val { x: v as u64 }).unwrap();
        let reduce = |t: &Val, acc: &mut Val| acc.x = acc.x.max(t.x);
        for round in 0..6u64 {
            c.step_reduce(0, SyncScope::Necessary, reduce, |ctx| {
                for &v in ctx.masters() {
                    let val = ctx.get(v).clone();
                    for &d in ctx.graph().out_neighbors(v) {
                        ctx.put(d, val.clone(), &reduce);
                    }
                }
            });
            c.step_direct(StepKind::VertexMap, 0, SyncScope::Necessary, |ctx| {
                for &v in ctx.masters() {
                    let mut val = ctx.get(v).clone();
                    val.x += round + 1;
                    ctx.write_master(v, val);
                }
            });
        }
        let vals = c.collect(|_, val| val.x);
        let err = c.fault_error();
        (vals, c.take_stats(), err)
    }

    fn faulted_config(plan: &str) -> ClusterConfig {
        ClusterConfig::with_workers(3)
            .sequential()
            .network(crate::NetworkModel::ten_gbe())
            .checkpoint_every(2)
            .faults(crate::fault::FaultPlan::parse(plan).unwrap())
    }

    #[test]
    fn faulted_run_is_bit_identical_to_fault_free() {
        let clean = run_program(ClusterConfig::with_workers(3).sequential());
        let faulted = run_program(faulted_config(
            "crash@1:w1,corrupt@3:w0,straggle@2:w0:300us",
        ));
        assert_eq!(clean.0, faulted.0, "recovery must not change results");
        assert_eq!(clean.1.num_supersteps(), faulted.1.num_supersteps());
        assert!(faulted.2.is_none(), "retries were not exhausted");

        let rec = &faulted.1.recovery;
        assert_eq!(rec.faults_injected, 2, "one crash + one corruption");
        assert_eq!(rec.rollbacks, 2);
        assert!(rec.replayed_supersteps >= 1, "rollback crossed a delta");
        assert!(rec.checkpoints >= 2);
        assert_eq!(rec.stragglers, 1);
        assert!(rec.straggler_delay >= Duration::from_micros(300));
        assert!(rec.retry_backoff > Duration::ZERO);
        assert!(rec.replay_net > Duration::ZERO, "network model charged");
        assert_eq!(clean.1.recovery, crate::stats::RecoveryStats::default());
    }

    #[test]
    fn exhausted_retries_degrade_to_clean_error() {
        let clean = run_program(ClusterConfig::with_workers(3).sequential());
        let (vals, stats, err) = run_program(faulted_config("crash@1:w0:x99,retries=2"));
        match err {
            Some(RuntimeError::RecoveryExhausted { step, attempts }) => {
                assert_eq!(step, 1);
                assert_eq!(attempts, 3, "initial attempt + 2 retries");
            }
            other => panic!("expected RecoveryExhausted, got {other:?}"),
        }
        // Execution continued deterministically with the injector disabled.
        assert_eq!(vals, clean.0);
        assert_eq!(stats.recovery.rollbacks, 2);
    }

    #[test]
    fn straggler_charges_compute_without_rollback() {
        let (_, stats, err) = run_program(faulted_config("straggle@0:w1:5ms"));
        assert!(err.is_none());
        assert_eq!(stats.recovery.rollbacks, 0);
        assert_eq!(stats.recovery.stragglers, 1);
        assert!(stats.steps()[0].compute_max >= Duration::from_millis(5));
        assert!(stats.steps()[0].barrier_skew() >= Duration::from_millis(4));
    }

    #[test]
    fn manual_checkpoint_restore_round_trips() {
        let mut c = cluster(2, 8);
        let before = c.collect(|_, val| val.x);
        let cp = c.checkpoint();
        c.step_direct(StepKind::VertexMap, 8, SyncScope::Necessary, |ctx| {
            for &v in ctx.masters() {
                ctx.write_master(v, Val { x: 4242 });
            }
        });
        assert_ne!(c.collect(|_, val| val.x), before);
        c.restore(&cp);
        assert_eq!(c.collect(|_, val| val.x), before, "restore is exact");
    }

    #[test]
    fn recovery_emits_trace_events_in_order() {
        use flash_obs::CollectSink;
        let sink = Arc::new(CollectSink::new());
        let cfg = faulted_config("crash@1:w1").sink(Arc::clone(&sink) as Arc<dyn flash_obs::Sink>);
        let _ = run_program(cfg);
        let events = sink.events();
        assert!(events.iter().enumerate().all(|(i, e)| e.seq == i as u64));
        let checkpoints = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::CheckpointTaken { .. }))
            .count();
        assert!(checkpoints >= 2, "interval 2 over 12 steps");
        let fault_pos = events
            .iter()
            .position(|e| matches!(e.kind, EventKind::FaultInjected { .. }))
            .expect("fault event");
        let replay_pos = events
            .iter()
            .position(|e| {
                matches!(
                    e.kind,
                    EventKind::RecoveryReplay {
                        step: 1,
                        from_step: 0,
                        ..
                    }
                )
            })
            .expect("replay event rolls step 1 back to the step-0 checkpoint");
        assert!(fault_pos < replay_pos, "fault detected before rollback");
    }

    #[test]
    fn fault_plan_validates_worker_bounds() {
        let g = Arc::new(generators::path(4, true));
        let p = Arc::new(PartitionMap::build(&g, 2, &HashPartitioner).unwrap());
        let cfg = ClusterConfig::with_workers(2)
            .faults(crate::fault::FaultPlan::parse("crash@1:w5").unwrap());
        let err = Cluster::<Val>::new(g, p, cfg, |_| Val::default())
            .err()
            .expect("worker 5 does not exist");
        assert!(matches!(err, RuntimeError::InvalidFaultPlan(_)));
    }

    #[test]
    fn permanent_death_recovers_bit_identically_on_survivors() {
        let clean = run_program(ClusterConfig::with_workers(3).sequential());
        let (vals, stats, err) = run_program(faulted_config("die@1:w1,retries=1"));
        assert!(err.is_none(), "elastic recovery is not a failure: {err:?}");
        assert_eq!(clean.0, vals, "survivors must reproduce the clean result");
        assert_eq!(clean.1.num_supersteps(), stats.num_supersteps());
        let rec = &stats.recovery;
        assert_eq!(rec.workers_lost, 1);
        assert_eq!(rec.membership_epochs, 1);
        assert!(rec.vertices_migrated > 0, "w1's masters moved");
        assert!(rec.migrated_bytes > 0);
        assert!(rec.migration_net > Duration::ZERO, "network model charged");
    }

    #[test]
    fn death_and_rejoin_return_to_full_strength_bit_identically() {
        let clean = run_program(ClusterConfig::with_workers(3).sequential());
        let (vals, stats, err) = run_program(faulted_config("die@1:w1,rejoin@5:w1,retries=1"));
        assert!(err.is_none());
        assert_eq!(clean.0, vals);
        let rec = &stats.recovery;
        assert_eq!(rec.workers_lost, 1);
        assert_eq!(rec.workers_rejoined, 1);
        assert_eq!(rec.membership_epochs, 2, "death epoch + rejoin epoch");
        assert!(rec.migrated_bytes > 0);
    }

    #[test]
    fn deadline_straggler_is_declared_dead() {
        let clean = run_program(ClusterConfig::with_workers(3).sequential());
        let (vals, stats, err) = run_program(faulted_config("straggle@1:w2:200ms,detector=100ms"));
        assert!(err.is_none());
        assert_eq!(clean.0, vals);
        assert_eq!(stats.recovery.workers_lost, 1);
        assert_eq!(stats.recovery.membership_epochs, 1);
        // A straggler below the deadline stays a straggler.
        let (_, stats2, err2) = run_program(faulted_config("straggle@1:w2:5ms,detector=100ms"));
        assert!(err2.is_none());
        assert_eq!(stats2.recovery.workers_lost, 0);
    }

    #[test]
    fn death_without_checkpoints_degrades_to_worker_lost() {
        let clean = run_program(ClusterConfig::with_workers(3).sequential());
        let cfg = ClusterConfig::with_workers(3)
            .sequential()
            .checkpoint_off()
            .faults(crate::fault::FaultPlan::parse("die@1:w1,retries=1").unwrap());
        let (vals, stats, err) = run_program(cfg);
        match err {
            Some(RuntimeError::WorkerLost { worker, step }) => {
                assert_eq!(worker, 1);
                assert_eq!(step, 1);
            }
            other => panic!("expected WorkerLost, got {other:?}"),
        }
        // The injector shut down and the run finished deterministically.
        assert_eq!(vals, clean.0);
        assert_eq!(stats.recovery.workers_lost, 0, "no membership change");
        assert_eq!(stats.recovery.checkpoints, 0, "checkpointing stayed off");
    }

    #[test]
    fn leader_crash_recovers_through_reelection_bit_identically() {
        let clean = run_program(ClusterConfig::with_workers(3).sequential());
        let (vals, stats, err) = run_program(faulted_config("leader@1,retries=1"));
        assert!(err.is_none(), "re-election is not a failure: {err:?}");
        assert_eq!(clean.0, vals, "leader crash must not change results");
        assert_eq!(clean.1.num_supersteps(), stats.num_supersteps());
        let cons = &stats.consensus;
        assert_eq!(cons.leader_crashes, 1);
        assert_eq!(cons.elections, 2, "initial election + re-election");
        assert!(
            cons.entries_committed >= 3,
            "checkpoints + death declaration + epoch bump: {cons:?}"
        );
        assert_eq!(cons.entries_appended, cons.entries_committed);
        assert!(cons.election_net > Duration::ZERO, "network model charged");
        assert!(cons.commit_net > Duration::ZERO);
        assert_eq!(stats.recovery.workers_lost, 1, "the old leader host died");
        // The fault-free control plane never spins up at all.
        assert_eq!(clean.1.consensus, crate::stats::ConsensusStats::default());
    }

    #[test]
    fn lying_worker_is_accused_and_dies_bit_identically() {
        let clean = run_program(ClusterConfig::with_workers(3).sequential());
        let (vals, stats, err) = run_program(faulted_config("lie@1:w2,retries=1"));
        assert!(err.is_none(), "a pinned lie recovers cleanly: {err:?}");
        assert_eq!(clean.0, vals, "accusation must not change results");
        assert_eq!(clean.1.num_supersteps(), stats.num_supersteps());
        assert_eq!(stats.consensus.accusations, 1);
        assert_eq!(stats.recovery.workers_lost, 1, "the liar was executed");
        assert!(stats.consensus.overhead().max(stats.consensus.commit_net) > Duration::ZERO);
    }

    #[test]
    fn lie_without_honest_majority_degrades_to_quorum_lost() {
        // Two hosts: the vote splits 1–1 and nobody can be out-voted.
        let clean = {
            let cfg = ClusterConfig::with_workers(2).sequential();
            run_program(cfg)
        };
        let cfg = ClusterConfig::with_workers(2)
            .sequential()
            .network(crate::NetworkModel::ten_gbe())
            .checkpoint_every(2)
            .faults(crate::fault::FaultPlan::parse("lie@1:w1").unwrap());
        let (vals, stats, err) = run_program(cfg);
        match err {
            Some(RuntimeError::QuorumLost { step, live, needed }) => {
                assert_eq!(step, 1);
                assert_eq!(live, 2);
                assert_eq!(needed, 2);
            }
            other => panic!("expected QuorumLost, got {other:?}"),
        }
        // The injector shut down and the run finished deterministically.
        assert_eq!(vals, clean.0);
        assert_eq!(stats.consensus.accusations, 0, "nobody could be pinned");
        assert_eq!(stats.recovery.workers_lost, 0);
    }

    #[test]
    fn consensus_decisions_emit_trace_events_in_order() {
        use flash_obs::CollectSink;
        let sink = Arc::new(CollectSink::new());
        let cfg = faulted_config("leader@1,retries=1")
            .sink(Arc::clone(&sink) as Arc<dyn flash_obs::Sink>);
        let _ = run_program(cfg);
        let events = sink.events();
        assert!(events.iter().enumerate().all(|(i, e)| e.seq == i as u64));

        // Elections: the initial one at term 1 seats host 0 before any
        // superstep; the re-election at term 2 seats the smallest survivor.
        let elections: Vec<(u64, usize)> = events
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::LeaderElected { term, leader, .. } => Some((*term, *leader)),
                _ => None,
            })
            .collect();
        assert_eq!(elections, vec![(1, 0), (2, 1)]);

        // The log commits in index order, and the death declaration is
        // committed under the new term by the new leader.
        let commits: Vec<(u64, u64, String)> = events
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::LogCommitted {
                    term, index, kind, ..
                } => Some((*term, *index, kind.clone())),
                _ => None,
            })
            .collect();
        assert!(commits.iter().enumerate().all(|(i, c)| c.1 == i as u64 + 1));
        assert!(commits.windows(2).all(|w| w[0].0 <= w[1].0), "terms sorted");
        let death = commits
            .iter()
            .find(|c| c.2 == "death_declaration")
            .expect("death committed through the log");
        assert_eq!(death.0, 2, "committed under the re-elected term");
        assert!(commits.iter().any(|c| c.2 == "checkpoint_commit"));
        assert!(commits.iter().any(|c| c.2 == "epoch_bump"));

        // Ordering: re-election precedes the death commit, which precedes
        // the worker's death event and the epoch bump commit.
        let reelect_pos = events
            .iter()
            .position(|e| matches!(e.kind, EventKind::LeaderElected { term: 2, .. }))
            .expect("re-election event");
        let death_pos = events
            .iter()
            .position(
                |e| matches!(&e.kind, EventKind::LogCommitted { kind, .. } if kind == "death_declaration"),
            )
            .expect("death commit event");
        let dead_pos = events
            .iter()
            .position(|e| matches!(e.kind, EventKind::WorkerDeclaredDead { .. }))
            .expect("worker_declared_dead event");
        let epoch_commit_pos = events
            .iter()
            .position(
                |e| matches!(&e.kind, EventKind::LogCommitted { kind, .. } if kind == "epoch_bump"),
            )
            .expect("epoch commit event");
        assert!(reelect_pos < death_pos, "new leader seated before commit");
        assert!(death_pos < dead_pos, "decision committed before applied");
        assert!(dead_pos < epoch_commit_pos);
    }

    #[test]
    fn config_detector_timeout_overrides_plan_option() {
        let clean = run_program(ClusterConfig::with_workers(3).sequential());
        // The plan's detector is generous, but the config tightens it to
        // 50ms, so a 200ms straggler is declared dead at the barrier.
        let cfg = faulted_config("straggle@1:w2:200ms,detector=10s")
            .detector_timeout(Duration::from_millis(50));
        let (vals, stats, err) = run_program(cfg);
        assert!(err.is_none());
        assert_eq!(clean.0, vals);
        assert_eq!(stats.recovery.workers_lost, 1);
        // Without the override the plan's 10s detector tolerates it.
        let (_, stats2, err2) = run_program(faulted_config("straggle@1:w2:200ms,detector=10s"));
        assert!(err2.is_none());
        assert_eq!(stats2.recovery.workers_lost, 0);
    }

    #[test]
    fn membership_changes_emit_trace_events_in_order() {
        use flash_obs::CollectSink;
        let sink = Arc::new(CollectSink::new());
        let cfg = faulted_config("die@1:w1,rejoin@5:w1,retries=1")
            .sink(Arc::clone(&sink) as Arc<dyn flash_obs::Sink>);
        let _ = run_program(cfg);
        let events = sink.events();
        assert!(events.iter().enumerate().all(|(i, e)| e.seq == i as u64));
        let dead_pos = events
            .iter()
            .position(|e| {
                matches!(
                    &e.kind,
                    EventKind::WorkerDeclaredDead {
                        worker: 1,
                        reason,
                        ..
                    } if reason == "die"
                )
            })
            .expect("worker_declared_dead event");
        let epochs: Vec<(u64, String)> = events
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::MembershipEpoch { epoch, cause, .. } => Some((*epoch, cause.clone())),
                _ => None,
            })
            .collect();
        assert_eq!(
            epochs,
            vec![(1, "die".to_string()), (2, "rejoin".to_string())]
        );
        let migrations: Vec<u64> = events
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::StateMigrated { bytes, .. } => Some(*bytes),
                _ => None,
            })
            .collect();
        assert_eq!(migrations.len(), 2, "one move per epoch");
        assert!(migrations.iter().all(|&b| b > 0));
        let epoch_pos = events
            .iter()
            .position(|e| matches!(e.kind, EventKind::MembershipEpoch { .. }))
            .unwrap();
        assert!(dead_pos < epoch_pos, "death declared before the epoch bump");
    }
}
