//! Durable checkpoint store — cold-restart recovery (DESIGN.md §15).
//!
//! The in-memory recovery layer ([`crate::checkpoint`]) survives faults
//! *within one process lifetime*: a whole-process kill loses every
//! superstep of work. This module extends the `.fgb` on-disk discipline
//! to *mutable* state: each checkpoint (full per-replica vertex state)
//! plus the per-step delta log is written to a versioned on-disk format
//! so a cold restart can resume the run bit-identically.
//!
//! # On-disk format (`FCK1`)
//!
//! One file per checkpoint **generation**, `gen-N.fck`:
//!
//! ```text
//! header (48 B): magic "FCK1", version u32, generation u64,
//!                checkpoint step u64, workers u64, vertices u64,
//!                FNV-1a checksum of the preceding 40 bytes
//! frames:        kind u32 (0 checkpoint | 1 delta), step u64,
//!                payload_len u64, payload, FNV-1a frame checksum u64
//! footer:        magic "FCKF", frame count u64,
//!                FNV-1a checksum of magic + count
//! ```
//!
//! Frame 0 is the generation's checkpoint (every replica's full state —
//! replicas may diverge in non-critical fields under `CriticalOnly`
//! sync, so masters alone are not enough to rebuild the cluster);
//! frames 1.. are the step-tagged delta log recorded after it. All
//! integers are little-endian.
//!
//! # Commit protocol
//!
//! Every write is a crash-consistent two-phase commit: serialize the
//! whole generation, write to `gen-N.tmp`, `fsync`, atomically rename
//! onto `gen-N.fck`. Only after the rename does `maybe_checkpoint` feed
//! the consensus `CheckpointCommit` entry — the replicated log never
//! commits a generation whose bytes are not durable. The two newest
//! generations are retained so a damaged newest generation can fall
//! back to its predecessor (replaying the longer delta tail).
//!
//! # Scrub and fallback
//!
//! Opening a store for resume runs a scrub pass: stale `.tmp` files are
//! deleted, and generations are validated newest-first — header and
//! footer checksums, every frame checksum, frame count. A damaged
//! generation is reported (a `checkpoint_scrubbed` trace event) and the
//! scrub falls back to the next older one; when no valid generation
//! remains the run degrades to a typed
//! [`RuntimeError::DurabilityLost`].

#![deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use crate::error::RuntimeError;
use crate::fault::FaultKind;
use crate::state::WorkerState;
use crate::stats::DurabilityStats;
use crate::VertexData;
use flash_graph::VertexId;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

/// Magic bytes opening every generation file.
pub const MAGIC: [u8; 4] = *b"FCK1";
/// Current format version.
pub const VERSION: u32 = 1;
/// Magic bytes opening the footer.
const FOOTER_MAGIC: [u8; 4] = *b"FCKF";
/// Fixed header length in bytes.
const HEADER_LEN: usize = 48;
/// Frame kind: a full per-replica checkpoint.
const FRAME_CHECKPOINT: u32 = 0;
/// Frame kind: one superstep's delta (updated lists + values).
const FRAME_DELTA: u32 = 1;

/// FNV-1a over a byte slice — the same constants the sync-payload and
/// wire-batch checksums use ([`crate::fault::payload_checksum`]).
fn fnv1a(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x1000_0000_01b3;
    let mut h = OFFSET;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Cursor over a frame payload handed to [`DurableValue::decode`].
/// Returns `None` past the end, so a short or corrupted payload degrades
/// to a decode failure instead of a panic.
pub struct FrameReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> FrameReader<'a> {
    /// Wraps a payload slice.
    pub fn new(buf: &'a [u8]) -> Self {
        FrameReader { buf, pos: 0 }
    }

    /// The next `n` bytes, or `None` when fewer remain.
    pub fn bytes(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.buf.len() {
            return None;
        }
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Some(out)
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

/// A field type the [`durable_value!`](crate::durable_value) macro knows
/// how to serialize: fixed-width little-endian for scalars, length-
/// prefixed for vectors.
pub trait DurableField: Sized {
    /// Appends the encoded field.
    fn put(&self, out: &mut Vec<u8>);
    /// Decodes one field, `None` on truncation or an invalid encoding.
    fn take(r: &mut FrameReader<'_>) -> Option<Self>;
}

macro_rules! durable_scalar {
    ($($t:ty),*) => {$(
        impl DurableField for $t {
            fn put(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn take(r: &mut FrameReader<'_>) -> Option<Self> {
                let b = r.bytes(std::mem::size_of::<$t>())?;
                Some(<$t>::from_le_bytes(b.try_into().ok()?))
            }
        }
    )*};
}
durable_scalar!(u8, u16, u32, u64, i8, i16, i32, i64, f32, f64);

impl DurableField for bool {
    fn put(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn take(r: &mut FrameReader<'_>) -> Option<Self> {
        match r.bytes(1)? {
            [0] => Some(false),
            [1] => Some(true),
            _ => None,
        }
    }
}

impl DurableField for usize {
    fn put(&self, out: &mut Vec<u8>) {
        (*self as u64).put(out);
    }
    fn take(r: &mut FrameReader<'_>) -> Option<Self> {
        usize::try_from(u64::take(r)?).ok()
    }
}

impl<T: DurableField> DurableField for Vec<T> {
    fn put(&self, out: &mut Vec<u8>) {
        (self.len() as u64).put(out);
        for item in self {
            item.put(out);
        }
    }
    fn take(r: &mut FrameReader<'_>) -> Option<Self> {
        let len = usize::try_from(u64::take(r)?).ok()?;
        // A corrupted length must not trigger a huge allocation: the
        // payload can hold at most `remaining` one-byte items.
        if len > r.remaining() {
            return None;
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::take(r)?);
        }
        Some(out)
    }
}

/// A vertex type the durable store can serialize. Implement with the
/// [`durable_value!`](crate::durable_value) macro (listing every field),
/// or by hand for exotic layouts. The contract is a lossless round-trip:
/// `decode(encode(v)) == v` bit-for-bit, so a resumed run continues
/// bit-identically to an uninterrupted one.
pub trait DurableValue: VertexData {
    /// Appends the vertex's full state.
    fn encode(&self, out: &mut Vec<u8>);
    /// Decodes one vertex, `None` on truncation or an invalid encoding.
    fn decode(r: &mut FrameReader<'_>) -> Option<Self>;
}

/// Implements [`DurableValue`] for a struct by listing *all* of its
/// fields (the compiler rejects a partial list):
///
/// ```
/// #[derive(Clone, Default)]
/// struct Dist { d: u32, seen: bool }
/// flash_runtime::full_sync!(Dist);
/// flash_runtime::durable_value!(Dist { d, seen });
/// ```
#[macro_export]
macro_rules! durable_value {
    ($t:ty { $($f:ident),* $(,)? }) => {
        impl $crate::durable::DurableValue for $t {
            fn encode(&self, out: &mut ::std::vec::Vec<u8>) {
                let _ = &out;
                $($crate::durable::DurableField::put(&self.$f, out);)*
            }
            fn decode(
                r: &mut $crate::durable::FrameReader<'_>,
            ) -> ::core::option::Option<Self> {
                let _ = &r;
                ::core::option::Option::Some(Self {
                    $($f: $crate::durable::DurableField::take(r)?,)*
                })
            }
        }
    };
}

/// One frame of a generation file.
#[derive(Clone, Debug, PartialEq)]
struct FrameData {
    kind: u32,
    step: u64,
    payload: Vec<u8>,
}

impl FrameData {
    /// The checksum covers the frame's framing and payload, so a flipped
    /// bit anywhere in the frame is detected.
    fn checksum(&self) -> u64 {
        let mut bytes = Vec::with_capacity(20 + self.payload.len());
        bytes.extend_from_slice(&self.kind.to_le_bytes());
        bytes.extend_from_slice(&self.step.to_le_bytes());
        bytes.extend_from_slice(&(self.payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&self.payload);
        fnv1a(&bytes)
    }
}

/// A parsed, fully validated generation file.
struct ParsedStore {
    generation: u64,
    checkpoint_step: u64,
    workers: u64,
    vertices: u64,
    frames: Vec<FrameData>,
}

fn serialize_store(
    generation: u64,
    checkpoint_step: u64,
    workers: u64,
    vertices: u64,
    frames: &[FrameData],
) -> Vec<u8> {
    let mut out = Vec::with_capacity(
        HEADER_LEN + frames.iter().map(|f| 28 + f.payload.len()).sum::<usize>() + 20,
    );
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&generation.to_le_bytes());
    out.extend_from_slice(&checkpoint_step.to_le_bytes());
    out.extend_from_slice(&workers.to_le_bytes());
    out.extend_from_slice(&vertices.to_le_bytes());
    let hsum = fnv1a(&out[..HEADER_LEN - 8]);
    out.extend_from_slice(&hsum.to_le_bytes());
    for f in frames {
        out.extend_from_slice(&f.kind.to_le_bytes());
        out.extend_from_slice(&f.step.to_le_bytes());
        out.extend_from_slice(&(f.payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&f.payload);
        out.extend_from_slice(&f.checksum().to_le_bytes());
    }
    out.extend_from_slice(&FOOTER_MAGIC);
    out.extend_from_slice(&(frames.len() as u64).to_le_bytes());
    let mut fsum = Vec::with_capacity(12);
    fsum.extend_from_slice(&FOOTER_MAGIC);
    fsum.extend_from_slice(&(frames.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv1a(&fsum).to_le_bytes());
    out
}

fn read_u32(buf: &[u8], at: usize) -> Option<u32> {
    Some(u32::from_le_bytes(buf.get(at..at + 4)?.try_into().ok()?))
}

fn read_u64(buf: &[u8], at: usize) -> Option<u64> {
    Some(u64::from_le_bytes(buf.get(at..at + 8)?.try_into().ok()?))
}

/// Parses and validates a generation file. The error string is the scrub
/// reason reported in `checkpoint_scrubbed` events.
fn parse_store(buf: &[u8]) -> Result<ParsedStore, String> {
    if buf.len() < HEADER_LEN {
        return Err("truncated header".into());
    }
    if buf[0..4] != MAGIC {
        return Err("bad magic".into());
    }
    let version = read_u32(buf, 4).ok_or("truncated header")?;
    if version != VERSION {
        return Err(format!("unsupported version {version}"));
    }
    let hsum = read_u64(buf, HEADER_LEN - 8).ok_or("truncated header")?;
    if hsum != fnv1a(&buf[..HEADER_LEN - 8]) {
        return Err("header checksum mismatch".into());
    }
    let generation = read_u64(buf, 8).ok_or("truncated header")?;
    let checkpoint_step = read_u64(buf, 16).ok_or("truncated header")?;
    let workers = read_u64(buf, 24).ok_or("truncated header")?;
    let vertices = read_u64(buf, 32).ok_or("truncated header")?;
    let mut frames = Vec::new();
    let mut pos = HEADER_LEN;
    loop {
        let head = buf
            .get(pos..pos + 4)
            .ok_or("truncated mid-frame (no footer)")?;
        if head == FOOTER_MAGIC {
            let count = read_u64(buf, pos + 4).ok_or("truncated footer")?;
            let fsum = read_u64(buf, pos + 12).ok_or("truncated footer")?;
            let mut check = Vec::with_capacity(12);
            check.extend_from_slice(&FOOTER_MAGIC);
            check.extend_from_slice(&count.to_le_bytes());
            if fsum != fnv1a(&check) {
                return Err("footer checksum mismatch".into());
            }
            if count != frames.len() as u64 {
                return Err(format!(
                    "footer frame count {count} != {} frames present",
                    frames.len()
                ));
            }
            if pos + 20 != buf.len() {
                return Err("trailing bytes after footer".into());
            }
            return Ok(ParsedStore {
                generation,
                checkpoint_step,
                workers,
                vertices,
                frames,
            });
        }
        let kind = read_u32(buf, pos).ok_or("truncated mid-frame")?;
        if kind != FRAME_CHECKPOINT && kind != FRAME_DELTA {
            return Err(format!("unknown frame kind {kind}"));
        }
        let step = read_u64(buf, pos + 4).ok_or("truncated mid-frame")?;
        let payload_len = usize::try_from(read_u64(buf, pos + 12).ok_or("truncated mid-frame")?)
            .map_err(|_| "implausible payload length".to_string())?;
        let payload = buf
            .get(pos + 20..pos + 20 + payload_len)
            .ok_or("truncated mid-frame")?
            .to_vec();
        let sum = read_u64(buf, pos + 20 + payload_len).ok_or("truncated mid-frame")?;
        let frame = FrameData {
            kind,
            step,
            payload,
        };
        if sum != frame.checksum() {
            return Err(format!("frame checksum mismatch (frame {})", frames.len()));
        }
        frames.push(frame);
        pos += 28 + payload_len;
    }
}

/// One damaged generation the scrub pass found at open.
#[derive(Clone, Debug)]
pub(crate) struct ScrubReport {
    /// The damaged generation number (from the filename).
    pub(crate) generation: u64,
    /// What the scrub found.
    pub(crate) reason: String,
    /// Whether an older generation remained to fall back to.
    pub(crate) fallback: bool,
}

/// Outcome of a durable write attempt, for the cluster's bookkeeping.
pub(crate) enum DiskWrite {
    /// Nothing was written: the store is replaying, frozen, or has no
    /// generation yet. (Replay applications also land here.)
    None,
    /// A new generation was committed (tmp + fsync + rename succeeded).
    Committed {
        /// The generation number committed.
        generation: u64,
        /// Frames in the generation file.
        frames: u64,
        /// Bytes written and fsynced.
        bytes: u64,
    },
    /// The write or fsync failed — an injected `ioerr@` fault or a real
    /// I/O error. The commit is skipped; the store self-heals on its
    /// next write by rewriting the whole generation.
    Failed {
        /// The failed operation: `"checkpoint"` or `"delta"`.
        op: &'static str,
    },
}

/// The cluster's handle on a durable store: the current generation's
/// frames, the replay cursor for resumed runs, and the fault wiring.
/// Fully inert when absent — a run without `--durable-dir` never
/// constructs one.
pub(crate) struct DurableSession<V> {
    dir: PathBuf,
    encode: fn(&V, &mut Vec<u8>),
    decode: fn(&mut FrameReader<'_>) -> Option<V>,
    workers: usize,
    vertices: usize,
    /// The current generation number; meaningful once `has_generation`.
    generation: u64,
    checkpoint_step: u64,
    has_generation: bool,
    frames: Vec<FrameData>,
    /// Replay cursor into `frames`: below `frames.len()` the session is
    /// fast-forwarding a resumed run and writes nothing.
    cursor: usize,
    /// Set after `torn@`/`bitrot@` damage is applied: all further writes
    /// are skipped so the at-rest damage survives to the next cold
    /// start. Models the process dying right after the damage landed.
    wedged: bool,
    /// The scripted cold-restart kill switch: persistence freezes at the
    /// first superstep `>= halt_after` and the run degrades to
    /// [`RuntimeError::Halted`].
    halt_after: Option<u64>,
    halted: Option<u64>,
    /// Whether the last replay application matched the re-executed
    /// in-memory state byte-for-byte (always expected; surfaced for a
    /// debug assertion in the cluster).
    pub(crate) last_apply_matched: bool,
}

impl<V> std::fmt::Debug for DurableSession<V> {
    // Manual impl: a derive would demand `V: Debug` even though no field
    // holds a `V`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableSession")
            .field("dir", &self.dir)
            .field("generation", &self.generation)
            .field("has_generation", &self.has_generation)
            .field("checkpoint_step", &self.checkpoint_step)
            .field("frames", &self.frames.len())
            .field("cursor", &self.cursor)
            .field("wedged", &self.wedged)
            .field("halt_after", &self.halt_after)
            .field("halted", &self.halted)
            .finish_non_exhaustive()
    }
}

impl<V: VertexData> DurableSession<V> {
    /// Opens a fresh store for a new run: creates the directory and
    /// clears any stale generation or tmp files from a previous run.
    pub(crate) fn create(
        dir: &Path,
        workers: usize,
        vertices: usize,
        halt_after: Option<u64>,
        encode: fn(&V, &mut Vec<u8>),
        decode: fn(&mut FrameReader<'_>) -> Option<V>,
    ) -> Result<Self, RuntimeError> {
        fs::create_dir_all(dir)
            .map_err(|e| RuntimeError::Storage(format!("durable dir {dir:?}: {e}")))?;
        for (gen, path) in list_generations(dir) {
            let _ = gen;
            let _ = fs::remove_file(path);
        }
        remove_tmp_files(dir);
        Ok(DurableSession {
            dir: dir.to_path_buf(),
            encode,
            decode,
            workers,
            vertices,
            generation: 0,
            checkpoint_step: 0,
            has_generation: false,
            frames: Vec::new(),
            cursor: 0,
            wedged: false,
            halt_after,
            halted: None,
            last_apply_matched: true,
        })
    }

    /// Opens an existing store for resume: scrubs the directory, loads
    /// the newest valid generation, and arms the replay cursor. Damaged
    /// generations are reported; no valid generation degrades to
    /// [`RuntimeError::DurabilityLost`].
    pub(crate) fn open(
        dir: &Path,
        workers: usize,
        vertices: usize,
        halt_after: Option<u64>,
        encode: fn(&V, &mut Vec<u8>),
        decode: fn(&mut FrameReader<'_>) -> Option<V>,
    ) -> Result<(Self, Vec<ScrubReport>), RuntimeError> {
        remove_tmp_files(dir);
        let mut gens = list_generations(dir);
        gens.sort_by_key(|g| std::cmp::Reverse(g.0));
        if gens.is_empty() {
            return Err(RuntimeError::DurabilityLost(format!(
                "directory {dir:?} holds no generation files"
            )));
        }
        let total = gens.len();
        let mut reports = Vec::new();
        for (i, (gen, path)) in gens.iter().enumerate() {
            let reason = match fs::read(path) {
                Ok(buf) => match parse_store(&buf) {
                    Ok(parsed) => {
                        if parsed.generation != *gen {
                            format!(
                                "header generation {} != filename generation {gen}",
                                parsed.generation
                            )
                        } else if parsed.workers != workers as u64
                            || parsed.vertices != vertices as u64
                        {
                            format!(
                                "geometry mismatch: file has {} workers x {} vertices, \
                                 cluster has {workers} x {vertices}",
                                parsed.workers, parsed.vertices
                            )
                        } else {
                            return Ok((
                                DurableSession {
                                    dir: dir.to_path_buf(),
                                    encode,
                                    decode,
                                    workers,
                                    vertices,
                                    generation: *gen,
                                    checkpoint_step: parsed.checkpoint_step,
                                    has_generation: true,
                                    frames: parsed.frames,
                                    cursor: 0,
                                    wedged: false,
                                    halt_after,
                                    halted: None,
                                    last_apply_matched: true,
                                },
                                reports,
                            ));
                        }
                    }
                    Err(reason) => reason,
                },
                Err(e) => format!("unreadable: {e}"),
            };
            reports.push(ScrubReport {
                generation: *gen,
                reason,
                fallback: i + 1 < total,
            });
        }
        Err(RuntimeError::DurabilityLost(format!(
            "all {total} generation file(s) in {dir:?} damaged: {}",
            reports
                .iter()
                .map(|r| format!("gen {} ({})", r.generation, r.reason))
                .collect::<Vec<_>>()
                .join(", ")
        )))
    }

    /// Whether the session is still fast-forwarding loaded frames.
    pub(crate) fn replaying(&self) -> bool {
        self.cursor < self.frames.len()
    }

    /// The first superstep past the loaded log — scripted faults before
    /// it already fired in the original run and must not re-fire.
    pub(crate) fn resume_frontier(&self) -> Option<u64> {
        if self.frames.is_empty() || !self.has_generation {
            return None;
        }
        self.frames.last().map(|f| f.step + 1)
    }

    /// The superstep the kill switch fired at, if it has.
    pub(crate) fn halted_at(&self) -> Option<u64> {
        self.halted
    }

    fn check_halt(&mut self, step: u64) {
        if self.halted.is_none() {
            if let Some(k) = self.halt_after {
                if step >= k {
                    self.halted = Some(step);
                }
            }
        }
    }

    fn frozen(&self) -> bool {
        self.wedged || self.halted.is_some()
    }

    fn gen_path(&self, generation: u64) -> PathBuf {
        self.dir.join(format!("gen-{generation}.fck"))
    }

    fn encode_checkpoint(&self, states: &[WorkerState<V>]) -> Vec<u8> {
        let mut out = Vec::new();
        for st in states {
            for v in &st.current {
                (self.encode)(v, &mut out);
            }
        }
        out
    }

    fn apply_checkpoint(&self, payload: &[u8], states: &mut [WorkerState<V>]) -> Option<()> {
        let mut r = FrameReader::new(payload);
        for st in states.iter_mut() {
            for v in st.current.iter_mut() {
                *v = (self.decode)(&mut r)?;
            }
        }
        if r.remaining() != 0 {
            return None;
        }
        Some(())
    }

    fn encode_delta(&self, states: &[WorkerState<V>], updated: &[Vec<VertexId>]) -> Vec<u8> {
        let mut out = Vec::new();
        (updated.len() as u32).put(&mut out);
        for list in updated {
            (list.len() as u32).put(&mut out);
            for &v in list {
                v.put(&mut out);
            }
        }
        for st in states {
            for list in updated {
                for &v in list {
                    if let Some(val) = st.current.get(v as usize) {
                        (self.encode)(val, &mut out);
                    }
                }
            }
        }
        out
    }

    fn apply_delta(
        &self,
        payload: &[u8],
        states: &mut [WorkerState<V>],
        updated: &mut Vec<Vec<VertexId>>,
    ) -> Option<()> {
        let mut r = FrameReader::new(payload);
        let lists = usize::try_from(u32::take(&mut r)?).ok()?;
        let mut from_disk: Vec<Vec<VertexId>> = Vec::with_capacity(lists);
        for _ in 0..lists {
            let len = usize::try_from(u32::take(&mut r)?).ok()?;
            if len > self.vertices {
                return None;
            }
            let mut ids = Vec::with_capacity(len);
            for _ in 0..len {
                let v = VertexId::take(&mut r)?;
                if v as usize >= self.vertices {
                    return None;
                }
                ids.push(v);
            }
            from_disk.push(ids);
        }
        for st in states.iter_mut() {
            for list in &from_disk {
                for &v in list {
                    let val = (self.decode)(&mut r)?;
                    *st.current.get_mut(v as usize)? = val;
                }
            }
        }
        if r.remaining() != 0 {
            return None;
        }
        *updated = from_disk;
        Some(())
    }

    fn persist(&self) -> io::Result<u64> {
        let bytes = serialize_store(
            self.generation,
            self.checkpoint_step,
            self.workers as u64,
            self.vertices as u64,
            &self.frames,
        );
        let tmp = self.dir.join(format!("gen-{}.tmp", self.generation));
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, self.gen_path(self.generation))?;
        // Best-effort directory fsync so the rename itself is durable.
        if let Ok(d) = File::open(&self.dir) {
            let _ = d.sync_all();
        }
        Ok(bytes.len() as u64)
    }

    /// The checkpoint hook, called by `maybe_checkpoint` *before* the
    /// stats/trace/consensus bookkeeping, at the superstep the snapshot
    /// precedes. On a resumed run the loaded checkpoint frame is applied
    /// (disk is authoritative); on a live run a new generation is
    /// committed. Only a [`DiskWrite::Committed`] outcome may feed the
    /// consensus `CheckpointCommit` entry.
    pub(crate) fn on_checkpoint(
        &mut self,
        step: u64,
        states: &mut [WorkerState<V>],
        ioerr: bool,
        stats: &mut DurabilityStats,
    ) -> Result<DiskWrite, RuntimeError> {
        self.check_halt(step);
        if self.replaying() {
            let matches = {
                let f = &self.frames[self.cursor];
                f.kind == FRAME_CHECKPOINT && f.step == step
            };
            if matches {
                let payload = std::mem::take(&mut self.frames[self.cursor].payload);
                self.last_apply_matched = self.encode_checkpoint(states) == payload;
                if !self.last_apply_matched {
                    self.apply_checkpoint(&payload, states).ok_or_else(|| {
                        RuntimeError::DurabilityLost(format!(
                            "generation {} checkpoint frame failed to decode \
                             (vertex codec mismatch?)",
                            self.generation
                        ))
                    })?;
                }
                self.frames[self.cursor].payload = payload;
                self.cursor += 1;
            }
            return Ok(DiskWrite::None);
        }
        if self.frozen() {
            return Ok(DiskWrite::None);
        }
        if ioerr {
            stats.io_errors += 1;
            return Ok(DiskWrite::Failed { op: "checkpoint" });
        }
        self.generation = if self.has_generation {
            self.generation + 1
        } else {
            0
        };
        self.has_generation = true;
        self.checkpoint_step = step;
        self.frames = vec![FrameData {
            kind: FRAME_CHECKPOINT,
            step,
            payload: self.encode_checkpoint(states),
        }];
        self.cursor = self.frames.len();
        match self.persist() {
            Ok(bytes) => {
                stats.generations_written += 1;
                stats.bytes_fsynced += bytes;
                // Two-generation retention: the predecessor stays (the
                // scrub's fallback target), anything older goes.
                if self.generation >= 2 {
                    let _ = fs::remove_file(self.gen_path(self.generation - 2));
                }
                Ok(DiskWrite::Committed {
                    generation: self.generation,
                    frames: self.frames.len() as u64,
                    bytes,
                })
            }
            Err(_) => {
                stats.io_errors += 1;
                Ok(DiskWrite::Failed { op: "checkpoint" })
            }
        }
    }

    /// The delta hook, called by `record_delta` after a compute
    /// superstep's barrier. On a resumed run the loaded delta frame is
    /// applied (overwriting the re-executed state and the `updated`
    /// lists — disk is authoritative); on a live run the frame is
    /// appended and the whole generation rewritten through the two-phase
    /// commit.
    pub(crate) fn on_delta(
        &mut self,
        step: u64,
        states: &mut [WorkerState<V>],
        updated: &mut Vec<Vec<VertexId>>,
        ioerr: bool,
        stats: &mut DurabilityStats,
    ) -> Result<DiskWrite, RuntimeError> {
        self.check_halt(step);
        if self.replaying() {
            let matches = {
                let f = &self.frames[self.cursor];
                f.kind == FRAME_DELTA && f.step == step
            };
            if matches {
                let payload = std::mem::take(&mut self.frames[self.cursor].payload);
                self.last_apply_matched = self.encode_delta(states, updated) == payload;
                if !self.last_apply_matched {
                    self.apply_delta(&payload, states, updated).ok_or_else(|| {
                        RuntimeError::DurabilityLost(format!(
                            "generation {} delta frame (step {step}) failed to decode \
                             (vertex codec mismatch?)",
                            self.generation
                        ))
                    })?;
                }
                self.frames[self.cursor].payload = payload;
                self.cursor += 1;
                stats.resumed_steps += 1;
            }
            return Ok(DiskWrite::None);
        }
        if self.frozen() || !self.has_generation {
            return Ok(DiskWrite::None);
        }
        if ioerr {
            stats.io_errors += 1;
            return Ok(DiskWrite::Failed { op: "delta" });
        }
        self.frames.push(FrameData {
            kind: FRAME_DELTA,
            step,
            payload: self.encode_delta(states, updated),
        });
        self.cursor = self.frames.len();
        match self.persist() {
            Ok(bytes) => {
                stats.bytes_fsynced += bytes;
                stats.delta_frames += 1;
                Ok(DiskWrite::None)
            }
            Err(_) => {
                stats.io_errors += 1;
                Ok(DiskWrite::Failed { op: "delta" })
            }
        }
    }

    /// Applies scripted at-rest damage (`torn@` / `bitrot@`) to the
    /// newest *committed* generation file and wedges the store so later
    /// writes do not mask it — modeling the process dying right after
    /// the damage landed. `mask` must be nonzero so a bitrot flip is
    /// guaranteed detectable.
    pub(crate) fn damage(&mut self, kind: FaultKind, byte: u64, mask: u8) {
        self.wedged = true;
        if !self.has_generation {
            return;
        }
        let path = self.gen_path(self.generation);
        let Ok(buf) = fs::read(&path) else {
            return;
        };
        let damaged: Vec<u8> = match kind {
            FaultKind::Torn => {
                // Cut mid-frame: keep the header plus roughly two thirds
                // of the body, never the footer.
                let keep = (HEADER_LEN + 5).max(buf.len().saturating_mul(2) / 3);
                let keep = keep.min(buf.len().saturating_sub(1));
                buf.get(..keep).map(<[u8]>::to_vec).unwrap_or_default()
            }
            FaultKind::Bitrot => {
                let mut b = buf;
                if b.is_empty() {
                    return;
                }
                let at = usize::try_from(byte).unwrap_or(usize::MAX).min(b.len() - 1);
                b[at] ^= if mask == 0 { 1 } else { mask };
                b
            }
            _ => return,
        };
        let write = (|| -> io::Result<()> {
            let mut f = OpenOptions::new().write(true).truncate(true).open(&path)?;
            f.write_all(&damaged)?;
            f.sync_all()
        })();
        let _ = write;
    }
}

fn remove_tmp_files(dir: &Path) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().is_some_and(|e| e == "tmp") {
            let _ = fs::remove_file(path);
        }
    }
}

/// Generation files in `dir` as `(generation, path)`, unordered.
fn list_generations(dir: &Path) -> Vec<(u64, PathBuf)> {
    let Ok(entries) = fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for entry in entries.flatten() {
        let path = entry.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if let Some(gen) = name
            .strip_prefix("gen-")
            .and_then(|r| r.strip_suffix(".fck"))
            .and_then(|g| g.parse::<u64>().ok())
        {
            out.push((gen, path));
        }
    }
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use flash_graph::testutil::TempDirGuard;

    #[derive(Clone, Debug, Default, PartialEq)]
    struct Val {
        a: u32,
        b: i64,
        c: f64,
        d: bool,
        e: Vec<u32>,
    }
    crate::full_sync!(Val);
    crate::durable_value!(Val { a, b, c, d, e });

    #[derive(Clone, Default, PartialEq, Debug)]
    struct Unit;
    crate::full_sync!(Unit);
    crate::durable_value!(Unit {});

    #[test]
    fn durable_value_round_trips() {
        let v = Val {
            a: 7,
            b: -9,
            c: 2.5,
            d: true,
            e: vec![1, 2, 3],
        };
        let mut buf = Vec::new();
        v.encode(&mut buf);
        let mut r = FrameReader::new(&buf);
        assert_eq!(Val::decode(&mut r), Some(v));
        assert_eq!(r.remaining(), 0);

        // Truncation degrades to None, never a panic.
        let mut r = FrameReader::new(&buf[..buf.len() - 1]);
        assert_eq!(Val::decode(&mut r), None);

        // A unit struct costs zero bytes.
        let mut buf = Vec::new();
        Unit.encode(&mut buf);
        assert!(buf.is_empty());
        let mut r = FrameReader::new(&buf);
        assert_eq!(Unit::decode(&mut r), Some(Unit));
    }

    #[test]
    fn bool_and_vec_decoding_reject_garbage() {
        let mut r = FrameReader::new(&[2]);
        assert_eq!(bool::take(&mut r), None, "2 is not a bool");
        // A corrupted huge vector length must not allocate.
        let mut buf = Vec::new();
        (u64::MAX).put(&mut buf);
        let mut r = FrameReader::new(&buf);
        assert_eq!(Vec::<u32>::take(&mut r), None);
    }

    #[test]
    fn store_serialization_round_trips_and_detects_damage() {
        let frames = vec![
            FrameData {
                kind: FRAME_CHECKPOINT,
                step: 4,
                payload: vec![1, 2, 3, 4],
            },
            FrameData {
                kind: FRAME_DELTA,
                step: 4,
                payload: vec![9, 9],
            },
            FrameData {
                kind: FRAME_DELTA,
                step: 5,
                payload: vec![],
            },
        ];
        let bytes = serialize_store(3, 4, 2, 16, &frames);
        let parsed = parse_store(&bytes).expect("round-trip");
        assert_eq!(parsed.generation, 3);
        assert_eq!(parsed.checkpoint_step, 4);
        assert_eq!(parsed.workers, 2);
        assert_eq!(parsed.vertices, 16);
        assert_eq!(parsed.frames, frames);

        // Every single-byte flip anywhere in the file is detected.
        for at in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[at] ^= 0x40;
            assert!(
                parse_store(&bad).is_err(),
                "flip at byte {at} went undetected"
            );
        }
        // So is truncation at every possible length.
        for len in 0..bytes.len() {
            assert!(
                parse_store(&bytes[..len]).is_err(),
                "truncation to {len} bytes went undetected"
            );
        }
    }

    #[test]
    fn session_commits_generations_with_retention() {
        let dir = TempDirGuard::new("durable-session");
        let mut stats = DurabilityStats::default();
        let mut states: Vec<WorkerState<Val>> = (0..2)
            .map(|_| WorkerState::new(4, &|_| Val::default()))
            .collect();
        let mut s: DurableSession<Val> =
            DurableSession::create(dir.path(), 2, 4, None, Val::encode, Val::decode).unwrap();
        // Three checkpoints: gen 0, 1, 2 — retention keeps the last two.
        for step in [0u64, 4, 8] {
            states[0].current[0].a = step as u32;
            let out = s
                .on_checkpoint(step, &mut states, false, &mut stats)
                .unwrap();
            assert!(matches!(out, DiskWrite::Committed { .. }));
            let mut upd = vec![vec![0u32], vec![]];
            let out = s
                .on_delta(step, &mut states, &mut upd, false, &mut stats)
                .unwrap();
            assert!(matches!(out, DiskWrite::None));
        }
        assert_eq!(stats.generations_written, 3);
        assert_eq!(stats.delta_frames, 3);
        assert!(stats.bytes_fsynced > 0);
        let mut gens: Vec<u64> = list_generations(dir.path())
            .into_iter()
            .map(|(g, _)| g)
            .collect();
        gens.sort_unstable();
        assert_eq!(gens, vec![1, 2], "gen 0 removed by retention");

        // The newest generation re-opens with its delta tail.
        let (s2, reports) =
            DurableSession::<Val>::open(dir.path(), 2, 4, None, Val::encode, Val::decode).unwrap();
        assert!(reports.is_empty());
        assert_eq!(s2.generation, 2);
        assert_eq!(s2.frames.len(), 2, "checkpoint + one delta");
        assert!(s2.replaying());
        assert_eq!(s2.resume_frontier(), Some(9));
    }

    #[test]
    fn ioerr_skips_commit_and_store_self_heals() {
        let dir = TempDirGuard::new("durable-ioerr");
        let mut stats = DurabilityStats::default();
        let mut states: Vec<WorkerState<Val>> = (0..1)
            .map(|_| WorkerState::new(2, &|_| Val::default()))
            .collect();
        let mut s: DurableSession<Val> =
            DurableSession::create(dir.path(), 1, 2, None, Val::encode, Val::decode).unwrap();
        let out = s.on_checkpoint(0, &mut states, true, &mut stats).unwrap();
        assert!(matches!(out, DiskWrite::Failed { op: "checkpoint" }));
        assert_eq!(stats.io_errors, 1);
        assert!(list_generations(dir.path()).is_empty(), "nothing committed");
        // The next write rewrites the whole generation — self-healing.
        let out = s.on_checkpoint(1, &mut states, false, &mut stats).unwrap();
        assert!(matches!(out, DiskWrite::Committed { .. }));
        assert_eq!(list_generations(dir.path()).len(), 1);
    }

    #[test]
    fn torn_and_bitrot_damage_fall_back_to_previous_generation() {
        for kind in [FaultKind::Torn, FaultKind::Bitrot] {
            let dir = TempDirGuard::new("durable-damage");
            let mut stats = DurabilityStats::default();
            let mut states: Vec<WorkerState<Val>> = (0..2)
                .map(|_| WorkerState::new(4, &|_| Val::default()))
                .collect();
            let mut s: DurableSession<Val> =
                DurableSession::create(dir.path(), 2, 4, None, Val::encode, Val::decode).unwrap();
            s.on_checkpoint(0, &mut states, false, &mut stats).unwrap();
            let mut upd = vec![vec![1u32], vec![]];
            s.on_delta(0, &mut states, &mut upd, false, &mut stats)
                .unwrap();
            s.on_checkpoint(4, &mut states, false, &mut stats).unwrap();
            // Damage the newest committed generation (gen 1) and verify
            // the wedge freezes later writes.
            s.damage(kind, 60, 0x20);
            let mut upd = vec![vec![2u32], vec![]];
            let frames_before = s.frames.len();
            s.on_delta(4, &mut states, &mut upd, false, &mut stats)
                .unwrap();
            assert_eq!(s.frames.len(), frames_before, "wedged store is frozen");

            let (s2, reports) =
                DurableSession::<Val>::open(dir.path(), 2, 4, None, Val::encode, Val::decode)
                    .unwrap();
            assert_eq!(s2.generation, 0, "fell back to the previous generation");
            assert_eq!(reports.len(), 1, "{kind:?}");
            assert!(reports[0].fallback);
            assert_eq!(reports[0].generation, 1);
        }
    }

    #[test]
    fn open_with_nothing_valid_degrades_to_durability_lost() {
        let dir = TempDirGuard::new("durable-lost");
        let err = DurableSession::<Val>::open(dir.path(), 1, 2, None, Val::encode, Val::decode)
            .unwrap_err();
        assert!(matches!(err, RuntimeError::DurabilityLost(_)), "{err}");

        // A lone damaged generation is scrubbed and then nothing remains.
        fs::write(dir.path().join("gen-0.fck"), b"FCK1garbage").unwrap();
        let err = DurableSession::<Val>::open(dir.path(), 1, 2, None, Val::encode, Val::decode)
            .unwrap_err();
        assert!(matches!(err, RuntimeError::DurabilityLost(_)), "{err}");
    }

    #[test]
    fn geometry_mismatch_is_scrubbed_not_loaded() {
        let dir = TempDirGuard::new("durable-geometry");
        let mut stats = DurabilityStats::default();
        let mut states: Vec<WorkerState<Val>> = (0..2)
            .map(|_| WorkerState::new(4, &|_| Val::default()))
            .collect();
        let mut s: DurableSession<Val> =
            DurableSession::create(dir.path(), 2, 4, None, Val::encode, Val::decode).unwrap();
        s.on_checkpoint(0, &mut states, false, &mut stats).unwrap();
        // Re-open with a different cluster geometry: the generation is
        // valid bytes but unusable, so it must be scrubbed.
        let err = DurableSession::<Val>::open(dir.path(), 3, 4, None, Val::encode, Val::decode)
            .unwrap_err();
        assert!(err.to_string().contains("no valid generation"), "{err}");
    }

    #[test]
    fn halt_after_freezes_persistence() {
        let dir = TempDirGuard::new("durable-halt");
        let mut stats = DurabilityStats::default();
        let mut states: Vec<WorkerState<Val>> = (0..1)
            .map(|_| WorkerState::new(2, &|_| Val::default()))
            .collect();
        let mut s: DurableSession<Val> =
            DurableSession::create(dir.path(), 1, 2, Some(3), Val::encode, Val::decode).unwrap();
        s.on_checkpoint(0, &mut states, false, &mut stats).unwrap();
        let mut upd = vec![vec![0u32]];
        s.on_delta(2, &mut states, &mut upd, false, &mut stats)
            .unwrap();
        assert!(s.halted_at().is_none());
        s.on_delta(3, &mut states, &mut upd, false, &mut stats)
            .unwrap();
        assert_eq!(s.halted_at(), Some(3));
        assert_eq!(stats.delta_frames, 1, "the halted step never persisted");
    }
}
