//! Reliable delivery over the lossy simulated channel.
//!
//! The paper's MPI runtime assumes a perfect transport: every message
//! buffer that is sent arrives intact, exactly once, in order. This module
//! drops that assumption. A [`FaultPlan`](crate::FaultPlan) may script
//! channel faults (`drop@`, `dup@`, `reorder@`) or enable a seeded
//! probabilistic mode (`loss=`, `dupRate=`, `corruptRate=`), and the
//! [`Transport`] layers a classic ack/retransmit protocol on top so the
//! algorithm above still observes exactly-once delivery:
//!
//! * **Sequencing** — every cross-host batch carries a per-(sender,
//!   receiver) wire sequence number and an FNV checksum over its framing
//!   ([`batch_checksum`]).
//! * **Ack/nack + retransmit** — the sender waits one simulated message
//!   round for an ack at the superstep barrier; a lost or corrupted batch
//!   misses the deadline (or is nacked on a checksum mismatch) and is put
//!   back on the wire, up to the plan's `retries=` budget with the usual
//!   capped backoff machinery. Retransmissions are charged through
//!   [`NetworkModel::retransmit_cost`] so lossy runs honestly cost more.
//! * **Dedup window** — the receiver admits each (pair, sequence) at most
//!   once ([`DedupWindow`]); duplicated deliveries and late reordered
//!   originals racing their own retransmission are discarded.
//!
//! The cluster moves message buffers between worker heaps synchronously,
//! so payload *content* is never at risk — what the transport simulates is
//! the wire protocol that would have carried those buffers on a real
//! interconnect: which transmissions the channel ate, what the protocol
//! did about it, and what that cost. Exactly-once is therefore an
//! invariant the transport *verifies and accounts for*, and results stay
//! bit-identical under any valid channel-fault plan. The one exception is
//! an exhausted retransmit budget: like
//! [`RecoveryExhausted`](crate::RuntimeError::RecoveryExhausted), the run
//! degrades to a clean [`RuntimeError::DeliveryExhausted`] — never a
//! panic — and the rest of the run executes with the transport disabled.

use crate::error::RuntimeError;
use crate::fault::{FaultKind, FaultPlan};
use crate::netmodel::NetworkModel;
use crate::stats::DeliveryStats;
use flash_graph::Prng;
use flash_obs::{EventKind, MetricsRegistry};
use std::collections::BTreeMap;
use std::collections::BTreeSet;

/// Decorrelates the channel PRNG from the corruption-nonce stream drawn
/// from the same plan seed by [`FaultInjector`](crate::fault).
const CHANNEL_SEED_SALT: u64 = 0x05EA_1EDC_AB1E;

/// Per-(sender-host, receiver-host) receive window: admits each wire
/// sequence number at most once, tracking out-of-order arrivals ahead of
/// the next expected sequence in a sparse set.
#[derive(Debug, Clone)]
pub struct DedupWindow {
    /// Next in-order sequence number expected per pair.
    next_expected: Vec<u64>,
    /// Sequence numbers admitted ahead of `next_expected`, per pair.
    ahead: Vec<BTreeSet<u64>>,
}

impl DedupWindow {
    /// A window over `pairs` independent (sender, receiver) channels.
    pub fn new(pairs: usize) -> Self {
        DedupWindow {
            next_expected: vec![0; pairs],
            ahead: vec![BTreeSet::new(); pairs],
        }
    }

    /// Admits `seq` on channel `pair` if it has never been admitted
    /// before; returns `false` for a duplicate. Contiguous runs are
    /// compacted into `next_expected` so the ahead-set stays small.
    pub fn admit(&mut self, pair: usize, seq: u64) -> bool {
        let next = &mut self.next_expected[pair];
        if seq < *next {
            return false;
        }
        if seq == *next {
            *next += 1;
            while self.ahead[pair].remove(next) {
                *next += 1;
            }
            true
        } else {
            self.ahead[pair].insert(seq)
        }
    }
}

/// FNV-1a over a batch's wire framing: sender, receiver, sequence number,
/// message count and payload length. Order matters here (unlike
/// [`payload_checksum`](crate::fault::payload_checksum), which digests
/// per-vertex records commutatively) because the framing is a fixed-layout
/// header, not a set.
pub fn batch_checksum(sender: usize, receiver: usize, seq: u64, messages: u64, bytes: u64) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x1000_0000_01b3;
    let mut h = OFFSET;
    for word in [sender as u64, receiver as u64, seq, messages, bytes] {
        for byte in word.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(PRIME);
        }
    }
    h
}

/// One message round's cross-host traffic, aggregated per
/// (sender-host, receiver-host) pair: `(messages, bytes)`. A `BTreeMap`
/// keeps the delivery order — and hence the PRNG draw order —
/// deterministic.
pub type RoundBatches = BTreeMap<(usize, usize), (u64, u64)>;

/// A scripted channel fault resolved to the sending host:
/// `(kind, sender_host, times)`. `times` is meaningful for
/// [`FaultKind::Drop`] only (transmission attempts swallowed per batch).
pub type ScriptedChannelFault = (FaultKind, usize, u32);

/// What one delivery round produced: trace events for the cluster to emit
/// (in protocol order) and at most one terminal failure.
#[derive(Debug, Default)]
pub struct RoundOutcome {
    /// Events in the order the protocol generated them.
    pub events: Vec<EventKind>,
    /// Set when a batch exhausted its retransmit budget; the transport is
    /// disabled and the run should degrade to this error.
    pub failure: Option<RuntimeError>,
}

/// The reliable-delivery state machine. Owned by the cluster whenever a
/// fault plan is attached; inert (cheap early-return) unless the plan
/// actually has channel faults.
#[derive(Debug)]
pub struct Transport {
    /// Seeded channel PRNG for the probabilistic loss/dup/corrupt draws.
    prng: Prng,
    loss: f64,
    dup_rate: f64,
    corrupt_rate: f64,
    /// Retransmit budget per batch (the plan's `retries=`).
    max_retries: u32,
    /// Physical host count; pairs are indexed `sender * hosts + receiver`.
    hosts: usize,
    /// Next wire sequence number per (sender, receiver) pair.
    next_seq: Vec<u64>,
    window: DedupWindow,
    /// Flips off after an exhausted retransmit budget so the rest of the
    /// run passes through untouched (mirrors `FaultInjector::active`).
    pub active: bool,
}

impl Transport {
    /// Builds the transport for a cluster of `hosts` physical hosts.
    pub fn new(plan: &FaultPlan, hosts: usize) -> Self {
        Transport {
            prng: Prng::seed_from_u64(plan.seed ^ CHANNEL_SEED_SALT),
            loss: plan.loss,
            dup_rate: plan.dup_rate,
            corrupt_rate: plan.corrupt_rate,
            max_retries: plan.max_retries,
            hosts,
            next_seq: vec![0; hosts * hosts],
            window: DedupWindow::new(hosts * hosts),
            active: true,
        }
    }

    /// A Bernoulli draw with probability `p` from the channel PRNG
    /// (53-bit mantissa, the standard `[0, 1)` construction).
    fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        let unit = (self.prng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// A nonzero value XOR-ed into a wire checksum to model in-flight
    /// corruption detectably.
    fn corruption_nonce(&mut self) -> u64 {
        loop {
            let n = self.prng.next_u64();
            if n != 0 {
                return n;
            }
        }
    }

    /// Runs the ack/retransmit protocol for one message round of
    /// superstep `step`. `round` is `"upd"` (mirror→master) or `"sync"`
    /// (master→mirror); `scripted` carries the channel faults fired by the
    /// injector this round, resolved to sending hosts. Counters accumulate
    /// into `stats`; retransmission time is charged through `net`. When
    /// `metrics` is provided, per-retransmit latencies (the simulated
    /// ack-deadline + re-ship charge) land in the
    /// `transport/retransmit_latency_ns` histogram and dedup-window
    /// discards in the `transport/dedup_hits` counter.
    ///
    /// Every batch either lands exactly once in the receive window or —
    /// after `1 + max_retries` lost transmissions — produces a
    /// [`RuntimeError::DeliveryExhausted`] in the outcome, disabling the
    /// transport for the rest of the run.
    // One parameter per independent output channel (stats, metrics) —
    // bundling them would just move the argument list into a struct the
    // single caller builds inline.
    #[allow(clippy::too_many_arguments)]
    pub fn deliver(
        &mut self,
        step: u64,
        round: &str,
        batches: &RoundBatches,
        scripted: &[ScriptedChannelFault],
        net: Option<&NetworkModel>,
        stats: &mut DeliveryStats,
        mut metrics: Option<&mut MetricsRegistry>,
    ) -> RoundOutcome {
        let mut out = RoundOutcome::default();
        if !self.active || batches.is_empty() {
            return out;
        }
        for (&(sender, receiver), &(messages, bytes)) in batches {
            let pair = sender * self.hosts + receiver;
            let seq = self.next_seq[pair];
            self.next_seq[pair] += 1;
            let checksum = batch_checksum(sender, receiver, seq, messages, bytes);
            stats.batches_sent += 1;

            let drop_attempts = scripted
                .iter()
                .filter(|(k, h, _)| *k == FaultKind::Drop && *h == sender)
                .map(|&(_, _, times)| times)
                .max()
                .unwrap_or(0);
            let duplicate = scripted
                .iter()
                .any(|(k, h, _)| *k == FaultKind::Duplicate && *h == sender);
            let reorder = scripted
                .iter()
                .any(|(k, h, _)| *k == FaultKind::Reorder && *h == sender);

            let mut attempt: u32 = 0;
            let mut delivered = false;
            // A scripted reorder holds the original past the ack deadline;
            // it arrives at the *next* attempt, racing the retransmission.
            let mut in_flight_late = false;
            loop {
                if in_flight_late {
                    in_flight_late = false;
                    if self.window.admit(pair, seq) {
                        delivered = true;
                    } else {
                        stats.dedup_hits += 1;
                        if let Some(m) = metrics.as_deref_mut() {
                            m.counter_add("transport/dedup_hits", 1);
                        }
                        out.events.push(EventKind::BatchDeduped {
                            step,
                            round: round.to_string(),
                            sender,
                            receiver,
                            seq_no: seq,
                        });
                    }
                }
                let scripted_drop = attempt < drop_attempts;
                if scripted_drop || self.chance(self.loss) {
                    stats.batches_dropped += 1;
                    out.events.push(EventKind::BatchDropped {
                        step,
                        round: round.to_string(),
                        sender,
                        receiver,
                        seq_no: seq,
                        attempt: u64::from(attempt),
                        cause: if scripted_drop { "drop" } else { "loss" }.to_string(),
                    });
                } else if reorder && attempt == 0 {
                    stats.batches_reordered += 1;
                    in_flight_late = true;
                } else if self.chance(self.corrupt_rate) {
                    // The wire flips the checksum; the receiver recomputes
                    // it over the framing, detects the mismatch and nacks.
                    let wire = checksum ^ self.corruption_nonce();
                    debug_assert_ne!(wire, checksum, "corruption must be detectable");
                    stats.checksum_failures += 1;
                    out.events.push(EventKind::BatchDropped {
                        step,
                        round: round.to_string(),
                        sender,
                        receiver,
                        seq_no: seq,
                        attempt: u64::from(attempt),
                        cause: "corrupt".to_string(),
                    });
                } else {
                    let copies = if (duplicate && attempt == 0) || self.chance(self.dup_rate) {
                        stats.batches_duplicated += 1;
                        2
                    } else {
                        1
                    };
                    for _ in 0..copies {
                        if self.window.admit(pair, seq) {
                            delivered = true;
                        } else {
                            stats.dedup_hits += 1;
                            if let Some(m) = metrics.as_deref_mut() {
                                m.counter_add("transport/dedup_hits", 1);
                            }
                            out.events.push(EventKind::BatchDeduped {
                                step,
                                round: round.to_string(),
                                sender,
                                receiver,
                                seq_no: seq,
                            });
                        }
                    }
                }
                if delivered {
                    break;
                }
                if attempt >= self.max_retries {
                    self.active = false;
                    out.failure = Some(RuntimeError::DeliveryExhausted {
                        step,
                        sender,
                        receiver,
                        attempts: attempt + 1,
                    });
                    return out;
                }
                attempt += 1;
                stats.retransmits += 1;
                stats.retransmitted_bytes += bytes;
                if let Some(net) = net {
                    let cost = net.retransmit_cost(bytes);
                    stats.retransmit_net += cost;
                    if let Some(m) = metrics.as_deref_mut() {
                        m.record_duration("transport/retransmit_latency_ns", cost);
                    }
                }
                out.events.push(EventKind::BatchRetransmitted {
                    step,
                    round: round.to_string(),
                    sender,
                    receiver,
                    seq_no: seq,
                    attempt: u64::from(attempt),
                    bytes,
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type BatchEntry = ((usize, usize), (u64, u64));

    fn batches(entries: &[BatchEntry]) -> RoundBatches {
        entries.iter().copied().collect()
    }

    fn clean_plan() -> FaultPlan {
        FaultPlan::default()
    }

    #[test]
    fn dedup_window_admits_each_seq_once() {
        let mut w = DedupWindow::new(2);
        assert!(w.admit(0, 0));
        assert!(!w.admit(0, 0), "same seq twice is a duplicate");
        assert!(w.admit(0, 2), "out of order is fine once");
        assert!(!w.admit(0, 2));
        assert!(w.admit(0, 1), "the gap fills in");
        assert!(!w.admit(0, 1), "compaction still remembers it");
        assert!(w.admit(0, 3), "next_expected advanced past the run");
        assert!(w.admit(1, 0), "pairs are independent");
    }

    #[test]
    fn checksum_depends_on_every_framing_field() {
        let base = batch_checksum(0, 1, 2, 3, 4);
        assert_ne!(base, batch_checksum(1, 1, 2, 3, 4));
        assert_ne!(base, batch_checksum(0, 2, 2, 3, 4));
        assert_ne!(base, batch_checksum(0, 1, 3, 3, 4));
        assert_ne!(base, batch_checksum(0, 1, 2, 4, 4));
        assert_ne!(base, batch_checksum(0, 1, 2, 3, 5));
        assert_eq!(base, batch_checksum(0, 1, 2, 3, 4), "deterministic");
    }

    #[test]
    fn clean_channel_delivers_without_protocol_noise() {
        let mut t = Transport::new(&clean_plan(), 3);
        let mut stats = DeliveryStats::default();
        let b = batches(&[((0, 1), (10, 80)), ((2, 0), (5, 40))]);
        let out = t.deliver(
            1,
            "upd",
            &b,
            &[],
            Some(&NetworkModel::ten_gbe()),
            &mut stats,
            None,
        );
        assert!(out.failure.is_none());
        assert!(out.events.is_empty());
        assert_eq!(stats.batches_sent, 2);
        assert_eq!(stats.batches_dropped, 0);
        assert_eq!(stats.retransmits, 0);
        assert_eq!(stats.dedup_hits, 0);
    }

    #[test]
    fn scripted_drop_recovers_via_retransmit() {
        let mut t = Transport::new(&clean_plan(), 2);
        let mut stats = DeliveryStats::default();
        let b = batches(&[((0, 1), (10, 80))]);
        let scripted = [(FaultKind::Drop, 0, 1)];
        let net = NetworkModel::ten_gbe();
        let out = t.deliver(1, "upd", &b, &scripted, Some(&net), &mut stats, None);
        assert!(out.failure.is_none());
        assert_eq!(stats.batches_dropped, 1);
        assert_eq!(stats.retransmits, 1);
        assert_eq!(stats.retransmitted_bytes, 80);
        assert_eq!(stats.retransmit_net, net.retransmit_cost(80));
        let tags: Vec<_> = out.events.iter().map(EventKind::tag).collect();
        assert_eq!(tags, ["batch_dropped", "batch_retransmitted"]);
    }

    #[test]
    fn scripted_dup_is_deduped() {
        let mut t = Transport::new(&clean_plan(), 2);
        let mut stats = DeliveryStats::default();
        let b = batches(&[((1, 0), (4, 32))]);
        let scripted = [(FaultKind::Duplicate, 1, 1)];
        let out = t.deliver(
            2,
            "sync",
            &b,
            &scripted,
            Some(&NetworkModel::ten_gbe()),
            &mut stats,
            None,
        );
        assert!(out.failure.is_none());
        assert_eq!(stats.batches_duplicated, 1);
        assert_eq!(stats.dedup_hits, 1);
        assert_eq!(stats.retransmits, 0);
        let tags: Vec<_> = out.events.iter().map(EventKind::tag).collect();
        assert_eq!(tags, ["batch_deduped"]);
    }

    #[test]
    fn scripted_reorder_races_its_retransmission() {
        let mut t = Transport::new(&clean_plan(), 2);
        let mut stats = DeliveryStats::default();
        let b = batches(&[((0, 1), (4, 32))]);
        let scripted = [(FaultKind::Reorder, 0, 1)];
        let out = t.deliver(
            3,
            "upd",
            &b,
            &scripted,
            Some(&NetworkModel::ten_gbe()),
            &mut stats,
            None,
        );
        assert!(out.failure.is_none());
        assert_eq!(stats.batches_reordered, 1);
        assert_eq!(stats.retransmits, 1, "the ack deadline expired");
        assert_eq!(stats.dedup_hits, 1, "late original vs retransmission");
        let tags: Vec<_> = out.events.iter().map(EventKind::tag).collect();
        assert_eq!(tags, ["batch_retransmitted", "batch_deduped"]);
    }

    #[test]
    fn exhausted_budget_degrades_cleanly_and_disables_transport() {
        let plan = FaultPlan::parse("retries=2").unwrap();
        let mut t = Transport::new(&plan, 2);
        let mut stats = DeliveryStats::default();
        let b = batches(&[((0, 1), (4, 32))]);
        let scripted = [(FaultKind::Drop, 0, 99)];
        let out = t.deliver(
            1,
            "upd",
            &b,
            &scripted,
            Some(&NetworkModel::ten_gbe()),
            &mut stats,
            None,
        );
        assert_eq!(
            out.failure,
            Some(RuntimeError::DeliveryExhausted {
                step: 1,
                sender: 0,
                receiver: 1,
                attempts: 3,
            })
        );
        assert!(!t.active, "transport disabled after exhaustion");
        assert_eq!(stats.batches_dropped, 3, "initial send + two retransmits");
        assert_eq!(stats.retransmits, 2, "retransmits bounded by the budget");
        // Disabled transport passes everything through untouched.
        let before = stats.clone();
        let out = t.deliver(
            2,
            "upd",
            &b,
            &[],
            Some(&NetworkModel::ten_gbe()),
            &mut stats,
            None,
        );
        assert!(out.failure.is_none() && out.events.is_empty());
        assert_eq!(stats, before);
    }

    #[test]
    fn probabilistic_loss_is_seeded_and_recovered() {
        let plan = FaultPlan::parse("loss=0.5,seed=11,retries=8").unwrap();
        let run = || {
            let mut t = Transport::new(&plan, 3);
            let mut stats = DeliveryStats::default();
            let b = batches(&[((0, 1), (4, 32)), ((1, 2), (2, 16)), ((2, 0), (8, 64))]);
            for step in 0..16 {
                let out = t.deliver(
                    step,
                    "upd",
                    &b,
                    &[],
                    Some(&NetworkModel::ten_gbe()),
                    &mut stats,
                    None,
                );
                assert!(out.failure.is_none(), "retries=8 outlasts loss=0.5");
            }
            stats
        };
        let a = run();
        let c = run();
        assert_eq!(a, c, "same seed, same channel weather");
        assert!(a.batches_dropped > 0, "p=0.5 over 48 batches must drop");
        assert_eq!(a.batches_sent, 48);
        assert!(a.retransmits >= a.batches_dropped);
    }

    #[test]
    fn corrupt_rate_feeds_checksum_failures() {
        let plan = FaultPlan::parse("corruptRate=0.5,seed=3,retries=10").unwrap();
        let mut t = Transport::new(&plan, 2);
        let mut stats = DeliveryStats::default();
        let b = batches(&[((0, 1), (4, 32))]);
        for step in 0..24 {
            let out = t.deliver(
                step,
                "sync",
                &b,
                &[],
                Some(&NetworkModel::ten_gbe()),
                &mut stats,
                None,
            );
            assert!(out.failure.is_none());
        }
        assert!(stats.checksum_failures > 0);
        assert_eq!(
            stats.retransmits, stats.checksum_failures,
            "every nack triggers exactly one retransmit here"
        );
        assert_eq!(stats.batches_dropped, 0, "corruption is not loss");
    }

    #[test]
    fn dup_rate_draws_are_deduped_not_redelivered() {
        let plan = FaultPlan::parse("dupRate=0.5,seed=9").unwrap();
        let mut t = Transport::new(&plan, 2);
        let mut stats = DeliveryStats::default();
        let b = batches(&[((0, 1), (4, 32))]);
        for step in 0..24 {
            let out = t.deliver(
                step,
                "upd",
                &b,
                &[],
                Some(&NetworkModel::ten_gbe()),
                &mut stats,
                None,
            );
            assert!(out.failure.is_none());
        }
        assert!(stats.batches_duplicated > 0);
        assert_eq!(stats.dedup_hits, stats.batches_duplicated);
        assert_eq!(stats.retransmits, 0);
    }

    #[test]
    fn wire_sequences_advance_per_pair() {
        let mut t = Transport::new(&clean_plan(), 2);
        let mut stats = DeliveryStats::default();
        let b = batches(&[((0, 1), (1, 8)), ((1, 0), (1, 8))]);
        for step in 0..3 {
            t.deliver(
                step,
                "upd",
                &b,
                &[],
                Some(&NetworkModel::ten_gbe()),
                &mut stats,
                None,
            );
        }
        assert_eq!(t.next_seq[1], 3, "pair (0,1) advanced once per round");
        assert_eq!(t.next_seq[2], 3, "pair (1,0) advanced once per round");
        assert_eq!(t.next_seq[0], 0, "self-pair untouched");
    }
}
