//! Runtime error types.

use std::fmt;

/// Errors raised by FLASHWARE.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    /// The cluster was configured with zero workers.
    NoWorkers,
    /// A worker-count / partition-map mismatch.
    PartitionMismatch {
        /// Workers in the configuration.
        config: usize,
        /// Workers in the partition map.
        partition: usize,
    },
    /// The graph and partition map disagree on the vertex count.
    GraphMismatch {
        /// Vertices in the graph.
        graph: usize,
        /// Vertices in the partition map.
        partition: usize,
    },
    /// An algorithm exceeded its superstep budget without converging.
    NotConverged {
        /// The budget that was exhausted.
        supersteps: usize,
    },
    /// A kernel misuse detected at runtime (bug in the calling code).
    KernelMisuse(&'static str),
    /// Fault recovery exhausted its retry budget at a superstep: the same
    /// failure re-fired on every attempt, so the run degrades to this
    /// clean error instead of looping or panicking.
    RecoveryExhausted {
        /// The superstep that kept failing.
        step: u64,
        /// Compute attempts made (`1 +` the configured retry budget).
        attempts: u32,
    },
    /// A fault plan failed attach-time validation (out-of-range worker,
    /// implausible step, duplicate spec, unpaired rejoin, or a plan that
    /// kills every worker).
    InvalidFaultPlan(String),
    /// A worker was declared permanently dead but no checkpoint exists to
    /// recover its masters from (checkpointing was disabled), so the run
    /// cannot continue elastically.
    WorkerLost {
        /// The worker declared dead.
        worker: usize,
        /// The superstep at which it was lost.
        step: u64,
    },
    /// Reliable delivery exhausted its retransmit budget for one batch:
    /// every transmission attempt was lost on the wire, so the transport
    /// degrades the run to this clean error instead of spinning forever —
    /// the channel-layer mirror of [`RuntimeError::RecoveryExhausted`].
    DeliveryExhausted {
        /// The superstep whose message round could not be delivered.
        step: u64,
        /// Sending host of the undeliverable batch.
        sender: usize,
        /// Receiving host of the undeliverable batch.
        receiver: usize,
        /// Transmission attempts made (`1 +` the retransmit budget).
        attempts: u32,
    },
    /// The storage configuration cannot serve this graph — e.g.
    /// `StorageMode::Block` on a graph that was not opened through
    /// `flash_graph::blocks::open_blocks`.
    Storage(String),
    /// The replicated control plane lost its quorum: too few live hosts
    /// remain to commit a decision (or to pin a byzantine accusation on a
    /// majority of honest replicas), so the run degrades to this clean
    /// error — the consensus-layer mirror of
    /// [`RuntimeError::RecoveryExhausted`].
    QuorumLost {
        /// The superstep at which the quorum was lost.
        step: u64,
        /// Live hosts remaining.
        live: usize,
        /// Hosts a majority would have required.
        needed: usize,
    },
    /// The durable checkpoint store holds no valid generation: the scrub
    /// pass found every on-disk generation damaged (or the directory
    /// empty on a `--resume`), so a cold restart has nothing to recover
    /// from — the durability-layer mirror of
    /// [`RuntimeError::RecoveryExhausted`].
    DurabilityLost(String),
    /// The run was halted by the scripted cold-restart kill switch
    /// (`durable_halt_after`): durable persistence froze at the scripted
    /// superstep — simulating a whole-process kill — so the in-memory
    /// result is discarded and the run must be resumed from disk.
    Halted {
        /// The superstep the simulated kill landed on.
        step: u64,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::NoWorkers => write!(f, "cluster requires at least one worker"),
            RuntimeError::PartitionMismatch { config, partition } => write!(
                f,
                "config has {config} workers but partition map has {partition}"
            ),
            RuntimeError::GraphMismatch { graph, partition } => write!(
                f,
                "graph has {graph} vertices but partition map covers {partition}"
            ),
            RuntimeError::NotConverged { supersteps } => {
                write!(
                    f,
                    "algorithm did not converge within {supersteps} supersteps"
                )
            }
            RuntimeError::KernelMisuse(msg) => write!(f, "kernel misuse: {msg}"),
            RuntimeError::RecoveryExhausted { step, attempts } => write!(
                f,
                "fault recovery exhausted after {attempts} attempts at superstep {step}"
            ),
            RuntimeError::InvalidFaultPlan(msg) => write!(f, "invalid fault plan: {msg}"),
            RuntimeError::WorkerLost { worker, step } => write!(
                f,
                "worker {worker} permanently lost at superstep {step} with no checkpoint to \
                 recover from (checkpointing is disabled)"
            ),
            RuntimeError::DeliveryExhausted {
                step,
                sender,
                receiver,
                attempts,
            } => write!(
                f,
                "reliable delivery exhausted after {attempts} transmission attempts at \
                 superstep {step} (batch from host {sender} to host {receiver})"
            ),
            RuntimeError::Storage(msg) => write!(f, "storage configuration rejected: {msg}"),
            RuntimeError::QuorumLost { step, live, needed } => write!(
                f,
                "control-plane quorum lost at superstep {step}: {live} live hosts remain \
                 but a majority needs {needed}"
            ),
            RuntimeError::DurabilityLost(msg) => write!(
                f,
                "durable checkpoint store has no valid generation to recover from: {msg}"
            ),
            RuntimeError::Halted { step } => write!(
                f,
                "run halted at superstep {step} (simulated process kill); resume from the \
                 durable checkpoint store to continue"
            ),
        }
    }
}

impl std::error::Error for RuntimeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_key_numbers() {
        let e = RuntimeError::PartitionMismatch {
            config: 4,
            partition: 2,
        };
        assert!(e.to_string().contains('4') && e.to_string().contains('2'));
        assert!(RuntimeError::NotConverged { supersteps: 100 }
            .to_string()
            .contains("100"));
        let r = RuntimeError::RecoveryExhausted {
            step: 7,
            attempts: 4,
        };
        assert!(r.to_string().contains('7') && r.to_string().contains('4'));
        let w = RuntimeError::WorkerLost { worker: 2, step: 5 };
        assert!(w.to_string().contains('2') && w.to_string().contains('5'));
        assert!(w.to_string().contains("checkpoint"));
        let p = RuntimeError::InvalidFaultPlan("duplicate spec".into());
        assert!(p.to_string().contains("duplicate spec"));
        let d = RuntimeError::DeliveryExhausted {
            step: 3,
            sender: 1,
            receiver: 2,
            attempts: 4,
        };
        let msg = d.to_string();
        assert!(msg.contains("delivery"), "{msg}");
        assert!(msg.contains('3') && msg.contains('4'), "{msg}");
        assert!(msg.contains("host 1") && msg.contains("host 2"), "{msg}");
        let s = RuntimeError::Storage("block storage requires a block-backed graph".into());
        assert!(s.to_string().contains("storage"), "{s}");
        assert!(s.to_string().contains("block-backed"), "{s}");
        let q = RuntimeError::QuorumLost {
            step: 6,
            live: 1,
            needed: 2,
        };
        let msg = q.to_string();
        assert!(msg.contains("quorum"), "{msg}");
        assert!(
            msg.contains('6') && msg.contains('1') && msg.contains('2'),
            "{msg}"
        );
        let d = RuntimeError::DurabilityLost("all 2 generations damaged".into());
        assert!(d.to_string().contains("no valid generation"), "{d}");
        assert!(d.to_string().contains("all 2 generations damaged"), "{d}");
        let h = RuntimeError::Halted { step: 9 };
        assert!(h.to_string().contains('9'), "{h}");
        assert!(h.to_string().contains("resume"), "{h}");
    }
}
