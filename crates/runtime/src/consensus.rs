//! The replicated control plane: a Raft-style elected coordinator and a
//! durable, majority-committed decision log (DESIGN.md §14).
//!
//! Before this module, the cluster's control-plane decisions — membership
//! epoch bumps, checkpoint commits, death declarations — were *ambient*:
//! applied by whatever code path reached them first, with no notion of who
//! decided or what a survivor would know after a coordinator loss. This
//! module reifies them as entries in a replicated log driven by an elected
//! leader:
//!
//! * **Elections** (Raft §5.2, simplified for a simulated full-information
//!   cluster): each election bumps the term and seats exactly one candidate
//!   — the smallest live host — with a vote from every live host. Election
//!   safety (at most one leader per term) therefore holds *by
//!   construction*: a term admits one candidate and is never reused.
//! * **The log** (Raft §5.3): entries carry `(term, index, step, kind)`.
//!   Indices are 1-based and strictly sequential; terms along the log are
//!   non-decreasing (the Log Matching property). An entry is *committed*
//!   once a majority of the voting hosts acknowledge it; only committed
//!   entries are applied.
//! * **Byzantine accusation**: a worker that returns a checksum-mismatched
//!   sync payload is caught by [`checksum_quorum`] — every live replica
//!   recomputes the payload checksum independently, and a strict majority
//!   agreeing on a different value than the worker reported pins the lie
//!   on it. The accusation escalates to a death declaration through the
//!   same committed log.
//!
//! The consensus layer is built only when a fault plan is attached (the
//! cluster is "under test"); fault-free runs skip it entirely and pay
//! nothing, keeping the fault-free hot path and its stats byte-identical.
//!
//! Everything here is deterministic: no randomness, no wall clocks, no
//! timeouts — liveness comes from the simulation's synchronous barriers,
//! so the usual Raft timers collapse into explicit `elect` calls at the
//! points where the cluster observes a leader loss.

// The control plane is exactly the code that runs when the cluster is
// already degraded; a panic here would turn a recoverable fault into an
// abort. Everything must degrade to typed errors.
#![deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

/// A control-plane decision, replicated through the log before it is
/// applied. The serialized form (see [`LogEntryKind::label`]) is what the
/// `log_committed` trace event reports.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LogEntryKind {
    /// A membership epoch bump: the partition map re-homed partitions
    /// (death rebalance or rejoin) and every survivor must agree on the
    /// epoch before acting under it.
    EpochBump {
        /// The epoch the cluster moves to.
        epoch: u64,
        /// What caused the bump (`"die"`, `"rejoin"`, `"deadline"`,
        /// `"leader"`, `"accused"`).
        cause: String,
    },
    /// A checkpoint becomes the durable recovery point only once a
    /// majority acknowledges it — otherwise a surviving minority could
    /// roll back to a checkpoint the leader never finished installing.
    CheckpointCommit {
        /// Serialized size of the checkpoint being committed.
        bytes: u64,
    },
    /// A declaration that hosts are permanently dead. Voted on by the
    /// *survivors* only — the dying hosts cannot acknowledge their own
    /// funeral.
    DeathDeclaration {
        /// The hosts being declared dead.
        hosts: Vec<usize>,
        /// Why (`"die"`, `"deadline"`, `"leader"`, `"accused"`).
        reason: String,
    },
}

impl LogEntryKind {
    /// The stable string tag used in trace events and result JSON.
    pub fn label(&self) -> &'static str {
        match self {
            LogEntryKind::EpochBump { .. } => "epoch_bump",
            LogEntryKind::CheckpointCommit { .. } => "checkpoint_commit",
            LogEntryKind::DeathDeclaration { .. } => "death_declaration",
        }
    }
}

/// One replicated log entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogEntry {
    /// The leader term under which the entry was appended.
    pub term: u64,
    /// 1-based, strictly sequential position in the log.
    pub index: u64,
    /// The superstep at which the decision was taken.
    pub step: u64,
    /// The decision itself.
    pub kind: LogEntryKind,
}

/// The outcome of one election.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Election {
    /// The new (strictly increased) term.
    pub term: u64,
    /// The elected leader host.
    pub leader: usize,
    /// Votes received — every live host in this full-information model.
    pub votes: usize,
    /// Live hosts at election time.
    pub live_hosts: usize,
}

/// The outcome of one committed log entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Commit {
    /// Term under which the entry committed.
    pub term: u64,
    /// Log index of the entry.
    pub index: u64,
    /// Acknowledgements received.
    pub acks: usize,
    /// Acknowledgements a majority required.
    pub quorum: usize,
}

/// The verdict of a checksum quorum over one worker's sync payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChecksumVerdict {
    /// The majority checksum — what the payload *actually* hashes to.
    pub expected: u64,
    /// How many replicas voted for the majority value.
    pub accusers: usize,
    /// The strict majority that was required to pin the lie.
    pub quorum: usize,
}

/// The replicated control-plane state machine. One logical instance is
/// shared by all hosts of the simulated cluster; per-host divergence is
/// impossible here by construction, which is exactly the property a real
/// deployment buys with Raft's AppendEntries consistency check.
#[derive(Clone, Debug, Default)]
pub struct Consensus {
    term: u64,
    leader: Option<usize>,
    log: Vec<LogEntry>,
    committed: u64,
}

impl Consensus {
    /// A fresh control plane: term 0, no leader, empty log. The cluster
    /// runs the first election before its first superstep.
    pub fn new() -> Self {
        Consensus::default()
    }

    /// The current term.
    pub fn term(&self) -> u64 {
        self.term
    }

    /// The current leader host, if one has been elected and not lost.
    pub fn leader(&self) -> Option<usize> {
        self.leader
    }

    /// The full replicated log, committed prefix first.
    pub fn log(&self) -> &[LogEntry] {
        &self.log
    }

    /// Index of the last committed entry (0 = nothing committed).
    pub fn committed(&self) -> u64 {
        self.committed
    }

    /// Runs one election among `live` hosts: bumps the term and seats the
    /// smallest live host with a vote from every live host. Returns `None`
    /// when no host is live (the cluster is gone; callers surface
    /// [`RuntimeError::QuorumLost`](crate::RuntimeError::QuorumLost)).
    ///
    /// Exactly one candidate stands per term and terms are never reused,
    /// so *election safety* — at most one leader per term — holds by
    /// construction; the property test below checks it anyway.
    pub fn elect(&mut self, live: &[usize]) -> Option<Election> {
        let leader = live.iter().copied().min()?;
        self.term += 1;
        self.leader = Some(leader);
        Some(Election {
            term: self.term,
            leader,
            votes: live.len(),
            live_hosts: live.len(),
        })
    }

    /// Marks the leadership vacant (the leader host crashed). The next
    /// decision requires a fresh election first.
    pub fn vacate(&mut self) {
        self.leader = None;
    }

    /// Appends a decision under the current term and commits it with
    /// `voters` acknowledging replicas. Every live voter acks in this
    /// synchronous model, so the entry commits iff the voter set can form
    /// a majority at all — `Err(needed)` reports the quorum that zero
    /// voters could not meet.
    pub fn commit(
        &mut self,
        step: u64,
        kind: LogEntryKind,
        voters: usize,
    ) -> Result<Commit, usize> {
        let quorum = voters / 2 + 1;
        if voters == 0 {
            return Err(quorum);
        }
        let index = self.log.len() as u64 + 1;
        self.log.push(LogEntry {
            term: self.term,
            index,
            step,
            kind,
        });
        self.committed = index;
        Ok(Commit {
            term: self.term,
            index,
            acks: voters,
            quorum,
        })
    }

    /// Checks the Log Matching property over the whole log: indices are
    /// 1-based and strictly sequential, terms are non-decreasing, and the
    /// commit index never exceeds the log length. Debug/test helper;
    /// returns the first violation as text.
    pub fn check_log_matching(&self) -> Result<(), String> {
        for (i, entry) in self.log.iter().enumerate() {
            let want = i as u64 + 1;
            if entry.index != want {
                return Err(format!(
                    "log index {} at position {i} (expected {want})",
                    entry.index
                ));
            }
            if i > 0 && entry.term < self.log[i - 1].term {
                return Err(format!(
                    "term regressed from {} to {} at index {want}",
                    self.log[i - 1].term,
                    entry.term
                ));
            }
            if entry.term > self.term {
                return Err(format!(
                    "entry at index {want} carries future term {} (current {})",
                    entry.term, self.term
                ));
            }
        }
        if self.committed > self.log.len() as u64 {
            return Err(format!(
                "commit index {} exceeds log length {}",
                self.committed,
                self.log.len()
            ));
        }
        Ok(())
    }
}

/// Resolves a byzantine checksum dispute: `votes` pairs each live host
/// with the checksum it independently computed for one worker's sync
/// payload. A strict majority agreeing on one value pins that value as
/// the truth; `Ok` carries the verdict, `Err(needed)` means no value
/// reached the quorum (too few replicas to out-vote the liar — with two
/// hosts the vote splits 1–1 and nobody can be accused).
pub fn checksum_quorum(votes: &[(usize, u64)]) -> Result<ChecksumVerdict, usize> {
    let quorum = votes.len() / 2 + 1;
    // Tiny vote sets (≤ hosts) — a linear count beats a hash map.
    for &(_, candidate) in votes {
        let accusers = votes.iter().filter(|&&(_, c)| c == candidate).count();
        if accusers >= quorum {
            return Ok(ChecksumVerdict {
                expected: candidate,
                accusers,
                quorum,
            });
        }
    }
    Err(quorum)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use flash_graph::Prng;

    #[test]
    fn first_election_seats_smallest_live_host() {
        let mut c = Consensus::new();
        let el = c.elect(&[0, 1, 2, 3]).unwrap();
        assert_eq!(el.term, 1);
        assert_eq!(el.leader, 0);
        assert_eq!(el.votes, 4);
        assert_eq!(c.leader(), Some(0));

        // Host 0 crashes; the survivors seat host 1 under a new term.
        c.vacate();
        assert_eq!(c.leader(), None);
        let el2 = c.elect(&[1, 2, 3]).unwrap();
        assert_eq!(el2.term, 2);
        assert_eq!(el2.leader, 1);
        assert_eq!(el2.votes, 3);
    }

    #[test]
    fn electing_with_no_live_hosts_fails() {
        let mut c = Consensus::new();
        assert_eq!(c.elect(&[]), None);
        assert_eq!(c.term(), 0, "a failed election burns no term");
    }

    #[test]
    fn commit_appends_sequentially_and_reports_quorum() {
        let mut c = Consensus::new();
        c.elect(&[0, 1, 2]).unwrap();
        let a = c
            .commit(0, LogEntryKind::CheckpointCommit { bytes: 128 }, 3)
            .unwrap();
        assert_eq!((a.index, a.term, a.acks, a.quorum), (1, 1, 3, 2));
        let b = c
            .commit(
                4,
                LogEntryKind::DeathDeclaration {
                    hosts: vec![2],
                    reason: "die".into(),
                },
                2,
            )
            .unwrap();
        assert_eq!((b.index, b.acks, b.quorum), (2, 2, 2));
        let e = c
            .commit(
                4,
                LogEntryKind::EpochBump {
                    epoch: 1,
                    cause: "die".into(),
                },
                2,
            )
            .unwrap();
        assert_eq!(e.index, 3);
        assert_eq!(c.committed(), 3);
        assert_eq!(c.log().len(), 3);
        assert_eq!(c.log()[1].kind.label(), "death_declaration");
        c.check_log_matching().unwrap();
    }

    #[test]
    fn commit_with_zero_voters_reports_needed_quorum() {
        let mut c = Consensus::new();
        c.elect(&[0]).unwrap();
        assert_eq!(
            c.commit(1, LogEntryKind::CheckpointCommit { bytes: 1 }, 0),
            Err(1)
        );
        assert_eq!(c.log().len(), 0, "a failed commit appends nothing");
    }

    /// Property: across arbitrary interleavings of elections (over random
    /// live sets) and commits, every term seats at most one leader and
    /// terms strictly increase per election.
    #[test]
    fn property_election_safety_under_random_membership() {
        let mut prng = Prng::seed_from_u64(0xE1EC);
        for case in 0..200u64 {
            let hosts = 1 + (prng.next_u64() % 8) as usize;
            let mut c = Consensus::new();
            let mut leaders_by_term: Vec<(u64, usize)> = Vec::new();
            for _ in 0..16 {
                // A random non-empty live subset of the hosts.
                let mut live: Vec<usize> = (0..hosts)
                    .filter(|_| prng.next_u64().is_multiple_of(2))
                    .collect();
                if live.is_empty() {
                    live.push((prng.next_u64() % hosts as u64) as usize);
                }
                let before = c.term();
                let el = c.elect(&live).expect("non-empty live set");
                assert!(el.term > before, "case {case}: terms strictly increase");
                assert!(live.contains(&el.leader), "case {case}: leader is live");
                assert!(
                    leaders_by_term.iter().all(|&(t, _)| t != el.term),
                    "case {case}: term {} reused",
                    el.term
                );
                leaders_by_term.push((el.term, el.leader));
                if prng.next_u64().is_multiple_of(2) {
                    let _ = c.commit(
                        el.term,
                        LogEntryKind::CheckpointCommit { bytes: 64 },
                        live.len(),
                    );
                }
            }
        }
    }

    /// Property: the log built by arbitrary elect/commit sequences always
    /// satisfies Log Matching (sequential indices, non-decreasing terms,
    /// commit index in bounds).
    #[test]
    fn property_log_matching_under_random_histories() {
        let mut prng = Prng::seed_from_u64(0x106);
        for case in 0..200u64 {
            let mut c = Consensus::new();
            c.elect(&[0, 1, 2, 3]).unwrap();
            for step in 0..32u64 {
                match prng.next_u64() % 4 {
                    0 => {
                        let survivors = 1 + (prng.next_u64() % 4) as usize;
                        let live: Vec<usize> = (0..survivors).collect();
                        c.elect(&live).unwrap();
                    }
                    1 => {
                        let _ = c.commit(step, LogEntryKind::CheckpointCommit { bytes: 32 }, 3);
                    }
                    2 => {
                        let _ = c.commit(
                            step,
                            LogEntryKind::EpochBump {
                                epoch: step,
                                cause: "die".into(),
                            },
                            2,
                        );
                    }
                    _ => {
                        let _ = c.commit(
                            step,
                            LogEntryKind::DeathDeclaration {
                                hosts: vec![(prng.next_u64() % 4) as usize],
                                reason: "deadline".into(),
                            },
                            1 + (prng.next_u64() % 3) as usize,
                        );
                    }
                }
                c.check_log_matching()
                    .unwrap_or_else(|e| panic!("case {case} step {step}: {e}"));
            }
        }
    }

    #[test]
    fn checksum_quorum_pins_the_dissenter() {
        // Hosts 0 and 2 agree; host 1 lies.
        let verdict = checksum_quorum(&[(0, 0xAB), (1, 0xFF), (2, 0xAB)]).unwrap();
        assert_eq!(verdict.expected, 0xAB);
        assert_eq!(verdict.accusers, 2);
        assert_eq!(verdict.quorum, 2);
    }

    #[test]
    fn checksum_quorum_needs_a_strict_majority() {
        // Two hosts, split vote: nobody can be out-voted.
        assert_eq!(checksum_quorum(&[(0, 0xAB), (1, 0xFF)]), Err(2));
        // No votes at all.
        assert_eq!(checksum_quorum(&[]), Err(1));
        // Unanimity trivially passes.
        let v = checksum_quorum(&[(0, 7), (1, 7)]).unwrap();
        assert_eq!((v.expected, v.accusers), (7, 2));
    }
}
