#![warn(missing_docs)]

//! # flash-runtime — FLASHWARE, the distributed middleware of FLASH
//!
//! This crate is the reproduction of the paper's **FLASHWARE** (§IV): the
//! middle layer that "completes intra-node updating and inter-node
//! communication" underneath the FLASH programming interface.
//!
//! Because this reproduction has no MPI cluster, FLASHWARE here drives a
//! **simulated cluster**: each worker is an independent state partition
//! executed on its own OS thread during a superstep, and all inter-worker
//! traffic flows through explicit, byte-counted message buffers exchanged
//! at BSP barriers. Every architectural element of the paper exists:
//!
//! * **masters and mirrors** — every worker holds a full `current` replica
//!   of the vertex-state array; the slots it owns are masters, the rest
//!   mirrors kept consistent by explicit synchronization messages
//!   ([`Cluster`], [`state::WorkerState`]);
//! * **current/next state split** — `get` reads the consistent current
//!   state, `put` writes the invisible next state, `barrier()` publishes
//!   (§IV-A "Interface");
//! * **two-round sparse propagation** — mirror-side combining, then
//!   mirror→master messages, then master→mirror broadcast (§IV-A "Usages");
//! * **critical-property synchronization** (Table II) via
//!   [`VertexData::Critical`] and the [`plan`] analyzer;
//! * **necessary-mirrors-only communication** via
//!   [`config::SyncScope::Necessary`];
//! * a **simulated network model** standing in for the 10 GbE interconnect
//!   ([`netmodel::NetworkModel`]);
//! * **fault tolerance** — a deterministic fault injector ([`fault`])
//!   plus superstep-boundary checkpointing with rollback/replay recovery
//!   ([`checkpoint`]), the Pregel-style mechanism a real MPI deployment
//!   would need;
//! * **elastic membership** — a barrier-deadline failure detector that
//!   declares workers *permanently* dead (`die@` faults, stragglers past
//!   the `detector=` timeout), re-homes their partitions onto the
//!   survivors from the last checkpoint, and lets scripted `rejoin@`
//!   events grow the cluster back — all without changing results by a
//!   single bit (DESIGN.md §9);
//! * **reliable delivery over a lossy channel** — `drop@`/`dup@`/`reorder@`
//!   faults and seeded `loss=`/`dupRate=`/`corruptRate=` modes exercise an
//!   ack/retransmit protocol with wire sequence numbers, batch checksums
//!   and a receive-side dedup window, so delivery stays exactly-once from
//!   the algorithm's point of view ([`transport`], DESIGN.md §10);
//! * **a consensus-backed control plane** — whenever a fault plan is
//!   attached, control-plane decisions (epoch bumps, checkpoint commits,
//!   death declarations) replicate through a Raft-style majority-committed
//!   log under an elected leader; `leader@` faults crash the coordinator
//!   mid-run and `lie@` faults exercise byzantine checksum-quorum
//!   detection ([`consensus`], DESIGN.md §14);
//! * **a durable checkpoint store** — with a durable directory configured,
//!   every checkpoint plus the per-step delta log is committed to a
//!   versioned on-disk format (`FCK1`) through a crash-consistent
//!   two-phase commit, so a cold restart resumes bit-identically; seeded
//!   `ioerr@`/`torn@`/`bitrot@` disk faults exercise a scrub-and-fallback
//!   recovery path ([`durable`], DESIGN.md §15).

pub mod checkpoint;
pub mod cluster;
pub mod config;
pub mod consensus;
pub mod ctx;
pub mod durable;
pub mod error;
pub mod fault;
pub mod netmodel;
pub mod par;
pub mod plan;
pub mod session;
pub mod state;
pub mod stats;
pub mod transport;

pub use checkpoint::Checkpoint;
pub use cluster::{Cluster, StepOutput};
pub use config::{ClusterConfig, HotPath, ModePolicy, StorageMode, SyncMode, SyncScope};
pub use consensus::{
    checksum_quorum, ChecksumVerdict, Commit, Consensus, Election, LogEntry, LogEntryKind,
};
pub use ctx::WorkerCtx;
pub use durable::{DurableField, DurableValue, FrameReader};
pub use error::RuntimeError;
pub use fault::{
    format_duration, parse_duration, FaultKind, FaultPlan, FaultSpec, DEFAULT_DETECTOR_TIMEOUT,
    MAX_PLAUSIBLE_STEP,
};
pub use flash_obs::MetricsRegistry;
pub use netmodel::NetworkModel;
pub use session::{BufferPool, ServingStats, Session};
pub use stats::{
    ns_u64, us_half_up, ConsensusStats, DeliveryStats, DurabilityStats, RecoveryStats, RunStats,
    StepKind, StepStats, StorageInfo,
};
pub use transport::{batch_checksum, DedupWindow, Transport};

/// Vertex state stored by FLASHWARE for every vertex of the graph.
///
/// A `VertexData` type plays the role of the paper's per-vertex property
/// set. The associated [`VertexData::Critical`] type is the *critical
/// projection*: the subset of properties that other vertices may read, and
/// therefore the only data a master must broadcast to its mirrors
/// (§IV-C "Synchronize critical properties only"; the decision rules are
/// Table II, reproduced in [`plan`]).
///
/// For types whose properties are all critical, use the
/// [`full_sync`](macro@crate::full_sync) macro instead of a manual impl.
pub trait VertexData: Clone + Send + Sync + 'static {
    /// The subset of properties synchronized from masters to mirrors.
    type Critical: Clone + Send + Sync + 'static;

    /// Extracts the critical projection for broadcast.
    fn critical(&self) -> Self::Critical;

    /// Installs a received critical projection into a mirror copy.
    fn apply_critical(&mut self, c: Self::Critical);

    /// Wire size of a full vertex value, in bytes. Override for types
    /// owning heap data (e.g. neighbor lists) so message accounting stays
    /// honest.
    fn bytes(&self) -> usize {
        std::mem::size_of::<Self>()
    }

    /// Wire size of a critical projection, in bytes. Override together
    /// with [`VertexData::bytes`] for heap-owning types.
    fn critical_bytes(c: &Self::Critical) -> usize {
        let _ = c;
        std::mem::size_of::<Self::Critical>()
    }
}

/// Implements [`VertexData`] with `Critical = Self` (every property is
/// synchronized — the safe default when no static analysis narrows it).
///
/// ```
/// #[derive(Clone, Default)]
/// struct Dist { d: u32 }
/// flash_runtime::full_sync!(Dist);
/// ```
#[macro_export]
macro_rules! full_sync {
    ($t:ty) => {
        impl $crate::VertexData for $t {
            type Critical = $t;
            fn critical(&self) -> $t {
                self.clone()
            }
            fn apply_critical(&mut self, c: $t) {
                *self = c;
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Default, PartialEq, Debug)]
    struct Simple {
        x: u64,
    }
    full_sync!(Simple);

    #[test]
    fn full_sync_macro_round_trips() {
        let a = Simple { x: 9 };
        let c = a.critical();
        let mut b = Simple::default();
        b.apply_critical(c);
        assert_eq!(a, b);
        assert_eq!(a.bytes(), 8);
        assert_eq!(Simple::critical_bytes(&a.critical()), 8);
    }

    #[derive(Clone)]
    struct Partial {
        shared: u32,
        #[allow(dead_code)]
        scratch: [u8; 64], // local-only, never synchronized
    }

    impl Default for Partial {
        fn default() -> Self {
            Partial {
                shared: 0,
                scratch: [0; 64],
            }
        }
    }

    impl VertexData for Partial {
        type Critical = u32;
        fn critical(&self) -> u32 {
            self.shared
        }
        fn apply_critical(&mut self, c: u32) {
            self.shared = c;
        }
    }

    #[test]
    fn partial_projection_is_smaller() {
        let p = Partial {
            shared: 3,
            scratch: [0; 64],
        };
        assert!(Partial::critical_bytes(&p.critical()) < p.bytes());
        let mut q = Partial::default();
        q.apply_critical(p.critical());
        assert_eq!(q.shared, 3);
    }
}
