//! The view a kernel has of one worker during a superstep.

use crate::state::WorkerState;
use crate::VertexData;
use flash_graph::{Graph, PartitionMap, VertexId};

/// A worker's execution context, handed to the compute closure of every
/// superstep.
///
/// This is the paper's FLASHWARE interface (§IV-A) made safe for Rust:
///
/// * [`WorkerCtx::get`] — read the consistent *current* state of any
///   vertex (master or mirror): "a worker can access arbitrary vertices
///   safely".
/// * [`WorkerCtx::put`] — stage a reduce-accumulated update for any vertex
///   (the `put(id, v, R)` of the paper, used by `EDGEMAPSPARSE`).
/// * [`WorkerCtx::write_master`] — stage a whole-value update for a vertex
///   this worker owns (the reduce-free `put` used by `VERTEXMAP` and
///   `EDGEMAPDENSE`).
///
/// The `barrier()` of the paper is implicit: it runs when the superstep's
/// compute closure returns, publishing all staged writes and synchronizing
/// mirrors.
pub struct WorkerCtx<'a, V: VertexData> {
    worker: usize,
    graph: &'a Graph,
    partition: &'a PartitionMap,
    state: &'a mut WorkerState<V>,
    threads: usize,
}

impl<'a, V: VertexData> WorkerCtx<'a, V> {
    pub(crate) fn new(
        worker: usize,
        graph: &'a Graph,
        partition: &'a PartitionMap,
        state: &'a mut WorkerState<V>,
        threads: usize,
    ) -> Self {
        WorkerCtx {
            worker,
            graph,
            partition,
            state,
            threads,
        }
    }

    /// This worker's id (`0..m`).
    #[inline]
    pub fn worker(&self) -> usize {
        self.worker
    }

    /// Threads available for intra-worker parallelism
    /// (see [`crate::par::parallel_chunks`]).
    #[inline]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The shared, immutable graph.
    #[inline]
    pub fn graph(&self) -> &'a Graph {
        self.graph
    }

    /// The partition map (ownership and mirror placement).
    #[inline]
    pub fn partition(&self) -> &'a PartitionMap {
        self.partition
    }

    /// The physical host this logical worker currently executes on. Equal
    /// to [`worker`](Self::worker) until an elastic rebalance re-homes the
    /// partition after a permanent worker loss (see
    /// [`PartitionMap::host_of_worker`]).
    #[inline]
    pub fn host(&self) -> usize {
        self.partition.host_of_worker(self.worker)
    }

    /// The master vertices this worker owns, ascending.
    #[inline]
    pub fn masters(&self) -> &'a [VertexId] {
        self.partition.masters(self.worker)
    }

    /// Reads the current (consistent) state of any vertex — the paper's
    /// `get(id)`. Reads see the state as of the *previous* barrier; staged
    /// writes of the running superstep are invisible (BSP semantics).
    #[inline]
    pub fn get(&self, v: VertexId) -> &V {
        self.state.current(v)
    }

    /// Snapshot of the whole current-state replica (for kernels that
    /// parallelize reads across intra-worker threads).
    #[inline]
    pub fn current_slice(&self) -> &[V] {
        &self.state.current
    }

    /// Stages an update of `v` with temporary value `temp`, combining with
    /// any previously staged temporary via `reduce` — the paper's
    /// `put(id, v, R)`. `reduce(t, acc)` must be associative and
    /// commutative over temporaries (§III-A).
    ///
    /// Works for *any* vertex: updates to remote masters become
    /// mirror→master messages at the barrier.
    #[inline]
    pub fn put(&mut self, v: VertexId, temp: V, reduce: &(impl Fn(&V, &mut V) + ?Sized)) {
        use std::collections::hash_map::Entry;
        self.state.op_puts += 1;
        match self.state.pending.entry(v) {
            Entry::Occupied(mut e) => reduce(&temp, e.get_mut()),
            Entry::Vacant(e) => {
                e.insert(temp);
            }
        }
    }

    /// Stages a whole-value write of a vertex this worker masters
    /// (overwrite, no reduce). Used by `VERTEXMAP` / `EDGEMAPDENSE`, whose
    /// updates are applied "immediately and sequentially" per master.
    ///
    /// # Panics
    /// Panics (debug builds) if `v` is not mastered by this worker.
    #[inline]
    pub fn write_master(&mut self, v: VertexId, val: V) {
        debug_assert!(
            self.partition.is_master(self.worker, v),
            "write_master({v}) on worker {} which does not own it",
            self.worker
        );
        self.state.op_writes += 1;
        self.state.direct.push((v, val));
    }

    /// Bulk variant of [`WorkerCtx::write_master`] used by kernels that
    /// buffer per-thread results before committing.
    pub fn write_masters<I: IntoIterator<Item = (VertexId, V)>>(&mut self, writes: I) {
        for (v, val) in writes {
            self.write_master(v, val);
        }
    }

    /// Bulk variant of [`WorkerCtx::put`].
    pub fn puts<I: IntoIterator<Item = (VertexId, V)>>(
        &mut self,
        updates: I,
        reduce: &(impl Fn(&V, &mut V) + ?Sized),
    ) {
        for (v, temp) in updates {
            self.put(v, temp, reduce);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flash_graph::{generators, HashPartitioner};

    #[derive(Clone, Default, Debug, PartialEq)]
    struct Acc {
        sum: u64,
    }
    crate::full_sync!(Acc);

    fn setup() -> (Graph, PartitionMap) {
        let g = generators::path(6, true);
        let p = PartitionMap::build(&g, 2, &HashPartitioner).unwrap();
        (g, p)
    }

    #[test]
    fn put_reduces_temps() {
        let (g, p) = setup();
        let mut st = WorkerState::new(6, &|_| Acc::default());
        let mut ctx = WorkerCtx::new(0, &g, &p, &mut st, 1);
        let r = |t: &Acc, acc: &mut Acc| acc.sum += t.sum;
        ctx.put(3, Acc { sum: 5 }, &r);
        ctx.put(3, Acc { sum: 7 }, &r);
        ctx.put(1, Acc { sum: 1 }, &r);
        assert_eq!(st.pending[&3], Acc { sum: 12 });
        assert_eq!(st.pending[&1], Acc { sum: 1 });
    }

    #[test]
    fn get_reads_current_only() {
        let (g, p) = setup();
        let mut st = WorkerState::new(6, &|v| Acc { sum: v as u64 });
        let mut ctx = WorkerCtx::new(0, &g, &p, &mut st, 1);
        let r = |t: &Acc, acc: &mut Acc| acc.sum += t.sum;
        ctx.put(2, Acc { sum: 100 }, &r);
        // BSP: the staged put is invisible to get.
        assert_eq!(ctx.get(2).sum, 2);
    }

    #[test]
    fn masters_matches_partition() {
        let (g, p) = setup();
        let mut st = WorkerState::new(6, &|_| Acc::default());
        let ctx = WorkerCtx::new(1, &g, &p, &mut st, 1);
        assert_eq!(ctx.masters(), p.masters(1));
        assert_eq!(ctx.worker(), 1);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "does not own")]
    fn write_master_rejects_foreign_vertex() {
        let (g, p) = setup();
        // Find a vertex not owned by worker 0.
        let foreign = (0..6u32).find(|&v| !p.is_master(0, v)).unwrap();
        let mut st = WorkerState::new(6, &|_| Acc::default());
        let mut ctx = WorkerCtx::new(0, &g, &p, &mut st, 1);
        ctx.write_master(foreign, Acc::default());
    }
}
