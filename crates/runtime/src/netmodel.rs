//! Simulated network cost model.
//!
//! The paper's cluster links 4 nodes with 10 Gb ethernet; this reproduction
//! runs all workers in one process, so inter-worker traffic costs only a
//! buffer move. To reproduce the inter-node scalability experiments
//! (Fig. 4c/d and the §V-E time breakdown) we *charge* — without sleeping —
//! a simulated network time per superstep:
//!
//! ```text
//! t_net = rounds * latency + cross_worker_bytes / bandwidth
//! ```
//!
//! The harness adds the accumulated simulated time to the measured wall
//! time when reporting, so "more nodes ⇒ more communication" shows the
//! paper's shape while benchmarks stay fast and deterministic.

use std::time::Duration;

/// Parameters of the simulated interconnect.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NetworkModel {
    /// One-way latency charged per message round (per superstep round,
    /// not per message — rounds are what BSP barriers serialize).
    pub latency: Duration,
    /// Usable bandwidth in bytes per second.
    pub bandwidth_bytes_per_sec: f64,
}

impl NetworkModel {
    /// A model of the paper's 10 Gb ethernet (~1.0 GB/s usable, 50 µs
    /// round latency).
    pub fn ten_gbe() -> Self {
        NetworkModel {
            latency: Duration::from_micros(50),
            bandwidth_bytes_per_sec: 1.0e9,
        }
    }

    /// A deliberately slow model (100 MB/s, 0.5 ms latency) that makes
    /// communication dominate — useful in tests and ablations.
    pub fn slow() -> Self {
        NetworkModel {
            latency: Duration::from_micros(500),
            bandwidth_bytes_per_sec: 1.0e8,
        }
    }

    /// Machine-readable rendering of the model parameters.
    pub fn to_json(&self) -> flash_obs::Json {
        flash_obs::Json::object()
            .set("latency_us", self.latency.as_micros() as u64)
            .set("bandwidth_bytes_per_sec", self.bandwidth_bytes_per_sec)
    }

    /// Simulated time for one superstep that moved `bytes` across workers
    /// in `rounds` message rounds.
    pub fn cost(&self, rounds: u32, bytes: u64) -> Duration {
        if rounds == 0 && bytes == 0 {
            return Duration::ZERO;
        }
        let transfer = Duration::from_secs_f64(bytes as f64 / self.bandwidth_bytes_per_sec);
        self.latency * rounds + transfer
    }

    /// Simulated cost of one retransmission: the sender waits out the ack
    /// deadline (one message round of latency) and re-ships the batch's
    /// bytes. Charged by the reliable-delivery transport for every
    /// retransmitted batch so lossy runs honestly cost more than clean
    /// ones.
    pub fn retransmit_cost(&self, bytes: u64) -> Duration {
        self.cost(1, bytes)
    }

    /// Simulated cost of one rollback: fetching the checkpoint plus
    /// re-broadcasting `bytes` of recovered state, with one message round
    /// for the checkpoint fetch and one per replayed superstep (each redo
    /// delta is a barrier-synchronized broadcast).
    pub fn recovery_cost(&self, replayed_supersteps: u64, bytes: u64) -> Duration {
        let rounds = (1 + replayed_supersteps).min(u64::from(u32::MAX)) as u32;
        self.cost(rounds, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_traffic_costs_nothing() {
        assert_eq!(NetworkModel::ten_gbe().cost(0, 0), Duration::ZERO);
    }

    #[test]
    fn latency_scales_with_rounds() {
        let m = NetworkModel::ten_gbe();
        assert_eq!(m.cost(2, 0), m.latency * 2);
    }

    #[test]
    fn bandwidth_scales_with_bytes() {
        let m = NetworkModel {
            latency: Duration::ZERO,
            bandwidth_bytes_per_sec: 1000.0,
        };
        assert_eq!(m.cost(1, 500), Duration::from_millis(500));
    }

    #[test]
    fn json_reports_parameters() {
        use flash_obs::Json;
        let j = NetworkModel::ten_gbe().to_json();
        assert_eq!(j.get("latency_us").and_then(Json::as_u64), Some(50));
        assert_eq!(
            j.get("bandwidth_bytes_per_sec").and_then(Json::as_f64),
            Some(1.0e9)
        );
    }

    #[test]
    fn recovery_cost_scales_with_replayed_steps() {
        let m = NetworkModel::ten_gbe();
        assert_eq!(m.recovery_cost(0, 0), m.latency, "checkpoint fetch round");
        assert_eq!(m.recovery_cost(3, 0), m.latency * 4);
        assert!(m.recovery_cost(3, 1_000_000) > m.recovery_cost(3, 0));
    }

    #[test]
    fn retransmit_cost_is_one_round_plus_bytes() {
        let m = NetworkModel::ten_gbe();
        assert_eq!(m.retransmit_cost(0), m.latency);
        assert_eq!(m.retransmit_cost(1_000_000), m.cost(1, 1_000_000));
    }

    #[test]
    fn slow_is_slower_than_ten_gbe() {
        let bytes = 1_000_000;
        assert!(NetworkModel::slow().cost(1, bytes) > NetworkModel::ten_gbe().cost(1, bytes));
    }
}
