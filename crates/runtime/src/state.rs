//! Per-worker vertex state: the current/next split of §IV-A.

use crate::VertexData;
use flash_graph::VertexId;
use std::collections::HashMap;

/// The state a single worker holds.
///
/// `current` is a full replica of the vertex-state array: slots the worker
/// owns are *masters* (authoritative), the rest are *mirrors* kept
/// consistent by explicit synchronization at barriers. Per the paper,
/// "the current states of a vertex are ensured to be consistent on all
/// workers who access it in the current superstep", while updates go to
/// next-state structures invisible until the barrier:
///
/// * `pending` — reduce-accumulated temporary values from
///   `put` calls (the mirror-side combining of `EDGEMAPSPARSE`);
/// * `direct` — whole-value master writes from `VERTEXMAP`
///   and `EDGEMAPDENSE`, which never need a reduce function.
#[derive(Debug)]
pub struct WorkerState<V: VertexData> {
    pub(crate) current: Vec<V>,
    pub(crate) pending: HashMap<VertexId, V>,
    pub(crate) direct: Vec<(VertexId, V)>,
    /// `put` operations staged this superstep (counts every call, including
    /// ones merged into an existing temporary — the true op count, which
    /// `pending.len()` under-reports). Taken and reset at each barrier for
    /// `worker_phase` trace events.
    pub(crate) op_puts: u64,
    /// `write_master` operations staged this superstep; reset per barrier.
    pub(crate) op_writes: u64,
}

impl<V: VertexData> WorkerState<V> {
    /// Creates a replica initialized by `init` for vertices `0..n`.
    pub(crate) fn new(n: usize, init: &impl Fn(VertexId) -> V) -> Self {
        WorkerState {
            current: (0..n as VertexId).map(init).collect(),
            pending: HashMap::new(),
            direct: Vec::new(),
            op_puts: 0,
            op_writes: 0,
        }
    }

    /// Current (consistent) value of `v`.
    #[inline]
    pub fn current(&self, v: VertexId) -> &V {
        &self.current[v as usize]
    }

    /// `true` if no next-state writes are staged.
    #[cfg(test)]
    pub(crate) fn is_clean(&self) -> bool {
        self.pending.is_empty() && self.direct.is_empty()
    }

    /// Clones the full replica for a checkpoint. Only `current` needs
    /// capturing: checkpoints are taken at superstep boundaries, where the
    /// next-state structures are empty by construction.
    pub(crate) fn snapshot(&self) -> Vec<V> {
        debug_assert!(
            self.pending.is_empty() && self.direct.is_empty(),
            "checkpoints must be taken at a barrier, with nothing staged"
        );
        self.current.clone()
    }

    /// Overwrites the replica from a snapshot and discards everything a
    /// failed attempt staged (next-state writes and op counters).
    pub(crate) fn restore(&mut self, snapshot: &[V]) {
        debug_assert_eq!(self.current.len(), snapshot.len());
        self.current.clear();
        self.current.extend_from_slice(snapshot);
        self.discard_staged();
    }

    /// Discards staged next-state writes and op counters — everything a
    /// faulted superstep attempt may have produced before the barrier.
    pub(crate) fn discard_staged(&mut self) {
        self.pending.clear();
        self.direct.clear();
        self.op_puts = 0;
        self.op_writes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Default, Debug, PartialEq)]
    struct D {
        v: u32,
    }
    crate::full_sync!(D);

    #[test]
    fn initializes_by_closure() {
        let st = WorkerState::new(4, &|v| D { v: v * 10 });
        assert_eq!(st.current(2), &D { v: 20 });
        assert!(st.is_clean());
    }

    #[test]
    fn staged_writes_mark_dirty() {
        let mut st = WorkerState::new(2, &|_| D::default());
        st.direct.push((0, D { v: 1 }));
        assert!(!st.is_clean());
        st.direct.clear();
        st.pending.insert(1, D { v: 2 });
        assert!(!st.is_clean());
    }
}
