//! Per-worker vertex state: the current/next split of §IV-A.

use crate::transport::RoundBatches;
use crate::VertexData;
use flash_graph::VertexId;
use std::collections::HashMap;

/// The state a single worker holds.
///
/// `current` is a full replica of the vertex-state array: slots the worker
/// owns are *masters* (authoritative), the rest are *mirrors* kept
/// consistent by explicit synchronization at barriers. Per the paper,
/// "the current states of a vertex are ensured to be consistent on all
/// workers who access it in the current superstep", while updates go to
/// next-state structures invisible until the barrier:
///
/// * `pending` — reduce-accumulated temporary values from
///   `put` calls (the mirror-side combining of `EDGEMAPSPARSE`);
/// * `direct` — whole-value master writes from `VERTEXMAP`
///   and `EDGEMAPDENSE`, which never need a reduce function.
#[derive(Debug)]
pub struct WorkerState<V: VertexData> {
    pub(crate) current: Vec<V>,
    pub(crate) pending: HashMap<VertexId, V>,
    pub(crate) direct: Vec<(VertexId, V)>,
    /// `put` operations staged this superstep (counts every call, including
    /// ones merged into an existing temporary — the true op count, which
    /// `pending.len()` under-reports). Taken and reset at each barrier for
    /// `worker_phase` trace events.
    pub(crate) op_puts: u64,
    /// `write_master` operations staged this superstep; reset per barrier.
    pub(crate) op_writes: u64,
}

impl<V: VertexData> WorkerState<V> {
    /// Creates a replica initialized by `init` for vertices `0..n`.
    pub(crate) fn new(n: usize, init: &impl Fn(VertexId) -> V) -> Self {
        WorkerState {
            current: (0..n as VertexId).map(init).collect(),
            pending: HashMap::new(),
            direct: Vec::new(),
            op_puts: 0,
            op_writes: 0,
        }
    }

    /// Current (consistent) value of `v`.
    #[inline]
    pub fn current(&self, v: VertexId) -> &V {
        &self.current[v as usize]
    }

    /// `true` if no next-state writes are staged.
    #[cfg(test)]
    pub(crate) fn is_clean(&self) -> bool {
        self.pending.is_empty() && self.direct.is_empty()
    }

    /// Clones the full replica for a checkpoint. Only `current` needs
    /// capturing: checkpoints are taken at superstep boundaries, where the
    /// next-state structures are empty by construction.
    pub(crate) fn snapshot(&self) -> Vec<V> {
        debug_assert!(
            self.pending.is_empty() && self.direct.is_empty(),
            "checkpoints must be taken at a barrier, with nothing staged"
        );
        self.current.clone()
    }

    /// Overwrites the replica from a snapshot and discards everything a
    /// failed attempt staged (next-state writes and op counters).
    pub(crate) fn restore(&mut self, snapshot: &[V]) {
        debug_assert_eq!(self.current.len(), snapshot.len());
        self.current.clear();
        self.current.extend_from_slice(snapshot);
        self.discard_staged();
    }

    /// Discards staged next-state writes and op counters — everything a
    /// faulted superstep attempt may have produced before the barrier.
    pub(crate) fn discard_staged(&mut self) {
        self.pending.clear();
        self.direct.clear();
        self.op_puts = 0;
        self.op_writes = 0;
    }
}

/// Pooled per-superstep scratch buffers, owned by the cluster and reused
/// across supersteps under [`HotPath::PooledParallel`]
/// (crate::config::HotPath): every buffer is cleared — never dropped — at
/// reuse, so steady-state supersteps allocate nothing on the hot path
/// (DESIGN.md §11).
///
/// Invariant: every buffer is returned to the pool *empty* (the take
/// methods clear defensively anyway), so a pooled superstep observes
/// exactly the state a fresh allocation would provide.
#[derive(Debug)]
pub(crate) struct StepBuffers<V: VertexData> {
    /// Per-owner routing buckets of the upd round (`step_reduce`).
    buckets: Vec<Vec<(VertexId, V)>>,
    /// Per-thread bucket sets of the parallel bucketing pass; slot `i`
    /// belongs to chunk `i` of `parallel_scratch_chunks`.
    pub(crate) bucket_sets: Vec<Vec<Vec<(VertexId, V)>>>,
    /// Per-owner updated-master lists handed out through `StepOutput` and
    /// returned by `Cluster::recycle_updated`.
    updated: Vec<Vec<VertexId>>,
    /// Scratch for `PartitionMap::necessary_mirror_hosts` in the sync scan.
    pub(crate) host_buf: Vec<u16>,
    /// Cross-host batch map of the upd round.
    upd_batches: RoundBatches,
    /// Cross-host batch map of the sync round.
    sync_batches: RoundBatches,
}

impl<V: VertexData> StepBuffers<V> {
    pub(crate) fn new() -> Self {
        StepBuffers {
            buckets: Vec::new(),
            bucket_sets: Vec::new(),
            updated: Vec::new(),
            host_buf: Vec::new(),
            upd_batches: RoundBatches::new(),
            sync_batches: RoundBatches::new(),
        }
    }

    /// Takes the pooled bucket vector, cleared and sized to `m` owners.
    pub(crate) fn take_buckets(&mut self, m: usize) -> Vec<Vec<(VertexId, V)>> {
        Self::take_lists(&mut self.buckets, m)
    }

    /// Returns the bucket vector after the reduce round drained it.
    pub(crate) fn put_buckets(&mut self, buckets: Vec<Vec<(VertexId, V)>>) {
        self.buckets = buckets;
    }

    /// Takes the pooled updated-master lists, cleared and sized to `m`.
    pub(crate) fn take_updated(&mut self, m: usize) -> Vec<Vec<VertexId>> {
        Self::take_lists(&mut self.updated, m)
    }

    /// Accepts a consumed `StepOutput::updated` buffer back into the pool.
    pub(crate) fn recycle_updated(&mut self, updated: Vec<Vec<VertexId>>) {
        self.updated = updated;
    }

    /// Takes the pooled upd-round batch map, cleared.
    pub(crate) fn take_upd_batches(&mut self) -> RoundBatches {
        let mut b = std::mem::take(&mut self.upd_batches);
        b.clear();
        b
    }

    /// Returns the upd-round batch map after delivery.
    pub(crate) fn put_upd_batches(&mut self, batches: RoundBatches) {
        self.upd_batches = batches;
    }

    /// Takes the pooled sync-round batch map, cleared.
    pub(crate) fn take_sync_batches(&mut self) -> RoundBatches {
        let mut b = std::mem::take(&mut self.sync_batches);
        b.clear();
        b
    }

    /// Returns the sync-round batch map after delivery.
    pub(crate) fn put_sync_batches(&mut self, batches: RoundBatches) {
        self.sync_batches = batches;
    }

    fn take_lists<T>(pool: &mut Vec<Vec<T>>, m: usize) -> Vec<Vec<T>> {
        let mut lists = std::mem::take(pool);
        for l in lists.iter_mut() {
            l.clear();
        }
        if lists.len() != m {
            lists.resize_with(m, Vec::new);
        }
        lists
    }

    /// Clears every pooled buffer in place — capacity survives, contents
    /// do not — returning the pool to the state a fresh construction
    /// provides. Called when a buffer set is checked back into a shared
    /// [`BufferPool`](crate::session::BufferPool) so the next run starts
    /// from a pristine pool even if the previous run left residue (e.g.
    /// an error path that skipped a `recycle_updated`).
    pub(crate) fn reset(&mut self) {
        for l in self.buckets.iter_mut() {
            l.clear();
        }
        for set in self.bucket_sets.iter_mut() {
            for l in set.iter_mut() {
                l.clear();
            }
        }
        for l in self.updated.iter_mut() {
            l.clear();
        }
        self.host_buf.clear();
        self.upd_batches.clear();
        self.sync_batches.clear();
    }

    /// `true` when every pooled buffer is empty — the invariant each run
    /// must observe on its first superstep, asserted at pool checkin.
    pub(crate) fn is_pristine(&self) -> bool {
        self.buckets.iter().all(Vec::is_empty)
            && self
                .bucket_sets
                .iter()
                .all(|set| set.iter().all(Vec::is_empty))
            && self.updated.iter().all(Vec::is_empty)
            && self.host_buf.is_empty()
            && self.upd_batches.is_empty()
            && self.sync_batches.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Default, Debug, PartialEq)]
    struct D {
        v: u32,
    }
    crate::full_sync!(D);

    #[test]
    fn initializes_by_closure() {
        let st = WorkerState::new(4, &|v| D { v: v * 10 });
        assert_eq!(st.current(2), &D { v: 20 });
        assert!(st.is_clean());
    }

    #[test]
    fn step_buffers_hand_out_cleared_reused_allocations() {
        let mut b: StepBuffers<D> = StepBuffers::new();
        let mut buckets = b.take_buckets(3);
        assert_eq!(buckets.len(), 3);
        buckets[1].push((7, D { v: 1 }));
        let caps: Vec<usize> = buckets.iter().map(Vec::capacity).collect();
        b.put_buckets(buckets);
        let again = b.take_buckets(3);
        assert!(again.iter().all(Vec::is_empty), "cleared on take");
        assert!(again[1].capacity() >= caps[1], "allocation reused");

        let mut upd = b.take_updated(2);
        upd[0].push(5);
        b.recycle_updated(upd);
        assert!(b.take_updated(2).iter().all(Vec::is_empty));

        let mut batches = b.take_upd_batches();
        batches.insert((0, 1), (2, 64));
        b.put_upd_batches(batches);
        assert!(b.take_upd_batches().is_empty(), "cleared on take");
        assert!(b.take_sync_batches().is_empty());
    }

    #[test]
    fn reset_restores_pristine_state_without_dropping_capacity() {
        let mut b: StepBuffers<D> = StepBuffers::new();
        assert!(b.is_pristine(), "fresh pool is pristine");
        let mut buckets = b.take_buckets(3);
        buckets[0].push((1, D { v: 9 }));
        b.put_buckets(buckets);
        let mut upd = b.take_updated(2);
        upd[1].push(4);
        b.recycle_updated(upd);
        b.host_buf.extend_from_slice(&[1, 2, 3]);
        b.bucket_sets.push(vec![vec![(0, D { v: 1 })]]);
        let mut batches = b.take_upd_batches();
        batches.insert((0, 1), (2, 64));
        b.put_upd_batches(batches);
        assert!(!b.is_pristine(), "residue is visible");
        b.reset();
        assert!(b.is_pristine(), "reset clears every buffer");
        // Capacity survived the reset: the next take reuses allocations.
        assert!(b.take_buckets(3)[0].capacity() > 0);
    }

    #[test]
    fn staged_writes_mark_dirty() {
        let mut st = WorkerState::new(2, &|_| D::default());
        st.direct.push((0, D { v: 1 }));
        assert!(!st.is_clean());
        st.direct.clear();
        st.pending.insert(1, D { v: 2 });
        assert!(!st.is_clean());
    }
}
