//! Critical-property analysis — the code generator's decision procedure.
//!
//! The paper's code generator performs "static analysis of the program
//! before the execution" to decide which vertex properties are *critical*
//! (read by other vertices, hence requiring master→mirror broadcast) and
//! which are local-only (§IV-B/§IV-C, Table II). This reproduction has no
//! source-to-source compiler — Rust closures replace generated C++ — so
//! the analysis runs over a declared [`ProgramPlan`]: the sequence of
//! primitive operations an algorithm performs and the properties each
//! accesses, in which role.
//!
//! Table II, reproduced:
//!
//! | access | VERTEXMAP | DENSE src | DENSE tgt | SPARSE src | SPARSE tgt |
//! |--------|-----------|-----------|-----------|------------|------------|
//! | get    | ✗         | ✓         | ✗         | ✗          | ✓          |
//! | put    | ✗         | —         | ✗         | —          | ✓          |
//!
//! ✓ = makes the property critical; ✗ = does not by itself; — = the
//! operation cannot occur (sources are read-only in edge maps).
//!
//! Algorithms use the resulting [`ProgramPlan::critical_properties`] to
//! validate that their [`crate::VertexData::Critical`] projection covers
//! every property the distributed runtime must synchronize.
//!
//! The analysis is deliberately *membership-independent*: criticality is a
//! property of the program's data-flow, not of where partitions happen to
//! execute, so an elastic rebalance after a permanent worker loss (see
//! [`crate::fault`], DESIGN.md §9) never changes which properties are
//! synchronized — only which physical hosts the sync messages travel
//! between.

use std::collections::BTreeSet;
use std::fmt;

/// The primitive a property access occurs in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpKind {
    /// `VERTEXMAP` — local computation on masters.
    VertexMap,
    /// `EDGEMAPDENSE` — pull kernel.
    EdgeMapDense,
    /// `EDGEMAPSPARSE` — push kernel.
    EdgeMapSparse,
}

/// The endpoint role of the vertex whose property is accessed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Role {
    /// The vertex itself (only valid inside `VERTEXMAP`).
    Local,
    /// The edge source `s`.
    Source,
    /// The edge target `d`.
    Target,
}

/// Read or write.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Access {
    /// The property is read (`get`).
    Get,
    /// The property is written (`put`).
    Put,
}

/// One declared property access.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AccessDecl {
    /// The primitive it occurs in.
    pub op: OpKind,
    /// The vertex role.
    pub role: Role,
    /// Read or write.
    pub access: Access,
    /// Property name.
    pub property: &'static str,
}

/// Errors detected while validating a plan.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlanError {
    /// A `put` was declared on an edge-map *source*, which the model
    /// forbids (Table II's "—" cells): sources are read-only.
    PutOnSource {
        /// The offending property.
        property: &'static str,
    },
    /// A `Local` role was declared outside `VERTEXMAP`.
    LocalRoleInEdgeMap {
        /// The offending property.
        property: &'static str,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::PutOnSource { property } => {
                write!(f, "property {property:?}: edge-map sources are read-only")
            }
            PlanError::LocalRoleInEdgeMap { property } => {
                write!(
                    f,
                    "property {property:?}: Local role is only valid in VERTEXMAP"
                )
            }
        }
    }
}

impl std::error::Error for PlanError {}

/// A declared program: the property-access footprint of an algorithm.
#[derive(Clone, Debug, Default)]
pub struct ProgramPlan {
    decls: Vec<AccessDecl>,
}

impl ProgramPlan {
    /// Starts an empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares one access (builder style).
    pub fn access(
        mut self,
        op: OpKind,
        role: Role,
        access: Access,
        property: &'static str,
    ) -> Self {
        self.decls.push(AccessDecl {
            op,
            role,
            access,
            property,
        });
        self
    }

    /// All declared accesses.
    pub fn decls(&self) -> &[AccessDecl] {
        &self.decls
    }

    /// All property names mentioned by the plan.
    pub fn properties(&self) -> BTreeSet<&'static str> {
        self.decls.iter().map(|d| d.property).collect()
    }

    /// Validates structural rules (the "—" cells of Table II).
    pub fn validate(&self) -> Result<(), PlanError> {
        for d in &self.decls {
            let edge_map = matches!(d.op, OpKind::EdgeMapDense | OpKind::EdgeMapSparse);
            if edge_map && d.role == Role::Local {
                return Err(PlanError::LocalRoleInEdgeMap {
                    property: d.property,
                });
            }
            if edge_map && d.role == Role::Source && d.access == Access::Put {
                return Err(PlanError::PutOnSource {
                    property: d.property,
                });
            }
            if d.op == OpKind::VertexMap && d.role != Role::Local {
                return Err(PlanError::LocalRoleInEdgeMap {
                    property: d.property,
                });
            }
        }
        Ok(())
    }

    /// Whether a single access makes its property critical (Table II ✓).
    fn is_critical_access(d: &AccessDecl) -> bool {
        matches!(
            (d.op, d.role, d.access),
            (OpKind::EdgeMapDense, Role::Source, Access::Get)
                | (OpKind::EdgeMapSparse, Role::Target, Access::Get)
                | (OpKind::EdgeMapSparse, Role::Target, Access::Put)
        )
    }

    /// The set of critical properties: those with at least one ✓ access.
    pub fn critical_properties(&self) -> BTreeSet<&'static str> {
        self.decls
            .iter()
            .filter(|d| Self::is_critical_access(d))
            .map(|d| d.property)
            .collect()
    }

    /// `true` if `property` is critical under Table II.
    pub fn is_critical(&self, property: &str) -> bool {
        self.decls
            .iter()
            .any(|d| d.property == property && Self::is_critical_access(d))
    }

    /// The local-only properties: mentioned but never critical. These "are
    /// stored locally with the master vertex inside a partition, while the
    /// mirrors do not hold such data" (§IV-C).
    pub fn local_properties(&self) -> BTreeSet<&'static str> {
        let critical = self.critical_properties();
        self.properties()
            .into_iter()
            .filter(|p| !critical.contains(p))
            .collect()
    }

    /// Machine-readable rendering of the analysis result: the declared
    /// accesses plus the derived critical/local partition of properties.
    pub fn to_json(&self) -> flash_obs::Json {
        use flash_obs::Json;
        let names =
            |set: BTreeSet<&'static str>| Json::Arr(set.into_iter().map(Json::from).collect());
        let accesses: Vec<Json> = self
            .decls
            .iter()
            .map(|d| {
                Json::object()
                    .set(
                        "op",
                        match d.op {
                            OpKind::VertexMap => "vertex_map",
                            OpKind::EdgeMapDense => "edge_map_dense",
                            OpKind::EdgeMapSparse => "edge_map_sparse",
                        },
                    )
                    .set(
                        "role",
                        match d.role {
                            Role::Local => "local",
                            Role::Source => "source",
                            Role::Target => "target",
                        },
                    )
                    .set(
                        "access",
                        match d.access {
                            Access::Get => "get",
                            Access::Put => "put",
                        },
                    )
                    .set("property", d.property)
            })
            .collect();
        Json::object()
            .set("critical", names(self.critical_properties()))
            .set("local", names(self.local_properties()))
            .set("accesses", Json::Arr(accesses))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Access::*;
    use OpKind::*;
    use Role::*;

    #[test]
    fn table_ii_positive_cells() {
        // Each ✓ cell alone must make the property critical.
        for (op, role, access) in [
            (EdgeMapDense, Source, Get),
            (EdgeMapSparse, Target, Get),
            (EdgeMapSparse, Target, Put),
        ] {
            let plan = ProgramPlan::new().access(op, role, access, "p");
            assert!(plan.is_critical("p"), "{op:?}/{role:?}/{access:?}");
        }
    }

    #[test]
    fn table_ii_negative_cells() {
        for (op, role, access) in [
            (VertexMap, Local, Get),
            (VertexMap, Local, Put),
            (EdgeMapDense, Target, Get),
            (EdgeMapDense, Target, Put),
            (EdgeMapSparse, Source, Get),
        ] {
            let plan = ProgramPlan::new().access(op, role, access, "p");
            assert!(!plan.is_critical("p"), "{op:?}/{role:?}/{access:?}");
            assert!(plan.local_properties().contains("p"));
        }
    }

    #[test]
    fn forbidden_cells_fail_validation() {
        let p = ProgramPlan::new().access(EdgeMapDense, Source, Put, "x");
        assert!(matches!(
            p.validate(),
            Err(PlanError::PutOnSource { property: "x" })
        ));
        let q = ProgramPlan::new().access(EdgeMapSparse, Source, Put, "y");
        assert!(q.validate().is_err());
        let r = ProgramPlan::new().access(EdgeMapSparse, Local, Get, "z");
        assert!(matches!(
            r.validate(),
            Err(PlanError::LocalRoleInEdgeMap { property: "z" })
        ));
        let s = ProgramPlan::new().access(VertexMap, Source, Get, "w");
        assert!(s.validate().is_err());
    }

    #[test]
    fn bfs_like_plan() {
        // BFS (Algorithm 2): dis is read on targets (COND) and written on
        // targets in a sparse edge map → critical. A vertex-map-only
        // scratch field stays local.
        let plan = ProgramPlan::new()
            .access(VertexMap, Local, Put, "dis")
            .access(EdgeMapSparse, Source, Get, "dis")
            .access(EdgeMapSparse, Target, Get, "dis")
            .access(EdgeMapSparse, Target, Put, "dis")
            .access(VertexMap, Local, Put, "scratch");
        plan.validate().unwrap();
        assert_eq!(
            plan.critical_properties().into_iter().collect::<Vec<_>>(),
            vec!["dis"]
        );
        assert_eq!(
            plan.local_properties().into_iter().collect::<Vec<_>>(),
            vec!["scratch"]
        );
    }

    #[test]
    fn graph_coloring_plan_has_local_scratch() {
        // GC (Algorithm 15): `colors` (neighbor color set) is target-put in
        // a sparse map → critical; `cc` (chosen-color scratch) only lives
        // in VERTEXMAPs → local; `c` is read as dense/sparse source → critical.
        let plan = ProgramPlan::new()
            .access(EdgeMapSparse, Source, Get, "c")
            .access(EdgeMapSparse, Target, Put, "colors")
            .access(VertexMap, Local, Get, "colors")
            .access(VertexMap, Local, Put, "cc")
            .access(VertexMap, Local, Get, "cc")
            .access(VertexMap, Local, Put, "c");
        plan.validate().unwrap();
        let critical = plan.critical_properties();
        assert!(critical.contains("colors"));
        assert!(!critical.contains("cc"));
        // `c` read only as sparse source → NOT critical by Table II (the
        // source's master pushes, so its own replica suffices).
        assert!(!critical.contains("c"));
    }

    #[test]
    fn json_partitions_properties() {
        use flash_obs::Json;
        let plan = ProgramPlan::new()
            .access(VertexMap, Local, Put, "dis")
            .access(EdgeMapSparse, Target, Put, "dis")
            .access(VertexMap, Local, Put, "scratch");
        let j = plan.to_json();
        let critical = j.get("critical").and_then(Json::as_array).unwrap();
        assert_eq!(critical.len(), 1);
        assert_eq!(critical[0].as_str(), Some("dis"));
        let local = j.get("local").and_then(Json::as_array).unwrap();
        assert_eq!(local[0].as_str(), Some("scratch"));
        assert_eq!(j.get("accesses").and_then(Json::as_array).unwrap().len(), 3);
    }

    #[test]
    fn properties_lists_everything_once() {
        let plan = ProgramPlan::new()
            .access(VertexMap, Local, Put, "a")
            .access(VertexMap, Local, Get, "a")
            .access(EdgeMapDense, Source, Get, "b");
        assert_eq!(plan.properties().len(), 2);
        assert_eq!(plan.decls().len(), 3);
    }
}
