//! Snapshot-isolated serving sessions (DESIGN.md §16).
//!
//! A [`Session`] lets N concurrent algorithm runs share one immutable
//! `Arc<Graph>` + `Arc<PartitionMap>` while keeping every piece of
//! *mutable* run state private: each query builds its own cluster (own
//! `WorkerState`, own [`StreamScope`](flash_graph::StreamScope), own
//! stats), checks superstep scratch buffers out of a shared
//! [`BufferPool`], and records its latency into the session's
//! [`Histogram`]. Nothing a query mutates is reachable from another
//! query, so concurrent results are bit-identical to solo runs.
//!
//! The serving driver (`fig_serve` / `flash serve`) opens one session
//! per worker thread, replays a seeded query/update mix, and folds every
//! session's counters into a [`ServingStats`] — the `serving` block of
//! the stats JSON.

// Serving-layer code must not abort a serving process: no unwraps,
// expects or panics outside the test module.
#![deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use crate::config::ClusterConfig;
use crate::error::RuntimeError;
use crate::state::StepBuffers;
use crate::VertexData;
use flash_graph::{Graph, HashPartitioner, PartitionMap};
use flash_obs::{Event, EventKind, Histogram, Json};
use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

// ---------------------------------------------------------------------------
// BufferPool
// ---------------------------------------------------------------------------

/// A shared pool of superstep scratch buffers, keyed by vertex type.
///
/// Clusters built with [`ClusterConfig::buffer_pool`] check a
/// `StepBuffers<V>` set out at construction and back in at drop; the
/// checkin [`reset`s](StepBuffers::reset) the buffers and the checkout
/// asserts they are pristine, so a recycled pool starts each run exactly
/// as empty as a fresh allocation — while keeping the allocations warm
/// across back-to-back query runs.
#[derive(Default)]
pub struct BufferPool {
    /// One `Vec<StepBuffers<V>>` free list per vertex type `V`.
    slots: Mutex<HashMap<TypeId, Box<dyn Any + Send>>>,
    checkouts: AtomicU64,
    reuses: AtomicU64,
}

impl BufferPool {
    /// An empty pool.
    pub fn new() -> BufferPool {
        BufferPool::default()
    }

    /// Takes a pristine buffer set for vertex type `V` — a pooled one if
    /// a previous run returned one, else a fresh allocation.
    ///
    /// # Panics
    /// Asserts the handed-out buffers are pristine: a pooled set that
    /// still carries a previous run's residue would silently corrupt the
    /// next run's superstep accounting.
    pub(crate) fn checkout<V: VertexData>(&self) -> StepBuffers<V> {
        self.checkouts.fetch_add(1, Ordering::Relaxed);
        let mut slots = self.slots.lock().unwrap_or_else(PoisonError::into_inner);
        let buf = slots
            .get_mut(&TypeId::of::<V>())
            .and_then(|b| b.downcast_mut::<Vec<StepBuffers<V>>>())
            .and_then(Vec::pop);
        drop(slots);
        match buf {
            Some(buf) => {
                self.reuses.fetch_add(1, Ordering::Relaxed);
                assert!(
                    buf.is_pristine(),
                    "pooled StepBuffers carried residue from a previous run"
                );
                buf
            }
            None => StepBuffers::new(),
        }
    }

    /// Returns a buffer set to the pool, resetting it to pristine first.
    pub(crate) fn checkin<V: VertexData>(&self, mut buf: StepBuffers<V>) {
        buf.reset();
        debug_assert!(buf.is_pristine(), "reset must leave buffers pristine");
        let mut slots = self.slots.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(v) = slots
            .entry(TypeId::of::<V>())
            .or_insert_with(|| Box::new(Vec::<StepBuffers<V>>::new()))
            .downcast_mut::<Vec<StepBuffers<V>>>()
        {
            v.push(buf);
        }
    }

    /// Total checkouts served (fresh + reused).
    pub fn checkouts(&self) -> u64 {
        self.checkouts.load(Ordering::Relaxed)
    }

    /// Checkouts served from the free list instead of a fresh allocation.
    pub fn reuses(&self) -> u64 {
        self.reuses.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferPool")
            .field("checkouts", &self.checkouts())
            .field("reuses", &self.reuses())
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------------

/// One snapshot-isolated serving session.
///
/// A session pins an immutable graph snapshot and a partition map built
/// once, and stamps out per-query [`ClusterConfig`]s that share both —
/// plus the session's [`BufferPool`] — while leaving all mutable state
/// per query. Latency is recorded into the session's histogram in
/// microseconds.
pub struct Session {
    id: u64,
    graph: Arc<Graph>,
    partition: Arc<PartitionMap>,
    template: ClusterConfig,
    pool: Arc<BufferPool>,
    queries: AtomicU64,
    updates: AtomicU64,
    total_latency_us: AtomicU64,
    latency: Mutex<Histogram>,
    /// Session-scoped event sequence (the per-query clusters keep their
    /// own sequences; a trace consumer orders by session id).
    seq: AtomicU64,
    ended: AtomicU64,
}

impl Session {
    /// Opens a session over `graph`, building the shared partition once
    /// from the template's worker count, and emits `session_start` to
    /// the template's sink.
    pub fn new(id: u64, graph: Arc<Graph>, template: ClusterConfig) -> Result<Self, RuntimeError> {
        let partition = match &template.shared_partition {
            Some(p) => Arc::clone(p),
            None => Arc::new(
                PartitionMap::build(&graph, template.workers, &HashPartitioner)
                    .map_err(|_| RuntimeError::NoWorkers)?,
            ),
        };
        let pool = template
            .buffer_pool
            .clone()
            .unwrap_or_else(|| Arc::new(BufferPool::new()));
        let session = Session {
            id,
            graph,
            partition,
            template,
            pool,
            queries: AtomicU64::new(0),
            updates: AtomicU64::new(0),
            total_latency_us: AtomicU64::new(0),
            latency: Mutex::new(Histogram::new()),
            seq: AtomicU64::new(0),
            ended: AtomicU64::new(0),
        };
        session.emit(EventKind::SessionStart {
            session: session.id,
            vertices: session.graph.num_vertices(),
            edges: session.graph.num_edges(),
            workers: session.template.workers,
        });
        Ok(session)
    }

    /// The session id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The shared immutable snapshot.
    pub fn graph(&self) -> &Arc<Graph> {
        &self.graph
    }

    /// The shared partition map.
    pub fn partition(&self) -> &Arc<PartitionMap> {
        &self.partition
    }

    /// The session's buffer pool.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// A per-query cluster config: the template plus the shared
    /// partition, the session's buffer pool, and the session id.
    pub fn config(&self) -> ClusterConfig {
        let mut cfg = self.template.clone();
        cfg.shared_partition = Some(Arc::clone(&self.partition));
        cfg.buffer_pool = Some(Arc::clone(&self.pool));
        cfg.session_id = Some(self.id);
        cfg
    }

    /// Records one answered query and its latency in microseconds.
    pub fn record_query(&self, latency_us: u64) {
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.total_latency_us
            .fetch_add(latency_us, Ordering::Relaxed);
        let mut h = self.latency.lock().unwrap_or_else(PoisonError::into_inner);
        h.record(latency_us);
    }

    /// Records one applied update batch and emits `update_applied`.
    pub fn record_update(
        &self,
        batch: u64,
        inserted: u64,
        removed: u64,
        touched: u64,
        repaired: &str,
    ) {
        self.updates.fetch_add(1, Ordering::Relaxed);
        self.emit(EventKind::UpdateApplied {
            session: self.id,
            batch,
            inserted,
            removed,
            touched,
            repaired: repaired.to_string(),
        });
    }

    /// Queries answered so far.
    pub fn queries(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }

    /// Update batches applied so far.
    pub fn updates(&self) -> u64 {
        self.updates.load(Ordering::Relaxed)
    }

    /// A copy of the latency histogram (microseconds).
    pub fn latency(&self) -> Histogram {
        self.latency
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Closes the session: emits `session_end` once (idempotent).
    pub fn end(&self) {
        if self.ended.swap(1, Ordering::Relaxed) == 0 {
            self.emit(EventKind::SessionEnd {
                session: self.id,
                queries: self.queries(),
                total_latency_us: self.total_latency_us.load(Ordering::Relaxed),
            });
        }
    }

    fn emit(&self, kind: EventKind) {
        if let Some(sink) = &self.template.sink {
            let seq = self.seq.fetch_add(1, Ordering::Relaxed);
            sink.emit(&Event { seq, kind });
        }
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        self.end();
    }
}

// ---------------------------------------------------------------------------
// ServingStats
// ---------------------------------------------------------------------------

/// Aggregated serving-layer statistics: the stats-JSON `serving` block.
#[derive(Debug, Default, Clone)]
pub struct ServingStats {
    /// Sessions folded in.
    pub sessions: u64,
    /// Queries answered across all sessions.
    pub queries: u64,
    /// Update batches applied across all sessions.
    pub updates: u64,
    /// Merged query-latency histogram (microseconds).
    pub latency: Histogram,
}

impl ServingStats {
    /// An empty aggregate.
    pub fn new() -> ServingStats {
        ServingStats::default()
    }

    /// Folds one session's counters and latency histogram in.
    pub fn absorb(&mut self, session: &Session) {
        self.sessions += 1;
        self.queries += session.queries();
        self.updates += session.updates();
        self.latency.merge(&session.latency());
    }

    /// Renders the `serving` block: session/query/update counts plus
    /// p50/p90/p99 (and min/max/count) query latency in microseconds.
    pub fn to_json(&self) -> Json {
        Json::object()
            .set("sessions", self.sessions)
            .set("queries", self.queries)
            .set("updates", self.updates)
            .set("latency_us", self.latency.to_json())
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

    use super::*;
    use flash_graph::generators;
    use flash_obs::CollectSink;

    #[derive(Clone, Default, Debug, PartialEq)]
    struct D {
        v: u32,
    }
    crate::full_sync!(D);

    #[test]
    fn buffer_pool_recycles_pristine_buffers() {
        let pool = BufferPool::new();
        let mut buf: StepBuffers<D> = pool.checkout();
        assert_eq!(pool.checkouts(), 1);
        assert_eq!(pool.reuses(), 0, "first checkout is a fresh allocation");
        // Dirty the buffers the way a run would, then check them back in.
        let mut buckets = buf.take_buckets(4);
        buckets[2].push((7, D { v: 7 }));
        buf.put_buckets(buckets);
        pool.checkin(buf);
        let buf: StepBuffers<D> = pool.checkout();
        assert_eq!(pool.reuses(), 1, "second checkout reuses the pooled set");
        assert!(buf.is_pristine(), "recycled pool starts each run empty");
        pool.checkin(buf);
    }

    #[test]
    fn buffer_pool_keys_by_vertex_type() {
        #[derive(Clone, Default, Debug, PartialEq)]
        struct E {
            w: u64,
        }
        crate::full_sync!(E);

        let pool = BufferPool::new();
        pool.checkin::<D>(pool.checkout());
        // A different vertex type misses D's free list.
        let _e: StepBuffers<E> = pool.checkout();
        assert_eq!(pool.reuses(), 0);
        // The original type still finds its pooled set.
        let _d: StepBuffers<D> = pool.checkout();
        assert_eq!(pool.reuses(), 1);
    }

    #[test]
    fn session_shares_partition_and_emits_lifecycle_events() {
        let g = Arc::new(generators::path(64, true));
        let sink = Arc::new(CollectSink::new());
        let template = ClusterConfig::with_workers(2).sink(sink.clone());
        let s = Session::new(9, Arc::clone(&g), template).unwrap();
        let cfg = s.config();
        assert_eq!(cfg.session_id, Some(9));
        let shared = cfg.shared_partition.as_ref().unwrap();
        assert!(Arc::ptr_eq(shared, s.partition()), "one map, shared");
        assert!(cfg.buffer_pool.is_some());

        s.record_query(120);
        s.record_query(80);
        s.record_update(0, 3, 1, 5, "cc");
        assert_eq!(s.queries(), 2);
        assert_eq!(s.updates(), 1);
        assert_eq!(s.latency().count(), 2);
        s.end();
        s.end(); // idempotent
        let tags: Vec<String> = sink
            .events()
            .iter()
            .map(|e| e.kind.tag().to_string())
            .collect();
        assert_eq!(tags, ["session_start", "update_applied", "session_end"]);
    }

    #[test]
    fn serving_stats_fold_sessions_and_render() {
        let g = Arc::new(generators::path(16, true));
        let mut agg = ServingStats::new();
        for id in 0..2 {
            let s = Session::new(id, Arc::clone(&g), ClusterConfig::with_workers(2)).unwrap();
            s.record_query(100 * (id + 1));
            agg.absorb(&s);
        }
        assert_eq!(agg.sessions, 2);
        assert_eq!(agg.queries, 2);
        let j = agg.to_json();
        assert_eq!(j.get("sessions").and_then(Json::as_u64), Some(2));
        let lat = j.get("latency_us").unwrap();
        assert_eq!(lat.get("count").and_then(Json::as_u64), Some(2));
        assert!(lat.get("p50").and_then(Json::as_u64).is_some());
        assert!(lat.get("p99").and_then(Json::as_u64).is_some());
    }
}
