//! Superstep-boundary checkpointing and rollback/replay recovery.
//!
//! A BSP barrier is exactly where a consistent snapshot is cheap: no
//! messages are in flight and no writes are staged (Pregel made this the
//! canonical fault-tolerance mechanism). The cluster therefore snapshots
//! every worker's replica at a configurable superstep interval
//! ([`ClusterConfig::checkpoint_every`](crate::ClusterConfig)); between
//! checkpoints it appends one [`StepDelta`] per superstep — the redo log
//! of published writes.
//!
//! On a detected failure (crash or corrupted sync payload, see
//! [`fault`](crate::fault)) the cluster rolls every worker back to the
//! last [`Checkpoint`], re-applies the logged deltas, and retries the
//! failed superstep. Replaying deltas instead of re-running the original
//! compute closures is the lineage trick GraphX uses: the driver's
//! closures are gone by the time a later superstep fails, but because the
//! simulation is deterministic their *published effect* was recorded and
//! is sufficient to reconstruct the exact pre-step state.
//!
//! The same machinery backs **elastic membership** (DESIGN.md §9): when a
//! worker is declared *permanently* dead, the survivors cannot read its
//! masters — their replicas of those slots are stale mirrors — but the
//! checkpoint-plus-delta replay reconstructs every partition's
//! authoritative state, after which the dead host's partitions are
//! re-homed onto the survivors. Without a checkpoint
//! ([`ClusterConfig::checkpoint_off`](crate::ClusterConfig::checkpoint_off))
//! a permanent loss is unrecoverable and degrades to a clean
//! [`RuntimeError::WorkerLost`](crate::RuntimeError).

use crate::state::WorkerState;
use crate::VertexData;
use flash_graph::{PartitionMap, VertexId};

/// A consistent snapshot of every worker's replica, taken at a superstep
/// boundary.
#[derive(Clone, Debug)]
pub struct Checkpoint<V: VertexData> {
    /// The superstep the snapshot precedes (the next step to run when it
    /// was taken).
    pub step: u64,
    /// Serialized size charged for the snapshot: master slots only, since
    /// mirrors are reconstructible from masters and need not be persisted.
    pub bytes: u64,
    states: Vec<Vec<V>>,
}

impl<V: VertexData> Checkpoint<V> {
    /// Snapshots all workers. `step` is the id of the next superstep.
    pub(crate) fn capture(step: u64, states: &[WorkerState<V>], partition: &PartitionMap) -> Self {
        let snapshots: Vec<Vec<V>> = states.iter().map(WorkerState::snapshot).collect();
        let mut bytes = 0u64;
        for (v, owner) in (0..partition.num_vertices()).map(|v| (v, partition.owner(v as VertexId)))
        {
            bytes += (4 + snapshots[owner][v].bytes()) as u64;
        }
        Checkpoint {
            step,
            bytes,
            states: snapshots,
        }
    }

    /// Overwrites every worker's replica from the snapshot, discarding any
    /// staged (not yet published) writes.
    pub(crate) fn restore(&self, states: &mut [WorkerState<V>]) {
        debug_assert_eq!(states.len(), self.states.len());
        for (st, snap) in states.iter_mut().zip(&self.states) {
            st.restore(snap);
        }
    }
}

/// The published effect of one superstep: the post-step value of every
/// updated vertex, per replica. Re-applying deltas in order reconstructs
/// the exact state any later superstep started from.
#[derive(Clone, Debug)]
pub(crate) struct StepDelta<V: VertexData> {
    /// Serialized size of the delta (each write framed as id + value).
    pub(crate) bytes: u64,
    /// Per replica: the (vertex, value) writes of this step.
    writes: Vec<Vec<(VertexId, V)>>,
}

impl<V: VertexData> StepDelta<V> {
    /// Captures the post-step values of `updated` vertices from every
    /// replica. `updated` is per *owner* worker, exactly the structure the
    /// publish phase produces; the union is applied to each replica
    /// because mirror syncs touched them all.
    pub(crate) fn capture(states: &[WorkerState<V>], updated: &[Vec<VertexId>]) -> Self {
        let all: Vec<VertexId> = updated.iter().flatten().copied().collect();
        let mut bytes = 0u64;
        let writes: Vec<Vec<(VertexId, V)>> = states
            .iter()
            .map(|st| {
                all.iter()
                    .map(|&v| {
                        let val = st.current[v as usize].clone();
                        bytes += (4 + val.bytes()) as u64;
                        (v, val)
                    })
                    .collect()
            })
            .collect();
        StepDelta { bytes, writes }
    }

    /// A delta for one driver-side global write (`set_value_global`),
    /// which mutates every replica outside any superstep.
    pub(crate) fn global(v: VertexId, val: &V, replicas: usize) -> Self {
        let bytes = (4 + val.bytes()) as u64 * replicas as u64;
        StepDelta {
            bytes,
            writes: vec![vec![(v, val.clone())]; replicas],
        }
    }

    /// Re-applies the logged writes to every replica.
    pub(crate) fn apply(&self, states: &mut [WorkerState<V>]) {
        debug_assert_eq!(states.len(), self.writes.len());
        for (st, ws) in states.iter_mut().zip(&self.writes) {
            for (v, val) in ws {
                st.current[*v as usize] = val.clone();
            }
        }
    }
}

/// The cluster's recovery state: the last checkpoint plus the redo log of
/// every superstep published since. Only maintained while a fault plan is
/// active — fault-free runs pay nothing.
#[derive(Debug, Default)]
pub(crate) struct RecoveryLog<V: VertexData> {
    checkpoint: Option<Checkpoint<V>>,
    deltas: Vec<StepDelta<V>>,
}

impl<V: VertexData> RecoveryLog<V> {
    pub(crate) fn new() -> Self {
        RecoveryLog {
            checkpoint: None,
            deltas: Vec::new(),
        }
    }

    /// The superstep id of the last installed checkpoint, if any.
    pub(crate) fn checkpoint_step(&self) -> Option<u64> {
        self.checkpoint.as_ref().map(|cp| cp.step)
    }

    /// Installs a fresh checkpoint, truncating the now-redundant redo log.
    pub(crate) fn install(&mut self, cp: Checkpoint<V>) {
        self.checkpoint = Some(cp);
        self.deltas.clear();
    }

    /// Appends one superstep's redo record.
    pub(crate) fn record(&mut self, delta: StepDelta<V>) {
        if self.checkpoint.is_some() {
            self.deltas.push(delta);
        }
    }

    /// Rolls all workers back to the last checkpoint and replays the redo
    /// log. Returns `(from_step, replayed_supersteps, bytes_moved)`, or
    /// `None` when no checkpoint exists yet (the caller then retries on
    /// unmodified state — safe because staged writes were discarded).
    pub(crate) fn rollback(&self, states: &mut [WorkerState<V>]) -> Option<(u64, u64, u64)> {
        let cp = self.checkpoint.as_ref()?;
        cp.restore(states);
        let mut bytes = cp.bytes;
        for d in &self.deltas {
            d.apply(states);
            bytes += d.bytes;
        }
        Some((cp.step, self.deltas.len() as u64, bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flash_graph::{generators, HashPartitioner};

    #[derive(Clone, Default, Debug, PartialEq)]
    struct Val {
        x: u64,
    }
    crate::full_sync!(Val);

    fn fixtures(workers: usize, n: usize) -> (Vec<WorkerState<Val>>, PartitionMap) {
        let g = generators::path(n, true);
        let p = PartitionMap::build(&g, workers, &HashPartitioner).unwrap();
        let states = (0..workers)
            .map(|_| WorkerState::new(n, &|v| Val { x: v as u64 }))
            .collect();
        (states, p)
    }

    #[test]
    fn checkpoint_round_trips_exactly() {
        let (mut states, p) = fixtures(2, 6);
        let cp = Checkpoint::capture(3, &states, &p);
        assert_eq!(cp.step, 3);
        assert!(cp.bytes > 0);
        // Mutate everything, stage garbage, then restore.
        for st in &mut states {
            for slot in &mut st.current {
                slot.x = 999;
            }
            st.pending.insert(0, Val { x: 1 });
            st.direct.push((1, Val { x: 2 }));
            st.op_puts = 7;
        }
        cp.restore(&mut states);
        for st in &states {
            for (v, slot) in st.current.iter().enumerate() {
                assert_eq!(slot.x, v as u64);
            }
            assert!(st.is_clean(), "restore discards staged writes");
            assert_eq!(st.op_puts, 0);
        }
    }

    #[test]
    fn delta_replay_reconstructs_published_state() {
        let (mut states, p) = fixtures(2, 4);
        let mut log = RecoveryLog::new();
        log.install(Checkpoint::capture(0, &states, &p));

        // "Publish" a step: vertex 2 becomes 50 on every replica.
        for st in &mut states {
            st.current[2] = Val { x: 50 };
        }
        log.record(StepDelta::capture(&states, &[vec![], vec![2]]));

        // A later attempt diverges; roll back and expect the post-delta state.
        for st in &mut states {
            st.current[2] = Val { x: 77 };
            st.current[0] = Val { x: 77 };
        }
        let (from, replayed, bytes) = log.rollback(&mut states).unwrap();
        assert_eq!((from, replayed), (0, 1));
        assert!(bytes > 0);
        for st in &states {
            assert_eq!(st.current[2].x, 50, "delta re-applied");
            assert_eq!(st.current[0].x, 0, "non-updated slot back to checkpoint");
        }
    }

    #[test]
    fn install_truncates_redo_log() {
        let (states, p) = fixtures(2, 4);
        let mut log = RecoveryLog::new();
        log.install(Checkpoint::capture(0, &states, &p));
        log.record(StepDelta::capture(&states, &[vec![1], vec![]]));
        log.install(Checkpoint::capture(2, &states, &p));
        assert_eq!(log.checkpoint_step(), Some(2));
        let mut fresh = fixtures(2, 4).0;
        let (_, replayed, _) = log.rollback(&mut fresh).unwrap();
        assert_eq!(replayed, 0, "new checkpoint cleared the log");
    }

    #[test]
    fn rollback_without_checkpoint_is_none() {
        let (mut states, _) = fixtures(2, 4);
        let log: RecoveryLog<Val> = RecoveryLog::new();
        assert!(log.rollback(&mut states).is_none());
    }

    #[test]
    fn global_delta_touches_all_replicas() {
        let (mut states, _) = fixtures(3, 4);
        let d = StepDelta::global(1, &Val { x: 42 }, 3);
        d.apply(&mut states);
        for st in &states {
            assert_eq!(st.current[1].x, 42);
        }
    }
}
