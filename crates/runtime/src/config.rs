//! Cluster configuration knobs.

use crate::fault::FaultPlan;
use crate::netmodel::NetworkModel;
use crate::plan::ProgramPlan;
use crate::session::BufferPool;
use flash_graph::PartitionMap;
use flash_obs::Sink;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// Checkpoint interval (in supersteps) used when a fault plan is present
/// but no explicit interval was configured: rollback needs a checkpoint to
/// roll back to, so fault injection forces checkpointing on.
pub const DEFAULT_CHECKPOINT_INTERVAL: usize = 4;

/// How the adaptive `EDGEMAP` dispatch (paper Algorithm 4) picks a kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ModePolicy {
    /// Pick dense (pull) when the active set's out-edge mass exceeds
    /// [`ClusterConfig::dense_threshold`] — the paper's default behaviour.
    #[default]
    Adaptive,
    /// Always run the sparse (push) kernel, as in Fig. 3's "sparse" series.
    ForceSparse,
    /// Always run the dense (pull) kernel, as in Fig. 3's "dense" series.
    ForceDense,
}

/// What a master ships to its mirrors after an update (§IV-C,
/// "synchronize critical properties only").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SyncMode {
    /// Ship only the critical projection (`V::Critical`) — the optimized
    /// default matching the paper's static analysis.
    #[default]
    CriticalOnly,
    /// Ship the whole vertex value — the unoptimized ablation baseline.
    Full,
}

/// Which mirrors receive a master's update (§IV-C, "communicate with
/// necessary mirrors only").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SyncScope {
    /// Only workers holding at least one edge incident to the vertex.
    /// Correct whenever messages flow along original graph edges.
    #[default]
    Necessary,
    /// Every worker. Required when the step used *virtual edges* (an edge
    /// set beyond `E`), since any worker may read the vertex next.
    All,
}

/// Which implementation the superstep *hot path* — upd-round bucketing,
/// mirror fan-out accounting and per-step buffer management — uses.
///
/// Both variants are bit-identical in results and in every `upd_*`/`sync_*`
/// counter (enforced by the catalogue-wide property test in
/// `tests/hotpath.rs`); they differ only in time and allocation behaviour.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum HotPath {
    /// Pooled buffers plus parallel bucketing: per-thread bucket sets are
    /// merged deterministically in worker order, and all per-step scratch
    /// (buckets, updated lists, host buffers, batch maps) is reused across
    /// supersteps. The default.
    #[default]
    PooledParallel,
    /// Fresh allocations and single-threaded bucketing — the pre-overhaul
    /// behaviour, kept as the A/B baseline `perf_hotpath` measures against.
    FreshSerial,
}

/// Where the adjacency a cluster iterates lives.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum StorageMode {
    /// Whole graph resident on the heap — the default, used by every
    /// existing test and benchmark.
    #[default]
    InMemory,
    /// Out-of-core block engine: adjacency served from a mapped `.fgb`
    /// file ([`flash_graph::blocks`]), streamable EDGEMAP kernels charge
    /// the M-Flash block grid, and per-step bytes-streamed / cache-hit
    /// counters land in the stats. Requires a graph opened with
    /// [`flash_graph::blocks::open_blocks`].
    Block,
}

/// Configuration of a simulated FLASH cluster.
#[derive(Clone)]
pub struct ClusterConfig {
    /// Number of workers (the paper's `m`; one partition each).
    pub workers: usize,
    /// Threads per worker for intra-worker parallelism (Fig. 4b's "cores").
    pub threads_per_worker: usize,
    /// Run workers on real OS threads. `false` executes workers
    /// sequentially on the driver thread (deterministic debugging).
    pub parallel_workers: bool,
    /// Dense/sparse switch threshold as a fraction of `|E|`: an active set
    /// whose `|U| + outEdges(U)` exceeds `threshold * |E|` is *dense*.
    /// Ligra's classic value is 1/20.
    pub dense_threshold: f64,
    /// Kernel selection policy.
    pub mode: ModePolicy,
    /// Mirror synchronization payload.
    pub sync_mode: SyncMode,
    /// Simulated network for inter-node experiments; `None` records zero
    /// simulated network time.
    pub network: Option<NetworkModel>,
    /// Structured-trace sink receiving [`flash_obs::Event`]s from the
    /// cluster; `None` disables tracing (the emission sites reduce to one
    /// `Option` check).
    pub sink: Option<Arc<dyn Sink>>,
    /// Critical-property names the sync phase ships, as declared by the
    /// algorithm's [`ProgramPlan`]. Informational: surfaced in `sync_plan`
    /// trace events; empty means the plan was not declared.
    pub sync_properties: Vec<String>,
    /// Scripted fault-injection plan (see [`crate::fault`]); `None` runs
    /// fault-free.
    pub fault_plan: Option<FaultPlan>,
    /// Checkpoint interval in supersteps; `0` disables periodic
    /// checkpointing (unless a fault plan is present, in which case
    /// [`DEFAULT_CHECKPOINT_INTERVAL`] applies).
    pub checkpoint_every: usize,
    /// Explicitly disables checkpointing even when a fault plan is
    /// present (see [`ClusterConfig::checkpoint_off`]). A permanent worker
    /// loss then degrades to [`RuntimeError::WorkerLost`](crate::RuntimeError)
    /// instead of recovering elastically.
    pub checkpoint_disabled: bool,
    /// Superstep hot-path implementation (see [`HotPath`]).
    pub hotpath: HotPath,
    /// Record phase/transport/recovery histograms into
    /// [`RunStats::metrics`](crate::stats::RunStats::metrics). Off by
    /// default: recording only aggregates already-measured durations (it
    /// never adds timers or changes results), but the stats JSON stays
    /// lean unless asked for.
    pub metrics: bool,
    /// Adjacency storage engine (see [`StorageMode`]). `Block` is opt-in
    /// and requires a block-backed graph.
    pub storage: StorageMode,
    /// Failure-detector deadline override: a straggler whose simulated
    /// barrier delay reaches this is declared permanently dead. `None`
    /// falls back to the fault plan's `detector=` option (default
    /// [`crate::fault::DEFAULT_DETECTOR_TIMEOUT`]); `Some` wins over both.
    pub detector_timeout: Option<Duration>,
    /// Directory for the durable checkpoint store ([`crate::durable`]);
    /// `None` keeps the store fully inert (the default — no durable code
    /// runs at all). Requires constructing the cluster through the
    /// durable-aware constructors, because the vertex type must implement
    /// [`crate::durable::DurableValue`].
    pub durable_dir: Option<std::path::PathBuf>,
    /// Resume from the durable store instead of starting fresh: the
    /// newest valid generation in [`durable_dir`](Self::durable_dir) is
    /// loaded and replayed, continuing bit-identically where the killed
    /// run left off. Ignored without a durable directory.
    pub durable_resume: bool,
    /// Scripted cold-restart kill switch: durable persistence freezes at
    /// the first superstep `>= N` and the run degrades to
    /// [`RuntimeError::Halted`](crate::RuntimeError) — simulating a
    /// whole-process kill whose in-memory result is lost. Ignored without
    /// a durable directory.
    pub durable_halt_after: Option<u64>,
    /// Pre-built partition the context constructors reuse instead of
    /// hashing the graph again. Serving sessions set it so every query
    /// cluster over one snapshot shares a single `Arc<PartitionMap>`
    /// (crate::session). Must match the graph and `workers`.
    pub shared_partition: Option<Arc<PartitionMap>>,
    /// Shared [`BufferPool`] the cluster checks its `StepBuffers` out of
    /// at construction and back into at drop, so back-to-back query runs
    /// reuse superstep scratch allocations instead of reallocating.
    /// `None` (the default) keeps buffers cluster-private.
    pub buffer_pool: Option<Arc<BufferPool>>,
    /// Serving-session id this cluster executes under, if any; stamps
    /// session-scoped trace events. `None` outside a serving session.
    pub session_id: Option<u64>,
}

impl fmt::Debug for ClusterConfig {
    // Manual impl: `dyn Sink` has no Debug bound.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ClusterConfig")
            .field("workers", &self.workers)
            .field("threads_per_worker", &self.threads_per_worker)
            .field("parallel_workers", &self.parallel_workers)
            .field("dense_threshold", &self.dense_threshold)
            .field("mode", &self.mode)
            .field("sync_mode", &self.sync_mode)
            .field("network", &self.network)
            .field("sink", &self.sink.as_ref().map(|_| "<dyn Sink>"))
            .field("sync_properties", &self.sync_properties)
            .field("fault_plan", &self.fault_plan)
            .field("checkpoint_every", &self.checkpoint_every)
            .field("checkpoint_disabled", &self.checkpoint_disabled)
            .field("hotpath", &self.hotpath)
            .field("metrics", &self.metrics)
            .field("storage", &self.storage)
            .field("detector_timeout", &self.detector_timeout)
            .field("durable_dir", &self.durable_dir)
            .field("durable_resume", &self.durable_resume)
            .field("durable_halt_after", &self.durable_halt_after)
            .field(
                "shared_partition",
                &self.shared_partition.as_ref().map(|_| "<PartitionMap>"),
            )
            .field(
                "buffer_pool",
                &self.buffer_pool.as_ref().map(|_| "<BufferPool>"),
            )
            .field("session_id", &self.session_id)
            .finish()
    }
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            workers: 4,
            threads_per_worker: 1,
            parallel_workers: true,
            dense_threshold: 0.05,
            mode: ModePolicy::Adaptive,
            sync_mode: SyncMode::CriticalOnly,
            network: None,
            sink: None,
            sync_properties: Vec::new(),
            fault_plan: None,
            checkpoint_every: 0,
            checkpoint_disabled: false,
            hotpath: HotPath::default(),
            metrics: false,
            storage: StorageMode::default(),
            detector_timeout: None,
            durable_dir: None,
            durable_resume: false,
            durable_halt_after: None,
            shared_partition: None,
            buffer_pool: None,
            session_id: None,
        }
    }
}

impl ClusterConfig {
    /// A convenience constructor for an `m`-worker cluster with defaults.
    pub fn with_workers(workers: usize) -> Self {
        ClusterConfig {
            workers,
            ..Default::default()
        }
    }

    /// Sets the kernel-selection policy (builder style).
    pub fn mode(mut self, mode: ModePolicy) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the mirror-sync payload policy (builder style).
    pub fn sync_mode(mut self, sync: SyncMode) -> Self {
        self.sync_mode = sync;
        self
    }

    /// Sets intra-worker thread count (builder style).
    pub fn threads(mut self, t: usize) -> Self {
        self.threads_per_worker = t.max(1);
        self
    }

    /// Attaches a simulated network model (builder style).
    pub fn network(mut self, net: NetworkModel) -> Self {
        self.network = Some(net);
        self
    }

    /// Disables real worker threads for deterministic single-threaded runs.
    pub fn sequential(mut self) -> Self {
        self.parallel_workers = false;
        self
    }

    /// Attaches a structured-trace sink (builder style). All superstep,
    /// worker-phase, sync-plan and kernel-decision events flow to it.
    pub fn sink(mut self, sink: Arc<dyn Sink>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Attaches a fault-injection plan (builder style). Checkpointing is
    /// forced on (at [`DEFAULT_CHECKPOINT_INTERVAL`]) unless an interval
    /// was already configured, because recovery rolls back to checkpoints.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        if self.checkpoint_every == 0 {
            self.checkpoint_every = DEFAULT_CHECKPOINT_INTERVAL;
        }
        self
    }

    /// Sets the checkpoint interval in supersteps (builder style); `0`
    /// disables periodic checkpointing on fault-free runs. To disable
    /// checkpointing on a *faulted* run, use
    /// [`checkpoint_off`](Self::checkpoint_off) — it is an explicit opt-out
    /// rather than an ambiguous zero.
    pub fn checkpoint_every(mut self, interval: usize) -> Self {
        self.checkpoint_every = interval;
        self
    }

    /// Disables checkpointing outright (builder style), overriding the
    /// force-on that a fault plan normally applies. With faults injected
    /// and no checkpoints, a transient fault still replays from nothing,
    /// but a permanent worker loss has no state to recover and surfaces as
    /// a clean [`RuntimeError::WorkerLost`](crate::RuntimeError).
    pub fn checkpoint_off(mut self) -> Self {
        self.checkpoint_disabled = true;
        self.checkpoint_every = 0;
        self
    }

    /// Selects the superstep hot-path implementation (builder style).
    /// [`HotPath::FreshSerial`] restores the fresh-allocation,
    /// single-threaded bucketing baseline for A/B measurements.
    pub fn hotpath(mut self, hp: HotPath) -> Self {
        self.hotpath = hp;
        self
    }

    /// Enables metrics recording (builder style): superstep phase,
    /// transport and recovery histograms accumulate into
    /// `RunStats::metrics` and render in the stats JSON with
    /// p50/p90/p99/max. Guaranteed not to change results: the catalogue
    /// bit-identity test runs every algorithm with metrics on and off.
    pub fn metrics(mut self) -> Self {
        self.metrics = true;
        self
    }

    /// Selects the adjacency storage engine (builder style).
    /// [`StorageMode::Block`] turns on the out-of-core streaming path;
    /// the cluster then requires a graph opened via
    /// [`flash_graph::blocks::open_blocks`].
    pub fn storage(mut self, s: StorageMode) -> Self {
        self.storage = s;
        self
    }

    /// Overrides the failure-detector deadline (builder style): a
    /// straggler whose simulated barrier delay reaches `d` is declared
    /// permanently dead. Wins over the fault plan's `detector=` option.
    pub fn detector_timeout(mut self, d: Duration) -> Self {
        self.detector_timeout = Some(d);
        self
    }

    /// Points the durable checkpoint store at `dir` (builder style).
    /// Checkpointing is forced on (at [`DEFAULT_CHECKPOINT_INTERVAL`])
    /// unless an interval was already configured, because the store
    /// persists at checkpoint boundaries.
    pub fn durable_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.durable_dir = Some(dir.into());
        if self.checkpoint_every == 0 {
            self.checkpoint_every = DEFAULT_CHECKPOINT_INTERVAL;
        }
        self
    }

    /// Resumes from the durable store instead of starting fresh (builder
    /// style). Ignored without [`durable_dir`](Self::durable_dir).
    pub fn resume(mut self) -> Self {
        self.durable_resume = true;
        self
    }

    /// Arms the scripted cold-restart kill switch (builder style):
    /// durable persistence freezes at the first superstep `>= n` and the
    /// run degrades to [`RuntimeError::Halted`](crate::RuntimeError).
    pub fn halt_after(mut self, n: u64) -> Self {
        self.durable_halt_after = Some(n);
        self
    }

    /// Reuses a pre-built partition (builder style): the context
    /// constructors skip hashing the graph and share this map. The map's
    /// worker count must equal `workers` and its vertex count must match
    /// the graph handed to the constructor.
    pub fn shared_partition(mut self, partition: Arc<PartitionMap>) -> Self {
        self.shared_partition = Some(partition);
        self
    }

    /// Attaches a shared superstep [`BufferPool`] (builder style): the
    /// cluster checks scratch buffers out at construction and back in at
    /// drop, so consecutive query runs reuse allocations.
    pub fn buffer_pool(mut self, pool: Arc<BufferPool>) -> Self {
        self.buffer_pool = Some(pool);
        self
    }

    /// Tags this cluster with a serving-session id (builder style).
    pub fn session_id(mut self, id: u64) -> Self {
        self.session_id = Some(id);
        self
    }

    /// Declares the algorithm's [`ProgramPlan`] (builder style): its
    /// critical properties become the payload of `sync_plan` trace events.
    pub fn plan(mut self, plan: &ProgramPlan) -> Self {
        self.sync_properties = plan
            .critical_properties()
            .into_iter()
            .map(String::from)
            .collect();
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = ClusterConfig::default();
        assert_eq!(c.workers, 4);
        assert_eq!(c.mode, ModePolicy::Adaptive);
        assert_eq!(c.sync_mode, SyncMode::CriticalOnly);
        assert!(c.network.is_none());
        assert!(c.dense_threshold > 0.0 && c.dense_threshold < 1.0);
    }

    #[test]
    fn builder_chains() {
        let c = ClusterConfig::with_workers(8)
            .mode(ModePolicy::ForceDense)
            .sync_mode(SyncMode::Full)
            .threads(0)
            .sequential();
        assert_eq!(c.workers, 8);
        assert_eq!(c.mode, ModePolicy::ForceDense);
        assert_eq!(c.sync_mode, SyncMode::Full);
        assert_eq!(c.threads_per_worker, 1, "threads clamp to >= 1");
        assert!(!c.parallel_workers);
    }

    #[test]
    fn sink_attaches_and_debug_does_not_explode() {
        let c = ClusterConfig::default().sink(Arc::new(flash_obs::NullSink));
        assert!(c.sink.is_some());
        let dbg = format!("{c:?}");
        assert!(dbg.contains("dyn Sink"), "{dbg}");
        #[allow(clippy::redundant_clone)] // the clone IS the behaviour under test
        let c2 = c.clone(); // Arc clone, not a deep sink copy
        assert!(c2.sink.is_some());
    }

    #[test]
    fn faults_builder_forces_checkpointing_on() {
        let c = ClusterConfig::default().faults(FaultPlan::default());
        assert!(c.fault_plan.is_some());
        assert_eq!(c.checkpoint_every, DEFAULT_CHECKPOINT_INTERVAL);

        let c2 = ClusterConfig::default()
            .checkpoint_every(7)
            .faults(FaultPlan::default());
        assert_eq!(c2.checkpoint_every, 7, "explicit interval wins");

        let c3 = ClusterConfig::default().checkpoint_every(3);
        assert!(c3.fault_plan.is_none());
        assert_eq!(c3.checkpoint_every, 3, "checkpointing works fault-free");
    }

    #[test]
    fn checkpoint_off_wins_over_the_faults_force_on() {
        let c = ClusterConfig::default()
            .checkpoint_off()
            .faults(FaultPlan::default());
        assert!(c.checkpoint_disabled, "explicit opt-out survives faults()");
        let c2 = ClusterConfig::default()
            .faults(FaultPlan::default())
            .checkpoint_off();
        assert!(c2.checkpoint_disabled);
        assert_eq!(c2.checkpoint_every, 0);
        assert!(!ClusterConfig::default().checkpoint_disabled);
    }

    #[test]
    fn hotpath_defaults_to_pooled_parallel() {
        assert_eq!(ClusterConfig::default().hotpath, HotPath::PooledParallel);
        let c = ClusterConfig::default().hotpath(HotPath::FreshSerial);
        assert_eq!(c.hotpath, HotPath::FreshSerial);
        assert!(format!("{c:?}").contains("FreshSerial"));
    }

    #[test]
    fn storage_defaults_to_in_memory() {
        assert_eq!(ClusterConfig::default().storage, StorageMode::InMemory);
        let c = ClusterConfig::default().storage(StorageMode::Block);
        assert_eq!(c.storage, StorageMode::Block);
        assert!(format!("{c:?}").contains("Block"));
    }

    #[test]
    fn detector_timeout_defaults_to_none_and_overrides() {
        assert!(ClusterConfig::default().detector_timeout.is_none());
        let c = ClusterConfig::default().detector_timeout(Duration::from_millis(25));
        assert_eq!(c.detector_timeout, Some(Duration::from_millis(25)));
        assert!(format!("{c:?}").contains("detector_timeout"));
    }

    #[test]
    fn durable_builders_wire_the_store() {
        let c = ClusterConfig::default();
        assert!(c.durable_dir.is_none());
        assert!(!c.durable_resume);
        assert!(c.durable_halt_after.is_none());

        let c = ClusterConfig::default().durable_dir("/tmp/x");
        assert_eq!(
            c.durable_dir.as_deref(),
            Some(std::path::Path::new("/tmp/x"))
        );
        assert_eq!(
            c.checkpoint_every, DEFAULT_CHECKPOINT_INTERVAL,
            "durable store forces checkpointing on"
        );
        let c = ClusterConfig::default()
            .checkpoint_every(7)
            .durable_dir("/tmp/x");
        assert_eq!(c.checkpoint_every, 7, "explicit interval wins");

        let c = ClusterConfig::default()
            .durable_dir("/tmp/x")
            .resume()
            .halt_after(9);
        assert!(c.durable_resume);
        assert_eq!(c.durable_halt_after, Some(9));
        let dbg = format!("{c:?}");
        assert!(
            dbg.contains("durable_dir") && dbg.contains("halt_after"),
            "{dbg}"
        );
    }

    #[test]
    fn plan_builder_extracts_critical_properties() {
        use crate::plan::{Access, OpKind, ProgramPlan, Role};
        let plan = ProgramPlan::new()
            .access(OpKind::EdgeMapSparse, Role::Target, Access::Put, "dis")
            .access(OpKind::VertexMap, Role::Local, Access::Put, "scratch");
        let c = ClusterConfig::default().plan(&plan);
        assert_eq!(c.sync_properties, vec!["dis".to_string()]);
    }
}
