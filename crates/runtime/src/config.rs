//! Cluster configuration knobs.

use crate::netmodel::NetworkModel;

/// How the adaptive `EDGEMAP` dispatch (paper Algorithm 4) picks a kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ModePolicy {
    /// Pick dense (pull) when the active set's out-edge mass exceeds
    /// [`ClusterConfig::dense_threshold`] — the paper's default behaviour.
    #[default]
    Adaptive,
    /// Always run the sparse (push) kernel, as in Fig. 3's "sparse" series.
    ForceSparse,
    /// Always run the dense (pull) kernel, as in Fig. 3's "dense" series.
    ForceDense,
}

/// What a master ships to its mirrors after an update (§IV-C,
/// "synchronize critical properties only").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SyncMode {
    /// Ship only the critical projection (`V::Critical`) — the optimized
    /// default matching the paper's static analysis.
    #[default]
    CriticalOnly,
    /// Ship the whole vertex value — the unoptimized ablation baseline.
    Full,
}

/// Which mirrors receive a master's update (§IV-C, "communicate with
/// necessary mirrors only").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SyncScope {
    /// Only workers holding at least one edge incident to the vertex.
    /// Correct whenever messages flow along original graph edges.
    #[default]
    Necessary,
    /// Every worker. Required when the step used *virtual edges* (an edge
    /// set beyond `E`), since any worker may read the vertex next.
    All,
}

/// Configuration of a simulated FLASH cluster.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Number of workers (the paper's `m`; one partition each).
    pub workers: usize,
    /// Threads per worker for intra-worker parallelism (Fig. 4b's "cores").
    pub threads_per_worker: usize,
    /// Run workers on real OS threads. `false` executes workers
    /// sequentially on the driver thread (deterministic debugging).
    pub parallel_workers: bool,
    /// Dense/sparse switch threshold as a fraction of `|E|`: an active set
    /// whose `|U| + outEdges(U)` exceeds `threshold * |E|` is *dense*.
    /// Ligra's classic value is 1/20.
    pub dense_threshold: f64,
    /// Kernel selection policy.
    pub mode: ModePolicy,
    /// Mirror synchronization payload.
    pub sync_mode: SyncMode,
    /// Simulated network for inter-node experiments; `None` records zero
    /// simulated network time.
    pub network: Option<NetworkModel>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            workers: 4,
            threads_per_worker: 1,
            parallel_workers: true,
            dense_threshold: 0.05,
            mode: ModePolicy::Adaptive,
            sync_mode: SyncMode::CriticalOnly,
            network: None,
        }
    }
}

impl ClusterConfig {
    /// A convenience constructor for an `m`-worker cluster with defaults.
    pub fn with_workers(workers: usize) -> Self {
        ClusterConfig {
            workers,
            ..Default::default()
        }
    }

    /// Sets the kernel-selection policy (builder style).
    pub fn mode(mut self, mode: ModePolicy) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the mirror-sync payload policy (builder style).
    pub fn sync_mode(mut self, sync: SyncMode) -> Self {
        self.sync_mode = sync;
        self
    }

    /// Sets intra-worker thread count (builder style).
    pub fn threads(mut self, t: usize) -> Self {
        self.threads_per_worker = t.max(1);
        self
    }

    /// Attaches a simulated network model (builder style).
    pub fn network(mut self, net: NetworkModel) -> Self {
        self.network = Some(net);
        self
    }

    /// Disables real worker threads for deterministic single-threaded runs.
    pub fn sequential(mut self) -> Self {
        self.parallel_workers = false;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = ClusterConfig::default();
        assert_eq!(c.workers, 4);
        assert_eq!(c.mode, ModePolicy::Adaptive);
        assert_eq!(c.sync_mode, SyncMode::CriticalOnly);
        assert!(c.network.is_none());
        assert!(c.dense_threshold > 0.0 && c.dense_threshold < 1.0);
    }

    #[test]
    fn builder_chains() {
        let c = ClusterConfig::with_workers(8)
            .mode(ModePolicy::ForceDense)
            .sync_mode(SyncMode::Full)
            .threads(0)
            .sequential();
        assert_eq!(c.workers, 8);
        assert_eq!(c.mode, ModePolicy::ForceDense);
        assert_eq!(c.sync_mode, SyncMode::Full);
        assert_eq!(c.threads_per_worker, 1, "threads clamp to >= 1");
        assert!(!c.parallel_workers);
    }
}
