//! Intra-worker parallelism helper.
//!
//! The paper's workers each drive a pool of threads performing "parallel
//! vertex-centric processing" (§IV-C, Fig. 4b varies this pool from 1 to 32
//! cores). Kernels use [`parallel_chunks`] to split their master list into
//! contiguous chunks processed on separate threads; each chunk returns a
//! buffered result the kernel then commits through the single-threaded
//! [`crate::WorkerCtx`] — keeping update application race-free without
//! atomics, which is exactly the discipline FLASH imposes on distributed
//! updates (reduce functions instead of compare-and-swap).

/// Maps contiguous chunks of `items` on up to `threads` threads, returning
/// the per-chunk outputs in order. With `threads <= 1` (or one-element
/// input) it degrades to a plain sequential call, avoiding thread overhead.
pub fn parallel_chunks<T: Sync, Out: Send>(
    items: &[T],
    threads: usize,
    f: impl Fn(&[T]) -> Out + Sync,
) -> Vec<Out> {
    let threads = threads.max(1).min(items.len().max(1));
    if threads == 1 {
        return vec![f(items)];
    }
    let chunk = items.len().div_ceil(threads);
    std::thread::scope(|s| {
        let handles: Vec<_> = items.chunks(chunk).map(|c| s.spawn(|| f(c))).collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(out) => out,
                Err(p) => std::panic::resume_unwind(p),
            })
            .collect()
    })
}

/// Like [`parallel_chunks`] but over *mutable* chunks, with one reusable
/// scratch slot per thread.
///
/// Each thread receives the starting index of its chunk (`base`), the
/// mutable chunk itself, and exclusive access to `scratch[i]` for chunk
/// `i`. Missing scratch slots are created with `new_scratch`; existing
/// slots are handed back untouched, so callers can pool per-thread buffers
/// across invocations (clear-don't-drop). Outputs come back in chunk
/// order, which makes a deterministic merge trivial: concatenating the
/// per-chunk results in output order reproduces exactly what one thread
/// walking `items` front to back would have produced.
pub fn parallel_scratch_chunks<T: Send, S: Send, Out: Send>(
    items: &mut [T],
    scratch: &mut Vec<S>,
    threads: usize,
    new_scratch: impl Fn() -> S,
    f: impl Fn(usize, &mut [T], &mut S) -> Out + Sync,
) -> Vec<Out> {
    let threads = threads.max(1).min(items.len().max(1));
    let chunk = items.len().div_ceil(threads).max(1);
    let n_chunks = items.len().div_ceil(chunk).max(1);
    while scratch.len() < n_chunks {
        scratch.push(new_scratch());
    }
    if threads == 1 {
        return vec![f(0, items, &mut scratch[0])];
    }
    let f = &f;
    std::thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks_mut(chunk)
            .zip(scratch.iter_mut())
            .enumerate()
            .map(|(i, (c, slot))| s.spawn(move || f(i * chunk, c, slot)))
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(out) => out,
                Err(p) => std::panic::resume_unwind(p),
            })
            .collect()
    })
}

/// Like [`parallel_chunks`] but for an index range, passing each thread the
/// sub-range `(start, end)`.
pub fn parallel_ranges<Out: Send>(
    len: usize,
    threads: usize,
    f: impl Fn(usize, usize) -> Out + Sync,
) -> Vec<Out> {
    let threads = threads.max(1).min(len.max(1));
    if threads == 1 {
        return vec![f(0, len)];
    }
    let chunk = len.div_ceil(threads);
    let f = &f;
    std::thread::scope(|s| {
        // `t * chunk` can exceed `len` when it is not divisible by
        // `threads` (e.g. len=5, threads=4 → chunk=2 → t=3 starts at 6):
        // clamp and skip the resulting empty tail ranges instead of
        // handing a callback an inverted out-of-bounds range.
        let handles: Vec<_> = (0..threads)
            .filter_map(|t| {
                let lo = (t * chunk).min(len);
                let hi = ((t + 1) * chunk).min(len);
                (lo < hi).then(|| s.spawn(move || f(lo, hi)))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(out) => out,
                Err(p) => std::panic::resume_unwind(p),
            })
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_everything_in_order() {
        let items: Vec<u32> = (0..101).collect();
        for threads in [1usize, 2, 3, 8, 200] {
            let outs = parallel_chunks(&items, threads, |c| c.to_vec());
            let flat: Vec<u32> = outs.into_iter().flatten().collect();
            assert_eq!(flat, items, "threads={threads}");
        }
    }

    #[test]
    fn sums_match_sequential() {
        let items: Vec<u64> = (0..1000).collect();
        let outs = parallel_chunks(&items, 4, |c| c.iter().sum::<u64>());
        assert_eq!(outs.iter().sum::<u64>(), 499_500);
    }

    #[test]
    fn empty_input_is_fine() {
        let items: Vec<u32> = vec![];
        let outs = parallel_chunks(&items, 4, |c| c.len());
        assert_eq!(outs, vec![0]);
    }

    #[test]
    fn ranges_partition_exactly() {
        for threads in [1usize, 3, 7] {
            let outs = parallel_ranges(50, threads, |lo, hi| (lo, hi));
            let mut expect = 0;
            for (lo, hi) in outs {
                assert_eq!(lo, expect);
                expect = hi;
            }
            assert_eq!(expect, 50);
        }
    }

    #[test]
    fn zero_len_ranges() {
        let outs = parallel_ranges(0, 8, |lo, hi| hi - lo);
        assert_eq!(outs, vec![0]);
    }

    #[test]
    fn scratch_chunks_cover_everything_in_order() {
        for threads in [1usize, 2, 3, 8, 200] {
            let mut items: Vec<u32> = (0..101).collect();
            let mut scratch: Vec<Vec<u32>> = Vec::new();
            let outs = parallel_scratch_chunks(
                &mut items,
                &mut scratch,
                threads,
                Vec::new,
                |base, chunk, slot| {
                    slot.clear();
                    slot.extend_from_slice(chunk);
                    for x in chunk.iter_mut() {
                        *x += 1000;
                    }
                    base
                },
            );
            // Bases ascend in chunk order and scratch slots concatenate to
            // the original input.
            assert!(outs.windows(2).all(|w| w[0] < w[1]), "threads={threads}");
            let flat: Vec<u32> = scratch.iter().flatten().copied().collect();
            assert_eq!(flat, (0..101).collect::<Vec<u32>>(), "threads={threads}");
            assert!(items.iter().all(|&x| x >= 1000), "chunks were mutable");
        }
    }

    /// The determinism contract the pooled-parallel bucketing relies on:
    /// per-thread bucket sets merged in chunk (= ascending worker) order
    /// reproduce the single-threaded bucket order bit for bit.
    #[test]
    fn scratch_chunks_merged_bucket_order_is_deterministic() {
        const BUCKETS: usize = 7;
        let serial: Vec<Vec<(usize, u32)>> = {
            let mut buckets = vec![Vec::new(); BUCKETS];
            for v in 0..500u32 {
                buckets[(v as usize * 31) % BUCKETS].push((v as usize, v));
            }
            buckets
        };
        for threads in [1usize, 2, 3, 5, 16] {
            let mut items: Vec<u32> = (0..500).collect();
            let mut scratch: Vec<Vec<Vec<(usize, u32)>>> = Vec::new();
            parallel_scratch_chunks(
                &mut items,
                &mut scratch,
                threads,
                Vec::new,
                |_base, chunk, set: &mut Vec<Vec<(usize, u32)>>| {
                    set.resize_with(BUCKETS, Vec::new);
                    for &v in chunk.iter() {
                        set[(v as usize * 31) % BUCKETS].push((v as usize, v));
                    }
                },
            );
            let mut merged = vec![Vec::new(); BUCKETS];
            for set in scratch.iter_mut() {
                for (b, local) in set.iter_mut().enumerate() {
                    merged[b].append(local);
                }
            }
            assert_eq!(merged, serial, "threads={threads}");
        }
    }

    #[test]
    fn scratch_slots_are_pooled_across_calls() {
        let mut items: Vec<u32> = (0..64).collect();
        let mut scratch: Vec<Vec<u32>> = Vec::new();
        parallel_scratch_chunks(&mut items, &mut scratch, 4, Vec::new, |_, c, slot| {
            slot.extend_from_slice(c);
        });
        let slots_after_first = scratch.len();
        assert!(slots_after_first >= 4);
        let caps: Vec<usize> = scratch.iter().map(Vec::capacity).collect();
        for slot in scratch.iter_mut() {
            slot.clear(); // clear-don't-drop keeps the allocation
        }
        parallel_scratch_chunks(&mut items, &mut scratch, 4, Vec::new, |_, c, slot| {
            slot.extend_from_slice(c);
        });
        assert_eq!(scratch.len(), slots_after_first, "no new slots allocated");
        for (slot, cap) in scratch.iter().zip(caps) {
            assert!(slot.capacity() >= cap, "allocations were reused");
        }
    }

    #[test]
    fn scratch_chunks_empty_input_is_fine() {
        let mut items: Vec<u32> = vec![];
        let mut scratch: Vec<Vec<u32>> = Vec::new();
        let outs = parallel_scratch_chunks(&mut items, &mut scratch, 4, Vec::new, |base, c, _| {
            (base, c.len())
        });
        assert_eq!(outs, vec![(0, 0)]);
        assert_eq!(scratch.len(), 1);
    }

    #[test]
    fn ranges_never_invert_on_any_grid_point() {
        // Regression: len=5, threads=4 used to produce the inverted
        // out-of-bounds range (6, 5), which panics on `&items[lo..hi]`.
        for len in [0usize, 1, 2, 3, 4, 5, 6, 7, 8, 9, 15, 16, 17, 101] {
            for threads in [1usize, 2, 3, 4, 5, 6, 7, 8, 9, 200] {
                let items: Vec<usize> = (0..len).collect();
                let outs = parallel_ranges(len, threads, |lo, hi| {
                    assert!(lo <= hi, "len={len} threads={threads}: ({lo}, {hi})");
                    assert!(hi <= len, "len={len} threads={threads}: ({lo}, {hi})");
                    items[lo..hi].to_vec() // must not panic
                });
                let flat: Vec<usize> = outs.into_iter().flatten().collect();
                assert_eq!(flat, items, "len={len} threads={threads}");
            }
        }
    }
}
