//! Intra-worker parallelism helper.
//!
//! The paper's workers each drive a pool of threads performing "parallel
//! vertex-centric processing" (§IV-C, Fig. 4b varies this pool from 1 to 32
//! cores). Kernels use [`parallel_chunks`] to split their master list into
//! contiguous chunks processed on separate threads; each chunk returns a
//! buffered result the kernel then commits through the single-threaded
//! [`crate::WorkerCtx`] — keeping update application race-free without
//! atomics, which is exactly the discipline FLASH imposes on distributed
//! updates (reduce functions instead of compare-and-swap).

/// Maps contiguous chunks of `items` on up to `threads` threads, returning
/// the per-chunk outputs in order. With `threads <= 1` (or one-element
/// input) it degrades to a plain sequential call, avoiding thread overhead.
pub fn parallel_chunks<T: Sync, Out: Send>(
    items: &[T],
    threads: usize,
    f: impl Fn(&[T]) -> Out + Sync,
) -> Vec<Out> {
    let threads = threads.max(1).min(items.len().max(1));
    if threads == 1 {
        return vec![f(items)];
    }
    let chunk = items.len().div_ceil(threads);
    std::thread::scope(|s| {
        let handles: Vec<_> = items.chunks(chunk).map(|c| s.spawn(|| f(c))).collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(out) => out,
                Err(p) => std::panic::resume_unwind(p),
            })
            .collect()
    })
}

/// Like [`parallel_chunks`] but for an index range, passing each thread the
/// sub-range `(start, end)`.
pub fn parallel_ranges<Out: Send>(
    len: usize,
    threads: usize,
    f: impl Fn(usize, usize) -> Out + Sync,
) -> Vec<Out> {
    let threads = threads.max(1).min(len.max(1));
    if threads == 1 {
        return vec![f(0, len)];
    }
    let chunk = len.div_ceil(threads);
    let f = &f;
    std::thread::scope(|s| {
        // `t * chunk` can exceed `len` when it is not divisible by
        // `threads` (e.g. len=5, threads=4 → chunk=2 → t=3 starts at 6):
        // clamp and skip the resulting empty tail ranges instead of
        // handing a callback an inverted out-of-bounds range.
        let handles: Vec<_> = (0..threads)
            .filter_map(|t| {
                let lo = (t * chunk).min(len);
                let hi = ((t + 1) * chunk).min(len);
                (lo < hi).then(|| s.spawn(move || f(lo, hi)))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(out) => out,
                Err(p) => std::panic::resume_unwind(p),
            })
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_everything_in_order() {
        let items: Vec<u32> = (0..101).collect();
        for threads in [1usize, 2, 3, 8, 200] {
            let outs = parallel_chunks(&items, threads, |c| c.to_vec());
            let flat: Vec<u32> = outs.into_iter().flatten().collect();
            assert_eq!(flat, items, "threads={threads}");
        }
    }

    #[test]
    fn sums_match_sequential() {
        let items: Vec<u64> = (0..1000).collect();
        let outs = parallel_chunks(&items, 4, |c| c.iter().sum::<u64>());
        assert_eq!(outs.iter().sum::<u64>(), 499_500);
    }

    #[test]
    fn empty_input_is_fine() {
        let items: Vec<u32> = vec![];
        let outs = parallel_chunks(&items, 4, |c| c.len());
        assert_eq!(outs, vec![0]);
    }

    #[test]
    fn ranges_partition_exactly() {
        for threads in [1usize, 3, 7] {
            let outs = parallel_ranges(50, threads, |lo, hi| (lo, hi));
            let mut expect = 0;
            for (lo, hi) in outs {
                assert_eq!(lo, expect);
                expect = hi;
            }
            assert_eq!(expect, 50);
        }
    }

    #[test]
    fn zero_len_ranges() {
        let outs = parallel_ranges(0, 8, |lo, hi| hi - lo);
        assert_eq!(outs, vec![0]);
    }

    #[test]
    fn ranges_never_invert_on_any_grid_point() {
        // Regression: len=5, threads=4 used to produce the inverted
        // out-of-bounds range (6, 5), which panics on `&items[lo..hi]`.
        for len in [0usize, 1, 2, 3, 4, 5, 6, 7, 8, 9, 15, 16, 17, 101] {
            for threads in [1usize, 2, 3, 4, 5, 6, 7, 8, 9, 200] {
                let items: Vec<usize> = (0..len).collect();
                let outs = parallel_ranges(len, threads, |lo, hi| {
                    assert!(lo <= hi, "len={len} threads={threads}: ({lo}, {hi})");
                    assert!(hi <= len, "len={len} threads={threads}: ({lo}, {hi})");
                    items[lo..hi].to_vec() // must not panic
                });
                let flat: Vec<usize> = outs.into_iter().flatten().collect();
                assert_eq!(flat, items, "len={len} threads={threads}");
            }
        }
    }
}
