//! Event sinks: where trace events go.
//!
//! A [`Sink`] is attached to a `ClusterConfig` as an `Arc<dyn Sink>`; the
//! runtime calls [`Sink::emit`] from the coordinator thread only (worker
//! phase data is gathered at the barrier), but sinks are still required to
//! be `Send + Sync` so configs can be cloned across threads, hence the
//! interior mutability in the implementations below.

use crate::event::Event;
use std::io::{BufWriter, Write};
use std::sync::Mutex;

/// Receives trace events from the runtime.
pub trait Sink: Send + Sync {
    /// Handles one event. Must not panic on I/O failure — sinks swallow
    /// write errors so tracing can never take down a run.
    fn emit(&self, event: &Event);

    /// Flushes any buffered output (no-op by default).
    fn flush(&self) {}
}

/// Discards every event. Useful as an explicit "tracing off" marker in
/// tests and benchmarks that exercise the instrumented code paths.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl Sink for NullSink {
    fn emit(&self, _event: &Event) {}
}

/// Buffers events in memory for inspection — the workhorse of the trace
/// test-suite.
#[derive(Debug, Default)]
pub struct CollectSink {
    events: Mutex<Vec<Event>>,
}

impl CollectSink {
    /// An empty collector.
    pub fn new() -> CollectSink {
        CollectSink::default()
    }

    /// A snapshot of all events emitted so far, in emission order.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().unwrap().clone()
    }

    /// Number of events emitted so far.
    pub fn len(&self) -> usize {
        self.events.lock().unwrap().len()
    }

    /// True when nothing has been emitted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Sink for CollectSink {
    fn emit(&self, event: &Event) {
        self.events.lock().unwrap().push(event.clone());
    }
}

/// Writes one compact JSON object per line (JSONL) to any [`Write`] target
/// — a file for offline analysis, or an in-memory buffer in tests.
///
/// Writes are buffered through an internal [`BufWriter`], so a trace line
/// costs a formatted append to an in-memory buffer rather than a syscall
/// per event. The buffer drains on [`Sink::flush`], on
/// [`JsonLinesSink::into_inner`], and on drop (`BufWriter`'s `Drop` flushes
/// whatever remains), so a trace file is complete once the sink is gone
/// even if nobody called `flush`.
#[derive(Debug)]
pub struct JsonLinesSink<W: Write + Send> {
    writer: Mutex<BufWriter<W>>,
}

impl<W: Write + Send> JsonLinesSink<W> {
    /// Wraps a writer.
    pub fn new(writer: W) -> JsonLinesSink<W> {
        JsonLinesSink {
            writer: Mutex::new(BufWriter::new(writer)),
        }
    }

    /// Consumes the sink and returns the inner writer (flushing first).
    pub fn into_inner(self) -> W {
        let buf = self.writer.into_inner().unwrap();
        // `BufWriter::into_inner` flushes; on error it hands the buffer
        // back and we honor the "sinks swallow I/O errors" contract.
        match buf.into_inner() {
            Ok(w) => w,
            Err(e) => e.into_inner().into_parts().0,
        }
    }
}

impl<W: Write + Send> Sink for JsonLinesSink<W> {
    fn emit(&self, event: &Event) {
        let mut w = self.writer.lock().unwrap();
        let _ = writeln!(w, "{}", event.to_json().to_string());
    }

    fn flush(&self) {
        let _ = self.writer.lock().unwrap().flush();
    }
}

/// Writes one human-readable line per event — the `--trace` console view.
#[derive(Debug)]
pub struct TextSink<W: Write + Send> {
    writer: Mutex<W>,
}

impl<W: Write + Send> TextSink<W> {
    /// Wraps a writer.
    pub fn new(writer: W) -> TextSink<W> {
        TextSink {
            writer: Mutex::new(writer),
        }
    }

    /// Consumes the sink and returns the inner writer (flushing first).
    pub fn into_inner(self) -> W {
        let mut w = self.writer.into_inner().unwrap();
        let _ = w.flush();
        w
    }
}

impl<W: Write + Send> Sink for TextSink<W> {
    fn emit(&self, event: &Event) {
        let mut w = self.writer.lock().unwrap();
        let _ = writeln!(w, "{}", event.to_text());
    }

    fn flush(&self) {
        let _ = self.writer.lock().unwrap().flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use crate::json;

    fn ev(seq: u64) -> Event {
        Event {
            seq,
            kind: EventKind::StepStart {
                step: seq,
                kind: "vmap".to_string(),
                active: 3,
            },
        }
    }

    #[test]
    fn collect_sink_preserves_order() {
        let sink = CollectSink::new();
        assert!(sink.is_empty());
        for i in 0..5 {
            sink.emit(&ev(i));
        }
        let events = sink.events();
        assert_eq!(events.len(), 5);
        assert!(events.windows(2).all(|w| w[0].seq + 1 == w[1].seq));
    }

    #[test]
    fn jsonl_sink_writes_one_parseable_line_per_event() {
        let sink = JsonLinesSink::new(Vec::new());
        sink.emit(&ev(0));
        sink.emit(&ev(1));
        let buf = sink.into_inner();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for (i, line) in lines.iter().enumerate() {
            let j = json::parse(line).unwrap();
            assert_eq!(j.get("seq").and_then(json::Json::as_u64), Some(i as u64));
            assert_eq!(
                j.get("event").and_then(json::Json::as_str),
                Some("step_start")
            );
        }
    }

    #[derive(Clone, Default)]
    struct SharedBuf(std::sync::Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn jsonl_sink_buffers_writes_until_flush() {
        let shared = SharedBuf::default();
        let sink = JsonLinesSink::new(shared.clone());
        sink.emit(&ev(0));
        // A single line is far below BufWriter's capacity: nothing should
        // have reached the underlying writer yet.
        assert!(shared.0.lock().unwrap().is_empty());
        sink.flush();
        assert!(!shared.0.lock().unwrap().is_empty());
    }

    #[test]
    fn jsonl_sink_flushes_on_drop() {
        let shared = SharedBuf::default();
        {
            let sink = JsonLinesSink::new(shared.clone());
            sink.emit(&ev(1));
        } // dropped without an explicit flush
        let text = String::from_utf8(shared.0.lock().unwrap().clone()).unwrap();
        assert!(text.contains("step_start"));
    }

    #[test]
    fn text_sink_writes_readable_lines() {
        let sink = TextSink::new(Vec::new());
        sink.emit(&ev(2));
        let text = String::from_utf8(sink.into_inner()).unwrap();
        assert!(text.contains("step 2 start"));
    }

    #[test]
    fn null_sink_is_silent() {
        // Just exercises the path; NullSink has no observable state.
        NullSink.emit(&ev(0));
        NullSink.flush();
    }

    #[test]
    fn sinks_are_object_safe() {
        let sinks: Vec<Box<dyn Sink>> = vec![
            Box::new(NullSink),
            Box::new(CollectSink::new()),
            Box::new(JsonLinesSink::new(Vec::new())),
        ];
        for s in &sinks {
            s.emit(&ev(9));
            s.flush();
        }
    }
}
