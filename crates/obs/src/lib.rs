//! # flash-obs
//!
//! Dependency-free structured tracing and machine-readable metrics for the
//! FLASH framework. Three pieces:
//!
//! * [`json`] — a hand-rolled JSON value type with a compact/pretty writer
//!   and a parser (the workspace builds offline, so there is no
//!   `serde_json`);
//! * [`event`] — the [`Event`]/[`EventKind`] model the runtime emits:
//!   run/superstep spans, per-worker phase timings, barrier skew,
//!   message/byte counts, sync-plan and adaptive-kernel decisions;
//! * [`sink`] — the [`Sink`] trait plus [`NullSink`], [`CollectSink`],
//!   [`JsonLinesSink`], and [`TextSink`].
//!
//! The runtime (`flash-runtime`) owns the emission sites; this crate only
//! defines the vocabulary, so it stays a leaf with zero dependencies.

#![warn(missing_docs)]

pub mod event;
pub mod json;
pub mod sink;

pub use event::{Event, EventKind};
pub use json::Json;
pub use sink::{CollectSink, JsonLinesSink, NullSink, Sink, TextSink};
