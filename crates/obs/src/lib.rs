//! # flash-obs
//!
//! Dependency-free structured tracing and machine-readable metrics for the
//! FLASH framework. Three pieces:
//!
//! * [`json`] — a hand-rolled JSON value type with a compact/pretty writer
//!   and a parser (the workspace builds offline, so there is no
//!   `serde_json`);
//! * [`event`] — the [`Event`]/[`EventKind`] model the runtime emits:
//!   run/superstep spans, per-worker phase timings, barrier skew,
//!   message/byte counts, sync-plan and adaptive-kernel decisions;
//! * [`sink`] — the [`Sink`] trait plus [`NullSink`], [`CollectSink`],
//!   [`JsonLinesSink`], and [`TextSink`];
//! * [`metrics`] — deterministic [`Counter`]/[`Gauge`]/[`Histogram`]
//!   primitives and the [`MetricsRegistry`] the runtime snapshots into the
//!   stats JSON (log2-bucketed ns histograms with p50/p90/p99/max).
//!
//! The runtime (`flash-runtime`) owns the emission sites; this crate only
//! defines the vocabulary, so it stays a leaf with zero dependencies.

#![warn(missing_docs)]

pub mod event;
pub mod json;
pub mod metrics;
pub mod sink;

pub use event::{Event, EventKind};
pub use json::Json;
pub use metrics::{Counter, Gauge, Histogram, MetricsRegistry};
pub use sink::{CollectSink, JsonLinesSink, NullSink, Sink, TextSink};

/// Version of the JSONL trace schema. Bumped whenever an event's JSON
/// shape changes incompatibly; the `run_meta` header event carries it so
/// analyzers (`flash_trace`) can refuse traces they do not understand.
pub const TRACE_SCHEMA_VERSION: u64 = 1;
