//! The structured event model for FLASHWARE traces.
//!
//! Every event carries a monotonically increasing sequence number (assigned
//! by the emitting runtime) and renders to a single JSON object via
//! [`Event::to_json`], so a [`JsonLinesSink`](crate::sink::JsonLinesSink)
//! trace is one event per line. Field names are stable — they are the
//! machine-readable contract documented in DESIGN.md.

use crate::json::Json;

/// A single trace event.
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    /// Monotonic sequence number within one run (0-based).
    pub seq: u64,
    /// What happened.
    pub kind: EventKind,
}

/// The payload of an [`Event`].
#[derive(Clone, Debug, PartialEq)]
pub enum EventKind {
    /// Trace header: always the first line of a JSONL trace, identifying
    /// the schema version and the run's configuration so analyzers can
    /// validate a trace before interpreting it.
    RunMeta {
        /// Trace schema version
        /// ([`TRACE_SCHEMA_VERSION`](crate::TRACE_SCHEMA_VERSION)).
        schema: u64,
        /// Fault-plan PRNG seed (0 when no plan is configured).
        seed: u64,
        /// Logical worker (partition) count.
        workers: usize,
        /// Physical host count at startup (before any elastic membership
        /// change).
        hosts: usize,
        /// Hot-path mode label: `"pooled-parallel"` or `"fresh-serial"`.
        hotpath: String,
        /// Compact fault-plan description (`"none"` when faults are off).
        fault_plan: String,
    },
    /// A cluster came up: emitted once from `Cluster::new`.
    RunStart {
        /// Simulated worker count.
        workers: usize,
        /// Number of vertices in the loaded graph.
        vertices: usize,
        /// Number of (directed) edges in the loaded graph.
        edges: usize,
        /// Network latency per message round, in microseconds.
        net_latency_us: u64,
        /// Network bandwidth in bytes per second.
        net_bandwidth_bps: u64,
    },
    /// A superstep began.
    StepStart {
        /// Superstep index (0-based, monotonic across the run).
        step: u64,
        /// Kernel kind label: `"vmap"`, `"dense"`, `"sparse"`, or
        /// `"global"`.
        kind: String,
        /// Frontier size entering the step.
        active: usize,
    },
    /// Per-worker compute phase within a superstep.
    WorkerPhase {
        /// Superstep index this phase belongs to.
        step: u64,
        /// Worker id (0-based).
        worker: usize,
        /// Wall-clock compute time for this worker, in microseconds
        /// (rounded half-up; see `compute_ns` for the exact value).
        compute_us: u64,
        /// Wall-clock compute time for this worker, in nanoseconds.
        compute_ns: u64,
        /// Mirror-directed `put` operations staged by this worker.
        staged_puts: u64,
        /// Master-directed writes staged by this worker.
        staged_writes: u64,
    },
    /// A superstep completed (emitted after mirror sync).
    StepEnd {
        /// Superstep index.
        step: u64,
        /// Kernel kind label.
        kind: String,
        /// Frontier size.
        active: usize,
        /// Update-phase messages.
        upd_messages: u64,
        /// Update-phase bytes.
        upd_bytes: u64,
        /// Sync-phase messages.
        sync_messages: u64,
        /// Sync-phase bytes.
        sync_bytes: u64,
        /// Total compute time across workers, in microseconds. All `*_us`
        /// timer fields of this event are rounded half-up; the paired
        /// `*_ns` fields carry the exact nanosecond values, so
        /// microbench-scale phases never flatten to zero.
        compute_us: u64,
        /// Slowest worker's compute time, in microseconds.
        compute_max_us: u64,
        /// Fastest worker's compute time, in microseconds.
        compute_min_us: u64,
        /// Barrier skew (`compute_max - compute_min`), in microseconds.
        barrier_skew_us: u64,
        /// Serialization time (wall), in microseconds.
        serialize_us: u64,
        /// Serialization makespan (slowest bucketing thread), in
        /// microseconds.
        serialize_max_us: u64,
        /// Communication time, in microseconds.
        communicate_us: u64,
        /// Reliable-delivery protocol time, in microseconds.
        delivery_us: u64,
        /// Simulated network time, in microseconds.
        simulated_net_us: u64,
        /// Total compute time across workers, in nanoseconds.
        compute_ns: u64,
        /// Slowest worker's compute time, in nanoseconds.
        compute_max_ns: u64,
        /// Fastest worker's compute time, in nanoseconds.
        compute_min_ns: u64,
        /// Barrier skew, in nanoseconds.
        barrier_skew_ns: u64,
        /// Serialization time (wall), in nanoseconds.
        serialize_ns: u64,
        /// Serialization makespan, in nanoseconds.
        serialize_max_ns: u64,
        /// Communication time, in nanoseconds.
        communicate_ns: u64,
        /// Reliable-delivery protocol time, in nanoseconds.
        delivery_ns: u64,
        /// Simulated network time, in nanoseconds.
        simulated_net_ns: u64,
    },
    /// The sync planner decided which properties to ship for one step.
    SyncPlan {
        /// Superstep index.
        step: u64,
        /// Sync mode label: `"full"` or `"critical"`.
        mode: String,
        /// Mirror scope label: `"necessary"` or `"all"`.
        scope: String,
        /// Critical properties selected for synchronization (empty =
        /// undeclared, i.e. the whole value ships).
        properties: Vec<String>,
    },
    /// The adaptive `EDGEMAP` chose a kernel.
    ModeDecision {
        /// Superstep index the decision applies to (the step about to run).
        step: u64,
        /// Frontier size `|U|`.
        frontier: usize,
        /// `|U| + Σ out_degree(U)` — the Ligra-style density measure.
        frontier_edges: usize,
        /// Threshold the measure is compared against
        /// (`dense_threshold · |E|`).
        threshold_edges: usize,
        /// Chosen kernel: `"dense"` or `"sparse"`.
        chosen: String,
        /// Dispatch policy in force: `"adaptive"`, `"force-dense"`, or
        /// `"force-sparse"`.
        policy: String,
    },
    /// A consistent checkpoint was captured at a superstep boundary.
    CheckpointTaken {
        /// The superstep the snapshot precedes.
        step: u64,
        /// Serialized checkpoint size in bytes (masters only).
        bytes: u64,
        /// The configured checkpoint interval, in supersteps.
        interval: u64,
    },
    /// A scripted fault fired (and was detected at the barrier).
    FaultInjected {
        /// Superstep the fault fired at.
        step: u64,
        /// Worker the fault targeted.
        worker: usize,
        /// Fault kind label: `"crash"`, `"corrupt"`, or `"straggle"`.
        kind: String,
        /// Which compute attempt of the superstep it hit (0-based).
        attempt: u64,
    },
    /// Recovery rolled workers back to a checkpoint and replayed the redo
    /// log before retrying a failed superstep.
    RecoveryReplay {
        /// The superstep being retried.
        step: u64,
        /// The checkpointed superstep rolled back to.
        from_step: u64,
        /// Redo-log supersteps replayed on top of the checkpoint.
        replayed: u64,
        /// The retry attempt this rollback precedes (0-based).
        attempt: u64,
        /// Simulated capped-exponential backoff charged, in microseconds.
        backoff_us: u64,
    },
    /// The failure detector declared a worker permanently dead (its `die`
    /// fault exhausted the retry budget, or its barrier delay reached the
    /// detector deadline).
    WorkerDeclaredDead {
        /// The superstep at which the worker was declared dead.
        step: u64,
        /// The dead worker (physical host id).
        worker: usize,
        /// Why: `"die"` (exhausted die fault) or `"deadline"` (failure
        /// detector timeout).
        reason: String,
        /// The membership epoch the cluster moves to.
        epoch: u64,
    },
    /// The cluster entered a new membership epoch (after a death or a
    /// rejoin) and rebuilt its partition-to-host routing.
    MembershipEpoch {
        /// The new epoch number (the initial membership is epoch 0).
        epoch: u64,
        /// The superstep at which the epoch began.
        step: u64,
        /// Hosts still live in this epoch.
        live_hosts: usize,
        /// Logical partitions re-homed by this epoch change.
        moved_partitions: usize,
        /// What triggered the change: `"die"`, `"deadline"` or `"rejoin"`.
        cause: String,
    },
    /// One logical partition's master state was migrated to a new host as
    /// part of a membership epoch change.
    StateMigrated {
        /// The membership epoch this migration belongs to.
        epoch: u64,
        /// The logical partition (worker id) that moved.
        partition: usize,
        /// The host it was evacuated from.
        from: usize,
        /// The host now serving it.
        to: usize,
        /// Master vertices transferred.
        vertices: u64,
        /// Serialized bytes transferred.
        bytes: u64,
    },
    /// The lossy channel discarded one transmission attempt of a cross-host
    /// batch (scripted `drop@`, probabilistic `loss=`, or a detected
    /// checksum corruption that forced a nack).
    BatchDropped {
        /// Superstep the batch belongs to.
        step: u64,
        /// Message round within the superstep: `"upd"` (mirror→master) or
        /// `"sync"` (master→mirror).
        round: String,
        /// Sending host.
        sender: usize,
        /// Receiving host.
        receiver: usize,
        /// Per-(sender, receiver) wire sequence number of the batch.
        seq_no: u64,
        /// Transmission attempt that was lost (0-based).
        attempt: u64,
        /// Why: `"drop"` (scripted), `"loss"` (probabilistic), or
        /// `"corrupt"` (wire checksum mismatch, nacked by the receiver).
        cause: String,
    },
    /// The sender's ack deadline expired for a batch and it was put back
    /// on the wire.
    BatchRetransmitted {
        /// Superstep the batch belongs to.
        step: u64,
        /// Message round within the superstep: `"upd"` or `"sync"`.
        round: String,
        /// Sending host.
        sender: usize,
        /// Receiving host.
        receiver: usize,
        /// Per-(sender, receiver) wire sequence number of the batch.
        seq_no: u64,
        /// The retransmission attempt now starting (1-based: the first
        /// retransmit is attempt 1).
        attempt: u64,
        /// Payload bytes re-shipped.
        bytes: u64,
    },
    /// The receive-side dedup window discarded a batch copy it had already
    /// admitted (a duplicate delivery or a late reordered original racing
    /// its own retransmission).
    BatchDeduped {
        /// Superstep the batch belongs to.
        step: u64,
        /// Message round within the superstep: `"upd"` or `"sync"`.
        round: String,
        /// Sending host.
        sender: usize,
        /// Receiving host.
        receiver: usize,
        /// Per-(sender, receiver) wire sequence number of the batch.
        seq_no: u64,
    },
    /// The replicated control plane elected a leader host (the initial
    /// election, or a re-election after the previous leader crashed).
    LeaderElected {
        /// The consensus term the leader now serves.
        term: u64,
        /// The elected leader host.
        leader: usize,
        /// The superstep at which the election concluded.
        step: u64,
        /// Votes the winner received (every live host grants its vote).
        votes: usize,
        /// Hosts live in the electorate.
        live_hosts: usize,
    },
    /// A control-plane decision was committed to the replicated log by a
    /// majority of live hosts, and only then applied.
    LogCommitted {
        /// The consensus term the entry was appended under.
        term: u64,
        /// The entry's log index (1-based, strictly sequential).
        index: u64,
        /// The superstep the decision belongs to.
        step: u64,
        /// Entry kind: `"epoch_bump"`, `"checkpoint_commit"` or
        /// `"death_declaration"`.
        kind: String,
        /// Acknowledgements received from live hosts.
        acks: usize,
        /// Acknowledgements a majority required.
        quorum: usize,
    },
    /// The checksum quorum caught a worker returning a sync payload whose
    /// checksum disagrees with the honest majority; the accusation is
    /// escalated to a death declaration through the consensus log.
    WorkerAccused {
        /// The superstep at which the lie was detected.
        step: u64,
        /// The accused worker.
        worker: usize,
        /// Replicas whose recomputed checksum agrees with the majority.
        accusers: usize,
        /// Replicas a majority required.
        quorum: usize,
        /// The checksum the honest majority recomputed.
        expected: u64,
        /// The checksum the accused worker reported.
        observed: u64,
    },
    /// The durable checkpoint store committed a generation to disk
    /// (tmp + fsync + atomic rename) — only after this does the
    /// `CheckpointCommit` consensus entry replicate.
    CheckpointDurable {
        /// The generation number committed.
        generation: u64,
        /// The superstep the generation's checkpoint frame precedes.
        step: u64,
        /// Frames in the generation file (checkpoint + delta tail).
        frames: u64,
        /// Bytes written and fsynced for this commit.
        bytes: u64,
    },
    /// The scrub pass at open found a damaged generation (bad frame
    /// checksum, truncation, or unreadable header) and skipped it.
    CheckpointScrubbed {
        /// The damaged generation number.
        generation: u64,
        /// What the scrub found: e.g. `"frame checksum mismatch"`,
        /// `"truncated mid-frame"`.
        reason: String,
        /// Whether an older valid generation was available to fall back
        /// to (`false` means the store degraded to `DurabilityLost`).
        fallback: bool,
    },
    /// A durable write or fsync failed (injected `ioerr@` fault): the
    /// commit was skipped and the store self-heals on its next write.
    DurableIoError {
        /// The superstep whose durable write failed.
        step: u64,
        /// The failed operation: `"checkpoint"` or `"delta"`.
        op: String,
    },
    /// A serving session opened over a shared immutable snapshot
    /// (emitted by `flash_runtime::Session::new`).
    SessionStart {
        /// The session id (unique within one serving process).
        session: u64,
        /// Vertices in the shared snapshot.
        vertices: usize,
        /// Directed edges in the shared snapshot.
        edges: usize,
        /// Logical workers each query cluster simulates.
        workers: usize,
    },
    /// A serving session closed after its last query.
    SessionEnd {
        /// The session id.
        session: u64,
        /// Queries the session answered.
        queries: u64,
        /// Total query latency across the session, in microseconds.
        total_latency_us: u64,
    },
    /// A streaming edge-update batch was applied to the delta overlay
    /// (and any maintained results incrementally repaired).
    UpdateApplied {
        /// The session id the batch was applied under.
        session: u64,
        /// Batch sequence number (0-based within the session).
        batch: u64,
        /// Edges effectively inserted (duplicates are no-ops).
        inserted: u64,
        /// Edges effectively removed (absent edges are no-ops).
        removed: u64,
        /// Vertices whose neighborhoods the batch touched — the repair
        /// frontier seed.
        touched: u64,
        /// Which maintained results were repaired, e.g. `"cc"`,
        /// `"cc+pagerank"`, or `"none"`.
        repaired: String,
    },
    /// A run finished (emitted by `Cluster::take_stats`).
    RunEnd {
        /// Supersteps executed.
        supersteps: usize,
        /// Total bytes communicated.
        total_bytes: u64,
        /// Total messages sent.
        total_messages: u64,
        /// Simulated parallel time, in microseconds (rounded half-up).
        simulated_parallel_us: u64,
        /// Simulated parallel time, in nanoseconds.
        simulated_parallel_ns: u64,
    },
}

impl EventKind {
    /// Stable string tag identifying the variant (the `"event"` field).
    pub fn tag(&self) -> &'static str {
        match self {
            EventKind::RunMeta { .. } => "run_meta",
            EventKind::RunStart { .. } => "run_start",
            EventKind::StepStart { .. } => "step_start",
            EventKind::WorkerPhase { .. } => "worker_phase",
            EventKind::StepEnd { .. } => "step_end",
            EventKind::SyncPlan { .. } => "sync_plan",
            EventKind::ModeDecision { .. } => "mode_decision",
            EventKind::CheckpointTaken { .. } => "checkpoint_taken",
            EventKind::FaultInjected { .. } => "fault_injected",
            EventKind::RecoveryReplay { .. } => "recovery_replay",
            EventKind::WorkerDeclaredDead { .. } => "worker_declared_dead",
            EventKind::MembershipEpoch { .. } => "membership_epoch",
            EventKind::StateMigrated { .. } => "state_migrated",
            EventKind::BatchDropped { .. } => "batch_dropped",
            EventKind::BatchRetransmitted { .. } => "batch_retransmitted",
            EventKind::BatchDeduped { .. } => "batch_deduped",
            EventKind::LeaderElected { .. } => "leader_elected",
            EventKind::LogCommitted { .. } => "log_committed",
            EventKind::WorkerAccused { .. } => "worker_accused",
            EventKind::CheckpointDurable { .. } => "checkpoint_durable",
            EventKind::CheckpointScrubbed { .. } => "checkpoint_scrubbed",
            EventKind::DurableIoError { .. } => "durable_io_error",
            EventKind::SessionStart { .. } => "session_start",
            EventKind::SessionEnd { .. } => "session_end",
            EventKind::UpdateApplied { .. } => "update_applied",
            EventKind::RunEnd { .. } => "run_end",
        }
    }
}

impl Event {
    /// Renders the event as a JSON object with an `"event"` tag, the
    /// sequence number, and the variant's fields flattened alongside.
    pub fn to_json(&self) -> Json {
        let base = Json::object()
            .set("event", self.kind.tag())
            .set("seq", self.seq);
        match &self.kind {
            EventKind::RunMeta {
                schema,
                seed,
                workers,
                hosts,
                hotpath,
                fault_plan,
            } => base
                .set("schema", *schema)
                .set("seed", *seed)
                .set("workers", *workers)
                .set("hosts", *hosts)
                .set("hotpath", hotpath.as_str())
                .set("fault_plan", fault_plan.as_str()),
            EventKind::RunStart {
                workers,
                vertices,
                edges,
                net_latency_us,
                net_bandwidth_bps,
            } => base
                .set("workers", *workers)
                .set("vertices", *vertices)
                .set("edges", *edges)
                .set("net_latency_us", *net_latency_us)
                .set("net_bandwidth_bps", *net_bandwidth_bps),
            EventKind::StepStart { step, kind, active } => base
                .set("step", *step)
                .set("kind", kind.as_str())
                .set("active", *active),
            EventKind::WorkerPhase {
                step,
                worker,
                compute_us,
                compute_ns,
                staged_puts,
                staged_writes,
            } => base
                .set("step", *step)
                .set("worker", *worker)
                .set("compute_us", *compute_us)
                .set("compute_ns", *compute_ns)
                .set("staged_puts", *staged_puts)
                .set("staged_writes", *staged_writes),
            EventKind::StepEnd {
                step,
                kind,
                active,
                upd_messages,
                upd_bytes,
                sync_messages,
                sync_bytes,
                compute_us,
                compute_max_us,
                compute_min_us,
                barrier_skew_us,
                serialize_us,
                serialize_max_us,
                communicate_us,
                delivery_us,
                simulated_net_us,
                compute_ns,
                compute_max_ns,
                compute_min_ns,
                barrier_skew_ns,
                serialize_ns,
                serialize_max_ns,
                communicate_ns,
                delivery_ns,
                simulated_net_ns,
            } => base
                .set("step", *step)
                .set("kind", kind.as_str())
                .set("active", *active)
                .set("upd_messages", *upd_messages)
                .set("upd_bytes", *upd_bytes)
                .set("sync_messages", *sync_messages)
                .set("sync_bytes", *sync_bytes)
                .set("compute_us", *compute_us)
                .set("compute_max_us", *compute_max_us)
                .set("compute_min_us", *compute_min_us)
                .set("barrier_skew_us", *barrier_skew_us)
                .set("serialize_us", *serialize_us)
                .set("serialize_max_us", *serialize_max_us)
                .set("communicate_us", *communicate_us)
                .set("delivery_us", *delivery_us)
                .set("simulated_net_us", *simulated_net_us)
                .set("compute_ns", *compute_ns)
                .set("compute_max_ns", *compute_max_ns)
                .set("compute_min_ns", *compute_min_ns)
                .set("barrier_skew_ns", *barrier_skew_ns)
                .set("serialize_ns", *serialize_ns)
                .set("serialize_max_ns", *serialize_max_ns)
                .set("communicate_ns", *communicate_ns)
                .set("delivery_ns", *delivery_ns)
                .set("simulated_net_ns", *simulated_net_ns),
            EventKind::SyncPlan {
                step,
                mode,
                scope,
                properties,
            } => base
                .set("step", *step)
                .set("mode", mode.as_str())
                .set("scope", scope.as_str())
                .set(
                    "properties",
                    Json::Arr(properties.iter().map(|p| Json::from(p.as_str())).collect()),
                ),
            EventKind::ModeDecision {
                step,
                frontier,
                frontier_edges,
                threshold_edges,
                chosen,
                policy,
            } => base
                .set("step", *step)
                .set("frontier", *frontier)
                .set("frontier_edges", *frontier_edges)
                .set("threshold_edges", *threshold_edges)
                .set("chosen", chosen.as_str())
                .set("policy", policy.as_str()),
            EventKind::CheckpointTaken {
                step,
                bytes,
                interval,
            } => base
                .set("step", *step)
                .set("bytes", *bytes)
                .set("interval", *interval),
            EventKind::FaultInjected {
                step,
                worker,
                kind,
                attempt,
            } => base
                .set("step", *step)
                .set("worker", *worker)
                .set("kind", kind.as_str())
                .set("attempt", *attempt),
            EventKind::RecoveryReplay {
                step,
                from_step,
                replayed,
                attempt,
                backoff_us,
            } => base
                .set("step", *step)
                .set("from_step", *from_step)
                .set("replayed", *replayed)
                .set("attempt", *attempt)
                .set("backoff_us", *backoff_us),
            EventKind::WorkerDeclaredDead {
                step,
                worker,
                reason,
                epoch,
            } => base
                .set("step", *step)
                .set("worker", *worker)
                .set("reason", reason.as_str())
                .set("epoch", *epoch),
            EventKind::MembershipEpoch {
                epoch,
                step,
                live_hosts,
                moved_partitions,
                cause,
            } => base
                .set("epoch", *epoch)
                .set("step", *step)
                .set("live_hosts", *live_hosts)
                .set("moved_partitions", *moved_partitions)
                .set("cause", cause.as_str()),
            EventKind::StateMigrated {
                epoch,
                partition,
                from,
                to,
                vertices,
                bytes,
            } => base
                .set("epoch", *epoch)
                .set("partition", *partition)
                .set("from", *from)
                .set("to", *to)
                .set("vertices", *vertices)
                .set("bytes", *bytes),
            EventKind::BatchDropped {
                step,
                round,
                sender,
                receiver,
                seq_no,
                attempt,
                cause,
            } => base
                .set("step", *step)
                .set("round", round.as_str())
                .set("sender", *sender)
                .set("receiver", *receiver)
                .set("seq_no", *seq_no)
                .set("attempt", *attempt)
                .set("cause", cause.as_str()),
            EventKind::BatchRetransmitted {
                step,
                round,
                sender,
                receiver,
                seq_no,
                attempt,
                bytes,
            } => base
                .set("step", *step)
                .set("round", round.as_str())
                .set("sender", *sender)
                .set("receiver", *receiver)
                .set("seq_no", *seq_no)
                .set("attempt", *attempt)
                .set("bytes", *bytes),
            EventKind::BatchDeduped {
                step,
                round,
                sender,
                receiver,
                seq_no,
            } => base
                .set("step", *step)
                .set("round", round.as_str())
                .set("sender", *sender)
                .set("receiver", *receiver)
                .set("seq_no", *seq_no),
            EventKind::LeaderElected {
                term,
                leader,
                step,
                votes,
                live_hosts,
            } => base
                .set("term", *term)
                .set("leader", *leader)
                .set("step", *step)
                .set("votes", *votes)
                .set("live_hosts", *live_hosts),
            EventKind::LogCommitted {
                term,
                index,
                step,
                kind,
                acks,
                quorum,
            } => base
                .set("term", *term)
                .set("index", *index)
                .set("step", *step)
                .set("kind", kind.as_str())
                .set("acks", *acks)
                .set("quorum", *quorum),
            EventKind::WorkerAccused {
                step,
                worker,
                accusers,
                quorum,
                expected,
                observed,
            } => base
                .set("step", *step)
                .set("worker", *worker)
                .set("accusers", *accusers)
                .set("quorum", *quorum)
                .set("expected", *expected)
                .set("observed", *observed),
            EventKind::CheckpointDurable {
                generation,
                step,
                frames,
                bytes,
            } => base
                .set("generation", *generation)
                .set("step", *step)
                .set("frames", *frames)
                .set("bytes", *bytes),
            EventKind::CheckpointScrubbed {
                generation,
                reason,
                fallback,
            } => base
                .set("generation", *generation)
                .set("reason", reason.as_str())
                .set("fallback", *fallback),
            EventKind::DurableIoError { step, op } => {
                base.set("step", *step).set("op", op.as_str())
            }
            EventKind::SessionStart {
                session,
                vertices,
                edges,
                workers,
            } => base
                .set("session", *session)
                .set("vertices", *vertices)
                .set("edges", *edges)
                .set("workers", *workers),
            EventKind::SessionEnd {
                session,
                queries,
                total_latency_us,
            } => base
                .set("session", *session)
                .set("queries", *queries)
                .set("total_latency_us", *total_latency_us),
            EventKind::UpdateApplied {
                session,
                batch,
                inserted,
                removed,
                touched,
                repaired,
            } => base
                .set("session", *session)
                .set("batch", *batch)
                .set("inserted", *inserted)
                .set("removed", *removed)
                .set("touched", *touched)
                .set("repaired", repaired.as_str()),
            EventKind::RunEnd {
                supersteps,
                total_bytes,
                total_messages,
                simulated_parallel_us,
                simulated_parallel_ns,
            } => base
                .set("supersteps", *supersteps)
                .set("total_bytes", *total_bytes)
                .set("total_messages", *total_messages)
                .set("simulated_parallel_us", *simulated_parallel_us)
                .set("simulated_parallel_ns", *simulated_parallel_ns),
        }
    }

    /// One-line human-readable rendering used by
    /// [`TextSink`](crate::sink::TextSink).
    pub fn to_text(&self) -> String {
        match &self.kind {
            EventKind::RunMeta {
                schema,
                seed,
                workers,
                hosts,
                hotpath,
                fault_plan,
            } => format!(
                "[{:>4}] trace schema v{schema}: {workers} workers on {hosts} hosts, hotpath={hotpath}, faults={fault_plan}, seed={seed}",
                self.seq
            ),
            EventKind::RunStart {
                workers,
                vertices,
                edges,
                ..
            } => format!(
                "[{:>4}] run start: {workers} workers, |V|={vertices}, |E|={edges}",
                self.seq
            ),
            EventKind::StepStart { step, kind, active } => {
                format!("[{:>4}] step {step} start ({kind}), frontier={active}", self.seq)
            }
            EventKind::WorkerPhase {
                step,
                worker,
                compute_us,
                staged_puts,
                staged_writes,
                ..
            } => format!(
                "[{:>4}] step {step} worker {worker}: compute={compute_us}us puts={staged_puts} writes={staged_writes}",
                self.seq
            ),
            EventKind::StepEnd {
                step,
                kind,
                upd_bytes,
                sync_bytes,
                compute_max_us,
                barrier_skew_us,
                ..
            } => format!(
                "[{:>4}] step {step} end ({kind}): upd={upd_bytes}B sync={sync_bytes}B compute_max={compute_max_us}us skew={barrier_skew_us}us",
                self.seq
            ),
            EventKind::SyncPlan {
                step,
                mode,
                scope,
                properties,
            } => format!(
                "[{:>4}] step {step} sync plan: mode={mode} scope={scope} properties=[{}]",
                self.seq,
                properties.join(",")
            ),
            EventKind::ModeDecision {
                step,
                frontier,
                frontier_edges,
                threshold_edges,
                chosen,
                policy,
            } => format!(
                "[{:>4}] step {step} edge_map chose {chosen} ({policy}): |U|={frontier}, |U|+outE={frontier_edges} vs {threshold_edges}",
                self.seq
            ),
            EventKind::CheckpointTaken {
                step,
                bytes,
                interval,
            } => format!(
                "[{:>4}] checkpoint before step {step}: {bytes}B (every {interval} steps)",
                self.seq
            ),
            EventKind::FaultInjected {
                step,
                worker,
                kind,
                attempt,
            } => format!(
                "[{:>4}] step {step} fault: {kind} on worker {worker} (attempt {attempt})",
                self.seq
            ),
            EventKind::RecoveryReplay {
                step,
                from_step,
                replayed,
                attempt,
                backoff_us,
            } => format!(
                "[{:>4}] step {step} recovery: rollback to {from_step}, replay {replayed} steps, retry {attempt} after {backoff_us}us",
                self.seq
            ),
            EventKind::WorkerDeclaredDead {
                step,
                worker,
                reason,
                epoch,
            } => format!(
                "[{:>4}] step {step} worker {worker} declared dead ({reason}), entering epoch {epoch}",
                self.seq
            ),
            EventKind::MembershipEpoch {
                epoch,
                step,
                live_hosts,
                moved_partitions,
                cause,
            } => format!(
                "[{:>4}] step {step} membership epoch {epoch} ({cause}): {live_hosts} live hosts, {moved_partitions} partitions moved",
                self.seq
            ),
            EventKind::StateMigrated {
                epoch,
                partition,
                from,
                to,
                vertices,
                bytes,
            } => format!(
                "[{:>4}] epoch {epoch} migrated partition {partition}: host {from} -> {to}, {vertices} vertices, {bytes}B",
                self.seq
            ),
            EventKind::BatchDropped {
                step,
                round,
                sender,
                receiver,
                seq_no,
                attempt,
                cause,
            } => format!(
                "[{:>4}] step {step} {round} batch {sender}->{receiver} #{seq_no} dropped ({cause}, attempt {attempt})",
                self.seq
            ),
            EventKind::BatchRetransmitted {
                step,
                round,
                sender,
                receiver,
                seq_no,
                attempt,
                bytes,
            } => format!(
                "[{:>4}] step {step} {round} batch {sender}->{receiver} #{seq_no} retransmitted (attempt {attempt}, {bytes}B)",
                self.seq
            ),
            EventKind::BatchDeduped {
                step,
                round,
                sender,
                receiver,
                seq_no,
            } => format!(
                "[{:>4}] step {step} {round} batch {sender}->{receiver} #{seq_no} duplicate discarded",
                self.seq
            ),
            EventKind::LeaderElected {
                term,
                leader,
                step,
                votes,
                live_hosts,
            } => format!(
                "[{:>4}] step {step} term {term}: host {leader} elected leader ({votes}/{live_hosts} votes)",
                self.seq
            ),
            EventKind::LogCommitted {
                term,
                index,
                step,
                kind,
                acks,
                quorum,
            } => format!(
                "[{:>4}] step {step} log[{index}] committed ({kind}, term {term}, {acks} acks, quorum {quorum})",
                self.seq
            ),
            EventKind::WorkerAccused {
                step,
                worker,
                accusers,
                quorum,
                expected,
                observed,
            } => format!(
                "[{:>4}] step {step} worker {worker} accused of lying by {accusers} replicas (quorum {quorum}): checksum {observed:#x} != {expected:#x}",
                self.seq
            ),
            EventKind::CheckpointDurable {
                generation,
                step,
                frames,
                bytes,
            } => format!(
                "[{:>4}] step {step} durable gen {generation} committed: {frames} frame(s), {bytes}B fsynced",
                self.seq
            ),
            EventKind::CheckpointScrubbed {
                generation,
                reason,
                fallback,
            } => format!(
                "[{:>4}] scrub: gen {generation} damaged ({reason}); {}",
                self.seq,
                if *fallback {
                    "falling back to previous generation"
                } else {
                    "no valid generation remains"
                }
            ),
            EventKind::DurableIoError { step, op } => format!(
                "[{:>4}] step {step} durable {op} write failed (injected ioerr); commit skipped",
                self.seq
            ),
            EventKind::SessionStart {
                session,
                vertices,
                edges,
                workers,
            } => format!(
                "[{:>4}] session {session} start: |V|={vertices}, |E|={edges}, {workers} workers",
                self.seq
            ),
            EventKind::SessionEnd {
                session,
                queries,
                total_latency_us,
            } => format!(
                "[{:>4}] session {session} end: {queries} queries, {total_latency_us}us total latency",
                self.seq
            ),
            EventKind::UpdateApplied {
                session,
                batch,
                inserted,
                removed,
                touched,
                repaired,
            } => format!(
                "[{:>4}] session {session} update batch {batch}: +{inserted} -{removed} edges, {touched} vertices touched, repaired={repaired}",
                self.seq
            ),
            EventKind::RunEnd {
                supersteps,
                total_bytes,
                total_messages,
                simulated_parallel_us,
                ..
            } => format!(
                "[{:>4}] run end: {supersteps} supersteps, {total_bytes}B, {total_messages} msgs, T_sim={simulated_parallel_us}us",
                self.seq
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn sample_step_end() -> Event {
        Event {
            seq: 7,
            kind: EventKind::StepEnd {
                step: 3,
                kind: "sparse".to_string(),
                active: 42,
                upd_messages: 10,
                upd_bytes: 160,
                sync_messages: 5,
                sync_bytes: 80,
                compute_us: 900,
                compute_max_us: 500,
                compute_min_us: 400,
                barrier_skew_us: 100,
                serialize_us: 20,
                serialize_max_us: 15,
                communicate_us: 30,
                delivery_us: 5,
                simulated_net_us: 1234,
                compute_ns: 900_400,
                compute_max_ns: 500_200,
                compute_min_ns: 400_200,
                barrier_skew_ns: 100_000,
                serialize_ns: 19_600,
                serialize_max_ns: 15_400,
                communicate_ns: 30_100,
                delivery_ns: 4_900,
                simulated_net_ns: 1_234_000,
            },
        }
    }

    #[test]
    fn step_end_renders_all_fields() {
        let j = sample_step_end().to_json();
        assert_eq!(j.get("event").and_then(Json::as_str), Some("step_end"));
        assert_eq!(j.get("seq").and_then(Json::as_u64), Some(7));
        assert_eq!(j.get("step").and_then(Json::as_u64), Some(3));
        assert_eq!(j.get("upd_bytes").and_then(Json::as_u64), Some(160));
        assert_eq!(j.get("barrier_skew_us").and_then(Json::as_u64), Some(100));
        assert_eq!(j.get("kind").and_then(Json::as_str), Some("sparse"));
        assert_eq!(j.get("serialize_max_us").and_then(Json::as_u64), Some(15));
        assert_eq!(j.get("delivery_us").and_then(Json::as_u64), Some(5));
        assert_eq!(j.get("delivery_ns").and_then(Json::as_u64), Some(4_900));
        assert_eq!(j.get("compute_ns").and_then(Json::as_u64), Some(900_400));
        assert_eq!(
            j.get("simulated_net_ns").and_then(Json::as_u64),
            Some(1_234_000)
        );
    }

    #[test]
    fn json_round_trips_through_parser() {
        let j = sample_step_end().to_json();
        let back = json::parse(&j.to_string()).unwrap();
        assert_eq!(back, j);
    }

    #[test]
    fn tags_are_distinct() {
        let tags = [
            EventKind::RunMeta {
                schema: 1,
                seed: 0,
                workers: 1,
                hosts: 1,
                hotpath: String::new(),
                fault_plan: String::new(),
            }
            .tag(),
            EventKind::RunStart {
                workers: 1,
                vertices: 1,
                edges: 1,
                net_latency_us: 0,
                net_bandwidth_bps: 0,
            }
            .tag(),
            EventKind::StepStart {
                step: 0,
                kind: String::new(),
                active: 0,
            }
            .tag(),
            EventKind::WorkerPhase {
                step: 0,
                worker: 0,
                compute_us: 0,
                compute_ns: 0,
                staged_puts: 0,
                staged_writes: 0,
            }
            .tag(),
            sample_step_end().kind.tag(),
            EventKind::SyncPlan {
                step: 0,
                mode: String::new(),
                scope: String::new(),
                properties: vec![],
            }
            .tag(),
            EventKind::ModeDecision {
                step: 0,
                frontier: 0,
                frontier_edges: 0,
                threshold_edges: 0,
                chosen: String::new(),
                policy: String::new(),
            }
            .tag(),
            EventKind::CheckpointTaken {
                step: 0,
                bytes: 0,
                interval: 0,
            }
            .tag(),
            EventKind::FaultInjected {
                step: 0,
                worker: 0,
                kind: String::new(),
                attempt: 0,
            }
            .tag(),
            EventKind::RecoveryReplay {
                step: 0,
                from_step: 0,
                replayed: 0,
                attempt: 0,
                backoff_us: 0,
            }
            .tag(),
            EventKind::WorkerDeclaredDead {
                step: 0,
                worker: 0,
                reason: String::new(),
                epoch: 0,
            }
            .tag(),
            EventKind::MembershipEpoch {
                epoch: 0,
                step: 0,
                live_hosts: 0,
                moved_partitions: 0,
                cause: String::new(),
            }
            .tag(),
            EventKind::StateMigrated {
                epoch: 0,
                partition: 0,
                from: 0,
                to: 0,
                vertices: 0,
                bytes: 0,
            }
            .tag(),
            EventKind::BatchDropped {
                step: 0,
                round: String::new(),
                sender: 0,
                receiver: 0,
                seq_no: 0,
                attempt: 0,
                cause: String::new(),
            }
            .tag(),
            EventKind::BatchRetransmitted {
                step: 0,
                round: String::new(),
                sender: 0,
                receiver: 0,
                seq_no: 0,
                attempt: 0,
                bytes: 0,
            }
            .tag(),
            EventKind::BatchDeduped {
                step: 0,
                round: String::new(),
                sender: 0,
                receiver: 0,
                seq_no: 0,
            }
            .tag(),
            EventKind::LeaderElected {
                term: 0,
                leader: 0,
                step: 0,
                votes: 0,
                live_hosts: 0,
            }
            .tag(),
            EventKind::LogCommitted {
                term: 0,
                index: 0,
                step: 0,
                kind: String::new(),
                acks: 0,
                quorum: 0,
            }
            .tag(),
            EventKind::WorkerAccused {
                step: 0,
                worker: 0,
                accusers: 0,
                quorum: 0,
                expected: 0,
                observed: 0,
            }
            .tag(),
            EventKind::CheckpointDurable {
                generation: 0,
                step: 0,
                frames: 0,
                bytes: 0,
            }
            .tag(),
            EventKind::CheckpointScrubbed {
                generation: 0,
                reason: String::new(),
                fallback: false,
            }
            .tag(),
            EventKind::DurableIoError {
                step: 0,
                op: String::new(),
            }
            .tag(),
            EventKind::SessionStart {
                session: 0,
                vertices: 0,
                edges: 0,
                workers: 0,
            }
            .tag(),
            EventKind::SessionEnd {
                session: 0,
                queries: 0,
                total_latency_us: 0,
            }
            .tag(),
            EventKind::UpdateApplied {
                session: 0,
                batch: 0,
                inserted: 0,
                removed: 0,
                touched: 0,
                repaired: String::new(),
            }
            .tag(),
            EventKind::RunEnd {
                supersteps: 0,
                total_bytes: 0,
                total_messages: 0,
                simulated_parallel_us: 0,
                simulated_parallel_ns: 0,
            }
            .tag(),
        ];
        let unique: std::collections::BTreeSet<_> = tags.iter().collect();
        assert_eq!(unique.len(), tags.len());
    }

    #[test]
    fn durable_events_render_and_round_trip() {
        let events = [
            Event {
                seq: 0,
                kind: EventKind::CheckpointDurable {
                    generation: 3,
                    step: 8,
                    frames: 5,
                    bytes: 4096,
                },
            },
            Event {
                seq: 1,
                kind: EventKind::CheckpointScrubbed {
                    generation: 3,
                    reason: "frame checksum mismatch".into(),
                    fallback: true,
                },
            },
            Event {
                seq: 2,
                kind: EventKind::DurableIoError {
                    step: 4,
                    op: "checkpoint".into(),
                },
            },
        ];
        let j = events[0].to_json();
        assert_eq!(
            j.get("event").and_then(Json::as_str),
            Some("checkpoint_durable")
        );
        assert_eq!(j.get("generation").and_then(Json::as_u64), Some(3));
        assert_eq!(j.get("frames").and_then(Json::as_u64), Some(5));
        assert_eq!(j.get("bytes").and_then(Json::as_u64), Some(4096));
        let j = events[1].to_json();
        assert_eq!(
            j.get("event").and_then(Json::as_str),
            Some("checkpoint_scrubbed")
        );
        assert_eq!(
            j.get("reason").and_then(Json::as_str),
            Some("frame checksum mismatch")
        );
        assert_eq!(j.get("fallback").and_then(Json::as_bool), Some(true));
        let j = events[2].to_json();
        assert_eq!(
            j.get("event").and_then(Json::as_str),
            Some("durable_io_error")
        );
        assert_eq!(j.get("op").and_then(Json::as_str), Some("checkpoint"));
        for e in &events {
            let parsed = json::parse(&e.to_json().to_string()).expect("round-trip");
            assert_eq!(parsed.get("seq").and_then(Json::as_u64), Some(e.seq));
            assert!(!e.to_text().is_empty());
        }
        assert!(events[0].to_text().contains("gen 3"));
        assert!(events[1].to_text().contains("falling back"));
        assert!(events[2].to_text().contains("ioerr"));
    }

    #[test]
    fn consensus_events_render_and_round_trip() {
        let events = [
            Event {
                seq: 0,
                kind: EventKind::LeaderElected {
                    term: 2,
                    leader: 1,
                    step: 5,
                    votes: 3,
                    live_hosts: 3,
                },
            },
            Event {
                seq: 1,
                kind: EventKind::LogCommitted {
                    term: 2,
                    index: 4,
                    step: 5,
                    kind: "checkpoint_commit".to_string(),
                    acks: 3,
                    quorum: 2,
                },
            },
            Event {
                seq: 2,
                kind: EventKind::WorkerAccused {
                    step: 5,
                    worker: 2,
                    accusers: 3,
                    quorum: 2,
                    expected: 0xABCD,
                    observed: 0x1234,
                },
            },
        ];
        let j0 = events[0].to_json();
        assert_eq!(
            j0.get("event").and_then(Json::as_str),
            Some("leader_elected")
        );
        assert_eq!(j0.get("term").and_then(Json::as_u64), Some(2));
        assert_eq!(j0.get("leader").and_then(Json::as_u64), Some(1));
        assert_eq!(j0.get("votes").and_then(Json::as_u64), Some(3));
        let j1 = events[1].to_json();
        assert_eq!(
            j1.get("event").and_then(Json::as_str),
            Some("log_committed")
        );
        assert_eq!(j1.get("index").and_then(Json::as_u64), Some(4));
        assert_eq!(
            j1.get("kind").and_then(Json::as_str),
            Some("checkpoint_commit")
        );
        assert_eq!(j1.get("quorum").and_then(Json::as_u64), Some(2));
        let j2 = events[2].to_json();
        assert_eq!(
            j2.get("event").and_then(Json::as_str),
            Some("worker_accused")
        );
        assert_eq!(j2.get("worker").and_then(Json::as_u64), Some(2));
        assert_eq!(j2.get("accusers").and_then(Json::as_u64), Some(3));
        assert_eq!(j2.get("expected").and_then(Json::as_u64), Some(0xABCD));
        assert_eq!(j2.get("observed").and_then(Json::as_u64), Some(0x1234));
        for e in &events {
            let back = json::parse(&e.to_json().to_string()).unwrap();
            assert_eq!(back, e.to_json());
            assert!(!e.to_text().is_empty());
        }
        assert!(events[0].to_text().contains("elected leader"));
        assert!(events[0].to_text().contains("3/3 votes"));
        assert!(events[1].to_text().contains("log[4] committed"));
        assert!(events[2].to_text().contains("accused of lying"));
    }

    #[test]
    fn session_events_render_and_round_trip() {
        let events = [
            Event {
                seq: 0,
                kind: EventKind::SessionStart {
                    session: 3,
                    vertices: 1000,
                    edges: 5000,
                    workers: 4,
                },
            },
            Event {
                seq: 1,
                kind: EventKind::UpdateApplied {
                    session: 3,
                    batch: 0,
                    inserted: 12,
                    removed: 4,
                    touched: 20,
                    repaired: "cc+pagerank".to_string(),
                },
            },
            Event {
                seq: 2,
                kind: EventKind::SessionEnd {
                    session: 3,
                    queries: 250,
                    total_latency_us: 98765,
                },
            },
        ];
        let j0 = events[0].to_json();
        assert_eq!(
            j0.get("event").and_then(Json::as_str),
            Some("session_start")
        );
        assert_eq!(j0.get("session").and_then(Json::as_u64), Some(3));
        assert_eq!(j0.get("vertices").and_then(Json::as_u64), Some(1000));
        let j1 = events[1].to_json();
        assert_eq!(
            j1.get("event").and_then(Json::as_str),
            Some("update_applied")
        );
        assert_eq!(j1.get("inserted").and_then(Json::as_u64), Some(12));
        assert_eq!(j1.get("removed").and_then(Json::as_u64), Some(4));
        assert_eq!(j1.get("touched").and_then(Json::as_u64), Some(20));
        assert_eq!(
            j1.get("repaired").and_then(Json::as_str),
            Some("cc+pagerank")
        );
        let j2 = events[2].to_json();
        assert_eq!(j2.get("event").and_then(Json::as_str), Some("session_end"));
        assert_eq!(j2.get("queries").and_then(Json::as_u64), Some(250));
        assert_eq!(
            j2.get("total_latency_us").and_then(Json::as_u64),
            Some(98765)
        );
        for e in &events {
            let back = json::parse(&e.to_json().to_string()).unwrap();
            assert_eq!(back, e.to_json());
            assert!(!e.to_text().is_empty());
        }
        assert!(events[0].to_text().contains("session 3 start"));
        assert!(events[1].to_text().contains("+12 -4 edges"));
        assert!(events[2].to_text().contains("250 queries"));
    }

    #[test]
    fn run_meta_renders_and_round_trips() {
        let e = Event {
            seq: 0,
            kind: EventKind::RunMeta {
                schema: crate::TRACE_SCHEMA_VERSION,
                seed: 42,
                workers: 4,
                hosts: 2,
                hotpath: "pooled-parallel".to_string(),
                fault_plan: "loss=0.01".to_string(),
            },
        };
        let j = e.to_json();
        assert_eq!(j.get("event").and_then(Json::as_str), Some("run_meta"));
        assert_eq!(
            j.get("schema").and_then(Json::as_u64),
            Some(crate::TRACE_SCHEMA_VERSION)
        );
        assert_eq!(j.get("seed").and_then(Json::as_u64), Some(42));
        assert_eq!(j.get("workers").and_then(Json::as_u64), Some(4));
        assert_eq!(j.get("hosts").and_then(Json::as_u64), Some(2));
        assert_eq!(
            j.get("hotpath").and_then(Json::as_str),
            Some("pooled-parallel")
        );
        assert_eq!(
            j.get("fault_plan").and_then(Json::as_str),
            Some("loss=0.01")
        );
        let back = json::parse(&j.to_string()).unwrap();
        assert_eq!(back, j);
        assert!(e.to_text().contains("schema v1"));
    }

    #[test]
    fn text_rendering_mentions_key_numbers() {
        let t = sample_step_end().to_text();
        assert!(t.contains("step 3"));
        assert!(t.contains("skew=100us"));
    }

    #[test]
    fn recovery_events_render_and_round_trip() {
        let events = [
            Event {
                seq: 0,
                kind: EventKind::CheckpointTaken {
                    step: 4,
                    bytes: 320,
                    interval: 4,
                },
            },
            Event {
                seq: 1,
                kind: EventKind::FaultInjected {
                    step: 5,
                    worker: 1,
                    kind: "crash".to_string(),
                    attempt: 0,
                },
            },
            Event {
                seq: 2,
                kind: EventKind::RecoveryReplay {
                    step: 5,
                    from_step: 4,
                    replayed: 1,
                    attempt: 0,
                    backoff_us: 1000,
                },
            },
        ];
        let j = events[0].to_json();
        assert_eq!(
            j.get("event").and_then(Json::as_str),
            Some("checkpoint_taken")
        );
        assert_eq!(j.get("bytes").and_then(Json::as_u64), Some(320));
        let j1 = events[1].to_json();
        assert_eq!(j1.get("kind").and_then(Json::as_str), Some("crash"));
        let j2 = events[2].to_json();
        assert_eq!(j2.get("from_step").and_then(Json::as_u64), Some(4));
        assert_eq!(j2.get("backoff_us").and_then(Json::as_u64), Some(1000));
        for e in &events {
            let back = json::parse(&e.to_json().to_string()).unwrap();
            assert_eq!(back, e.to_json());
            assert!(!e.to_text().is_empty());
        }
        assert!(events[2].to_text().contains("rollback to 4"));
    }

    #[test]
    fn delivery_events_render_and_round_trip() {
        let events = [
            Event {
                seq: 0,
                kind: EventKind::BatchDropped {
                    step: 3,
                    round: "upd".to_string(),
                    sender: 1,
                    receiver: 2,
                    seq_no: 9,
                    attempt: 0,
                    cause: "loss".to_string(),
                },
            },
            Event {
                seq: 1,
                kind: EventKind::BatchRetransmitted {
                    step: 3,
                    round: "upd".to_string(),
                    sender: 1,
                    receiver: 2,
                    seq_no: 9,
                    attempt: 1,
                    bytes: 128,
                },
            },
            Event {
                seq: 2,
                kind: EventKind::BatchDeduped {
                    step: 3,
                    round: "sync".to_string(),
                    sender: 1,
                    receiver: 2,
                    seq_no: 9,
                },
            },
        ];
        let j0 = events[0].to_json();
        assert_eq!(
            j0.get("event").and_then(Json::as_str),
            Some("batch_dropped")
        );
        assert_eq!(j0.get("cause").and_then(Json::as_str), Some("loss"));
        assert_eq!(j0.get("round").and_then(Json::as_str), Some("upd"));
        assert_eq!(j0.get("seq_no").and_then(Json::as_u64), Some(9));
        let j1 = events[1].to_json();
        assert_eq!(
            j1.get("event").and_then(Json::as_str),
            Some("batch_retransmitted")
        );
        assert_eq!(j1.get("attempt").and_then(Json::as_u64), Some(1));
        assert_eq!(j1.get("bytes").and_then(Json::as_u64), Some(128));
        let j2 = events[2].to_json();
        assert_eq!(
            j2.get("event").and_then(Json::as_str),
            Some("batch_deduped")
        );
        assert_eq!(j2.get("sender").and_then(Json::as_u64), Some(1));
        assert_eq!(j2.get("receiver").and_then(Json::as_u64), Some(2));
        for e in &events {
            let back = json::parse(&e.to_json().to_string()).unwrap();
            assert_eq!(back, e.to_json());
            assert!(!e.to_text().is_empty());
        }
        assert!(events[0].to_text().contains("dropped"));
        assert!(events[1].to_text().contains("retransmitted"));
        assert!(events[2].to_text().contains("duplicate discarded"));
    }

    #[test]
    fn membership_events_render_and_round_trip() {
        let events = [
            Event {
                seq: 0,
                kind: EventKind::WorkerDeclaredDead {
                    step: 5,
                    worker: 1,
                    reason: "die".to_string(),
                    epoch: 1,
                },
            },
            Event {
                seq: 1,
                kind: EventKind::MembershipEpoch {
                    epoch: 1,
                    step: 5,
                    live_hosts: 3,
                    moved_partitions: 1,
                    cause: "die".to_string(),
                },
            },
            Event {
                seq: 2,
                kind: EventKind::StateMigrated {
                    epoch: 1,
                    partition: 1,
                    from: 1,
                    to: 2,
                    vertices: 30,
                    bytes: 240,
                },
            },
        ];
        let j0 = events[0].to_json();
        assert_eq!(
            j0.get("event").and_then(Json::as_str),
            Some("worker_declared_dead")
        );
        assert_eq!(j0.get("reason").and_then(Json::as_str), Some("die"));
        assert_eq!(j0.get("epoch").and_then(Json::as_u64), Some(1));
        let j1 = events[1].to_json();
        assert_eq!(j1.get("live_hosts").and_then(Json::as_u64), Some(3));
        assert_eq!(j1.get("cause").and_then(Json::as_str), Some("die"));
        let j2 = events[2].to_json();
        assert_eq!(j2.get("from").and_then(Json::as_u64), Some(1));
        assert_eq!(j2.get("to").and_then(Json::as_u64), Some(2));
        assert_eq!(j2.get("bytes").and_then(Json::as_u64), Some(240));
        for e in &events {
            let back = json::parse(&e.to_json().to_string()).unwrap();
            assert_eq!(back, e.to_json());
            assert!(!e.to_text().is_empty());
        }
        assert!(events[0].to_text().contains("declared dead"));
        assert!(events[1].to_text().contains("epoch 1"));
        assert!(events[2].to_text().contains("host 1 -> 2"));
    }
}
