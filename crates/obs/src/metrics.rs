//! Deterministic metrics primitives: counters, gauges and log2-bucketed
//! histograms with percentile queries.
//!
//! Everything here is plain data — no atomics, no clocks, no allocation
//! beyond the owning maps — because the runtime is single-coordinator and
//! all recording happens between supersteps on the coordinator thread.
//! Determinism is the contract: the same run produces the same registry,
//! bit for bit, and [`Histogram::merge`] is commutative and associative so
//! per-worker histograms can be folded in any order.
//!
//! ## Bucketing math
//!
//! A [`Histogram`] has 65 buckets indexed by the *bit length* of the
//! sample: bucket 0 holds exactly the value 0, and bucket `i` (1 ≤ i ≤ 64)
//! holds values in `[2^(i-1), 2^i - 1]`. Recording is a `leading_zeros`
//! instruction, merging is element-wise addition, and a percentile query
//! walks the buckets to the requested rank and reports the containing
//! bucket's upper bound clamped into `[min, max]` (min and max are tracked
//! exactly). The reported quantile is therefore *exact within its bucket*:
//! the true rank statistic lies in the same power-of-two bucket, so the
//! relative error is bounded by the bucket width — strictly less than 2×.

use std::collections::BTreeMap;
use std::time::Duration;

use crate::json::Json;

/// Number of histogram buckets: one for zero plus one per possible bit
/// length of a `u64` sample.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A monotonically increasing event count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter {
    value: u64,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds `n` to the counter, saturating at `u64::MAX`.
    pub fn add(&mut self, n: u64) {
        self.value = self.value.saturating_add(n);
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.value
    }
}

/// A point-in-time level (last write wins).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Gauge {
    value: i64,
}

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Sets the gauge to `v`.
    pub fn set(&mut self, v: i64) {
        self.value = v;
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.value
    }
}

/// A deterministic log2-bucketed histogram of `u64` samples (nanoseconds,
/// bytes, counts — any non-negative magnitude).
///
/// Tracks exact `count`, `sum`, `min` and `max` alongside the buckets, so
/// extreme statistics are exact and interior percentiles are exact within
/// their power-of-two bucket (see the module docs for the math).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

/// Bucket index for a sample: 0 for the value 0, else the bit length.
fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive upper bound of bucket `i`: 0 for bucket 0, else `2^i - 1`.
fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Records a [`Duration`] as whole nanoseconds (saturating at
    /// `u64::MAX`, ≈ 584 years).
    pub fn record_duration(&mut self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact smallest sample, or `None` if empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact largest sample, or `None` if empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Folds `other` into `self`. Commutative and associative: merging a
    /// set of histograms yields the same result in any order, which is
    /// what makes per-worker aggregation deterministic.
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b = b.saturating_add(*o);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The `p`-th percentile (0 ≤ p ≤ 100, integer), or `None` if the
    /// histogram is empty.
    ///
    /// Computed in pure integer arithmetic: the rank is
    /// `ceil(count * p / 100)` (at least 1), and the result is the upper
    /// bound of the bucket containing that rank, clamped into
    /// `[min, max]`. Guarantees `percentile(p) <= max()` and
    /// `percentile(p) >= min()` for every `p`.
    pub fn percentile(&self, p: u64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let p = p.min(100);
        let rank = (self.count.saturating_mul(p).saturating_add(99) / 100).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(c);
            if seen >= rank {
                return Some(bucket_upper(i).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Renders the summary the stats JSON embeds: exact count/sum/min/max
    /// plus bucket-resolution p50/p90/p99. Empty histograms render all
    /// five magnitude fields as 0 with `count` 0.
    pub fn to_json(&self) -> Json {
        Json::object()
            .set("count", self.count)
            .set("sum", self.sum)
            .set("min", self.min().unwrap_or(0))
            .set("max", self.max().unwrap_or(0))
            .set("p50", self.percentile(50).unwrap_or(0))
            .set("p90", self.percentile(90).unwrap_or(0))
            .set("p99", self.percentile(99).unwrap_or(0))
    }
}

/// A named collection of [`Counter`]s, [`Gauge`]s and [`Histogram`]s.
///
/// Backed by `BTreeMap`s so iteration — and therefore the rendered JSON —
/// is deterministic regardless of registration order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Adds `n` to the named counter, creating it at zero first.
    pub fn counter_add(&mut self, name: &str, n: u64) {
        self.counters.entry(name.to_string()).or_default().add(n);
    }

    /// Sets the named gauge, creating it first.
    pub fn gauge_set(&mut self, name: &str, v: i64) {
        self.gauges.entry(name.to_string()).or_default().set(v);
    }

    /// Records a sample into the named histogram, creating it first.
    pub fn record(&mut self, name: &str, v: u64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .record(v);
    }

    /// Records a [`Duration`] in nanoseconds into the named histogram.
    pub fn record_duration(&mut self, name: &str, d: Duration) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .record_duration(d);
    }

    /// Current value of a counter (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).map_or(0, Counter::get)
    }

    /// Current value of a gauge, if ever set.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.get(name).map(Gauge::get)
    }

    /// The named histogram, if any samples were recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Names of all histograms, in deterministic (sorted) order.
    pub fn histogram_names(&self) -> impl Iterator<Item = &str> {
        self.histograms.keys().map(String::as_str)
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Drops every metric.
    pub fn clear(&mut self) {
        self.counters.clear();
        self.gauges.clear();
        self.histograms.clear();
    }

    /// Folds `other` into `self`: counters add, gauges take `other`'s
    /// value (last write wins), histograms merge bucket-wise.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, c) in &other.counters {
            self.counters.entry(k.clone()).or_default().add(c.get());
        }
        for (k, g) in &other.gauges {
            self.gauges.entry(k.clone()).or_default().set(g.get());
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
    }

    /// Renders the registry as the `metrics` stats block:
    /// `{"counters": {...}, "gauges": {...}, "histograms": {name:
    /// {count,sum,min,max,p50,p90,p99}}}`.
    pub fn to_json(&self) -> Json {
        let mut counters = Json::object();
        for (k, c) in &self.counters {
            counters = counters.set(k, c.get());
        }
        let mut gauges = Json::object();
        for (k, g) in &self.gauges {
            gauges = gauges.set(k, g.get());
        }
        let mut hists = Json::object();
        for (k, h) in &self.histograms {
            hists = hists.set(k, h.to_json());
        }
        Json::object()
            .set("counters", counters)
            .set("gauges", gauges)
            .set("histograms", hists)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_adds_and_saturates() {
        let mut c = Counter::new();
        c.add(3);
        c.add(4);
        assert_eq!(c.get(), 7);
        c.add(u64::MAX);
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn gauge_last_write_wins() {
        let mut g = Gauge::new();
        g.set(9);
        g.set(-2);
        assert_eq!(g.get(), -2);
    }

    #[test]
    fn bucket_index_is_bit_length() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn bucket_upper_bounds() {
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(10), 1023);
        assert_eq!(bucket_upper(64), u64::MAX);
    }

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.percentile(50), None);
        let j = h.to_json();
        assert_eq!(j.get("count").and_then(Json::as_u64), Some(0));
        assert_eq!(j.get("p99").and_then(Json::as_u64), Some(0));
    }

    #[test]
    fn single_sample_every_percentile_is_the_sample() {
        let mut h = Histogram::new();
        h.record(777);
        for p in [0, 1, 50, 90, 99, 100] {
            assert_eq!(h.percentile(p), Some(777), "p{p}");
        }
        assert_eq!(h.min(), Some(777));
        assert_eq!(h.max(), Some(777));
        assert_eq!(h.sum(), 777);
    }

    #[test]
    fn percentiles_bounded_by_min_and_max() {
        let mut h = Histogram::new();
        for v in [3u64, 17, 900, 901, 5000, 123_456, 7] {
            h.record(v);
        }
        let (min, max) = (h.min().unwrap(), h.max().unwrap());
        for p in 0..=100 {
            let q = h.percentile(p).unwrap();
            assert!(q >= min && q <= max, "p{p} = {q} outside [{min}, {max}]");
        }
        assert!(h.percentile(50).unwrap() <= h.percentile(90).unwrap());
        assert!(h.percentile(90).unwrap() <= h.percentile(99).unwrap());
        assert_eq!(h.percentile(100), Some(max));
    }

    #[test]
    fn percentile_exact_within_bucket() {
        // The reported quantile must share a power-of-two bucket with the
        // true rank statistic: error < bucket width < true value.
        let mut h = Histogram::new();
        let samples: Vec<u64> = (1..=100u64).map(|i| i * 37).collect();
        for &v in &samples {
            h.record(v);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for p in [50u64, 90, 99] {
            let rank = (h.count() * p).div_ceil(100).max(1) as usize;
            let truth = sorted[rank - 1];
            let got = h.percentile(p).unwrap();
            assert_eq!(
                bucket_index(got),
                bucket_index(truth),
                "p{p}: {got} vs true {truth} in different buckets"
            );
            assert!(got >= truth, "upper-bound estimate must not undershoot");
        }
    }

    #[test]
    fn merge_is_order_invariant() {
        let mk = |vals: &[u64]| {
            let mut h = Histogram::new();
            for &v in vals {
                h.record(v);
            }
            h
        };
        let parts = [
            mk(&[1, 5, 5000]),
            mk(&[]),
            mk(&[2, 2, 2, 900_000]),
            mk(&[u64::MAX, 0]),
        ];
        let mut fwd = Histogram::new();
        for p in &parts {
            fwd.merge(p);
        }
        let mut rev = Histogram::new();
        for p in parts.iter().rev() {
            rev.merge(p);
        }
        assert_eq!(fwd, rev);
        // And merging equals recording everything into one histogram.
        let all = mk(&[1, 5, 5000, 2, 2, 2, 900_000, u64::MAX, 0]);
        assert_eq!(fwd, all);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut h = Histogram::new();
        h.record(42);
        let before = h.clone();
        h.merge(&Histogram::new());
        assert_eq!(h, before);
        let mut e = Histogram::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn duration_recording_uses_nanos() {
        let mut h = Histogram::new();
        h.record_duration(Duration::from_micros(3));
        assert_eq!(h.min(), Some(3000));
    }

    #[test]
    fn registry_round_trip() {
        let mut m = MetricsRegistry::new();
        m.counter_add("transport/dedup_hits", 2);
        m.counter_add("transport/dedup_hits", 1);
        m.gauge_set("membership/live_workers", 4);
        m.record("step/delivery_ns", 1500);
        m.record("step/delivery_ns", 900);
        assert_eq!(m.counter("transport/dedup_hits"), 3);
        assert_eq!(m.gauge("membership/live_workers"), Some(4));
        assert_eq!(m.histogram("step/delivery_ns").unwrap().count(), 2);
        assert_eq!(m.counter("never"), 0);
        assert!(m.histogram("never").is_none());
        let j = m.to_json();
        assert_eq!(
            j.get("counters")
                .and_then(|c| c.get("transport/dedup_hits"))
                .and_then(Json::as_u64),
            Some(3)
        );
        assert_eq!(
            j.get("histograms")
                .and_then(|h| h.get("step/delivery_ns"))
                .and_then(|h| h.get("count"))
                .and_then(Json::as_u64),
            Some(2)
        );
        m.clear();
        assert!(m.is_empty());
    }

    #[test]
    fn registry_merge_folds_all_kinds() {
        let mut a = MetricsRegistry::new();
        a.counter_add("c", 1);
        a.record("h", 10);
        let mut b = MetricsRegistry::new();
        b.counter_add("c", 2);
        b.gauge_set("g", 7);
        b.record("h", 20);
        a.merge(&b);
        assert_eq!(a.counter("c"), 3);
        assert_eq!(a.gauge("g"), Some(7));
        let h = a.histogram("h").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), Some(20));
    }

    #[test]
    fn registry_json_is_deterministic() {
        let mut a = MetricsRegistry::new();
        a.record("z", 1);
        a.record("a", 2);
        a.counter_add("k2", 1);
        a.counter_add("k1", 1);
        let mut b = MetricsRegistry::new();
        b.counter_add("k1", 1);
        b.counter_add("k2", 1);
        b.record("a", 2);
        b.record("z", 1);
        assert_eq!(a.to_json().to_string(), b.to_json().to_string());
    }
}
