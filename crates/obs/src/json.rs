//! A hand-rolled, zero-dependency JSON value type with writer and parser.
//!
//! The workspace builds fully offline, so `serde_json` is not available;
//! this module covers the slice of JSON the observability layer needs:
//! building values ([`Json`]), rendering them compactly or pretty
//! ([`Json::to_string`], [`Json::to_pretty_string`]), and parsing them back
//! ([`parse`]) so tests can verify that emitted traces round-trip.
//!
//! Numbers are stored as `f64` (JSON has a single number type); integer
//! values up to 2^53 render without a decimal point, which covers every
//! counter the runtime emits.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
///
/// Objects use a [`BTreeMap`] so rendering is deterministic (sorted keys) —
/// important for diffable `results/*.json` artifacts.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (integers render without a fractional part).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with deterministically ordered keys.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// An empty object.
    pub fn object() -> Json {
        Json::Obj(BTreeMap::new())
    }

    /// Inserts `key: value` (builder style). Calling `set` on a non-object
    /// is a caller bug, but it must never abort a run (sinks build JSON on
    /// the hot path, sometimes from values parsed back off disk): debug
    /// builds panic to surface the misuse, release builds return `self`
    /// unchanged.
    pub fn set(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(map) => {
                map.insert(key.to_string(), value.into());
            }
            other => {
                // debug_assert-style guard, spelled out because clippy
                // rejects constant assertions.
                if cfg!(debug_assertions) {
                    panic!("Json::set on non-object {other:?}");
                }
            }
        }
        self
    }

    /// Looks a key up in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The value as `f64`, when it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as `u64`, when it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as `bool`, when it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as `&str`, when it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, when it is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Compact single-line rendering.
    #[allow(clippy::inherent_to_string_shadow_display)]
    pub fn to_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with two-space indentation.
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_close) = match indent {
            Some(w) => ("\n", " ".repeat(w * (depth + 1)), " ".repeat(w * depth)),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => out.push_str(&format_number(*n)),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad_close);
                out.push(']');
            }
            Json::Obj(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad_close);
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string())
    }
}

/// Renders a number the way JSON expects: integers without a fractional
/// part, non-finite values (which JSON cannot express) as `null`.
fn format_number(n: f64) -> String {
    if !n.is_finite() {
        return "null".to_string();
    }
    if n.fract() == 0.0 && n.abs() < 9.0e15 {
        format!("{}", n as i64)
    } else {
        let s = format!("{n}");
        s
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}
impl From<u64> for Json {
    // Integers up to 2^53 render exactly through f64; the runtime's
    // counters (ns, bytes, steps) stay far below that. This is the ONE
    // sanctioned u64→f64 entry point in the crate — everything else must
    // go through it (`clippy::cast_precision_loss` is denied in CI).
    #[allow(clippy::cast_precision_loss)]
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}
impl From<u32> for Json {
    fn from(n: u32) -> Json {
        Json::Num(f64::from(n))
    }
}
impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::from(n as u64)
    }
}
impl From<i64> for Json {
    // Same contract as `From<u64>`: exact for |n| ≤ 2^53.
    #[allow(clippy::cast_precision_loss)]
    fn from(n: i64) -> Json {
        Json::Num(n as f64)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

/// A JSON parse error with a byte offset into the input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset the error occurred at.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document (rejects trailing garbage).
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {word:?}")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let code = self.hex4(self.pos + 1)?;
                            self.pos += 4;
                            match code {
                                0xD800..=0xDBFF => {
                                    // A high surrogate is only meaningful as
                                    // the first half of an escaped pair:
                                    // peek at a following `\uXXXX` and, when
                                    // it holds the low half, combine the two
                                    // into one scalar (RFC 8259 §7).
                                    let lo = if self.bytes.get(self.pos + 1) == Some(&b'\\')
                                        && self.bytes.get(self.pos + 2) == Some(&b'u')
                                    {
                                        self.hex4(self.pos + 3).ok()
                                    } else {
                                        None
                                    };
                                    if let Some(lo @ 0xDC00..=0xDFFF) = lo {
                                        let scalar =
                                            0x10000 + ((code - 0xD800) << 10) + (lo - 0xDC00);
                                        out.push(char::from_u32(scalar).unwrap_or('\u{fffd}'));
                                        self.pos += 6;
                                    } else {
                                        // Genuinely lone high surrogate: the
                                        // replacement char. A following
                                        // non-surrogate escape is left in
                                        // place and decoded on its own.
                                        out.push('\u{fffd}');
                                    }
                                }
                                // A low surrogate with no preceding high
                                // half is always lone.
                                0xDC00..=0xDFFF => out.push('\u{fffd}'),
                                _ => out.push(char::from_u32(code).unwrap_or('\u{fffd}')),
                            }
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    /// Decodes the four hex digits of a `\uXXXX` escape starting at `at`.
    fn hex4(&self, at: usize) -> Result<u32, ParseError> {
        if at + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[at..at + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.to_string(), "null");
        assert_eq!(Json::Bool(true).to_string(), "true");
        assert_eq!(Json::Num(3.0).to_string(), "3");
        assert_eq!(Json::Num(3.5).to_string(), "3.5");
        assert_eq!(Json::from("hi").to_string(), "\"hi\"");
    }

    #[test]
    fn object_keys_are_sorted() {
        let j = Json::object().set("b", 1u64).set("a", 2u64);
        assert_eq!(j.to_string(), "{\"a\":2,\"b\":1}");
    }

    #[test]
    fn escaping_round_trips() {
        let nasty = "a\"b\\c\nd\te\u{1}f — ünïcode";
        let j = Json::from(nasty);
        let back = parse(&j.to_string()).unwrap();
        assert_eq!(back.as_str(), Some(nasty));
    }

    #[test]
    fn nested_round_trip() {
        let j = Json::object()
            .set("nums", vec![1u64, 2, 3])
            .set("nested", Json::object().set("x", 1.25).set("y", Json::Null))
            .set("flag", false)
            .set("neg", Json::Num(-17.0));
        let compact = parse(&j.to_string()).unwrap();
        let pretty = parse(&j.to_pretty_string()).unwrap();
        assert_eq!(compact, j);
        assert_eq!(pretty, j);
    }

    #[test]
    fn parser_accepts_standard_forms() {
        assert_eq!(parse(" [ ] ").unwrap(), Json::Arr(vec![]));
        assert_eq!(parse("{}").unwrap(), Json::object());
        assert_eq!(parse("1e3").unwrap().as_f64(), Some(1000.0));
        assert_eq!(parse("-2.5e-1").unwrap().as_f64(), Some(-0.25));
        assert_eq!(parse("\"\\u0041\"").unwrap().as_str(), Some("A"));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("\"open").is_err());
    }

    #[test]
    fn accessors() {
        let j = parse("{\"a\":[1,\"two\"],\"b\":7}").unwrap();
        assert_eq!(j.get("b").and_then(Json::as_u64), Some(7));
        let arr = j.get("a").and_then(Json::as_array).unwrap();
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[1].as_str(), Some("two"));
        assert_eq!(j.get("missing"), None);
        assert_eq!(Json::Num(1.5).as_u64(), None);
    }

    #[test]
    fn non_finite_numbers_render_as_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn large_integers_render_exactly() {
        let n = 1u64 << 52;
        assert_eq!(Json::from(n).to_string(), n.to_string());
    }

    #[test]
    fn surrogate_pairs_decode_to_one_scalar() {
        // An escaped pair is one astral scalar, not two U+FFFD.
        assert_eq!(parse("\"\\ud83d\\ude00\"").unwrap().as_str(), Some("😀"));
        assert_eq!(parse("\"\\uD83D\\uDE00\"").unwrap().as_str(), Some("😀"));
        assert_eq!(
            parse("\"x\\ud83d\\ude00y\"").unwrap().as_str(),
            Some("x😀y")
        );
        // Extremes of the astral range.
        assert_eq!(
            parse("\"\\ud800\\udc00\"").unwrap().as_str(),
            Some("\u{10000}")
        );
        assert_eq!(
            parse("\"\\udbff\\udfff\"").unwrap().as_str(),
            Some("\u{10ffff}")
        );
    }

    #[test]
    fn lone_surrogates_become_replacement_char() {
        // Genuinely lone halves map to U+FFFD...
        assert_eq!(parse("\"\\ud800\"").unwrap().as_str(), Some("\u{fffd}"));
        assert_eq!(parse("\"\\udc00\"").unwrap().as_str(), Some("\u{fffd}"));
        // ...including a high half followed by a non-surrogate escape,
        // which must still be decoded on its own.
        assert_eq!(
            parse("\"\\ud800\\u0041\"").unwrap().as_str(),
            Some("\u{fffd}A")
        );
        // Two high halves: each is lone.
        assert_eq!(
            parse("\"\\ud800\\ud800\"").unwrap().as_str(),
            Some("\u{fffd}\u{fffd}")
        );
        // High half at end of string, or followed by a plain char.
        assert_eq!(parse("\"\\ud800z\"").unwrap().as_str(), Some("\u{fffd}z"));
    }

    #[test]
    fn non_bmp_strings_round_trip() {
        // Property test: random strings mixing ASCII, control chars, BMP
        // and astral scalars survive writer -> parser unchanged, and the
        // escaped-pair spelling of the same string parses identically.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            // xorshift64* — deterministic, no external crates.
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545f4914f6cdd1d)
        };
        for _ in 0..200 {
            let len = (next() % 24) as usize;
            let s: String = (0..len)
                .map(|_| match next() % 4 {
                    0 => char::from_u32(0x20 + (next() % 0x5f) as u32).unwrap(),
                    1 => char::from_u32((next() % 0x20) as u32).unwrap(),
                    2 => {
                        // BMP, skipping the surrogate gap.
                        let c = 0xe000 + (next() % (0x10000 - 0xe000)) as u32;
                        char::from_u32(c).unwrap()
                    }
                    _ => {
                        // Astral plane: U+10000 ..= U+10FFFF.
                        let c = 0x10000 + (next() % 0xf0000) as u32;
                        char::from_u32(c).unwrap()
                    }
                })
                .collect();
            let j = Json::from(s.as_str());
            let back = parse(&j.to_string()).expect("writer output parses");
            assert_eq!(back.as_str(), Some(s.as_str()), "raw round trip");
            // The same string spelled entirely with \uXXXX escapes (astral
            // chars as surrogate pairs) must decode to the identical value.
            let mut escaped = String::from("\"");
            for c in s.chars() {
                let mut units = [0u16; 2];
                for unit in c.encode_utf16(&mut units) {
                    escaped.push_str(&format!("\\u{unit:04x}"));
                }
            }
            escaped.push('"');
            let back = parse(&escaped).expect("escaped spelling parses");
            assert_eq!(back.as_str(), Some(s.as_str()), "escaped round trip");
        }
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "Json::set on non-object")]
    fn set_on_non_object_trips_in_debug_builds() {
        let _ = Json::Num(1.0).set("k", 2u64);
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn set_on_non_object_is_ignored_in_release_builds() {
        // The value survives unchanged — a malformed sink path must never
        // abort a run.
        assert_eq!(Json::Num(1.0).set("k", 2u64), Json::Num(1.0));
        assert_eq!(
            Json::Arr(vec![]).set("k", 2u64),
            Json::Arr(vec![]),
            "arrays too"
        );
    }
}
