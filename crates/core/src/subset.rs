//! The `vertexSubset` type.
//!
//! The paper's central data structure (§III-A): "a set of vertices of the
//! graph G, which only contains a set of integers, representing the vertex
//! id for each vertex in this set. The associated properties of vertices
//! are maintained only once for a graph, shared by all vertexSubsets."
//!
//! FLASH is "the first distributed graph processing model to provide the
//! vertexSubset type" — a *global-perspective* structure: multiple subsets
//! may coexist, be combined with set algebra, captured in recursive
//! functions (Betweenness Centrality keeps one frontier per BFS level), and
//! fed to any primitive.
//!
//! Internally a subset is an immutable shared bit set over the full vertex
//! id range; cloning is O(1) (`Arc`), set operations are word-parallel.

use flash_graph::{BitSet, VertexId};
use std::sync::Arc;

/// An immutable set of vertex ids (the paper's `vertexSubset`).
#[derive(Clone, Debug)]
pub struct VertexSubset {
    bits: Arc<BitSet>,
}

impl VertexSubset {
    /// The empty subset over a graph with `n` vertices.
    pub fn empty(n: usize) -> Self {
        VertexSubset {
            bits: Arc::new(BitSet::new(n)),
        }
    }

    /// The full subset `V` over a graph with `n` vertices.
    pub fn full(n: usize) -> Self {
        VertexSubset {
            bits: Arc::new(BitSet::full(n)),
        }
    }

    /// A subset from an id iterator (ids must be `< n`).
    pub fn from_ids<I: IntoIterator<Item = VertexId>>(n: usize, ids: I) -> Self {
        let mut bits = BitSet::new(n);
        for id in ids {
            bits.insert(id);
        }
        VertexSubset {
            bits: Arc::new(bits),
        }
    }

    /// A subset owning a prebuilt bit set.
    pub fn from_bits(bits: BitSet) -> Self {
        VertexSubset {
            bits: Arc::new(bits),
        }
    }

    /// `SIZE(U)` — the number of vertices in the subset.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// `true` when the subset is empty (the usual loop-termination test).
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// The id capacity (`|V|` of the graph this subset belongs to).
    pub fn capacity(&self) -> usize {
        self.bits.capacity()
    }

    /// `CONTAIN` — membership test.
    pub fn contains(&self, v: VertexId) -> bool {
        self.bits.contains(v)
    }

    /// `ADD` — returns a new subset with `v` inserted.
    pub fn add(&self, v: VertexId) -> VertexSubset {
        let mut bits = (*self.bits).clone();
        bits.insert(v);
        VertexSubset::from_bits(bits)
    }

    /// `UNION` — set union with `other`.
    pub fn union(&self, other: &VertexSubset) -> VertexSubset {
        let mut bits = (*self.bits).clone();
        bits.union_with(&other.bits);
        VertexSubset::from_bits(bits)
    }

    /// `INTERSECT` — set intersection with `other`.
    pub fn intersect(&self, other: &VertexSubset) -> VertexSubset {
        let mut bits = (*self.bits).clone();
        bits.intersect_with(&other.bits);
        VertexSubset::from_bits(bits)
    }

    /// `MINUS` — set difference `self \ other`.
    pub fn minus(&self, other: &VertexSubset) -> VertexSubset {
        let mut bits = (*self.bits).clone();
        bits.difference_with(&other.bits);
        VertexSubset::from_bits(bits)
    }

    /// Iterates member ids ascending.
    pub fn iter(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.bits.iter()
    }

    /// Member ids as a sorted vector.
    pub fn to_vec(&self) -> Vec<VertexId> {
        self.bits.to_vec()
    }

    /// The members of `masters` that belong to this subset (the vertices a
    /// worker processes in a frontier-driven kernel). `masters` must be
    /// sorted; the result preserves that order.
    pub fn filter_masters(&self, masters: &[VertexId]) -> Vec<VertexId> {
        masters
            .iter()
            .copied()
            .filter(|&v| self.bits.contains(v))
            .collect()
    }

    /// The shared bit set (for kernels that test membership en masse).
    pub fn bits(&self) -> &BitSet {
        &self.bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_size() {
        let u = VertexSubset::from_ids(10, [1, 3, 5]);
        assert_eq!(u.len(), 3);
        assert!(!u.is_empty());
        assert!(u.contains(3));
        assert!(!u.contains(2));
        assert_eq!(u.capacity(), 10);
        assert!(VertexSubset::empty(4).is_empty());
        assert_eq!(VertexSubset::full(4).len(), 4);
    }

    #[test]
    fn algebra_matches_set_semantics() {
        let a = VertexSubset::from_ids(8, [0, 1, 2, 3]);
        let b = VertexSubset::from_ids(8, [2, 3, 4, 5]);
        assert_eq!(a.union(&b).to_vec(), vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(a.intersect(&b).to_vec(), vec![2, 3]);
        assert_eq!(a.minus(&b).to_vec(), vec![0, 1]);
        assert_eq!(a.add(7).to_vec(), vec![0, 1, 2, 3, 7]);
        // Originals untouched (immutability).
        assert_eq!(a.len(), 4);
        assert_eq!(b.len(), 4);
    }

    #[test]
    fn filter_masters_preserves_order() {
        let u = VertexSubset::from_ids(10, [2, 4, 9]);
        assert_eq!(u.filter_masters(&[0, 2, 4, 6, 8]), vec![2, 4]);
        assert_eq!(u.filter_masters(&[9]), vec![9]);
        assert!(u.filter_masters(&[1, 3]).is_empty());
    }

    #[test]
    fn clone_is_shallow_and_consistent() {
        let a = VertexSubset::from_ids(6, [1, 2]);
        let b = a.clone();
        assert_eq!(a.to_vec(), b.to_vec());
        let c = a.add(5); // must not affect b
        assert!(!b.contains(5));
        assert!(c.contains(5));
    }
}
