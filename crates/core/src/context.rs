//! The FLASH execution context: `VERTEXMAP`, `EDGEMAP` and friends.

use crate::edgeset::EdgeSet;
use crate::subset::VertexSubset;
use crate::EdgeRef;
use flash_graph::{
    BitSet, BlockHandle, BlockTouch, Graph, HashPartitioner, PartitionMap, StreamScope, VertexId,
    Weight,
};
use flash_runtime::par::parallel_chunks;
use flash_runtime::{
    Cluster, ClusterConfig, ModePolicy, RunStats, RuntimeError, StepKind, StorageMode, SyncScope,
    VertexData, WorkerCtx,
};
use std::sync::Arc;
use std::time::Instant;

/// A FLASH program's handle to the distributed runtime.
///
/// One context owns one graph, one partitioning, and the per-worker vertex
/// state of type `V`. The paper's primitives map to methods:
///
/// | Paper                        | Method                                   |
/// |------------------------------|------------------------------------------|
/// | `SIZE(U)`                    | [`VertexSubset::len`]                    |
/// | `VERTEXMAP(U, F, M)`         | [`FlashContext::vertex_map`]             |
/// | `VERTEXMAP(U, F)` (filter)   | [`FlashContext::vertex_filter`]          |
/// | `EDGEMAP(U, H, F, M, C, R)`  | [`FlashContext::edge_map`]               |
/// | `EDGEMAPDENSE(U, H, F, M, C)`| [`FlashContext::edge_map_dense`]         |
/// | `EDGEMAPSPARSE(U,H,F,M,C,R)` | [`FlashContext::edge_map_sparse`]        |
/// | UNION/MINUS/INTERSECT/…      | methods on [`VertexSubset`]              |
/// | global `REDUCE` / folds      | [`FlashContext::fold`], [`FlashContext::gather`] |
///
/// The paper's `bind` operator (supplying global variables to local
/// functions) is ordinary Rust closure capture.
pub struct FlashContext<V: VertexData> {
    cluster: Cluster<V>,
}

impl<V: VertexData> FlashContext<V> {
    /// Builds a context with the default hash partitioner — or over
    /// `config.shared_partition` when one is attached (serving sessions
    /// share one partition map across every query cluster).
    pub fn build(
        graph: Arc<Graph>,
        config: ClusterConfig,
        init: impl Fn(VertexId) -> V,
    ) -> Result<Self, RuntimeError> {
        let partition = Self::partition_for(&graph, &config)?;
        Self::with_partition(graph, partition, config, init)
    }

    /// Builds a context over an explicit partitioning.
    pub fn with_partition(
        graph: Arc<Graph>,
        partition: Arc<PartitionMap>,
        config: ClusterConfig,
        init: impl Fn(VertexId) -> V,
    ) -> Result<Self, RuntimeError> {
        Ok(FlashContext {
            cluster: Cluster::new(graph, partition, config, init)?,
        })
    }

    /// Builds a context with the default hash partitioner for a vertex
    /// type the durable checkpoint store can serialize. Behaves exactly
    /// like [`FlashContext::build`] when no `durable_dir` is configured
    /// (the store stays fully inert); with one, checkpoints and per-step
    /// deltas are committed to disk, and `config.durable_resume` resumes
    /// a killed run bit-identically.
    pub fn build_durable(
        graph: Arc<Graph>,
        config: ClusterConfig,
        init: impl Fn(VertexId) -> V,
    ) -> Result<Self, RuntimeError>
    where
        V: flash_runtime::DurableValue,
    {
        let partition = Self::partition_for(&graph, &config)?;
        Self::with_partition_durable(graph, partition, config, init)
    }

    /// The partition a default-built context runs over: the config's
    /// shared map when attached, else a fresh hash partitioning.
    fn partition_for(
        graph: &Arc<Graph>,
        config: &ClusterConfig,
    ) -> Result<Arc<PartitionMap>, RuntimeError> {
        match &config.shared_partition {
            Some(p) => Ok(Arc::clone(p)),
            None => Ok(Arc::new(
                PartitionMap::build(graph, config.workers, &HashPartitioner)
                    .map_err(|_| RuntimeError::NoWorkers)?,
            )),
        }
    }

    /// [`FlashContext::build_durable`] over an explicit partitioning.
    pub fn with_partition_durable(
        graph: Arc<Graph>,
        partition: Arc<PartitionMap>,
        config: ClusterConfig,
        init: impl Fn(VertexId) -> V,
    ) -> Result<Self, RuntimeError>
    where
        V: flash_runtime::DurableValue,
    {
        let cluster = if config.durable_dir.is_some() {
            Cluster::new_durable(graph, partition, config, init)?
        } else {
            Cluster::new(graph, partition, config, init)?
        };
        Ok(FlashContext { cluster })
    }

    /// The shared graph.
    pub fn graph(&self) -> &Graph {
        self.cluster.graph()
    }

    /// An owning handle to the graph (for capture in closures).
    pub fn graph_arc(&self) -> Arc<Graph> {
        self.cluster.graph_arc()
    }

    /// `|V|`.
    pub fn num_vertices(&self) -> usize {
        self.cluster.num_vertices()
    }

    /// Number of workers `m`.
    pub fn num_workers(&self) -> usize {
        self.cluster.num_workers()
    }

    /// The subset `V` (all vertices).
    pub fn all(&self) -> VertexSubset {
        VertexSubset::full(self.num_vertices())
    }

    /// The empty subset.
    pub fn empty(&self) -> VertexSubset {
        VertexSubset::empty(self.num_vertices())
    }

    /// A subset from explicit ids.
    pub fn subset<I: IntoIterator<Item = VertexId>>(&self, ids: I) -> VertexSubset {
        VertexSubset::from_ids(self.num_vertices(), ids)
    }

    /// The authoritative value of `v`.
    pub fn value(&self, v: VertexId) -> &V {
        self.cluster.value(v)
    }

    /// Extracts a per-vertex result from the authoritative replicas.
    pub fn collect<T>(&self, f: impl Fn(VertexId, &V) -> T) -> Vec<T> {
        self.cluster.collect(f)
    }

    /// Statistics recorded so far.
    pub fn stats(&self) -> &RunStats {
        self.cluster.stats()
    }

    /// Takes and resets recorded statistics.
    pub fn take_stats(&mut self) -> RunStats {
        self.cluster.take_stats()
    }

    /// The terminal fault-recovery error, if some superstep exhausted its
    /// retry budget (see `flash_runtime::fault`). Algorithms check it once
    /// when sealing their result so an exhausted run degrades to a clean
    /// `Err` instead of silently returning values from a failed cluster.
    pub fn fault_error(&self) -> Option<flash_runtime::RuntimeError> {
        self.cluster.fault_error()
    }

    /// Mutable access to the cluster configuration (mode policy etc.).
    pub fn config_mut(&mut self) -> &mut ClusterConfig {
        self.cluster.config_mut()
    }

    /// Raw cluster access for advanced operators (vertex-centric layer,
    /// driver-side global algorithms).
    pub fn cluster_mut(&mut self) -> &mut Cluster<V> {
        &mut self.cluster
    }

    // ------------------------------------------------------------------
    // VERTEXMAP
    // ------------------------------------------------------------------

    /// `VERTEXMAP(U, F, M)` (Algorithm 1): applies `m` to every vertex of
    /// `u` passing `f`; returns the subset of passing vertices.
    ///
    /// `m` receives a clone of the vertex's current value and mutates it
    /// into the new value; FLASHWARE publishes the write and synchronizes
    /// mirrors at the implicit barrier.
    pub fn vertex_map(
        &mut self,
        u: &VertexSubset,
        f: impl Fn(VertexId, &V) -> bool + Sync,
        m: impl Fn(VertexId, &mut V) + Sync,
    ) -> VertexSubset {
        let n = self.num_vertices();
        let out =
            self.cluster
                .step_direct(StepKind::VertexMap, u.len(), SyncScope::Necessary, |ctx| {
                    let actives = u.filter_masters(ctx.masters());
                    let cur = ctx.current_slice();
                    let results = parallel_chunks(&actives, ctx.threads(), |chunk| {
                        let mut writes = Vec::new();
                        let mut passed = Vec::new();
                        for &v in chunk {
                            let val = &cur[v as usize];
                            if f(v, val) {
                                let mut new_val = val.clone();
                                m(v, &mut new_val);
                                writes.push((v, new_val));
                                passed.push(v);
                            }
                        }
                        (writes, passed)
                    });
                    let mut all_passed = Vec::new();
                    for (writes, passed) in results {
                        ctx.write_masters(writes);
                        all_passed.extend(passed);
                    }
                    all_passed
                });
        let subset = subset_from_lists(n, &out.per_worker);
        self.cluster.recycle_updated(out.updated);
        subset
    }

    /// `VERTEXMAP(U, F)` — the *filter* form with `M` omitted: "the vertex
    /// data attached will not be changed". A read-only superstep; no
    /// mirror synchronization happens.
    pub fn vertex_filter(
        &mut self,
        u: &VertexSubset,
        f: impl Fn(VertexId, &V) -> bool + Sync,
    ) -> VertexSubset {
        let n = self.num_vertices();
        let out =
            self.cluster
                .step_direct(StepKind::VertexMap, u.len(), SyncScope::Necessary, |ctx| {
                    let actives = u.filter_masters(ctx.masters());
                    let cur = ctx.current_slice();
                    let results = parallel_chunks(&actives, ctx.threads(), |chunk| {
                        chunk
                            .iter()
                            .copied()
                            .filter(|&v| f(v, &cur[v as usize]))
                            .collect::<Vec<_>>()
                    });
                    results.into_iter().flatten().collect::<Vec<_>>()
                });
        let subset = subset_from_lists(n, &out.per_worker);
        self.cluster.recycle_updated(out.updated);
        subset
    }

    // ------------------------------------------------------------------
    // EDGEMAP
    // ------------------------------------------------------------------

    /// The block-streaming handle an `EDGEMAP` over `h` should use, if
    /// any — paired with this cluster's private [`StreamScope`] so the
    /// replayed accounting lands in per-run counters: block storage must
    /// be configured, the edge set must be streamable (a fixed
    /// orientation of `E`), and the graph must be block-backed. Virtual
    /// edge sets fall back to the in-memory kernels — they reach beyond
    /// `E`, so no edge block contains them.
    fn streaming(&self, h: &EdgeSet<V>) -> Option<(Arc<BlockHandle>, Arc<StreamScope>)> {
        if self.cluster.config().storage == StorageMode::Block && h.is_streamable() {
            let bh = self.cluster.graph().block_handle().cloned()?;
            Some((bh, Arc::clone(self.cluster.stream_scope())))
        } else {
            None
        }
    }

    /// `EDGEMAP(U, H, F, M, C, R)` (Algorithm 4): dispatches to the dense
    /// (pull) or sparse (push) kernel by the density of the active set —
    /// dense when `|U| + outEdges(U) > threshold * |E|`, following Ligra —
    /// unless the configured [`ModePolicy`] or the edge set's orientation
    /// capabilities force one kernel.
    pub fn edge_map(
        &mut self,
        u: &VertexSubset,
        h: &EdgeSet<V>,
        f: impl Fn(EdgeRef, &V, &V) -> bool + Sync,
        m: impl Fn(EdgeRef, &V, &mut V) + Sync,
        c: impl Fn(VertexId, &V) -> bool + Sync,
        r: impl Fn(&V, &mut V) + Sync,
    ) -> VertexSubset {
        let policy = self.cluster.config().mode;
        let tracing = self.cluster.config().sink.is_some();
        // The density measure drives the Adaptive decision; with a trace
        // sink attached it is also computed under forced policies so every
        // mode_decision event carries it.
        let frontier_edges: Option<usize> = if tracing
            || (policy == ModePolicy::Adaptive && h.supports_pull() && h.supports_push())
        {
            let g = self.graph();
            Some(u.iter().map(|v| g.out_degree(v)).sum::<usize>() + u.len())
        } else {
            None
        };
        let dense = match policy {
            ModePolicy::ForceDense => h.supports_pull(),
            ModePolicy::ForceSparse => !h.supports_push(),
            ModePolicy::Adaptive => {
                if !h.supports_pull() {
                    false
                } else if !h.supports_push() {
                    true
                } else {
                    frontier_edges.unwrap() as f64
                        > self.cluster.config().dense_threshold * self.graph().num_edges() as f64
                }
            }
        };
        if tracing {
            let threshold_edges =
                (self.cluster.config().dense_threshold * self.graph().num_edges() as f64) as usize;
            let policy_label = match policy {
                ModePolicy::Adaptive => "adaptive",
                ModePolicy::ForceDense => "force-dense",
                ModePolicy::ForceSparse => "force-sparse",
            };
            self.cluster.emit(flash_obs::EventKind::ModeDecision {
                step: self.cluster.next_step_id(),
                frontier: u.len(),
                frontier_edges: frontier_edges.unwrap_or(0),
                threshold_edges,
                chosen: if dense { "dense" } else { "sparse" }.to_string(),
                policy: policy_label.to_string(),
            });
        }
        if dense {
            self.edge_map_dense(u, h, f, m, c)
        } else {
            self.edge_map_sparse(u, h, f, m, c, r)
        }
    }

    /// `EDGEMAPDENSE(U, H, F, M, C)` (Algorithm 5, *pull* mode): every
    /// master `d` scans its in-edges of `H`, sequentially applying `m` for
    /// sources in `u` while `c(d)` holds; no reduce function is needed
    /// because updates apply immediately per vertex.
    ///
    /// # Panics
    /// Panics if `h` cannot be enumerated from the target side
    /// (a [`EdgeSet::CustomOut`] set).
    pub fn edge_map_dense(
        &mut self,
        u: &VertexSubset,
        h: &EdgeSet<V>,
        f: impl Fn(EdgeRef, &V, &V) -> bool + Sync,
        m: impl Fn(EdgeRef, &V, &mut V) + Sync,
        c: impl Fn(VertexId, &V) -> bool + Sync,
    ) -> VertexSubset {
        assert!(
            h.supports_pull(),
            "EDGEMAPDENSE needs a target-enumerable edge set; use edge_map_sparse"
        );
        let n = self.num_vertices();
        let scope = sync_scope(h);
        let kind = StepKind::EdgeMapDense;
        let stream = self.streaming(h);
        let out = self.cluster.step_direct(kind, u.len(), scope, |ctx| {
            if let Some((bh, sc)) = stream.as_ref() {
                return dense_streamed(ctx, bh, sc, u, h, &f, &m, &c);
            }
            let g = ctx.graph();
            let masters = ctx.masters();
            let cur = ctx.current_slice();
            let results = parallel_chunks(masters, ctx.threads(), |chunk| {
                let mut writes: Vec<(VertexId, V)> = Vec::new();
                let mut outs: Vec<VertexId> = Vec::new();
                for &d in chunk {
                    if !c(d, &cur[d as usize]) {
                        continue;
                    }
                    let mut d_new: Option<V> = None;
                    for (s, w) in h.sources(g, d, &cur[d as usize]) {
                        let d_ref: &V = d_new.as_ref().unwrap_or(&cur[d as usize]);
                        if !c(d, d_ref) {
                            break;
                        }
                        if !u.contains(s) {
                            continue;
                        }
                        let s_val = &cur[s as usize];
                        let e = EdgeRef {
                            src: s,
                            dst: d,
                            weight: w,
                        };
                        if f(e, s_val, d_ref) {
                            let mut val = d_ref.clone();
                            m(e, s_val, &mut val);
                            if d_new.is_none() {
                                outs.push(d);
                            }
                            d_new = Some(val);
                        }
                    }
                    if let Some(val) = d_new {
                        writes.push((d, val));
                    }
                }
                (writes, outs)
            });
            let mut all_outs = Vec::new();
            for (writes, outs) in results {
                ctx.write_masters(writes);
                all_outs.extend(outs);
            }
            all_outs
        });
        let subset = subset_from_lists(n, &out.per_worker);
        self.cluster.recycle_updated(out.updated);
        subset
    }

    /// `EDGEMAPSPARSE(U, H, F, M, C, R)` (Algorithm 6, *push* mode): every
    /// active master pushes over its out-edges of `H`; concurrent updates
    /// of one target are merged with the associative & commutative `r`,
    /// first mirror-side, then at the target's master — the paper's
    /// three-phase, two-message-round procedure.
    ///
    /// # Panics
    /// Panics if `h` cannot be enumerated from the source side
    /// (a [`EdgeSet::CustomIn`] set).
    pub fn edge_map_sparse(
        &mut self,
        u: &VertexSubset,
        h: &EdgeSet<V>,
        f: impl Fn(EdgeRef, &V, &V) -> bool + Sync,
        m: impl Fn(EdgeRef, &V, &mut V) + Sync,
        c: impl Fn(VertexId, &V) -> bool + Sync,
        r: impl Fn(&V, &mut V) + Sync,
    ) -> VertexSubset {
        assert!(
            h.supports_push(),
            "EDGEMAPSPARSE needs a source-enumerable edge set; use edge_map_dense"
        );
        let n = self.num_vertices();
        let scope = sync_scope(h);
        let stream = self.streaming(h);
        let out = self.cluster.step_reduce(u.len(), scope, &r, |ctx| {
            if let Some((bh, sc)) = stream.as_ref() {
                return sparse_streamed(ctx, bh, sc, u, h, &f, &m, &c, &r);
            }
            let g = ctx.graph();
            let actives = u.filter_masters(ctx.masters());
            let cur = ctx.current_slice();
            let results = parallel_chunks(&actives, ctx.threads(), |chunk| {
                let mut updates: Vec<(VertexId, V)> = Vec::new();
                for &s in chunk {
                    let s_val = &cur[s as usize];
                    for (d, w) in h.targets(g, s, s_val) {
                        let d_val = &cur[d as usize];
                        if !c(d, d_val) {
                            continue;
                        }
                        let e = EdgeRef {
                            src: s,
                            dst: d,
                            weight: w,
                        };
                        if f(e, s_val, d_val) {
                            let mut temp = d_val.clone();
                            m(e, s_val, &mut temp);
                            updates.push((d, temp));
                        }
                    }
                }
                updates
            });
            for updates in results {
                ctx.puts(updates, &r);
            }
        });
        let subset = subset_from_lists(n, &out.updated);
        self.cluster.recycle_updated(out.updated);
        subset
    }

    // ------------------------------------------------------------------
    // Global operators
    // ------------------------------------------------------------------

    /// A distributed fold over the masters in `u`: each worker folds its
    /// local members with `f`, partials are combined with `combine` on the
    /// driver. Backs global aggregations (total triangle counts, frontier
    /// statistics, …); traffic (one partial per worker) is recorded.
    pub fn fold<T: Clone + Send + Sync>(
        &mut self,
        u: &VertexSubset,
        init: T,
        f: impl Fn(T, VertexId, &V) -> T + Sync,
        combine: impl Fn(T, T) -> T,
    ) -> T {
        let t0 = Instant::now();
        let out =
            self.cluster
                .step_direct(StepKind::Global, u.len(), SyncScope::Necessary, |ctx| {
                    let actives = u.filter_masters(ctx.masters());
                    let cur = ctx.current_slice();
                    let mut acc = init.clone();
                    for &v in &actives {
                        acc = f(acc, v, &cur[v as usize]);
                    }
                    acc
                });
        let m = out.per_worker.len();
        let result = out
            .per_worker
            .into_iter()
            .fold(None, |acc: Option<T>, part| match acc {
                None => Some(part),
                Some(a) => Some(combine(a, part)),
            })
            .unwrap_or(init);
        let bytes = (m.saturating_sub(1) * std::mem::size_of::<T>()) as u64;
        self.cluster
            .record_global(m.saturating_sub(1) as u64, bytes, t0.elapsed());
        result
    }

    /// Gathers one value per worker from a read-only pass over the cluster
    /// (the paper's auxiliary `REDUCE` gather used by MSF/BCC). `bytes_of`
    /// reports each partial's wire size for traffic accounting.
    pub fn gather<T: Send>(
        &mut self,
        f: impl Fn(&mut flash_runtime::WorkerCtx<'_, V>) -> T + Sync,
        bytes_of: impl Fn(&T) -> usize,
    ) -> Vec<T> {
        let t0 = Instant::now();
        let out = self
            .cluster
            .step_direct(StepKind::Global, 0, SyncScope::Necessary, f);
        let bytes: u64 = out.per_worker.iter().map(|t| bytes_of(t) as u64).sum();
        let msgs = out.per_worker.len().saturating_sub(1) as u64;
        self.cluster.record_global(msgs, bytes, t0.elapsed());
        out.per_worker
    }

    /// Broadcasts a driver-computed value into vertex `v` on all replicas
    /// (used by global algorithms to install results); traffic recorded.
    pub fn broadcast_value(&mut self, v: VertexId, val: V) {
        let t0 = Instant::now();
        let bytes = (self.num_workers().saturating_sub(1) * (4 + val.bytes())) as u64;
        let msgs = self.num_workers().saturating_sub(1) as u64;
        self.cluster.set_value_global(v, val);
        self.cluster.record_global(msgs, bytes, t0.elapsed());
    }
}

/// Per-destination streaming state of the dense (pull) kernel: a cursor
/// into the sorted source list, advanced one source block at a time.
struct DenseRow<'g, W> {
    d: VertexId,
    /// The destination's block index (one coordinate of every edge block
    /// this row touches).
    db: u32,
    srcs: &'g [VertexId],
    wts: Option<&'g [Weight]>,
    cursor: usize,
    d_new: Option<W>,
    /// Set when the per-edge condition `c` failed mid-list — the paper's
    /// early exit; remaining blocks of this row are skipped (and not
    /// charged).
    stopped: bool,
}

/// The streamed `EDGEMAPDENSE` kernel (DESIGN.md §13). Functionally
/// identical to the in-memory pull kernel — for every destination the
/// sources are still visited in ascending order, so results are
/// bit-identical — but the *visit order across destinations* is
/// block-major: all rows consume source block `sb` before any row moves
/// to `sb + 1`, the access pattern an out-of-core engine needs so one
/// streamed edge block serves every resident row. Touched blocks are
/// recorded per chunk and replayed against the worker's FIFO cache for
/// deterministic bytes-streamed accounting.
#[allow(clippy::too_many_arguments)]
fn dense_streamed<V: VertexData>(
    ctx: &mut WorkerCtx<'_, V>,
    bh: &BlockHandle,
    scope: &StreamScope,
    u: &VertexSubset,
    h: &EdgeSet<V>,
    f: &(impl Fn(EdgeRef, &V, &V) -> bool + Sync),
    m: &(impl Fn(EdgeRef, &V, &mut V) + Sync),
    c: &(impl Fn(VertexId, &V) -> bool + Sync),
) -> Vec<VertexId> {
    let g = ctx.graph();
    let grid = bh.grid();
    let nb = grid.nb();
    let reverse = matches!(h, EdgeSet::Reverse);
    let gate = match h {
        EdgeSet::TargetsIn(set) => Some(set),
        _ => None,
    };
    let worker = ctx.worker();
    let masters = ctx.masters();
    let cur = ctx.current_slice();
    let results = parallel_chunks(masters, ctx.threads(), |chunk| {
        let mut rows: Vec<DenseRow<'_, V>> = chunk
            .iter()
            .copied()
            .filter(|&d| c(d, &cur[d as usize]) && gate.is_none_or(|set| set.contains(d)))
            .map(|d| {
                let (srcs, wts) = if reverse {
                    (g.out_neighbors(d), g.out_weights(d))
                } else {
                    (g.in_neighbors(d), g.in_weights(d))
                };
                DenseRow {
                    d,
                    db: grid.block_of(d) as u32,
                    srcs,
                    wts,
                    cursor: 0,
                    d_new: None,
                    stopped: false,
                }
            })
            .collect();
        let mut touches: Vec<BlockTouch> = Vec::new();
        for sb in 0..nb {
            let end = grid.block_end(sb);
            for row in rows.iter_mut() {
                let lo = row.cursor;
                let mut hi = lo;
                while hi < row.srcs.len() && (row.srcs[hi] as usize) < end {
                    hi += 1;
                }
                row.cursor = hi;
                if lo == hi || row.stopped {
                    continue;
                }
                // This slice lives in one edge block; pulling reads the
                // in-CSR copy of block (sb, db), reversed pulls the
                // out-CSR copy of (db, sb). Consecutive rows of the same
                // destination block share the touch.
                let touch: BlockTouch = if reverse {
                    (0, row.db, sb as u32)
                } else {
                    (1, sb as u32, row.db)
                };
                if touches.last() != Some(&touch) {
                    touches.push(touch);
                }
                for i in lo..hi {
                    let d_ref: &V = row.d_new.as_ref().unwrap_or(&cur[row.d as usize]);
                    if !c(row.d, d_ref) {
                        row.stopped = true;
                        break;
                    }
                    let s = row.srcs[i];
                    if !u.contains(s) {
                        continue;
                    }
                    let s_val = &cur[s as usize];
                    let e = EdgeRef {
                        src: s,
                        dst: row.d,
                        weight: row.wts.map_or(1.0, |w| w[i]),
                    };
                    if f(e, s_val, d_ref) {
                        let mut val = d_ref.clone();
                        m(e, s_val, &mut val);
                        row.d_new = Some(val);
                    }
                }
            }
        }
        let mut writes: Vec<(VertexId, V)> = Vec::new();
        let mut outs: Vec<VertexId> = Vec::new();
        for row in rows {
            if let Some(val) = row.d_new {
                outs.push(row.d);
                writes.push((row.d, val));
            }
        }
        (writes, outs, touches)
    });
    let mut all_outs = Vec::new();
    for (writes, outs, touches) in results {
        bh.replay(scope, worker, &touches);
        ctx.write_masters(writes);
        all_outs.extend(outs);
    }
    all_outs
}

/// Per-source streaming state of the sparse (push) kernel: a cursor into
/// the sorted target list, advanced one destination block at a time.
struct SparseRow<'g> {
    s: VertexId,
    /// The source's block index.
    sb: u32,
    tgts: &'g [VertexId],
    wts: Option<&'g [Weight]>,
    cursor: usize,
}

/// The streamed `EDGEMAPSPARSE` kernel (DESIGN.md §13). Pushes the same
/// updates as the in-memory kernel — any one destination still receives
/// its updates in ascending source order, so reduction is bit-identical —
/// but iterates destination blocks outermost, the GPOP-style binned
/// scatter that confines the random target accesses of one pass to a
/// single block's range. Block touches are replayed for deterministic
/// streaming accounting.
#[allow(clippy::too_many_arguments)]
fn sparse_streamed<V: VertexData>(
    ctx: &mut WorkerCtx<'_, V>,
    bh: &BlockHandle,
    scope: &StreamScope,
    u: &VertexSubset,
    h: &EdgeSet<V>,
    f: &(impl Fn(EdgeRef, &V, &V) -> bool + Sync),
    m: &(impl Fn(EdgeRef, &V, &mut V) + Sync),
    c: &(impl Fn(VertexId, &V) -> bool + Sync),
    r: &(impl Fn(&V, &mut V) + Sync),
) {
    let g = ctx.graph();
    let grid = bh.grid();
    let nb = grid.nb();
    let reverse = matches!(h, EdgeSet::Reverse);
    let gate = match h {
        EdgeSet::TargetsIn(set) => Some(set),
        _ => None,
    };
    let worker = ctx.worker();
    let actives = u.filter_masters(ctx.masters());
    let cur = ctx.current_slice();
    let results = parallel_chunks(&actives, ctx.threads(), |chunk| {
        let mut rows: Vec<SparseRow<'_>> = chunk
            .iter()
            .copied()
            .map(|s| {
                let (tgts, wts) = if reverse {
                    (g.in_neighbors(s), g.in_weights(s))
                } else {
                    (g.out_neighbors(s), g.out_weights(s))
                };
                SparseRow {
                    s,
                    sb: grid.block_of(s) as u32,
                    tgts,
                    wts,
                    cursor: 0,
                }
            })
            .collect();
        let mut updates: Vec<(VertexId, V)> = Vec::new();
        let mut touches: Vec<BlockTouch> = Vec::new();
        for db in 0..nb {
            let end = grid.block_end(db);
            for row in rows.iter_mut() {
                let lo = row.cursor;
                let mut hi = lo;
                while hi < row.tgts.len() && (row.tgts[hi] as usize) < end {
                    hi += 1;
                }
                row.cursor = hi;
                if lo == hi {
                    continue;
                }
                // Pushing reads the out-CSR copy of block (sb, db);
                // reversed pushes read the in-CSR copy of (db, sb).
                let touch: BlockTouch = if reverse {
                    (1, db as u32, row.sb)
                } else {
                    (0, row.sb, db as u32)
                };
                if touches.last() != Some(&touch) {
                    touches.push(touch);
                }
                let s_val = &cur[row.s as usize];
                for i in lo..hi {
                    let d = row.tgts[i];
                    if let Some(set) = gate {
                        if !set.contains(d) {
                            continue;
                        }
                    }
                    let d_val = &cur[d as usize];
                    if !c(d, d_val) {
                        continue;
                    }
                    let e = EdgeRef {
                        src: row.s,
                        dst: d,
                        weight: row.wts.map_or(1.0, |w| w[i]),
                    };
                    if f(e, s_val, d_val) {
                        let mut temp = d_val.clone();
                        m(e, s_val, &mut temp);
                        updates.push((d, temp));
                    }
                }
            }
        }
        (updates, touches)
    });
    for (updates, touches) in results {
        bh.replay(scope, worker, &touches);
        ctx.puts(updates, r);
    }
}

/// Chooses the mirror-sync scope for an edge set: virtual edges escape the
/// partitioner's mirror placement, so they broadcast to all workers
/// (§IV-C "Communicate with necessary mirrors only").
fn sync_scope<V>(h: &EdgeSet<V>) -> SyncScope {
    if h.is_virtual() {
        SyncScope::All
    } else {
        SyncScope::Necessary
    }
}

/// Builds a subset from per-worker id lists. Borrows the lists so callers
/// can hand the buffers back to the runtime's superstep pool afterwards
/// ([`flash_runtime::Cluster::recycle_updated`]).
fn subset_from_lists(n: usize, lists: &[Vec<VertexId>]) -> VertexSubset {
    let mut bits = BitSet::new(n);
    for list in lists {
        for &v in list {
            bits.insert(v);
        }
    }
    VertexSubset::from_bits(bits)
}
