#![warn(missing_docs)]

//! # flash-core — the FLASH programming model
//!
//! This crate is the paper's primary contribution (§III): a Ligra-style
//! functional interface — `vertexSubset`, `VERTEXMAP`, `EDGEMAP` — extended
//! to the distributed setting, with:
//!
//! * **flexible control flow** — primitives are ordinary method calls you
//!   chain, loop and recurse over (multi-phase algorithms like Betweenness
//!   Centrality fall out naturally);
//! * **operations on arbitrary vertex sets** — any number of
//!   [`VertexSubset`]s may coexist and combine via set algebra;
//! * **communication beyond neighborhood** — [`EdgeSet`] lets `EDGEMAP`
//!   run over `reverse(E)`, two-hop joins, subset-filtered edges or fully
//!   virtual (pointer) edge sets;
//! * **the dual push/pull propagation model** — `EDGEMAP` adaptively picks
//!   [`FlashContext::edge_map_dense`] (pull) or
//!   [`FlashContext::edge_map_sparse`] (push) by frontier density
//!   (Algorithms 4–6).
//!
//! ## Quick taste (BFS, Algorithm 2 of the paper)
//!
//! ```
//! use flash_core::prelude::*;
//! use std::sync::Arc;
//!
//! #[derive(Clone)]
//! struct Bfs { dis: u32 }
//! flash_runtime::full_sync!(Bfs);
//!
//! const INF: u32 = u32::MAX;
//! let g = Arc::new(flash_graph::generators::path(5, true));
//! let mut ctx = FlashContext::build(g, ClusterConfig::with_workers(2), |_| Bfs { dis: INF })
//!     .unwrap();
//!
//! let root = 0u32;
//! let all = ctx.all();
//! ctx.vertex_map(&all, |_, _| true, |v, val| val.dis = if v == root { 0 } else { INF });
//! let mut frontier = ctx.vertex_filter(&all, |v, _| v == root);
//! while !frontier.is_empty() {
//!     frontier = ctx.edge_map(
//!         &frontier,
//!         &EdgeSet::forward(),
//!         |_, _, _| true,                       // F = CTRUE
//!         |_, s, d| d.dis = s.dis + 1,          // UPDATE
//!         |_, d| d.dis == INF,                  // COND
//!         |t, d| d.dis = t.dis,                 // REDUCE (keep any)
//!     );
//! }
//! assert_eq!(ctx.value(4).dis, 4);
//! ```

pub mod context;
pub mod edgeset;
pub mod subset;
pub mod vc;

pub use context::FlashContext;
pub use edgeset::EdgeSet;
pub use subset::VertexSubset;

use flash_graph::{VertexId, Weight};

/// A reference to one (possibly virtual) edge handed to `EDGEMAP`'s `F`
/// and `M` functions.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EdgeRef {
    /// The source vertex `s`.
    pub src: VertexId,
    /// The target vertex `d`.
    pub dst: VertexId,
    /// The edge weight `w(e)` (1.0 on unweighted or virtual edges).
    pub weight: Weight,
}

/// Commonly used items, re-exported for glob import.
pub mod prelude {
    pub use crate::context::FlashContext;
    pub use crate::edgeset::EdgeSet;
    pub use crate::subset::VertexSubset;
    pub use crate::EdgeRef;
    pub use flash_runtime::{
        ClusterConfig, HotPath, ModePolicy, NetworkModel, RunStats, StepKind, SyncMode, VertexData,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::Arc;

    #[derive(Clone, Default, Debug, PartialEq)]
    struct Val {
        x: u64,
    }
    flash_runtime::full_sync!(Val);

    fn ctx_on_path(n: usize, workers: usize) -> FlashContext<Val> {
        let g = Arc::new(flash_graph::generators::path(n, true));
        let mut cfg = ClusterConfig::with_workers(workers);
        cfg.parallel_workers = false;
        FlashContext::build(g, cfg, |v| Val { x: v as u64 }).unwrap()
    }

    #[test]
    fn vertex_map_applies_and_returns_passing() {
        let mut ctx = ctx_on_path(6, 2);
        let all = ctx.all();
        let evens = ctx.vertex_map(&all, |v, _| v % 2 == 0, |_, val| val.x += 100);
        assert_eq!(evens.to_vec(), vec![0, 2, 4]);
        assert_eq!(ctx.value(0).x, 100);
        assert_eq!(ctx.value(1).x, 1, "non-passing vertex unchanged");
        assert_eq!(ctx.value(4).x, 104);
    }

    #[test]
    fn vertex_filter_reads_only() {
        let mut ctx = ctx_on_path(5, 2);
        let all = ctx.all();
        let big = ctx.vertex_filter(&all, |_, val| val.x >= 3);
        assert_eq!(big.to_vec(), vec![3, 4]);
        // No sync traffic for a pure filter.
        assert_eq!(ctx.stats().steps()[0].sync_bytes, 0);
    }

    #[test]
    fn edge_map_sparse_pushes_to_neighbors() {
        let mut ctx = ctx_on_path(4, 2);
        // Push each frontier vertex's value to neighbors; keep max.
        let frontier = ctx.subset([0u32]);
        let reduce = |t: &Val, d: &mut Val| d.x = d.x.max(t.x);
        let out = ctx.edge_map_sparse(
            &frontier,
            &EdgeSet::forward(),
            |_, _, _| true,
            |_, s, d| d.x = d.x.max(s.x + 10),
            |_, _| true,
            reduce,
        );
        assert_eq!(out.to_vec(), vec![1], "path: 0's only neighbor is 1");
        assert_eq!(ctx.value(1).x, 10);
    }

    #[test]
    fn edge_map_dense_pulls_from_frontier() {
        let mut ctx = ctx_on_path(4, 2);
        let frontier = ctx.subset([1u32, 2]);
        let out = ctx.edge_map_dense(
            &frontier,
            &EdgeSet::forward(),
            |_, _, _| true,
            |_, s, d| d.x += s.x * 100,
            |_, _| true,
        );
        // Every vertex with an in-neighbor in {1,2} gets updated.
        assert_eq!(out.to_vec(), vec![0, 1, 2, 3]);
        // Vertex 0 pulled from 1: 0 + 100. Vertex 3 pulled from 2: 3 + 200.
        assert_eq!(ctx.value(0).x, 100);
        assert_eq!(ctx.value(3).x, 203);
        // Vertex 1 pulled from 2 only (0 not in frontier): 1 + 200.
        assert_eq!(ctx.value(1).x, 201);
    }

    #[test]
    fn dense_cond_stops_early() {
        // C limits each target to at most one application.
        let mut ctx = ctx_on_path(3, 1);
        let frontier = ctx.subset([0u32, 2]); // both neighbors of 1
        ctx.edge_map_dense(
            &frontier,
            &EdgeSet::forward(),
            |_, _, _| true,
            |_, _, d| d.x += 1000,
            |_, d| d.x < 1000, // stop once updated
        );
        assert_eq!(ctx.value(1).x, 1001, "second in-edge must not apply");
    }

    #[test]
    fn adaptive_edge_map_matches_both_kernels() {
        // CC-style min propagation: dense, sparse and adaptive agree.
        let g = Arc::new(flash_graph::generators::erdos_renyi(40, 80, 9));
        let run = |mode: ModePolicy| {
            let mut cfg = ClusterConfig::with_workers(3).mode(mode);
            cfg.parallel_workers = false;
            let mut ctx =
                FlashContext::build(Arc::clone(&g), cfg, |v| Val { x: v as u64 }).unwrap();
            let mut u = ctx.all();
            let reduce = |t: &Val, d: &mut Val| d.x = d.x.min(t.x);
            while !u.is_empty() {
                u = ctx.edge_map(
                    &u,
                    &EdgeSet::forward(),
                    |_, s, d| s.x < d.x,
                    |_, s, d| d.x = d.x.min(s.x),
                    |_, _| true,
                    reduce,
                );
            }
            ctx.collect(|_, val| val.x)
        };
        let dense = run(ModePolicy::ForceDense);
        let sparse = run(ModePolicy::ForceSparse);
        let auto = run(ModePolicy::Adaptive);
        assert_eq!(dense, sparse);
        assert_eq!(dense, auto);
    }

    #[test]
    fn reverse_edge_set_pushes_backwards() {
        let g = Arc::new(
            flash_graph::GraphBuilder::new(3)
                .edges([(0, 1), (1, 2)])
                .build()
                .unwrap(),
        );
        let mut cfg = ClusterConfig::with_workers(2);
        cfg.parallel_workers = false;
        let mut ctx = FlashContext::build(g, cfg, |v| Val { x: v as u64 }).unwrap();
        let frontier = ctx.subset([2u32]);
        let out = ctx.edge_map_sparse(
            &frontier,
            &EdgeSet::reverse(),
            |_, _, _| true,
            |_, s, d| d.x = s.x * 7,
            |_, _| true,
            |t, d| d.x = t.x,
        );
        assert_eq!(out.to_vec(), vec![1]);
        assert_eq!(ctx.value(1).x, 14);
    }

    #[test]
    fn custom_pointer_edge_set_beyond_neighborhood() {
        // Virtual edges: every vertex points at vertex 0 regardless of E.
        let mut ctx = ctx_on_path(5, 2);
        let all = ctx.all();
        let reduce = |t: &Val, d: &mut Val| d.x += t.x;
        ctx.edge_map_sparse(
            &all,
            &EdgeSet::custom_out(|_, _| vec![0]),
            |_, _, _| true,
            |_, s, d| d.x += s.x,
            |_, _| true,
            reduce,
        );
        // Temps are seeded from target 0's base (x = 0), so vertex 0
        // accumulates the sum of all source values: 0+1+2+3+4.
        assert_eq!(ctx.value(0).x, 10);
    }

    #[test]
    fn fold_and_gather_aggregate_globally() {
        let mut ctx = ctx_on_path(10, 3);
        let all = ctx.all();
        let total = ctx.fold(&all, 0u64, |acc, _, val| acc + val.x, |a, b| a + b);
        assert_eq!(total, 45);
        let per_worker = ctx.gather(|c| c.masters().len(), |_| 8);
        assert_eq!(per_worker.iter().sum::<usize>(), 10);
        // Global traffic recorded in stats.
        let (_, _, _, globals) = ctx.stats().kind_counts();
        assert!(globals >= 2, "fold and gather each record global steps");
    }

    #[test]
    fn broadcast_value_reaches_all_replicas() {
        let mut ctx = ctx_on_path(4, 2);
        ctx.broadcast_value(3, Val { x: 42 });
        assert_eq!(ctx.value(3).x, 42);
        let seen = ctx.gather(|c| c.get(3).x, |_| 8);
        assert!(seen.iter().all(|&x| x == 42));
    }

    #[test]
    fn empty_frontier_is_a_noop() {
        let mut ctx = ctx_on_path(4, 2);
        let empty = ctx.empty();
        let out = ctx.edge_map_sparse(
            &empty,
            &EdgeSet::forward(),
            |_, _, _| true,
            |_, _, d| d.x = 999,
            |_, _| true,
            |t, d| d.x = t.x,
        );
        assert!(out.is_empty());
        assert_eq!(ctx.collect(|_, v| v.x), vec![0, 1, 2, 3]);
    }
}
