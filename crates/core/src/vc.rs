//! Simulating vertex-centric (Pregel-like) programs on FLASH.
//!
//! Appendix A of the paper proves FLASH subsumes the classic vertex-centric
//! models by construction: each Pregel superstep becomes a `VERTEXMAP`
//! (run `compute()`, consuming the inbox and filling the outbox) followed
//! by an `EDGEMAP` (deliver outbox messages into target inboxes) — see the
//! paper's Algorithms 7 and 8. This module is that construction, letting
//! existing vertex-centric programs port to FLASH unchanged.
//!
//! Messages may target *any* vertex (not just neighbors), exactly as in
//! Pregel; delivery therefore runs over a virtual [`EdgeSet::custom_out`]
//! derived from the outboxes.

use crate::context::FlashContext;
use crate::edgeset::EdgeSet;
use flash_graph::{Graph, VertexId};
use flash_runtime::{ClusterConfig, RuntimeError, VertexData};
use std::sync::Arc;

/// A Pregel-style vertex program executed through FLASH primitives.
pub trait VertexProgram: Send + Sync + 'static {
    /// Per-vertex value.
    type Value: Clone + Send + Sync + 'static;
    /// Message type.
    type Message: Clone + Send + Sync + 'static;

    /// Initial value of vertex `v`.
    fn init(&self, v: VertexId, g: &Graph) -> Self::Value;

    /// One superstep of vertex `v`: read `inbox`, update `value`, emit
    /// messages through `out`. Mirrors Pregel's `compute()`.
    fn compute(
        &self,
        v: VertexId,
        g: &Graph,
        value: &mut Self::Value,
        inbox: &[Self::Message],
        superstep: usize,
        out: &mut Outbox<Self::Message>,
    );

    /// Optional Pregel `combine()`: merge two messages bound for the same
    /// vertex. Returning `Some` enables early aggregation, reducing
    /// materialized messages exactly as the paper describes for Pregel.
    fn combine(&self, _a: &Self::Message, _b: &Self::Message) -> Option<Self::Message> {
        None
    }
}

/// The message buffer a vertex writes during `compute`.
pub struct Outbox<M> {
    msgs: Vec<(VertexId, M)>,
}

impl<M: Clone> Outbox<M> {
    fn new() -> Self {
        Outbox { msgs: Vec::new() }
    }

    /// Sends `msg` to vertex `to` (any vertex, neighbor or not).
    pub fn send(&mut self, to: VertexId, msg: M) {
        self.msgs.push((to, msg));
    }

    /// Sends `msg` to every out-neighbor of `v`.
    pub fn send_to_neighbors(&mut self, g: &Graph, v: VertexId, msg: M) {
        for &t in g.out_neighbors(v) {
            self.msgs.push((t, msg.clone()));
        }
    }
}

/// The wrapper state FLASH stores per vertex while simulating a
/// vertex-centric program: value + inbox + outbox (paper Algorithm 8).
pub struct VcState<P: VertexProgram> {
    /// The program's per-vertex value.
    pub value: P::Value,
    inbox: Vec<P::Message>,
    outbox: Vec<(VertexId, P::Message)>,
}

// Manual impl: `P` itself need not be `Clone`, only its associated types.
impl<P: VertexProgram> Clone for VcState<P> {
    fn clone(&self) -> Self {
        VcState {
            value: self.value.clone(),
            inbox: self.inbox.clone(),
            outbox: self.outbox.clone(),
        }
    }
}

impl<P: VertexProgram> VertexData for VcState<P> {
    type Critical = Self;
    fn critical(&self) -> Self {
        self.clone()
    }
    fn apply_critical(&mut self, c: Self) {
        *self = c;
    }
    fn bytes(&self) -> usize {
        std::mem::size_of::<P::Value>()
            + self.inbox.len() * std::mem::size_of::<P::Message>()
            + self.outbox.len() * (4 + std::mem::size_of::<P::Message>())
    }
    fn critical_bytes(c: &Self) -> usize {
        c.bytes()
    }
}

/// The result of a vertex-centric run.
pub struct VcResult<P: VertexProgram> {
    /// Final per-vertex values, indexed by vertex id.
    pub values: Vec<P::Value>,
    /// Supersteps executed.
    pub supersteps: usize,
}

/// Runs `program` to quiescence (no active vertices) through FLASH
/// primitives, with at most `max_supersteps` Pregel supersteps.
pub fn run_vertex_centric<P: VertexProgram>(
    graph: Arc<Graph>,
    config: ClusterConfig,
    program: P,
    max_supersteps: usize,
) -> Result<VcResult<P>, RuntimeError> {
    let program = Arc::new(program);
    let init_prog = Arc::clone(&program);
    let graph_for_init = Arc::clone(&graph);
    let mut ctx: FlashContext<VcState<P>> = FlashContext::build(graph, config, move |v| VcState {
        value: init_prog.init(v, &graph_for_init),
        inbox: Vec::new(),
        outbox: Vec::new(),
    })?;

    // Superstep 0 activates every vertex with an empty inbox, per Pregel.
    let mut active = ctx.all();
    let mut supersteps = 0usize;
    while !active.is_empty() {
        if supersteps >= max_supersteps {
            return Err(RuntimeError::NotConverged {
                supersteps: max_supersteps,
            });
        }
        // Phase 1 (LOCAL, Algorithm 8): run compute() on active vertices,
        // consuming inboxes and producing outboxes.
        let g = ctx.graph_arc();
        let prog = Arc::clone(&program);
        let step = supersteps;
        let computed = ctx.vertex_map(
            &active,
            |_, _| true,
            move |v, st| {
                let inbox = std::mem::take(&mut st.inbox);
                let mut out = Outbox::new();
                prog.compute(v, &g, &mut st.value, &inbox, step, &mut out);
                st.outbox = out.msgs;
            },
        );

        // Phase 2 (UPDATE/MERGE, Algorithm 8): deliver outbox messages to
        // target inboxes over a virtual edge set; receivers form the next
        // frontier.
        let deliver_prog = Arc::clone(&program);
        let merge_prog = Arc::clone(&program);
        let h: EdgeSet<VcState<P>> = EdgeSet::custom_out(|_, st: &VcState<P>| {
            let mut targets: Vec<VertexId> = st.outbox.iter().map(|&(t, _)| t).collect();
            targets.sort_unstable();
            targets.dedup();
            targets
        });
        active = ctx.edge_map_sparse(
            &computed,
            &h,
            |_, _, _| true,
            move |e, s, d| {
                for (t, msg) in &s.outbox {
                    if *t == e.dst {
                        push_msg(&*deliver_prog, &mut d.inbox, msg.clone());
                    }
                }
            },
            |_, _| true,
            move |t, d| {
                for msg in &t.inbox {
                    push_msg(&*merge_prog, &mut d.inbox, msg.clone());
                }
            },
        );
        supersteps += 1;
    }

    if let Some(err) = ctx.fault_error() {
        return Err(err);
    }
    let values = ctx.collect(|_, st| st.value.clone());
    Ok(VcResult { values, supersteps })
}

/// Appends a message, applying the program's combiner when available.
fn push_msg<P: VertexProgram>(program: &P, inbox: &mut Vec<P::Message>, msg: P::Message) {
    if let Some(last) = inbox.last_mut() {
        if let Some(combined) = program.combine(last, &msg) {
            *last = combined;
            return;
        }
    }
    inbox.push(msg);
}

#[cfg(test)]
mod tests {
    use super::*;
    use flash_graph::generators;

    /// Pregel BFS: root sends level+1 to neighbors, vertices adopt the
    /// first level they hear.
    struct PregelBfs {
        root: VertexId,
    }

    impl VertexProgram for PregelBfs {
        type Value = u32;
        type Message = u32;

        fn init(&self, _v: VertexId, _g: &Graph) -> u32 {
            u32::MAX
        }

        fn compute(
            &self,
            v: VertexId,
            g: &Graph,
            value: &mut u32,
            inbox: &[u32],
            superstep: usize,
            out: &mut Outbox<u32>,
        ) {
            let proposal = if superstep == 0 {
                if v == self.root {
                    Some(0)
                } else {
                    None
                }
            } else {
                inbox.iter().min().copied()
            };
            if let Some(d) = proposal {
                if d < *value {
                    *value = d;
                    out.send_to_neighbors(g, v, d + 1);
                }
            }
        }

        fn combine(&self, a: &u32, b: &u32) -> Option<u32> {
            Some(*a.min(b))
        }
    }

    #[test]
    fn pregel_bfs_matches_reference_levels() {
        let g = Arc::new(generators::grid2d(5, 7));
        let expect = flash_graph::stats::bfs_levels(&g, 0);
        let mut cfg = ClusterConfig::with_workers(3);
        cfg.parallel_workers = false;
        let res = run_vertex_centric(Arc::clone(&g), cfg, PregelBfs { root: 0 }, 1000).unwrap();
        for (v, &e) in expect.iter().enumerate() {
            let got = res.values[v];
            if e == usize::MAX {
                assert_eq!(got, u32::MAX);
            } else {
                assert_eq!(got as usize, e, "vertex {v}");
            }
        }
        // Grid 5x7: eccentricity of corner 0 is 10 → 11 compute rounds + drain.
        assert!(res.supersteps >= 11);
    }

    /// A program that messages an arbitrary far-away vertex (beyond
    /// neighborhood) — possible in Pregel, so the simulation must allow it.
    struct Beacon;

    impl VertexProgram for Beacon {
        type Value = u64;
        type Message = u64;

        fn init(&self, _v: VertexId, _g: &Graph) -> u64 {
            0
        }

        fn compute(
            &self,
            v: VertexId,
            _g: &Graph,
            value: &mut u64,
            inbox: &[u64],
            superstep: usize,
            out: &mut Outbox<u64>,
        ) {
            if superstep == 0 {
                out.send(0, v as u64); // everyone pings vertex 0
            } else {
                *value += inbox.iter().sum::<u64>();
            }
        }
    }

    #[test]
    fn messages_beyond_neighborhood() {
        let g = Arc::new(generators::path(6, true));
        let mut cfg = ClusterConfig::with_workers(2);
        cfg.parallel_workers = false;
        let res = run_vertex_centric(g, cfg, Beacon, 10).unwrap();
        assert_eq!(res.values[0], 1 + 2 + 3 + 4 + 5);
        assert_eq!(res.values[1], 0);
    }

    #[test]
    fn superstep_budget_is_enforced() {
        /// Never halts: every vertex keeps messaging itself.
        struct Forever;
        impl VertexProgram for Forever {
            type Value = ();
            type Message = ();
            fn init(&self, _: VertexId, _: &Graph) {}
            fn compute(
                &self,
                v: VertexId,
                _g: &Graph,
                _value: &mut (),
                _inbox: &[()],
                _superstep: usize,
                out: &mut Outbox<()>,
            ) {
                out.send(v, ());
            }
        }
        let g = Arc::new(generators::path(3, true));
        let mut cfg = ClusterConfig::with_workers(1);
        cfg.parallel_workers = false;
        let err = run_vertex_centric(g, cfg, Forever, 5).err().unwrap();
        assert!(matches!(err, RuntimeError::NotConverged { supersteps: 5 }));
    }
}
