//! Edge-set algebra — `EDGEMAP`'s `H` parameter.
//!
//! Ligra can only send messages along `E`; FLASH "allows the users to
//! provide the arbitrary edge set they want to transfer messages, even when
//! the edges do not exist in the original graph" (§III-C "Communication
//! beyond neighborhood"). The paper's pre-defined operators are all here:
//!
//! * `E`                       → [`EdgeSet::forward`]
//! * `reverse(E)`              → [`EdgeSet::reverse`]
//! * `join(E, E)` (two-hop)    → [`EdgeSet::two_hop`]
//! * `join(E, U)` (targets ∈ U)→ [`EdgeSet::targets_in`]
//! * `join(U, p)` / `join(p, U)` (pointer edges) and any other virtual
//!   edge set → [`EdgeSet::custom_out`] / [`EdgeSet::custom_in`] /
//!   [`EdgeSet::custom`]
//!
//! A custom edge set is a *function*, not a materialized list, evaluated
//! lazily at runtime against the source's (or target's) current state —
//! exactly how the optimized CC algorithm maintains its parent-pointer
//! forest. Because virtual edges escape the partitioner's mirror placement,
//! any step using them synchronizes masters to **all** mirrors
//! ([`flash_runtime::SyncScope::All`]), as §IV-C prescribes.

use crate::subset::VertexSubset;
use flash_graph::{Graph, VertexId, Weight};
use std::sync::Arc;

/// A function producing the virtual out-edges (targets) of a vertex,
/// given its id and current state.
pub type TargetsFn<V> = Arc<dyn Fn(VertexId, &V) -> Vec<VertexId> + Send + Sync>;

/// A function producing the virtual in-edges (sources) of a vertex,
/// given its id and current state.
pub type SourcesFn<V> = Arc<dyn Fn(VertexId, &V) -> Vec<VertexId> + Send + Sync>;

/// The edge set `H` over which an `EDGEMAP` transfers messages.
#[derive(Clone)]
pub enum EdgeSet<V> {
    /// The graph's edges `E`.
    Forward,
    /// `reverse(E)`.
    Reverse,
    /// `join(E, E)`: two-hop neighbors (paths of length 2, endpoints).
    TwoHop,
    /// `join(E, U)`: edges of `E` whose *target* lies in the subset.
    TargetsIn(VertexSubset),
    /// Virtual edges given by a source→targets function. Usable by the
    /// sparse (push) kernel only.
    CustomOut(TargetsFn<V>),
    /// Virtual edges given by a target→sources function. Usable by the
    /// dense (pull) kernel only.
    CustomIn(SourcesFn<V>),
    /// Virtual edges with both orientations supplied (the two functions
    /// must describe the same edge set); usable by either kernel.
    CustomBoth(TargetsFn<V>, SourcesFn<V>),
}

impl<V> EdgeSet<V> {
    /// The graph's own edges, `E`.
    pub fn forward() -> Self {
        EdgeSet::Forward
    }

    /// `reverse(E)`.
    pub fn reverse() -> Self {
        EdgeSet::Reverse
    }

    /// `join(E, E)` — two-hop neighbors.
    pub fn two_hop() -> Self {
        EdgeSet::TwoHop
    }

    /// `join(E, U)` — edges with targets in `u`.
    pub fn targets_in(u: &VertexSubset) -> Self {
        EdgeSet::TargetsIn(u.clone())
    }

    /// A virtual edge set from a source→targets function (push-oriented),
    /// e.g. the paper's `join(U, p)`:
    /// `EdgeSet::custom_out(|_, val| vec![val.p])`.
    pub fn custom_out(f: impl Fn(VertexId, &V) -> Vec<VertexId> + Send + Sync + 'static) -> Self {
        EdgeSet::CustomOut(Arc::new(f))
    }

    /// A virtual edge set from a target→sources function (pull-oriented),
    /// e.g. the paper's `join(p, U)` used with `EDGEMAPDENSE`:
    /// `EdgeSet::custom_in(|_, val| vec![val.p])`.
    pub fn custom_in(f: impl Fn(VertexId, &V) -> Vec<VertexId> + Send + Sync + 'static) -> Self {
        EdgeSet::CustomIn(Arc::new(f))
    }

    /// A virtual edge set with both orientations.
    pub fn custom(
        out: impl Fn(VertexId, &V) -> Vec<VertexId> + Send + Sync + 'static,
        inn: impl Fn(VertexId, &V) -> Vec<VertexId> + Send + Sync + 'static,
    ) -> Self {
        EdgeSet::CustomBoth(Arc::new(out), Arc::new(inn))
    }

    /// `true` if the set reaches beyond the original edges `E`, forcing
    /// all-mirror synchronization.
    pub fn is_virtual(&self) -> bool {
        matches!(
            self,
            EdgeSet::TwoHop
                | EdgeSet::CustomOut(_)
                | EdgeSet::CustomIn(_)
                | EdgeSet::CustomBoth(..)
        )
    }

    /// `true` if the streamed (out-of-core) kernels can serve this set by
    /// scanning edge blocks of the on-disk graph: the set must be a subset
    /// of `E` (or `reverse(E)`) known without evaluating per-vertex
    /// functions. Virtual sets (two-hop, custom) fall back to the
    /// in-memory kernels even under block storage.
    pub fn is_streamable(&self) -> bool {
        matches!(
            self,
            EdgeSet::Forward | EdgeSet::Reverse | EdgeSet::TargetsIn(_)
        )
    }

    /// `true` if the sparse (push) kernel can enumerate this set from the
    /// source side.
    pub fn supports_push(&self) -> bool {
        !matches!(self, EdgeSet::CustomIn(_))
    }

    /// `true` if the dense (pull) kernel can enumerate this set from the
    /// target side.
    pub fn supports_pull(&self) -> bool {
        !matches!(self, EdgeSet::CustomOut(_))
    }

    /// Enumerates `(target, weight)` pairs out of `s` (push orientation).
    pub fn targets(&self, g: &Graph, s: VertexId, val: &V) -> Vec<(VertexId, Weight)> {
        match self {
            EdgeSet::Forward => g.out_edges(s).collect(),
            EdgeSet::Reverse => g.in_edges(s).collect(),
            EdgeSet::TwoHop => {
                let mut out = Vec::new();
                for &mid in g.out_neighbors(s) {
                    for &t in g.out_neighbors(mid) {
                        if t != s {
                            out.push((t, 1.0));
                        }
                    }
                }
                out.sort_unstable_by_key(|&(t, _)| t);
                out.dedup_by_key(|&mut (t, _)| t);
                out
            }
            EdgeSet::TargetsIn(u) => g.out_edges(s).filter(|&(t, _)| u.contains(t)).collect(),
            EdgeSet::CustomOut(f) | EdgeSet::CustomBoth(f, _) => {
                f(s, val).into_iter().map(|t| (t, 1.0)).collect()
            }
            EdgeSet::CustomIn(_) => {
                unreachable!("push kernel must check supports_push() first")
            }
        }
    }

    /// Enumerates `(source, weight)` pairs into `d` (pull orientation).
    pub fn sources(&self, g: &Graph, d: VertexId, val: &V) -> Vec<(VertexId, Weight)> {
        match self {
            EdgeSet::Forward => g.in_edges(d).collect(),
            EdgeSet::Reverse => g.out_edges(d).collect(),
            EdgeSet::TwoHop => {
                let mut out = Vec::new();
                for &mid in g.in_neighbors(d) {
                    for &s in g.in_neighbors(mid) {
                        if s != d {
                            out.push((s, 1.0));
                        }
                    }
                }
                out.sort_unstable_by_key(|&(s, _)| s);
                out.dedup_by_key(|&mut (s, _)| s);
                out
            }
            EdgeSet::TargetsIn(u) => {
                if u.contains(d) {
                    g.in_edges(d).collect()
                } else {
                    Vec::new()
                }
            }
            EdgeSet::CustomIn(f) | EdgeSet::CustomBoth(_, f) => {
                f(d, val).into_iter().map(|s| (s, 1.0)).collect()
            }
            EdgeSet::CustomOut(_) => {
                unreachable!("pull kernel must check supports_pull() first")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flash_graph::GraphBuilder;

    #[derive(Clone, Default)]
    struct P {
        parent: VertexId,
    }

    fn diamond() -> Graph {
        // 0 → 1 → 3, 0 → 2 → 3
        GraphBuilder::new(4)
            .edges([(0, 1), (0, 2), (1, 3), (2, 3)])
            .build()
            .unwrap()
    }

    #[test]
    fn forward_and_reverse() {
        let g = diamond();
        let h: EdgeSet<P> = EdgeSet::forward();
        let t: Vec<_> = h
            .targets(&g, 0, &P::default())
            .into_iter()
            .map(|(t, _)| t)
            .collect();
        assert_eq!(t, vec![1, 2]);
        let s: Vec<_> = h
            .sources(&g, 3, &P::default())
            .into_iter()
            .map(|(s, _)| s)
            .collect();
        assert_eq!(s, vec![1, 2]);

        let r: EdgeSet<P> = EdgeSet::reverse();
        let rt: Vec<_> = r
            .targets(&g, 3, &P::default())
            .into_iter()
            .map(|(t, _)| t)
            .collect();
        assert_eq!(rt, vec![1, 2]);
        let rs: Vec<_> = r
            .sources(&g, 1, &P::default())
            .into_iter()
            .map(|(s, _)| s)
            .collect();
        assert_eq!(rs, vec![3]);
    }

    #[test]
    fn two_hop_dedups_and_skips_self() {
        let g = diamond();
        let h: EdgeSet<P> = EdgeSet::two_hop();
        let t: Vec<_> = h
            .targets(&g, 0, &P::default())
            .into_iter()
            .map(|(t, _)| t)
            .collect();
        assert_eq!(t, vec![3], "two paths to 3 collapse to one edge");
        let s: Vec<_> = h
            .sources(&g, 3, &P::default())
            .into_iter()
            .map(|(s, _)| s)
            .collect();
        assert_eq!(s, vec![0]);
    }

    #[test]
    fn targets_in_filters() {
        let g = diamond();
        let u = VertexSubset::from_ids(4, [2]);
        let h: EdgeSet<P> = EdgeSet::targets_in(&u);
        let t: Vec<_> = h
            .targets(&g, 0, &P::default())
            .into_iter()
            .map(|(t, _)| t)
            .collect();
        assert_eq!(t, vec![2]);
        assert!(h.sources(&g, 3, &P::default()).is_empty());
        assert_eq!(h.sources(&g, 2, &P::default()).len(), 1);
    }

    #[test]
    fn custom_pointer_edges() {
        let g = diamond();
        let h: EdgeSet<P> = EdgeSet::custom_out(|_, p: &P| vec![p.parent]);
        let val = P { parent: 2 };
        let t: Vec<_> = h.targets(&g, 0, &val).into_iter().map(|(t, _)| t).collect();
        assert_eq!(t, vec![2]);
        assert!(h.is_virtual());
        assert!(h.supports_push());
        assert!(!h.supports_pull());

        let hin: EdgeSet<P> = EdgeSet::custom_in(|_, p: &P| vec![p.parent]);
        assert!(!hin.supports_push());
        assert!(hin.supports_pull());
    }

    #[test]
    fn orientation_capabilities() {
        assert!(EdgeSet::<P>::forward().supports_push());
        assert!(EdgeSet::<P>::forward().supports_pull());
        assert!(!EdgeSet::<P>::forward().is_virtual());
        assert!(EdgeSet::<P>::two_hop().is_virtual());
        let both: EdgeSet<P> = EdgeSet::custom(|_, _| vec![], |_, _| vec![]);
        assert!(both.supports_push() && both.supports_pull() && both.is_virtual());
    }

    #[test]
    fn streamability_follows_materialization() {
        assert!(EdgeSet::<P>::forward().is_streamable());
        assert!(EdgeSet::<P>::reverse().is_streamable());
        let u = VertexSubset::from_ids(4, [1]);
        assert!(EdgeSet::<P>::targets_in(&u).is_streamable());
        assert!(!EdgeSet::<P>::two_hop().is_streamable());
        assert!(!EdgeSet::<P>::custom_out(|_, p: &P| vec![p.parent]).is_streamable());
        assert!(!EdgeSet::<P>::custom_in(|_, p: &P| vec![p.parent]).is_streamable());
        let both: EdgeSet<P> = EdgeSet::custom(|_, _| vec![], |_, _| vec![]);
        assert!(!both.is_streamable());
    }

    #[test]
    fn weighted_edges_pass_weights() {
        let g = GraphBuilder::new(2)
            .weighted_edge(0, 1, 2.5)
            .build()
            .unwrap();
        let h: EdgeSet<P> = EdgeSet::forward();
        assert_eq!(h.targets(&g, 0, &P::default()), vec![(1, 2.5)]);
        assert_eq!(h.sources(&g, 1, &P::default()), vec![(0, 2.5)]);
    }
}
