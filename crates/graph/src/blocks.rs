//! Out-of-core block storage: the on-disk `.fgb` graph format and the
//! source×destination block grid the streaming EDGEMAP path charges
//! against.
//!
//! # File format (`FGB1`)
//!
//! A `.fgb` file is a 128-byte header followed by 8-aligned sections,
//! all host-endian (an endianness marker in the header rejects foreign
//! files, which keeps the mmap reinterpretation sound):
//!
//! ```text
//! header   magic "FGB1" · version u32 · endian u32 (0x01020304) ·
//!          flags u32 (bit0 weighted, bit1 symmetric) · n u64 · m u64 ·
//!          block_bits u32 · nb u32 · 7×u64 per-section FNV-1a
//!          checksums · zero pad to 128 B
//! sections out_offsets (n+1)×u64 · out_targets m×u32 (pad 8) ·
//!          [out_weights m×f32 (pad 8)] · in_offsets · in_targets ·
//!          [in_weights] · grid nb²×u64
//! ```
//!
//! Version 2 added the checksum block (one FNV-1a hash per section, in
//! file order, absent weight sections hashing as empty) and grew the
//! header from 64 to 128 bytes; version-1 files are still readable but
//! carry no content checksums.
//!
//! The `grid` section stores per-block arc counts in row-major
//! `[source_block × nb + dest_block]` order, over out-edges.
//!
//! # Dense/sparse classification
//!
//! Following M-Flash's bimodal model, a block is *dense* when its edge
//! data outweighs the vertex state spanning it:
//! `edges × bytes_per_edge ≥ (row_span + col_span) × 8`. Dense blocks
//! are worth caching (they are re-streamed across supersteps); sparse
//! blocks are streamed through without caching.

use crate::csr::{Csr, MapBuf, Segment};
use crate::error::GraphError;
use crate::graph::Graph;
use crate::{VertexId, Weight};
use std::collections::{HashMap, HashSet, VecDeque};
use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

const MAGIC: &[u8; 4] = b"FGB1";
const VERSION: u32 = 2;
const ENDIAN_MARK: u32 = 0x0102_0304;
const HEADER_LEN_V1: usize = 64;
const HEADER_LEN: usize = 128;
const FLAG_WEIGHTED: u32 = 1;
const FLAG_SYMMETRIC: u32 = 2;
/// Sections covered by the v2 header checksums, in file order.
const NUM_SECTIONS: usize = 7;
/// Header offset of the first per-section checksum slot.
const CHECKSUM_OFF: usize = 40;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(bytes: &[u8]) -> u64 {
    bytes.iter().fold(FNV_OFFSET, |h, &b| {
        (h ^ u64::from(b)).wrapping_mul(FNV_PRIME)
    })
}

/// Dense blocks cached per worker before FIFO eviction kicks in.
const CACHE_BLOCKS: usize = 256;

/// A touched block: `(direction, source_block, dest_block)`, where
/// direction 0 reads the out-CSR and 1 the in-CSR.
pub type BlockTouch = (u8, u32, u32);

// ---------------------------------------------------------------------------
// mmap plumbing
// ---------------------------------------------------------------------------

#[cfg(all(unix, target_pointer_width = "64"))]
mod mm {
    use std::os::unix::io::AsRawFd;

    extern "C" {
        fn mmap(addr: *mut u8, len: usize, prot: i32, flags: i32, fd: i32, offset: i64) -> *mut u8;
        fn munmap(addr: *mut u8, len: usize) -> i32;
    }

    /// Maps `len` bytes of `file` read-only; `None` when the kernel
    /// refuses (the caller falls back to a heap read).
    pub(super) fn map_file(file: &std::fs::File, len: usize) -> Option<(*mut u8, usize)> {
        const PROT_READ: i32 = 1;
        const MAP_PRIVATE: i32 = 2;
        if len == 0 {
            return None;
        }
        // SAFETY: a fresh private read-only mapping of a file we hold
        // open; the result is checked against MAP_FAILED below.
        let ptr = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ,
                MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            None
        } else {
            Some((ptr, len))
        }
    }

    /// Unmaps a region produced by [`map_file`].
    ///
    /// # Safety
    /// `ptr`/`len` must come from a successful [`map_file`] call and must
    /// not be unmapped twice.
    pub(super) unsafe fn unmap(ptr: *mut u8, len: usize) {
        let _ = munmap(ptr, len);
    }
}

/// Releases an `mmap` region owned by a [`MapBuf`] (called on drop).
///
/// # Safety
/// `ptr`/`len` must describe a live mapping created by this module and
/// must not be released twice.
#[cfg(all(unix, target_pointer_width = "64"))]
pub(crate) unsafe fn munmap_region(ptr: *mut u8, len: usize) {
    mm::unmap(ptr, len);
}

// ---------------------------------------------------------------------------
// Section layout
// ---------------------------------------------------------------------------

fn pad8(x: usize) -> usize {
    x.div_ceil(8) * 8
}

struct Layout {
    out_offsets: usize,
    out_targets: usize,
    out_weights: usize,
    in_offsets: usize,
    in_targets: usize,
    in_weights: usize,
    grid: usize,
    total: usize,
}

fn layout(n: usize, m: usize, nb: usize, weighted: bool, header_len: usize) -> Option<Layout> {
    let offsets_sz = n.checked_add(1)?.checked_mul(8)?;
    let targets_sz = pad8(m.checked_mul(4)?);
    let weights_sz = if weighted { targets_sz } else { 0 };
    let grid_sz = nb.checked_mul(nb)?.checked_mul(8)?;
    let out_offsets = header_len;
    let out_targets = out_offsets.checked_add(offsets_sz)?;
    let out_weights = out_targets.checked_add(targets_sz)?;
    let in_offsets = out_weights.checked_add(weights_sz)?;
    let in_targets = in_offsets.checked_add(offsets_sz)?;
    let in_weights = in_targets.checked_add(targets_sz)?;
    let grid = in_weights.checked_add(weights_sz)?;
    let total = grid.checked_add(grid_sz)?;
    Some(Layout {
        out_offsets,
        out_targets,
        out_weights,
        in_offsets,
        in_targets,
        in_weights,
        grid,
        total,
    })
}

// ---------------------------------------------------------------------------
// Block grid
// ---------------------------------------------------------------------------

/// The source×destination block partitioning of a graph: per-block arc
/// counts plus the M-Flash dense/sparse classification.
#[derive(Clone, Debug)]
pub struct BlockGrid {
    n: usize,
    block_bits: u32,
    nb: usize,
    edge_counts: Vec<u64>,
    dense: Vec<bool>,
    bytes_per_edge: u64,
}

/// Picks the block width for `n` vertices: start at 4096 vertices per
/// block and widen until at most 64 blocks span the id range (so the
/// grid never exceeds 64×64 cells).
fn block_bits_for(n: usize) -> u32 {
    let mut bits = 12u32;
    while bits < usize::BITS - 1 && n.div_ceil(1usize << bits) > 64 {
        bits += 1;
    }
    bits
}

impl BlockGrid {
    /// Scans a graph's out-edges into a fresh grid.
    pub fn build(g: &Graph) -> Self {
        let n = g.num_vertices();
        let block_bits = block_bits_for(n);
        let nb = n.div_ceil(1usize << block_bits).max(1);
        let mut edge_counts = vec![0u64; nb * nb];
        for v in 0..n {
            let sb = v >> block_bits;
            for &d in g.out_neighbors(v as VertexId) {
                edge_counts[sb * nb + ((d as usize) >> block_bits)] += 1;
            }
        }
        Self::from_counts(n, block_bits, nb, edge_counts, g.is_weighted())
    }

    /// Assembles a grid from stored counts (the reader path).
    fn from_counts(
        n: usize,
        block_bits: u32,
        nb: usize,
        edge_counts: Vec<u64>,
        weighted: bool,
    ) -> Self {
        let bytes_per_edge = if weighted { 8 } else { 4 };
        let mut grid = BlockGrid {
            n,
            block_bits,
            nb,
            edge_counts,
            dense: Vec::new(),
            bytes_per_edge,
        };
        grid.dense = (0..nb * nb)
            .map(|i| {
                let (sb, db) = (i / nb, i % nb);
                let row_span = (grid.block_end(sb) - grid.block_start(sb)) as u64;
                let col_span = (grid.block_end(db) - grid.block_start(db)) as u64;
                grid.edge_counts[i] * bytes_per_edge >= (row_span + col_span) * 8
            })
            .collect();
        grid
    }

    /// Number of blocks along each axis.
    #[inline]
    pub fn nb(&self) -> usize {
        self.nb
    }

    /// log2 of the block width in vertices.
    #[inline]
    pub fn block_bits(&self) -> u32 {
        self.block_bits
    }

    /// The block a vertex id falls into.
    #[inline]
    pub fn block_of(&self, v: VertexId) -> usize {
        (v as usize) >> self.block_bits
    }

    /// First vertex id of block `b`.
    #[inline]
    pub fn block_start(&self, b: usize) -> usize {
        b << self.block_bits
    }

    /// One past the last vertex id of block `b` (clamped to `n`).
    #[inline]
    pub fn block_end(&self, b: usize) -> usize {
        ((b + 1) << self.block_bits).min(self.n)
    }

    /// Arc count of block `(sb, db)`.
    #[inline]
    pub fn edge_count(&self, sb: usize, db: usize) -> u64 {
        self.edge_counts[sb * self.nb + db]
    }

    /// `true` when block `(sb, db)` is classified dense (cache-worthy).
    #[inline]
    pub fn is_dense(&self, sb: usize, db: usize) -> bool {
        self.dense[sb * self.nb + db]
    }

    /// Approximate on-disk bytes of block `(sb, db)`.
    #[inline]
    pub fn block_bytes(&self, sb: usize, db: usize) -> u64 {
        self.edge_count(sb, db) * self.bytes_per_edge
    }

    /// Count of non-empty dense blocks.
    pub fn num_dense(&self) -> usize {
        (0..self.nb * self.nb)
            .filter(|&i| self.edge_counts[i] > 0 && self.dense[i])
            .count()
    }

    /// Count of non-empty sparse blocks.
    pub fn num_sparse(&self) -> usize {
        (0..self.nb * self.nb)
            .filter(|&i| self.edge_counts[i] > 0 && !self.dense[i])
            .count()
    }
}

// ---------------------------------------------------------------------------
// Streaming handle: counters + per-worker FIFO block cache
// ---------------------------------------------------------------------------

/// A point-in-time read of the streaming counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StreamSnapshot {
    /// Total block bytes streamed from storage (cache misses only).
    pub bytes_streamed: u64,
    /// Blocks streamed from storage (cache misses).
    pub blocks_streamed: u64,
    /// Block touches served from a worker's cache.
    pub cache_hits: u64,
}

#[derive(Default)]
struct BlockCache {
    order: VecDeque<BlockTouch>,
    present: HashSet<BlockTouch>,
}

impl BlockCache {
    fn contains(&self, key: &BlockTouch) -> bool {
        self.present.contains(key)
    }

    fn insert(&mut self, key: BlockTouch) {
        if self.present.insert(key) {
            self.order.push_back(key);
            if self.order.len() > CACHE_BLOCKS {
                if let Some(evicted) = self.order.pop_front() {
                    self.present.remove(&evicted);
                }
            }
        }
    }
}

/// Per-run streaming accounting: byte/hit counters and per-worker FIFO
/// caches of dense blocks. Each cluster owns its *own* scope, so several
/// concurrent runs sharing one block-backed [`Graph`] never charge each
/// other's deltas or warm each other's caches. (The handle itself used to
/// carry these counters; because it is `Arc`-shared per graph, two
/// simultaneous clusters would double-count one another's streaming.)
#[derive(Default)]
pub struct StreamScope {
    bytes_streamed: AtomicU64,
    blocks_streamed: AtomicU64,
    cache_hits: AtomicU64,
    caches: Mutex<HashMap<usize, BlockCache>>,
}

impl StreamScope {
    /// A fresh scope with zeroed counters and cold caches.
    pub fn new() -> StreamScope {
        StreamScope::default()
    }

    /// Reads the monotone streaming counters.
    pub fn snapshot(&self) -> StreamSnapshot {
        StreamSnapshot {
            bytes_streamed: self.bytes_streamed.load(Ordering::Relaxed),
            blocks_streamed: self.blocks_streamed.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for StreamScope {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamScope")
            .field("snapshot", &self.snapshot())
            .finish()
    }
}

/// The immutable per-graph block descriptor a block-backed [`Graph`]
/// carries: just the block grid and weight flag. All mutable streaming
/// state (counters, caches) lives in a per-run [`StreamScope`]; kernels
/// record which blocks they touched and replay the list against a scope
/// once per superstep, which keeps the accounting deterministic even
/// when worker chunks execute on racing threads.
pub struct BlockHandle {
    grid: BlockGrid,
    weighted: bool,
}

impl BlockHandle {
    fn new(grid: BlockGrid, weighted: bool) -> Self {
        BlockHandle { grid, weighted }
    }

    /// The block grid.
    #[inline]
    pub fn grid(&self) -> &BlockGrid {
        &self.grid
    }

    /// `true` when the backing file stores edge weights.
    #[inline]
    pub fn is_weighted(&self) -> bool {
        self.weighted
    }

    /// Replays one worker's ordered block-touch list against the scope's
    /// cache for that worker: dense blocks hit or enter the FIFO cache,
    /// sparse blocks always stream. Charges the scope's counters once
    /// per call.
    pub fn replay(&self, scope: &StreamScope, worker: usize, touches: &[BlockTouch]) {
        if touches.is_empty() {
            return;
        }
        let mut bytes = 0u64;
        let mut blocks = 0u64;
        let mut hits = 0u64;
        {
            // A panicked kernel thread leaves only fully-applied cache
            // entries behind, so the poisoned state is safe to adopt.
            let mut caches = scope
                .caches
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let cache = caches.entry(worker).or_default();
            for &touch in touches {
                let (_, sb, db) = touch;
                let (sb, db) = (sb as usize, db as usize);
                if self.grid.is_dense(sb, db) {
                    if cache.contains(&touch) {
                        hits += 1;
                        continue;
                    }
                    cache.insert(touch);
                }
                blocks += 1;
                bytes += self.grid.block_bytes(sb, db);
            }
        }
        scope.bytes_streamed.fetch_add(bytes, Ordering::Relaxed);
        scope.blocks_streamed.fetch_add(blocks, Ordering::Relaxed);
        scope.cache_hits.fetch_add(hits, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for BlockHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockHandle")
            .field("nb", &self.grid.nb)
            .field("dense", &self.grid.num_dense())
            .field("sparse", &self.grid.num_sparse())
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_offsets<W: std::io::Write>(w: &mut W, offsets: &[usize]) -> std::io::Result<()> {
    for &o in offsets {
        w.write_all(&(o as u64).to_ne_bytes())?;
    }
    Ok(())
}

fn write_targets<W: std::io::Write>(w: &mut W, targets: &[VertexId]) -> std::io::Result<()> {
    for &t in targets {
        w.write_all(&t.to_ne_bytes())?;
    }
    if !(targets.len() * 4).is_multiple_of(8) {
        w.write_all(&[0u8; 4])?;
    }
    Ok(())
}

fn write_weights<W: std::io::Write>(w: &mut W, weights: &[Weight]) -> std::io::Result<()> {
    for &x in weights {
        w.write_all(&x.to_ne_bytes())?;
    }
    if !(weights.len() * 4).is_multiple_of(8) {
        w.write_all(&[0u8; 4])?;
    }
    Ok(())
}

/// Forwards writes into the inner writer while folding every byte into
/// an FNV-1a running hash, so [`write_blocks`] can stamp per-section
/// checksums without buffering whole sections.
struct HashingWriter<'a, W: std::io::Write> {
    inner: &'a mut W,
    hash: u64,
}

impl<'a, W: std::io::Write> HashingWriter<'a, W> {
    fn new(inner: &'a mut W) -> Self {
        HashingWriter {
            inner,
            hash: FNV_OFFSET,
        }
    }
}

impl<W: std::io::Write> std::io::Write for HashingWriter<'_, W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.hash = buf.iter().fold(self.hash, |h, &b| {
            (h ^ u64::from(b)).wrapping_mul(FNV_PRIME)
        });
        self.inner.write_all(buf)?;
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

/// Writes `g` to `path` in the `.fgb` block format described in the
/// module docs. The grid section is computed here with one edge scan;
/// per-section checksums are accumulated while streaming and patched
/// into the header afterwards.
pub fn write_blocks(g: &Graph, path: impl AsRef<Path>) -> Result<(), GraphError> {
    let n = g.num_vertices();
    let m = g.num_edges();
    let grid = BlockGrid::build(g);
    let weighted = g.is_weighted();
    let file = std::fs::File::create(path.as_ref())?;
    let mut w = std::io::BufWriter::new(file);

    let mut header = [0u8; HEADER_LEN];
    header[0..4].copy_from_slice(MAGIC);
    header[4..8].copy_from_slice(&VERSION.to_ne_bytes());
    header[8..12].copy_from_slice(&ENDIAN_MARK.to_ne_bytes());
    let mut flags = 0u32;
    if weighted {
        flags |= FLAG_WEIGHTED;
    }
    if g.is_symmetric() {
        flags |= FLAG_SYMMETRIC;
    }
    header[12..16].copy_from_slice(&flags.to_ne_bytes());
    header[16..24].copy_from_slice(&(n as u64).to_ne_bytes());
    header[24..32].copy_from_slice(&(m as u64).to_ne_bytes());
    header[32..36].copy_from_slice(&grid.block_bits.to_ne_bytes());
    header[36..40].copy_from_slice(&(grid.nb as u32).to_ne_bytes());
    w.write_all(&header)?;

    let mut sums = [0u64; NUM_SECTIONS];
    let mut si = 0;
    for csr in [g.out_csr(), g.in_csr()] {
        let mut hw = HashingWriter::new(&mut w);
        write_offsets(&mut hw, csr.offsets())?;
        sums[si] = hw.hash;
        let mut hw = HashingWriter::new(&mut w);
        write_targets(&mut hw, csr.targets())?;
        sums[si + 1] = hw.hash;
        let mut hw = HashingWriter::new(&mut w);
        if let Some(weights) = csr.weights() {
            write_weights(&mut hw, weights)?;
        }
        sums[si + 2] = hw.hash;
        si += 3;
    }
    let mut hw = HashingWriter::new(&mut w);
    for &c in &grid.edge_counts {
        hw.write_all(&c.to_ne_bytes())?;
    }
    sums[si] = hw.hash;

    w.flush()?;
    let mut file = w
        .into_inner()
        .map_err(std::io::IntoInnerError::into_error)?;
    use std::io::Seek as _;
    file.seek(std::io::SeekFrom::Start(CHECKSUM_OFF as u64))?;
    for s in sums {
        file.write_all(&s.to_ne_bytes())?;
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

fn bad(msg: impl Into<String>) -> GraphError {
    GraphError::BlockFormat(msg.into())
}

fn u32_at(bytes: &[u8], at: usize) -> Result<u32, GraphError> {
    let raw = bytes
        .get(at..at + 4)
        .and_then(|s| <[u8; 4]>::try_from(s).ok())
        .ok_or_else(|| bad(format!("header field at {at} is past the end of the file")))?;
    Ok(u32::from_ne_bytes(raw))
}

fn u64_at(bytes: &[u8], at: usize) -> Result<u64, GraphError> {
    let raw = bytes
        .get(at..at + 8)
        .and_then(|s| <[u8; 8]>::try_from(s).ok())
        .ok_or_else(|| bad(format!("header field at {at} is past the end of the file")))?;
    Ok(u64::from_ne_bytes(raw))
}

/// Builds the `n + 1` offsets segment at `at`: a zero-copy view on
/// 64-bit hosts, an owned widening copy elsewhere.
fn offsets_segment(buf: &Arc<MapBuf>, at: usize, count: usize) -> Segment<usize> {
    #[cfg(target_pointer_width = "64")]
    {
        Segment::mapped(Arc::clone(buf), at, count)
    }
    #[cfg(not(target_pointer_width = "64"))]
    {
        let raw: Segment<u64> = Segment::mapped(Arc::clone(buf), at, count);
        Segment::Owned(raw.iter().map(|&x| x as usize).collect())
    }
}

/// `true` when `FLASH_NO_MMAP` asks for the buffered-heap reader.
fn mmap_disabled() -> bool {
    std::env::var_os("FLASH_NO_MMAP").is_some_and(|v| v != "0")
}

fn load_buffer(path: &Path, file_len: usize, force_heap: bool) -> Result<Arc<MapBuf>, GraphError> {
    #[cfg(all(unix, target_pointer_width = "64"))]
    if !force_heap {
        let file = std::fs::File::open(path)?;
        if let Some((ptr, len)) = mm::map_file(&file, file_len) {
            return Ok(Arc::new(MapBuf::from_mmap(ptr, len)));
        }
    }
    #[cfg(not(all(unix, target_pointer_width = "64")))]
    let _ = force_heap;
    let bytes = std::fs::read(path)?;
    if bytes.len() != file_len {
        return Err(bad("file changed size while loading"));
    }
    Ok(Arc::new(MapBuf::from_bytes(&bytes)))
}

/// Opens a `.fgb` file written by [`write_blocks`] as a block-backed
/// [`Graph`]: adjacency served zero-copy from the mapped file (or a heap
/// buffer under `FLASH_NO_MMAP=1`), with the block grid and streaming
/// counters attached as a [`BlockHandle`].
pub fn open_blocks(path: impl AsRef<Path>) -> Result<Graph, GraphError> {
    open_blocks_impl(path.as_ref(), mmap_disabled())
}

fn open_blocks_impl(path: &Path, force_heap: bool) -> Result<Graph, GraphError> {
    let meta = std::fs::metadata(path)?;
    let file_len = usize::try_from(meta.len()).map_err(|_| bad("file too large for this host"))?;
    if file_len < HEADER_LEN_V1 {
        return Err(bad(format!("{file_len} bytes is shorter than the header")));
    }
    let buf = load_buffer(path, file_len, force_heap)?;
    let bytes = buf.as_slice();

    if &bytes[0..4] != MAGIC {
        return Err(bad("bad magic (not an FGB1 file)"));
    }
    let version = u32_at(bytes, 4)?;
    let header_len = match version {
        1 => HEADER_LEN_V1,
        2 => HEADER_LEN,
        v => return Err(bad(format!("unsupported version {v}"))),
    };
    if file_len < header_len {
        return Err(bad(format!(
            "{file_len} bytes is shorter than the v{version} header"
        )));
    }
    if u32_at(bytes, 8)? != ENDIAN_MARK {
        return Err(bad("endianness mismatch (written on a different host)"));
    }
    let flags = u32_at(bytes, 12)?;
    if flags & !(FLAG_WEIGHTED | FLAG_SYMMETRIC) != 0 {
        return Err(bad(format!("unknown flags {flags:#x}")));
    }
    let weighted = flags & FLAG_WEIGHTED != 0;
    let symmetric = flags & FLAG_SYMMETRIC != 0;
    let n = usize::try_from(u64_at(bytes, 16)?).map_err(|_| bad("n overflows this host"))?;
    let m = usize::try_from(u64_at(bytes, 24)?).map_err(|_| bad("m overflows this host"))?;
    if n >= u32::MAX as usize {
        return Err(bad(format!("{n} vertices exceeds the u32 id space")));
    }
    let block_bits = u32_at(bytes, 32)?;
    let nb = u32_at(bytes, 36)? as usize;
    if block_bits >= usize::BITS || nb == 0 || nb != n.div_ceil(1usize << block_bits).max(1) {
        return Err(bad(format!(
            "inconsistent grid geometry (block_bits {block_bits}, nb {nb}, n {n})"
        )));
    }
    let lay =
        layout(n, m, nb, weighted, header_len).ok_or_else(|| bad("section layout overflows"))?;
    if lay.total != file_len {
        return Err(bad(format!(
            "expected {} bytes for n={n} m={m}, file has {file_len}",
            lay.total
        )));
    }

    if version >= 2 {
        let sections = [
            ("out_offsets", lay.out_offsets, lay.out_targets),
            ("out_targets", lay.out_targets, lay.out_weights),
            ("out_weights", lay.out_weights, lay.in_offsets),
            ("in_offsets", lay.in_offsets, lay.in_targets),
            ("in_targets", lay.in_targets, lay.in_weights),
            ("in_weights", lay.in_weights, lay.grid),
            ("grid", lay.grid, lay.total),
        ];
        for (i, (name, start, end)) in sections.into_iter().enumerate() {
            let want = u64_at(bytes, CHECKSUM_OFF + i * 8)?;
            let got = fnv1a(&bytes[start..end]);
            if want != got {
                return Err(bad(format!(
                    "{name} section checksum mismatch (stored {want:#018x}, computed {got:#018x})"
                )));
            }
        }
    }

    let grid_raw: Segment<u64> = Segment::mapped(Arc::clone(&buf), lay.grid, nb * nb);
    let edge_counts: Vec<u64> = grid_raw.to_vec();
    if edge_counts.iter().sum::<u64>() != m as u64 {
        return Err(bad("grid arc counts do not sum to m"));
    }

    let mut csrs = Vec::with_capacity(2);
    for (off_at, tgt_at, wt_at) in [
        (lay.out_offsets, lay.out_targets, lay.out_weights),
        (lay.in_offsets, lay.in_targets, lay.in_weights),
    ] {
        let offsets = offsets_segment(&buf, off_at, n + 1);
        if offsets[0] != 0 || offsets[n] != m {
            return Err(bad("offsets section endpoints are inconsistent"));
        }
        let targets: Segment<VertexId> = Segment::mapped(Arc::clone(&buf), tgt_at, m);
        let weights = weighted.then(|| Segment::mapped(Arc::clone(&buf), wt_at, m));
        csrs.push(Csr::from_raw_segments(offsets, targets, weights));
    }
    let inn = csrs.pop().expect("two CSRs");
    let out = csrs.pop().expect("two CSRs");
    let mut g = Graph::from_parts(n, out, inn, symmetric);
    let grid = BlockGrid::from_counts(n, block_bits, nb, edge_counts, weighted);
    g.attach_blocks(Arc::new(BlockHandle::new(grid, weighted)));
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::generators;
    use crate::testutil::TempDirGuard;

    fn assert_bit_identical(a: &Graph, b: &Graph) {
        assert_eq!(a.num_vertices(), b.num_vertices());
        assert_eq!(a.num_edges(), b.num_edges());
        assert_eq!(a.is_weighted(), b.is_weighted());
        assert_eq!(a.is_symmetric(), b.is_symmetric());
        for (x, y) in [(a.out_csr(), b.out_csr()), (a.in_csr(), b.in_csr())] {
            assert_eq!(x.offsets(), y.offsets());
            assert_eq!(x.targets(), y.targets());
            let wx: Option<Vec<u32>> = x.weights().map(|w| w.iter().map(|f| f.to_bits()).collect());
            let wy: Option<Vec<u32>> = y.weights().map(|w| w.iter().map(|f| f.to_bits()).collect());
            assert_eq!(wx, wy);
        }
    }

    fn round_trip(g: &Graph, name: &str) {
        let guard = TempDirGuard::new("blocks");
        let path = guard.path().join(name);
        write_blocks(g, &path).expect("write");
        for force_heap in [false, true] {
            let back = open_blocks_impl(&path, force_heap).expect("open");
            assert_bit_identical(g, &back);
            let handle = back.block_handle().expect("handle attached");
            let grid = handle.grid();
            let total: u64 = (0..grid.nb())
                .flat_map(|sb| (0..grid.nb()).map(move |db| grid.edge_count(sb, db)))
                .sum();
            assert_eq!(total, g.num_edges() as u64);
            if !force_heap {
                // Mapped (or heap-fallback) adjacency never double-counts
                // into the owned heap estimate.
                assert!(back.mapped_bytes() > 0 || g.num_edges() == 0);
            }
        }
    }

    #[test]
    fn round_trips_generated_graphs_bit_exactly() {
        // Property sweep: assorted sizes/seeds, unweighted and weighted,
        // must survive write→open bit-exactly on both reader paths.
        for (n, m, seed) in [
            (1usize, 0usize, 1u64),
            (17, 40, 2),
            (300, 2_000, 7),
            (5_000, 20_000, 9),
            (9_001, 90_000, 11),
        ] {
            let g = generators::erdos_renyi(n, m, seed);
            round_trip(&g, &format!("er-{n}-{m}-{seed}.fgb"));
            let w = generators::with_random_weights(&g, 0.1, 2.0, seed);
            round_trip(&w, &format!("er-w-{n}-{m}-{seed}.fgb"));
        }
        let web = generators::web_graph(2_000, 8, 16, 3);
        round_trip(&web, "web.fgb");
    }

    #[test]
    fn round_trips_the_empty_graph() {
        let g = GraphBuilder::new(0).build().expect("empty graph");
        round_trip(&g, "empty.fgb");
    }

    #[test]
    fn round_trips_a_directed_weighted_triangle() {
        let g = GraphBuilder::new(3)
            .weighted_edges([(0, 1, 0.5), (1, 2, -1.5), (2, 0, 2.25)])
            .build()
            .expect("graph");
        round_trip(&g, "tri.fgb");
    }

    #[test]
    fn rejects_garbage_and_truncation() {
        let guard = TempDirGuard::new("blocks");
        let path = guard.path().join("garbage.fgb");
        std::fs::write(
            &path,
            b"not a block file at all, padded to 64+ bytes ....................",
        )
        .unwrap();
        assert!(matches!(
            open_blocks_impl(&path, true),
            Err(GraphError::BlockFormat(_))
        ));
        std::fs::write(&path, b"FGB1").unwrap();
        assert!(matches!(
            open_blocks_impl(&path, true),
            Err(GraphError::BlockFormat(_))
        ));
        // Valid header, truncated body.
        let g = generators::erdos_renyi(100, 500, 5);
        write_blocks(&g, &path).unwrap();
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 8]).unwrap();
        assert!(matches!(
            open_blocks_impl(&path, true),
            Err(GraphError::BlockFormat(_))
        ));
    }

    #[test]
    fn detects_section_bitrot_via_checksums() {
        let guard = TempDirGuard::new("blocks");
        let path = guard.path().join("bitrot.fgb");
        let g = generators::with_random_weights(&generators::erdos_renyi(100, 500, 5), 0.5, 2.0, 6);
        write_blocks(&g, &path).unwrap();
        let full = std::fs::read(&path).unwrap();
        // A flipped bit anywhere in the body lands in exactly one section
        // and must trip that section's checksum before anything parses.
        for at in [
            HEADER_LEN,
            HEADER_LEN + 9,
            (HEADER_LEN + full.len()) / 2,
            full.len() - 1,
        ] {
            let mut rotten = full.clone();
            rotten[at] ^= 0x40;
            std::fs::write(&path, &rotten).unwrap();
            match open_blocks_impl(&path, true) {
                Err(GraphError::BlockFormat(msg)) => {
                    assert!(
                        msg.contains("checksum"),
                        "byte {at}: unexpected error {msg}"
                    )
                }
                other => panic!("byte {at}: expected checksum error, got {other:?}"),
            }
        }
        std::fs::write(&path, &full).unwrap();
        assert_bit_identical(&g, &open_blocks_impl(&path, true).unwrap());
    }

    #[test]
    fn still_reads_version_1_files() {
        // Synthesize a v1 file from the v2 writer's output: same fields,
        // no checksum block, 64-byte header.
        let guard = TempDirGuard::new("blocks");
        let g = generators::erdos_renyi(50, 200, 3);
        let p2 = guard.path().join("v2.fgb");
        write_blocks(&g, &p2).unwrap();
        let full = std::fs::read(&p2).unwrap();
        let mut v1 = full[..CHECKSUM_OFF].to_vec();
        v1.resize(HEADER_LEN_V1, 0);
        v1[4..8].copy_from_slice(&1u32.to_ne_bytes());
        v1.extend_from_slice(&full[HEADER_LEN..]);
        let p1 = guard.path().join("v1.fgb");
        std::fs::write(&p1, &v1).unwrap();
        for force_heap in [false, true] {
            assert_bit_identical(&g, &open_blocks_impl(&p1, force_heap).unwrap());
        }
        // Unknown future versions are still rejected.
        let mut v9 = full.clone();
        v9[4..8].copy_from_slice(&9u32.to_ne_bytes());
        let p9 = guard.path().join("v9.fgb");
        std::fs::write(&p9, &v9).unwrap();
        assert!(matches!(
            open_blocks_impl(&p9, true),
            Err(GraphError::BlockFormat(_))
        ));
    }

    #[test]
    fn grid_geometry_and_classification() {
        let g = generators::erdos_renyi(10_000, 200_000, 13);
        let grid = BlockGrid::build(&g);
        assert_eq!(grid.nb(), 10_000usize.div_ceil(1 << grid.block_bits()));
        assert_eq!(grid.block_of(0), 0);
        assert_eq!(grid.block_of(9_999), grid.nb() - 1);
        assert_eq!(grid.block_end(grid.nb() - 1), 10_000);
        assert_eq!(grid.num_dense() + grid.num_sparse(), {
            (0..grid.nb() * grid.nb())
                .filter(|&i| grid.edge_counts[i] > 0)
                .count()
        });
        // 200k arcs over a ~3x3 grid: the big blocks must be dense.
        assert!(grid.num_dense() > 0, "expected dense blocks, got none");
    }

    #[test]
    fn grid_never_exceeds_64_blocks_per_axis() {
        for n in [0usize, 1, 4_096, 4_097, 1 << 20, 100_000_000] {
            let bits = block_bits_for(n);
            assert!(n.div_ceil(1usize << bits).max(1) <= 64, "n={n}");
        }
    }

    #[test]
    fn replay_charges_misses_hits_and_sparse_bypass() {
        let g = generators::erdos_renyi(20_000, 400_000, 17);
        let guard = TempDirGuard::new("blocks");
        let path = guard.path().join("replay.fgb");
        write_blocks(&g, &path).unwrap();
        let back = open_blocks_impl(&path, true).unwrap();
        let handle = back.block_handle().unwrap();
        let grid = handle.grid();
        let dense = (0..grid.nb() as u32)
            .flat_map(|sb| (0..grid.nb() as u32).map(move |db| (sb, db)))
            .find(|&(sb, db)| grid.is_dense(sb as usize, db as usize))
            .expect("a dense block");
        let touch = (0u8, dense.0, dense.1);
        let scope = StreamScope::new();
        handle.replay(&scope, 0, &[touch, touch]);
        let snap = scope.snapshot();
        assert_eq!(snap.blocks_streamed, 1, "second touch hits the cache");
        assert_eq!(snap.cache_hits, 1);
        assert_eq!(
            snap.bytes_streamed,
            grid.block_bytes(dense.0 as usize, dense.1 as usize)
        );
        // Another worker has its own cache: same touch misses again.
        handle.replay(&scope, 1, &[touch]);
        assert_eq!(scope.snapshot().blocks_streamed, 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn stream_scopes_are_isolated_per_run() {
        // Regression: counters used to live on the Arc-shared BlockHandle,
        // so two simultaneous runs over one graph double-charged each
        // other's deltas. Each scope must now see only its own traffic.
        let g = generators::erdos_renyi(20_000, 400_000, 17);
        let guard = TempDirGuard::new("blocks");
        let path = guard.path().join("scopes.fgb");
        write_blocks(&g, &path).unwrap();
        let back = open_blocks_impl(&path, true).unwrap();
        let handle = back.block_handle().unwrap();
        let grid = handle.grid();
        let dense = (0..grid.nb() as u32)
            .flat_map(|sb| (0..grid.nb() as u32).map(move |db| (sb, db)))
            .find(|&(sb, db)| grid.is_dense(sb as usize, db as usize))
            .expect("a dense block");
        let touch = (0u8, dense.0, dense.1);
        let a = StreamScope::new();
        let b = StreamScope::new();
        handle.replay(&a, 0, &[touch, touch, touch]);
        handle.replay(&b, 0, &[touch]);
        // Scope `a` saw one miss + two hits; `b`'s cache is cold, so its
        // single touch is a miss — and neither sees the other's counts.
        assert_eq!(a.snapshot().blocks_streamed, 1);
        assert_eq!(a.snapshot().cache_hits, 2);
        assert_eq!(b.snapshot().blocks_streamed, 1);
        assert_eq!(b.snapshot().cache_hits, 0);
        let bytes = grid.block_bytes(dense.0 as usize, dense.1 as usize);
        assert_eq!(a.snapshot().bytes_streamed, bytes);
        assert_eq!(b.snapshot().bytes_streamed, bytes);
        let _ = std::fs::remove_file(&path);
    }
}
