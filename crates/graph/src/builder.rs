//! Incremental graph construction.

use crate::csr::Csr;
use crate::error::GraphError;
use crate::graph::Graph;
use crate::{VertexId, Weight};

/// Builds a [`Graph`] from an edge list with configurable cleanup passes.
///
/// ```
/// use flash_graph::GraphBuilder;
///
/// let g = GraphBuilder::new(4)
///     .edges([(0, 1), (1, 2), (2, 3), (0, 1)]) // duplicate kept by default
///     .dedup(true)                              // ... unless dedup is on
///     .symmetric(true)
///     .build()
///     .unwrap();
/// assert_eq!(g.num_edges(), 6);
/// ```
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(VertexId, VertexId)>,
    weights: Vec<Weight>,
    weighted: bool,
    symmetric: bool,
    dedup: bool,
    drop_self_loops: bool,
}

impl GraphBuilder {
    /// Starts a builder for a graph with `n` vertices (ids `0..n`).
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
            weights: Vec::new(),
            weighted: false,
            symmetric: false,
            dedup: false,
            drop_self_loops: false,
        }
    }

    /// Appends one unweighted edge.
    pub fn edge(mut self, s: VertexId, d: VertexId) -> Self {
        self.edges.push((s, d));
        if self.weighted {
            self.weights.push(1.0);
        }
        self
    }

    /// Appends one weighted edge, switching the builder to weighted mode.
    pub fn weighted_edge(mut self, s: VertexId, d: VertexId, w: Weight) -> Self {
        if !self.weighted {
            // Backfill unit weights for edges added before weights appeared.
            self.weights = vec![1.0; self.edges.len()];
            self.weighted = true;
        }
        self.edges.push((s, d));
        self.weights.push(w);
        self
    }

    /// Appends many unweighted edges.
    pub fn edges<I: IntoIterator<Item = (VertexId, VertexId)>>(mut self, it: I) -> Self {
        for (s, d) in it {
            self.edges.push((s, d));
            if self.weighted {
                self.weights.push(1.0);
            }
        }
        self
    }

    /// Appends many weighted edges.
    pub fn weighted_edges<I: IntoIterator<Item = (VertexId, VertexId, Weight)>>(
        mut self,
        it: I,
    ) -> Self {
        for (s, d, w) in it {
            self = self.weighted_edge(s, d, w);
        }
        self
    }

    /// When `true`, the reverse of every edge is added so the graph is
    /// undirected-equivalent (self-reverses are not duplicated).
    pub fn symmetric(mut self, on: bool) -> Self {
        self.symmetric = on;
        self
    }

    /// When `true`, parallel edges are collapsed (keeping the smallest
    /// weight, which is what MSF-style algorithms want).
    pub fn dedup(mut self, on: bool) -> Self {
        self.dedup = on;
        self
    }

    /// When `true`, self-loops are removed.
    pub fn drop_self_loops(mut self, on: bool) -> Self {
        self.drop_self_loops = on;
        self
    }

    /// Number of edges currently staged (before symmetrization/dedup).
    pub fn staged_edges(&self) -> usize {
        self.edges.len()
    }

    /// Validates and assembles the [`Graph`].
    pub fn build(self) -> Result<Graph, GraphError> {
        let GraphBuilder {
            n,
            mut edges,
            mut weights,
            weighted,
            symmetric,
            dedup,
            drop_self_loops,
        } = self;

        if n >= u32::MAX as usize {
            return Err(GraphError::TooManyVertices(n));
        }
        for &(s, d) in &edges {
            if s as usize >= n {
                return Err(GraphError::VertexOutOfRange { id: s as u64, n });
            }
            if d as usize >= n {
                return Err(GraphError::VertexOutOfRange { id: d as u64, n });
            }
        }
        if weighted && weights.len() != edges.len() {
            return Err(GraphError::WeightMismatch {
                edges: edges.len(),
                weights: weights.len(),
            });
        }

        if drop_self_loops {
            if weighted {
                let mut kept_w = Vec::with_capacity(weights.len());
                let mut kept_e = Vec::with_capacity(edges.len());
                for (i, &(s, d)) in edges.iter().enumerate() {
                    if s != d {
                        kept_e.push((s, d));
                        kept_w.push(weights[i]);
                    }
                }
                edges = kept_e;
                weights = kept_w;
            } else {
                edges.retain(|&(s, d)| s != d);
            }
        }

        if symmetric {
            let m = edges.len();
            for i in 0..m {
                let (s, d) = edges[i];
                if s != d {
                    edges.push((d, s));
                    if weighted {
                        weights.push(weights[i]);
                    }
                }
            }
        }

        if dedup {
            let mut order: Vec<usize> = (0..edges.len()).collect();
            if weighted {
                order.sort_unstable_by(|&a, &b| {
                    edges[a]
                        .cmp(&edges[b])
                        .then(weights[a].total_cmp(&weights[b]))
                });
            } else {
                order.sort_unstable_by_key(|&i| edges[i]);
            }
            let mut new_edges = Vec::with_capacity(edges.len());
            let mut new_weights = Vec::with_capacity(weights.len());
            let mut last: Option<(VertexId, VertexId)> = None;
            for i in order {
                if last == Some(edges[i]) {
                    continue;
                }
                last = Some(edges[i]);
                new_edges.push(edges[i]);
                if weighted {
                    new_weights.push(weights[i]);
                }
            }
            edges = new_edges;
            weights = new_weights;
        }

        let w_ref = weighted.then_some(weights.as_slice());
        let out = Csr::from_edges(n, &edges, w_ref);
        // Reversing (s, d) to (d, s) does not reorder the edge list, so the
        // same weight slice parallels the reversed edges exactly.
        let rev: Vec<(VertexId, VertexId)> = edges.iter().map(|&(s, d)| (d, s)).collect();
        let inn = Csr::from_edges(n, &rev, w_ref);
        Ok(Graph::from_parts(n, out, inn, symmetric))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_out_of_range() {
        let err = GraphBuilder::new(2).edge(0, 5).build().unwrap_err();
        assert!(matches!(err, GraphError::VertexOutOfRange { id: 5, n: 2 }));
    }

    #[test]
    fn symmetrize_skips_self_loops() {
        let g = GraphBuilder::new(2)
            .edges([(0, 0), (0, 1)])
            .symmetric(true)
            .build()
            .unwrap();
        // (0,0) once, (0,1) + (1,0)
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn drop_self_loops_works() {
        let g = GraphBuilder::new(3)
            .edges([(0, 0), (1, 1), (0, 1)])
            .drop_self_loops(true)
            .build()
            .unwrap();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn dedup_keeps_min_weight() {
        let g = GraphBuilder::new(2)
            .weighted_edge(0, 1, 5.0)
            .weighted_edge(0, 1, 2.0)
            .dedup(true)
            .build()
            .unwrap();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.out_weights(0).unwrap(), &[2.0]);
    }

    #[test]
    fn mixed_weighted_backfills_units() {
        let g = GraphBuilder::new(3)
            .edge(0, 1)
            .weighted_edge(1, 2, 3.0)
            .build()
            .unwrap();
        assert!(g.is_weighted());
        assert_eq!(g.out_weights(0).unwrap(), &[1.0]);
        assert_eq!(g.out_weights(1).unwrap(), &[3.0]);
    }

    #[test]
    fn in_weights_align_with_in_neighbors() {
        let g = GraphBuilder::new(3)
            .weighted_edges([(0, 2, 7.0), (1, 2, 8.0)])
            .build()
            .unwrap();
        assert_eq!(g.in_neighbors(2), &[0, 1]);
        assert_eq!(g.in_weights(2).unwrap(), &[7.0, 8.0]);
    }

    #[test]
    fn empty_graph_builds() {
        let g = GraphBuilder::new(0).build().unwrap();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn staged_edges_counts() {
        let b = GraphBuilder::new(3).edges([(0, 1), (1, 2)]);
        assert_eq!(b.staged_edges(), 2);
    }
}
