//! Error types for graph construction and I/O.

use std::fmt;

/// Errors produced while building, partitioning or parsing graphs.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// An edge referenced a vertex id `>= n`.
    VertexOutOfRange {
        /// The offending vertex id.
        id: u64,
        /// The number of vertices in the graph.
        n: usize,
    },
    /// The requested vertex count exceeds the id space (`u32::MAX - 1`).
    TooManyVertices(usize),
    /// A weighted operation was requested on an unweighted graph.
    Unweighted,
    /// Weight array length differs from edge count.
    WeightMismatch {
        /// Number of edges supplied.
        edges: usize,
        /// Number of weights supplied.
        weights: usize,
    },
    /// A partitioning with zero workers was requested.
    NoWorkers,
    /// Malformed input while parsing an edge-list.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// Human-readable description.
        msg: String,
    },
    /// Underlying I/O failure (message-only so the error stays `Clone`).
    Io(String),
    /// A block file (`.fgb`) failed validation: wrong magic, version,
    /// endianness, or a truncated/inconsistent section layout.
    BlockFormat(String),
    /// A membership change (rebalance/rejoin) on a [`crate::PartitionMap`]
    /// was rejected — e.g. an unknown host, a host already in the requested
    /// state, or a change that would leave no live hosts.
    Membership(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange { id, n } => {
                write!(f, "vertex id {id} out of range for graph with {n} vertices")
            }
            GraphError::TooManyVertices(n) => {
                write!(f, "{n} vertices exceeds the u32 id space")
            }
            GraphError::Unweighted => write!(f, "operation requires an edge-weighted graph"),
            GraphError::WeightMismatch { edges, weights } => {
                write!(f, "{weights} weights supplied for {edges} edges")
            }
            GraphError::NoWorkers => write!(f, "a partition requires at least one worker"),
            GraphError::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
            GraphError::Io(msg) => write!(f, "i/o error: {msg}"),
            GraphError::BlockFormat(msg) => write!(f, "block file rejected: {msg}"),
            GraphError::Membership(msg) => write!(f, "membership change rejected: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = GraphError::VertexOutOfRange { id: 9, n: 5 };
        assert!(e.to_string().contains("9"));
        assert!(e.to_string().contains("5"));
        assert!(GraphError::NoWorkers.to_string().contains("worker"));
        assert!(GraphError::Unweighted.to_string().contains("weight"));
        let m = GraphError::Membership("host 3 is already dead".into());
        assert!(m.to_string().contains("membership"));
        assert!(m.to_string().contains("host 3"));
        let b = GraphError::BlockFormat("bad magic".into());
        assert!(b.to_string().contains("block file"));
        assert!(b.to_string().contains("bad magic"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: GraphError = io.into();
        assert!(matches!(e, GraphError::Io(_)));
        assert!(e.to_string().contains("gone"));
    }
}
