//! Test-only filesystem helpers shared across the workspace.
//!
//! Hidden from docs: nothing here is part of the public API surface; the
//! module is `pub` only so downstream crates' test suites can reuse it.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT_DIR: AtomicU64 = AtomicU64::new(0);

/// A uniquely named temporary directory, removed on drop.
///
/// Ad-hoc `std::env::temp_dir().join("fixed-name")` directories collide
/// between concurrently running tests (and between repeated runs that
/// crashed before cleanup). The guard's name folds in the process id and
/// a process-wide counter, so every instantiation — across threads and
/// across test binaries — gets its own directory, and `Drop` removes the
/// whole tree even when the test fails an assertion.
///
/// ```
/// use flash_graph::testutil::TempDirGuard;
/// let dir = TempDirGuard::new("doc-example");
/// std::fs::write(dir.path().join("probe"), b"x").unwrap();
/// ```
pub struct TempDirGuard {
    path: PathBuf,
}

impl TempDirGuard {
    /// Creates `$TMPDIR/flash-<label>-<pid>-<seq>`, pre-created and empty.
    ///
    /// # Panics
    ///
    /// Panics when the directory cannot be created — in a test helper a
    /// loud failure beats silently writing into a shared location.
    #[allow(clippy::expect_used)]
    pub fn new(label: &str) -> Self {
        let seq = NEXT_DIR.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!("flash-{label}-{}-{seq}", std::process::id()));
        // A stale dir with the same name can only be ours (pid + seq), so
        // clear it rather than failing.
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).expect("create temp dir");
        TempDirGuard { path }
    }

    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDirGuard {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dirs_are_unique_and_cleaned_up() {
        let a = TempDirGuard::new("guard");
        let b = TempDirGuard::new("guard");
        assert_ne!(a.path(), b.path());
        assert!(a.path().is_dir() && b.path().is_dir());
        let kept = a.path().to_path_buf();
        std::fs::write(kept.join("probe"), b"x").unwrap();
        drop(a);
        assert!(!kept.exists(), "dropped guard removes its tree");
    }
}
