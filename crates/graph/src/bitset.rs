//! A compact fixed-capacity bit set over vertex ids.
//!
//! `vertexSubset`s in FLASH (and frontier membership in the dense/pull
//! `EDGEMAP` kernel, Algorithm 5 of the paper) need constant-time membership
//! tests over the full vertex range; this bit set backs those structures.

/// A fixed-capacity set of `u32` keys stored as one bit per key.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
    len: usize,
}

impl BitSet {
    /// Creates an empty set able to hold keys `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        BitSet {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
            len: 0,
        }
    }

    /// Creates a set containing every key in `0..capacity`.
    pub fn full(capacity: usize) -> Self {
        let mut s = BitSet::new(capacity);
        for w in &mut s.words {
            *w = u64::MAX;
        }
        // Clear the tail bits beyond `capacity`.
        let tail = capacity % 64;
        if tail != 0 {
            if let Some(last) = s.words.last_mut() {
                *last = (1u64 << tail) - 1;
            }
        }
        s.len = capacity;
        s
    }

    /// The key capacity this set was created with.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of keys currently in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no keys are present.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Membership test. Keys `>= capacity` are never members.
    #[inline]
    pub fn contains(&self, key: u32) -> bool {
        let k = key as usize;
        k < self.capacity && (self.words[k / 64] >> (k % 64)) & 1 == 1
    }

    /// Inserts `key`; returns `true` if it was newly added.
    ///
    /// # Panics
    /// Panics if `key >= capacity`.
    #[inline]
    pub fn insert(&mut self, key: u32) -> bool {
        let k = key as usize;
        assert!(
            k < self.capacity,
            "bitset key {k} >= capacity {}",
            self.capacity
        );
        let w = &mut self.words[k / 64];
        let mask = 1u64 << (k % 64);
        if *w & mask == 0 {
            *w |= mask;
            self.len += 1;
            true
        } else {
            false
        }
    }

    /// Removes `key`; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, key: u32) -> bool {
        let k = key as usize;
        if k >= self.capacity {
            return false;
        }
        let w = &mut self.words[k / 64];
        let mask = 1u64 << (k % 64);
        if *w & mask != 0 {
            *w &= !mask;
            self.len -= 1;
            true
        } else {
            false
        }
    }

    /// Removes all keys while keeping the capacity.
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.len = 0;
    }

    /// In-place set union. Both sets must share a capacity.
    pub fn union_with(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "bitset capacity mismatch");
        let mut len = 0usize;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= *b;
            len += a.count_ones() as usize;
        }
        self.len = len;
    }

    /// In-place set intersection. Both sets must share a capacity.
    pub fn intersect_with(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "bitset capacity mismatch");
        let mut len = 0usize;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= *b;
            len += a.count_ones() as usize;
        }
        self.len = len;
    }

    /// In-place set difference (`self \ other`). Both sets must share a capacity.
    pub fn difference_with(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "bitset capacity mismatch");
        let mut len = 0usize;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !*b;
            len += a.count_ones() as usize;
        }
        self.len = len;
    }

    /// Iterates the keys in ascending order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Collects the keys into a sorted vector.
    pub fn to_vec(&self) -> Vec<u32> {
        self.iter().collect()
    }

    /// Raw words, exposed so callers can serialize membership cheaply.
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

impl FromIterator<u32> for BitSet {
    /// Builds a set with capacity `max_key + 1` from the iterator.
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        let keys: Vec<u32> = iter.into_iter().collect();
        let cap = keys.iter().map(|&k| k as usize + 1).max().unwrap_or(0);
        let mut s = BitSet::new(cap);
        for k in keys {
            s.insert(k);
        }
        s
    }
}

/// Ascending-order iterator over a [`BitSet`].
pub struct Iter<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = u32;

    #[inline]
    fn next(&mut self) -> Option<u32> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros();
                self.current &= self.current - 1;
                return Some((self.word_idx * 64) as u32 + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(64));
        assert_eq!(s.len(), 3);
        assert!(s.contains(0) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1));
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn out_of_range_contains_is_false() {
        let s = BitSet::new(10);
        assert!(!s.contains(10));
        assert!(!s.contains(u32::MAX));
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn out_of_range_insert_panics() {
        BitSet::new(10).insert(10);
    }

    #[test]
    fn full_respects_tail() {
        let s = BitSet::full(70);
        assert_eq!(s.len(), 70);
        assert!(s.contains(69));
        assert!(!s.contains(70));
        assert_eq!(s.iter().count(), 70);
    }

    #[test]
    fn full_with_exact_word_boundary() {
        let s = BitSet::full(128);
        assert_eq!(s.len(), 128);
        assert!(s.contains(127));
    }

    #[test]
    fn set_algebra() {
        let a: BitSet = [1u32, 2, 3, 64].into_iter().collect();
        let mut b = BitSet::new(a.capacity());
        b.insert(2);
        b.insert(64);
        b.insert(5);

        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.to_vec(), vec![1, 2, 3, 5, 64]);

        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.to_vec(), vec![2, 64]);

        let mut d = a.clone();
        d.difference_with(&b);
        assert_eq!(d.to_vec(), vec![1, 3]);
    }

    #[test]
    fn iter_ascending_and_complete() {
        let keys = [0u32, 7, 63, 64, 65, 200];
        let s: BitSet = keys.iter().copied().collect();
        assert_eq!(s.to_vec(), keys.to_vec());
    }

    #[test]
    fn clear_resets() {
        let mut s = BitSet::full(33);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
        assert_eq!(s.capacity(), 33);
    }

    #[test]
    fn empty_capacity_zero() {
        let s = BitSet::new(0);
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
    }
}
