//! Disjoint-set union (union–find).
//!
//! The paper ships `dsu`, `dsu_find` and `dsu_union` as FLASH built-ins used
//! by the BCC (Algorithm 19) and MSF (Algorithm 21) applications; this module
//! is that built-in: path-halving find + union by size.

use crate::VertexId;

/// A disjoint-set forest over vertex ids `0..n`.
#[derive(Clone, Debug)]
pub struct DisjointSets {
    parent: Vec<VertexId>,
    size: Vec<u32>,
    sets: usize,
}

impl DisjointSets {
    /// Creates `n` singleton sets (the paper's `dsu(V)`).
    pub fn new(n: usize) -> Self {
        DisjointSets {
            parent: (0..n as VertexId).collect(),
            size: vec![1; n],
            sets: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// `true` when there are no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets remaining.
    pub fn num_sets(&self) -> usize {
        self.sets
    }

    /// Representative of the set containing `v` (the paper's `dsu_find`),
    /// with path halving.
    pub fn find(&mut self, mut v: VertexId) -> VertexId {
        while self.parent[v as usize] != v {
            let gp = self.parent[self.parent[v as usize] as usize];
            self.parent[v as usize] = gp;
            v = gp;
        }
        v
    }

    /// Read-only find (no compression) for shared contexts.
    pub fn find_immutable(&self, mut v: VertexId) -> VertexId {
        while self.parent[v as usize] != v {
            v = self.parent[v as usize];
        }
        v
    }

    /// Merges the sets of `a` and `b` (the paper's `dsu_union`); returns
    /// `true` if they were previously disjoint.
    pub fn union(&mut self, a: VertexId, b: VertexId) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra as usize] >= self.size[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
        self.sets -= 1;
        true
    }

    /// `true` if `a` and `b` are in the same set.
    pub fn same(&mut self, a: VertexId, b: VertexId) -> bool {
        self.find(a) == self.find(b)
    }

    /// Size of the set containing `v`.
    pub fn set_size(&mut self, v: VertexId) -> usize {
        let r = self.find(v);
        self.size[r as usize] as usize
    }

    /// Canonical labels: `labels[v]` = representative of `v`'s set.
    pub fn labels(&mut self) -> Vec<VertexId> {
        (0..self.parent.len() as VertexId)
            .map(|v| self.find(v))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_initially() {
        let mut d = DisjointSets::new(5);
        assert_eq!(d.num_sets(), 5);
        for v in 0..5 {
            assert_eq!(d.find(v), v);
            assert_eq!(d.set_size(v), 1);
        }
    }

    #[test]
    fn union_merges() {
        let mut d = DisjointSets::new(6);
        assert!(d.union(0, 1));
        assert!(d.union(2, 3));
        assert!(!d.union(1, 0));
        assert!(d.union(0, 2));
        assert_eq!(d.num_sets(), 3);
        assert!(d.same(1, 3));
        assert!(!d.same(1, 4));
        assert_eq!(d.set_size(3), 4);
    }

    #[test]
    fn labels_are_consistent() {
        let mut d = DisjointSets::new(4);
        d.union(0, 3);
        let labels = d.labels();
        assert_eq!(labels[0], labels[3]);
        assert_ne!(labels[0], labels[1]);
    }

    #[test]
    fn find_immutable_matches_find() {
        let mut d = DisjointSets::new(8);
        d.union(0, 1);
        d.union(1, 2);
        d.union(5, 6);
        for v in 0..8 {
            assert_eq!(d.find_immutable(v), d.clone().find(v));
        }
    }

    #[test]
    fn long_chain_compresses() {
        let mut d = DisjointSets::new(1000);
        for v in 0..999 {
            d.union(v, v + 1);
        }
        assert_eq!(d.num_sets(), 1);
        assert_eq!(d.set_size(0), 1000);
        assert_eq!(d.find(999), d.find(0));
    }
}
