//! Graph statistics: degree distributions and diameter estimation.

use crate::graph::Graph;
use crate::VertexId;
use std::collections::VecDeque;

/// Summary statistics of a graph, printed by the Table III regenerator.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// `|V|`.
    pub vertices: usize,
    /// `|E|` (directed arcs).
    pub edges: usize,
    /// Maximum out-degree.
    pub max_degree: usize,
    /// Average out-degree.
    pub avg_degree: f64,
    /// Double-sweep BFS lower bound on the diameter.
    pub pseudo_diameter: usize,
    /// Number of weakly connected components.
    pub components: usize,
}

/// Computes [`GraphStats`] for `g` (O(|V| + |E|)).
pub fn graph_stats(g: &Graph) -> GraphStats {
    let components = {
        let mut dsu = crate::dsu::DisjointSets::new(g.num_vertices());
        for (s, d, _) in g.edges() {
            dsu.union(s, d);
        }
        dsu.num_sets()
    };
    GraphStats {
        vertices: g.num_vertices(),
        edges: g.num_edges(),
        max_degree: g.max_degree(),
        avg_degree: g.avg_degree(),
        pseudo_diameter: if g.num_vertices() == 0 {
            0
        } else {
            pseudo_diameter(g, 0)
        },
        components,
    }
}

/// BFS levels from `root` over out-edges; unreachable = `usize::MAX`.
///
/// An out-of-range `root` (including any root on an empty graph) is
/// defined as "nothing reachable": every entry stays `usize::MAX`.
pub fn bfs_levels(g: &Graph, root: VertexId) -> Vec<usize> {
    let mut dist = vec![usize::MAX; g.num_vertices()];
    if root as usize >= g.num_vertices() {
        return dist;
    }
    let mut q = VecDeque::new();
    dist[root as usize] = 0;
    q.push_back(root);
    while let Some(v) = q.pop_front() {
        for &t in g.out_neighbors(v) {
            if dist[t as usize] == usize::MAX {
                dist[t as usize] = dist[v as usize] + 1;
                q.push_back(t);
            }
        }
    }
    dist
}

/// Double-sweep pseudo-diameter: BFS from `start`, then BFS from the
/// farthest reached vertex; returns that eccentricity (a lower bound on the
/// true diameter, exact on trees). Returns 0 when `start` is out of range
/// (e.g. on an empty graph).
pub fn pseudo_diameter(g: &Graph, start: VertexId) -> usize {
    if start as usize >= g.num_vertices() {
        return 0;
    }
    let first = bfs_levels(g, start);
    let far = first
        .iter()
        .enumerate()
        .filter(|(_, &d)| d != usize::MAX)
        .max_by_key(|(_, &d)| d)
        .map(|(v, _)| v as VertexId)
        .unwrap_or(start);
    let second = bfs_levels(g, far);
    second
        .iter()
        .filter(|&&d| d != usize::MAX)
        .max()
        .copied()
        .unwrap_or(0)
}

/// Degree histogram in log2 buckets: `hist[i]` = vertices with out-degree in
/// `[2^i, 2^(i+1))` (`hist\[0\]` also counts degree 0 separately at index 0 of
/// the returned `(zero_count, hist)` pair).
pub fn degree_histogram(g: &Graph) -> (usize, Vec<usize>) {
    let mut zero = 0usize;
    let mut hist: Vec<usize> = Vec::new();
    for v in g.vertices() {
        let d = g.out_degree(v);
        if d == 0 {
            zero += 1;
            continue;
        }
        let bucket = usize::BITS as usize - 1 - d.leading_zeros() as usize;
        if hist.len() <= bucket {
            hist.resize(bucket + 1, 0);
        }
        hist[bucket] += 1;
    }
    (zero, hist)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{grid2d, path, star};

    #[test]
    fn bfs_levels_on_path() {
        let g = path(5, true);
        assert_eq!(bfs_levels(&g, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(bfs_levels(&g, 2), vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn unreachable_is_max() {
        let g = path(3, false); // directed 0 → 1 → 2
        let d = bfs_levels(&g, 2);
        assert_eq!(d[2], 0);
        assert_eq!(d[0], usize::MAX);
    }

    #[test]
    fn pseudo_diameter_exact_on_path() {
        let g = path(10, true);
        assert_eq!(pseudo_diameter(&g, 5), 9);
    }

    #[test]
    fn pseudo_diameter_on_grid() {
        let g = grid2d(4, 6);
        assert_eq!(pseudo_diameter(&g, 0), 4 + 6 - 2);
    }

    #[test]
    fn stats_shape() {
        let g = star(10, true);
        let s = graph_stats(&g);
        assert_eq!(s.vertices, 10);
        assert_eq!(s.edges, 18);
        assert_eq!(s.max_degree, 9);
        assert_eq!(s.pseudo_diameter, 2);
        assert_eq!(s.components, 1);
    }

    #[test]
    fn component_count() {
        let g = crate::GraphBuilder::new(5)
            .edges([(0, 1), (2, 3)])
            .symmetric(true)
            .build()
            .unwrap();
        assert_eq!(graph_stats(&g).components, 3);
    }

    #[test]
    fn empty_and_tiny_graphs_have_defined_stats() {
        // Regression: the whole stats path used to panic on an empty
        // graph (unguarded `dist[root] = 0`) and on out-of-range roots.
        let empty = crate::GraphBuilder::new(0).build().unwrap();
        assert_eq!(bfs_levels(&empty, 0), Vec::<usize>::new());
        assert_eq!(pseudo_diameter(&empty, 0), 0);
        let s = graph_stats(&empty);
        assert_eq!(s.vertices, 0);
        assert_eq!(s.edges, 0);
        assert_eq!(s.max_degree, 0);
        assert_eq!(s.avg_degree, 0.0);
        assert_eq!(s.pseudo_diameter, 0);
        assert_eq!(s.components, 0);
        assert_eq!(degree_histogram(&empty), (0, vec![]));

        let single = crate::GraphBuilder::new(1).build().unwrap();
        assert_eq!(bfs_levels(&single, 0), vec![0]);
        assert_eq!(pseudo_diameter(&single, 0), 0);
        let s = graph_stats(&single);
        assert_eq!((s.vertices, s.edges, s.pseudo_diameter), (1, 0, 0));
        assert_eq!(s.components, 1);
        assert_eq!(degree_histogram(&single), (1, vec![]));

        // Out-of-range root: defined, not a panic.
        assert_eq!(bfs_levels(&single, 7), vec![usize::MAX]);
        assert_eq!(pseudo_diameter(&single, 7), 0);
    }

    #[test]
    fn histogram_buckets() {
        let g = star(9, true); // hub degree 8, leaves degree 1
        let (zero, hist) = degree_histogram(&g);
        assert_eq!(zero, 0);
        assert_eq!(hist[0], 8); // degree 1 → bucket 0
        assert_eq!(hist[3], 1); // degree 8 → bucket 3
    }
}
