//! Delta overlay: a mutable edge patch over an immutable base [`Graph`].
//!
//! The serving layer (DESIGN.md §16) keeps one frozen `Arc<Graph>` shared
//! by every live session and applies streaming edge insert/delete batches
//! to a small side structure instead of rebuilding the CSR. The overlay
//! answers adjacency queries by merging the base CSR with the patch:
//!
//! * `added[v]`   — neighbors inserted since the snapshot (sorted, deduped);
//! * `removed[v]` — base-CSR neighbors deleted since the snapshot.
//!
//! An edge inserted then deleted (or vice versa) cancels out; inserting an
//! edge the view already has, or deleting one it does not, is a no-op that
//! is *not* counted in the [`AppliedBatch`] totals. On symmetric bases the
//! mirrored direction is patched in the same operation, so the overlay
//! stays an undirected view.
//!
//! When the patch grows past a caller-chosen threshold,
//! [`DeltaOverlay::materialize`] folds it into a fresh CSR via
//! [`GraphBuilder`](crate::GraphBuilder) — the compaction step of the
//! serve loop.

use crate::{Graph, GraphBuilder, GraphError, VertexId};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// One streaming edge mutation. Directions are interpreted on the base
/// graph's symmetry: over a symmetric base, `Insert(u, v)` also inserts
/// `(v, u)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeUpdate {
    /// Add edge `(src, dst)`; no-op if the current view already has it.
    Insert(VertexId, VertexId),
    /// Remove edge `(src, dst)`; no-op if the current view lacks it.
    Delete(VertexId, VertexId),
}

/// What a [`DeltaOverlay::apply_batch`] call actually changed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AppliedBatch {
    /// Edges inserted (undirected edges counted once on symmetric bases).
    pub inserted: u64,
    /// Edges removed (undirected edges counted once on symmetric bases).
    pub removed: u64,
    /// Every vertex whose adjacency list changed, sorted and deduped —
    /// the seed set for incremental repair.
    pub touched: Vec<VertexId>,
}

impl AppliedBatch {
    /// `true` when the batch changed nothing (all updates were no-ops).
    pub fn is_empty(&self) -> bool {
        self.inserted == 0 && self.removed == 0
    }
}

/// A mutable edge-patch view over an immutable base graph.
///
/// Queries cost `O(log patch)` extra over the base CSR; the intent is a
/// patch that stays small relative to the base and is periodically folded
/// away by [`materialize`](DeltaOverlay::materialize).
#[derive(Debug, Clone)]
pub struct DeltaOverlay {
    base: Arc<Graph>,
    /// Per-vertex inserted neighbors, absent from the current view's base
    /// contribution. Sorted via `BTreeSet` for deterministic iteration.
    added: BTreeMap<VertexId, BTreeSet<VertexId>>,
    /// Per-vertex deleted base-CSR neighbors.
    removed: BTreeMap<VertexId, BTreeSet<VertexId>>,
    /// Net directed-adjacency-entry count of the view, matching the
    /// [`Graph::num_edges`] convention (a symmetric edge counts twice).
    num_edges: usize,
}

impl DeltaOverlay {
    /// Wraps `base` with an empty patch: the view starts identical to it.
    pub fn new(base: Arc<Graph>) -> Self {
        let num_edges = base.num_edges();
        DeltaOverlay {
            base,
            added: BTreeMap::new(),
            removed: BTreeMap::new(),
            num_edges,
        }
    }

    /// The immutable snapshot underneath the patch.
    pub fn base(&self) -> &Arc<Graph> {
        &self.base
    }

    /// Number of vertices (fixed: the overlay never grows the vertex set).
    pub fn num_vertices(&self) -> usize {
        self.base.num_vertices()
    }

    /// Net edge count of the view.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Total patched (inserted + deleted) directed adjacency entries —
    /// the compaction trigger metric.
    pub fn patch_len(&self) -> usize {
        self.added.values().map(BTreeSet::len).sum::<usize>()
            + self.removed.values().map(BTreeSet::len).sum::<usize>()
    }

    /// `true` if the view currently contains edge `(s, d)`.
    pub fn has_edge(&self, s: VertexId, d: VertexId) -> bool {
        if self.added.get(&s).is_some_and(|a| a.contains(&d)) {
            return true;
        }
        if self.removed.get(&s).is_some_and(|r| r.contains(&d)) {
            return false;
        }
        self.base.has_edge(s, d)
    }

    /// Out-neighbors of `v` in the view: the base list minus deletions,
    /// followed by insertions (sorted among themselves).
    pub fn neighbors(&self, v: VertexId) -> Vec<VertexId> {
        let removed = self.removed.get(&v);
        let mut out: Vec<VertexId> = self
            .base
            .out_neighbors(v)
            .iter()
            .copied()
            .filter(|d| !removed.is_some_and(|r| r.contains(d)))
            .collect();
        if let Some(added) = self.added.get(&v) {
            out.extend(added.iter().copied());
        }
        out
    }

    /// Out-degree of `v` in the view, without materializing the list.
    pub fn degree(&self, v: VertexId) -> usize {
        self.base.out_degree(v) + self.added.get(&v).map_or(0, BTreeSet::len)
            - self.removed.get(&v).map_or(0, BTreeSet::len)
    }

    /// Applies a batch of updates in order, returning what changed.
    /// Duplicate inserts and deletes of absent edges are silent no-ops;
    /// on symmetric bases each update also patches the mirrored direction.
    pub fn apply_batch(&mut self, updates: &[EdgeUpdate]) -> AppliedBatch {
        let symmetric = self.base.is_symmetric();
        let mut batch = AppliedBatch::default();
        for &u in updates {
            let (s, d, insert) = match u {
                EdgeUpdate::Insert(s, d) => (s, d, true),
                EdgeUpdate::Delete(s, d) => (s, d, false),
            };
            if s as usize >= self.num_vertices() || d as usize >= self.num_vertices() {
                continue; // out-of-range endpoints: ignore, vertex set is fixed
            }
            let changed = if insert {
                self.patch_insert(s, d) && (!symmetric || s == d || self.patch_insert(d, s))
            } else {
                self.patch_delete(s, d) && (!symmetric || s == d || self.patch_delete(d, s))
            };
            if changed {
                // A symmetric non-loop edge occupies two adjacency entries.
                let entries = if symmetric && s != d { 2 } else { 1 };
                if insert {
                    batch.inserted += 1;
                    self.num_edges += entries;
                } else {
                    batch.removed += 1;
                    self.num_edges -= entries;
                }
                batch.touched.push(s);
                batch.touched.push(d);
            }
        }
        batch.touched.sort_unstable();
        batch.touched.dedup();
        batch
    }

    /// Patches directed edge `(s, d)` in. Returns `false` on a no-op.
    fn patch_insert(&mut self, s: VertexId, d: VertexId) -> bool {
        if self.removed.get(&s).is_some_and(|r| r.contains(&d)) {
            // Reinserting a deleted base edge: cancel the deletion.
            if let Some(r) = self.removed.get_mut(&s) {
                r.remove(&d);
                if r.is_empty() {
                    self.removed.remove(&s);
                }
            }
            return true;
        }
        if self.base.has_edge(s, d) {
            return false; // already present via the base
        }
        self.added.entry(s).or_default().insert(d)
    }

    /// Patches directed edge `(s, d)` out. Returns `false` on a no-op.
    fn patch_delete(&mut self, s: VertexId, d: VertexId) -> bool {
        if self.added.get(&s).is_some_and(|a| a.contains(&d)) {
            // Deleting a patch-inserted edge: cancel the insertion.
            if let Some(a) = self.added.get_mut(&s) {
                a.remove(&d);
                if a.is_empty() {
                    self.added.remove(&s);
                }
            }
            return true;
        }
        if !self.base.has_edge(s, d) {
            return false; // absent from the view
        }
        self.removed.entry(s).or_default().insert(d)
    }

    /// Folds the patch into a fresh CSR, producing a graph identical to
    /// the current view. The overlay itself is left untouched; callers
    /// swap in `DeltaOverlay::new(Arc::new(materialized))` to compact.
    pub fn materialize(&self) -> Result<Graph, GraphError> {
        let symmetric = self.base.is_symmetric();
        let mut edges: Vec<(VertexId, VertexId)> = Vec::with_capacity(self.num_edges);
        for s in self.base.vertices() {
            for d in self.neighbors(s) {
                // On a symmetric base every undirected edge appears in both
                // adjacency lists; stage each once and let the builder
                // mirror it back.
                if !symmetric || s <= d {
                    edges.push((s, d));
                }
            }
        }
        GraphBuilder::new(self.num_vertices())
            .symmetric(symmetric)
            .dedup(true)
            .edges(edges)
            .build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn sym_base() -> Arc<Graph> {
        // 0-1-2-3 path plus isolated 4, symmetric.
        Arc::new(generators::path(4, true))
    }

    #[test]
    fn empty_overlay_mirrors_base() {
        let g = sym_base();
        let ov = DeltaOverlay::new(Arc::clone(&g));
        assert_eq!(ov.num_edges(), g.num_edges());
        for v in g.vertices() {
            assert_eq!(ov.neighbors(v), g.out_neighbors(v).to_vec());
            assert_eq!(ov.degree(v), g.out_degree(v));
        }
        assert_eq!(ov.patch_len(), 0);
    }

    #[test]
    fn insert_and_delete_patch_both_directions() {
        let mut ov = DeltaOverlay::new(sym_base());
        let b = ov.apply_batch(&[EdgeUpdate::Insert(0, 3), EdgeUpdate::Delete(1, 2)]);
        assert_eq!(b.inserted, 1);
        assert_eq!(b.removed, 1);
        assert_eq!(b.touched, vec![0, 1, 2, 3]);
        assert!(ov.has_edge(0, 3) && ov.has_edge(3, 0));
        assert!(!ov.has_edge(1, 2) && !ov.has_edge(2, 1));
        assert_eq!(ov.neighbors(1), vec![0]);
        assert_eq!(ov.neighbors(3), vec![2, 0]); // base part first, insert after
        assert_eq!(ov.degree(3), 2);
        assert_eq!(ov.num_edges(), 6); // 6 entries - 2 + 2
    }

    #[test]
    fn duplicate_insert_and_missing_delete_are_noops() {
        let mut ov = DeltaOverlay::new(sym_base());
        let b = ov.apply_batch(&[
            EdgeUpdate::Insert(0, 1),  // already in base
            EdgeUpdate::Delete(0, 2),  // never existed
            EdgeUpdate::Insert(0, 3),  // real insert
            EdgeUpdate::Insert(0, 3),  // duplicate of the patch insert
            EdgeUpdate::Insert(9, 0),  // out of range
            EdgeUpdate::Delete(0, 99), // out of range
        ]);
        assert_eq!(b.inserted, 1);
        assert_eq!(b.removed, 0);
        assert_eq!(b.touched, vec![0, 3]);
        assert_eq!(ov.num_edges(), 8);
    }

    #[test]
    fn insert_then_delete_cancels() {
        let mut ov = DeltaOverlay::new(sym_base());
        ov.apply_batch(&[EdgeUpdate::Insert(0, 3)]);
        let b = ov.apply_batch(&[EdgeUpdate::Delete(0, 3)]);
        assert_eq!(b.removed, 1);
        assert_eq!(ov.patch_len(), 0, "patch fully cancelled");
        assert_eq!(ov.num_edges(), sym_base().num_edges());
        // And the reverse: delete a base edge, then reinsert it.
        ov.apply_batch(&[EdgeUpdate::Delete(1, 2)]);
        let b = ov.apply_batch(&[EdgeUpdate::Insert(2, 1)]);
        assert_eq!(b.inserted, 1);
        assert_eq!(ov.patch_len(), 0);
        assert!(ov.has_edge(1, 2));
    }

    #[test]
    fn materialize_equals_view() {
        let mut ov = DeltaOverlay::new(sym_base());
        ov.apply_batch(&[
            EdgeUpdate::Insert(0, 3),
            EdgeUpdate::Delete(2, 3),
            EdgeUpdate::Insert(1, 3),
        ]);
        let m = ov.materialize().unwrap();
        assert_eq!(m.num_vertices(), ov.num_vertices());
        assert_eq!(m.num_edges(), ov.num_edges());
        assert!(m.is_symmetric());
        for v in m.vertices() {
            let mut expect = ov.neighbors(v);
            expect.sort_unstable();
            assert_eq!(m.out_neighbors(v).to_vec(), expect, "vertex {v}");
        }
    }

    #[test]
    fn directed_base_patches_one_direction() {
        let g = Arc::new(
            GraphBuilder::new(3)
                .edges([(0, 1), (1, 2)])
                .build()
                .unwrap(),
        );
        let mut ov = DeltaOverlay::new(Arc::clone(&g));
        let b = ov.apply_batch(&[EdgeUpdate::Insert(2, 0), EdgeUpdate::Delete(0, 1)]);
        assert_eq!((b.inserted, b.removed), (1, 1));
        assert!(ov.has_edge(2, 0) && !ov.has_edge(0, 2));
        assert!(!ov.has_edge(0, 1) && !ov.has_edge(1, 0));
        let m = ov.materialize().unwrap();
        assert!(!m.is_symmetric());
        assert_eq!(m.out_neighbors(2), &[0]);
        assert!(m.out_neighbors(0).is_empty());
    }
}
