#![warn(missing_docs)]

//! # flash-graph — graph substrate for the FLASH framework
//!
//! This crate provides everything the FLASH programming model (see the
//! `flash-core` crate) needs to know about graphs, independent of any
//! distributed runtime:
//!
//! * [`Graph`] — a compact CSR property graph holding both out- and
//!   in-adjacency, with optional edge weights.
//! * [`GraphBuilder`] — incremental construction from edge lists, with
//!   de-duplication, self-loop removal and symmetrization.
//! * [`partition`] — edge-cut partitioning schemes assigning each vertex to
//!   exactly one *master* worker (the master/mirror scheme of the paper,
//!   §II "Graph partitions" and §IV-A "Data layout").
//! * [`generators`] — deterministic synthetic graph generators (R-MAT,
//!   Erdős–Rényi, grids, road networks, web graphs, …) used as stand-ins
//!   for the paper's real-world datasets.
//! * [`datasets`] — a registry mapping the paper's Table III datasets to
//!   scaled synthetic counterparts.
//! * [`blocks`] — the out-of-core `.fgb` block format: an mmap-or-buffered
//!   reader serving CSR adjacency zero-copy, plus the M-Flash-style
//!   source×destination block grid the streaming EDGEMAP path charges.
//! * [`bitset`], [`dsu`], [`stats`], [`io`] — supporting utilities
//!   (the paper's `dsu_find`/`dsu_union` built-ins live in [`dsu`]).
//!
//! ```
//! use flash_graph::prelude::*;
//!
//! // A 5-vertex undirected path: 0 - 1 - 2 - 3 - 4
//! let g = GraphBuilder::new(5)
//!     .edges([(0, 1), (1, 2), (2, 3), (3, 4)])
//!     .symmetric(true)
//!     .build()
//!     .unwrap();
//! assert_eq!(g.num_vertices(), 5);
//! assert_eq!(g.num_edges(), 8); // 4 undirected edges = 8 arcs
//! assert_eq!(g.out_neighbors(1), &[0, 2]);
//! ```

pub mod bitset;
pub mod blocks;
pub mod builder;
pub mod csr;
pub mod datasets;
pub mod dsu;
pub mod error;
pub mod generators;
pub mod graph;
pub mod io;
pub mod overlay;
pub mod partition;
pub mod rng;
pub mod stats;
#[doc(hidden)]
pub mod testutil;

pub use bitset::BitSet;
pub use blocks::{
    open_blocks, write_blocks, BlockGrid, BlockHandle, BlockTouch, StreamScope, StreamSnapshot,
};
pub use builder::GraphBuilder;
pub use csr::Csr;
pub use datasets::{Dataset, Domain};
pub use dsu::DisjointSets;
pub use error::GraphError;
pub use graph::Graph;
pub use overlay::{AppliedBatch, DeltaOverlay, EdgeUpdate};
pub use partition::{
    ChunkPartitioner, HashPartitioner, PartitionMap, PartitionMove, Partitioner, RebalanceReport,
};
pub use rng::Prng;

/// The vertex identifier type used throughout FLASH.
///
/// The paper treats vertex ids as natural numbers (`v.id ∈ ℕ`); we use `u32`
/// (per the Rust Performance Book's "smaller integers" guidance) which caps
/// graphs at ~4.29 billion vertices — ample for the simulated scale.
pub type VertexId = u32;

/// Edge weight type for weighted graphs (`G = (V, E, w)` in the paper).
pub type Weight = f32;

/// An invalid/unset vertex id marker (`u32::MAX`); never a valid id because
/// builders reject graphs with `n >= u32::MAX`.
pub const NIL: VertexId = u32::MAX;

/// Commonly used items, re-exported for glob import.
pub mod prelude {
    pub use crate::builder::GraphBuilder;
    pub use crate::datasets::{self, Dataset};
    pub use crate::generators;
    pub use crate::graph::Graph;
    pub use crate::partition::{
        ChunkPartitioner, HashPartitioner, PartitionMap, PartitionMove, Partitioner,
        RebalanceReport,
    };
    pub use crate::{VertexId, Weight, NIL};
}
