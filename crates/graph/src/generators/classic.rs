//! Small deterministic structures used heavily in tests and examples.

use crate::{Graph, GraphBuilder, VertexId};

/// A path `0 - 1 - … - (n-1)`; directed `0 → 1 → …` when `symmetric` is false.
pub fn path(n: usize, symmetric: bool) -> Graph {
    let mut b = GraphBuilder::new(n).symmetric(symmetric);
    if n > 1 {
        b = b.edges((0..n as VertexId - 1).map(|i| (i, i + 1)));
    }
    b.build().expect("path generator produces valid edges")
}

/// A cycle through all `n` vertices (requires `n >= 3` to be simple; smaller
/// `n` degrades to a path/single vertex).
pub fn cycle(n: usize, symmetric: bool) -> Graph {
    let mut b = GraphBuilder::new(n).symmetric(symmetric);
    if n >= 2 {
        b = b.edges((0..n as VertexId - 1).map(|i| (i, i + 1)));
    }
    if n >= 3 {
        b = b.edge(n as VertexId - 1, 0);
    }
    b.build().expect("cycle generator produces valid edges")
}

/// A star: vertex 0 is the hub connected to `1..n`.
pub fn star(n: usize, symmetric: bool) -> Graph {
    let mut b = GraphBuilder::new(n).symmetric(symmetric);
    if n > 1 {
        b = b.edges((1..n as VertexId).map(|i| (0, i)));
    }
    b.build().expect("star generator produces valid edges")
}

/// The complete graph `K_n` (undirected; both arcs stored).
pub fn complete(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n).symmetric(true);
    for s in 0..n as VertexId {
        for d in (s + 1)..n as VertexId {
            b = b.edge(s, d);
        }
    }
    b.build().expect("complete generator produces valid edges")
}

/// The complete bipartite graph `K_{a,b}` — vertices `0..a` on the left,
/// `a..a+b` on the right. Rectangle-rich, triangle-free.
pub fn bipartite_complete(a: usize, b: usize) -> Graph {
    let mut g = GraphBuilder::new(a + b).symmetric(true);
    for l in 0..a as VertexId {
        for r in 0..b as VertexId {
            g = g.edge(l, a as VertexId + r);
        }
    }
    g.build().expect("bipartite generator produces valid edges")
}

/// A complete binary tree with `n` vertices; vertex `i`'s children are
/// `2i + 1` and `2i + 2`.
pub fn binary_tree(n: usize, symmetric: bool) -> Graph {
    let mut b = GraphBuilder::new(n).symmetric(symmetric);
    for i in 0..n {
        for c in [2 * i + 1, 2 * i + 2] {
            if c < n {
                b = b.edge(i as VertexId, c as VertexId);
            }
        }
    }
    b.build().expect("tree generator produces valid edges")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_shape() {
        let g = path(5, true);
        assert_eq!(g.num_edges(), 8);
        assert_eq!(g.out_degree(0), 1);
        assert_eq!(g.out_degree(2), 2);
        let d = path(5, false);
        assert_eq!(d.num_edges(), 4);
        assert_eq!(d.in_degree(0), 0);
    }

    #[test]
    fn singleton_and_empty_paths() {
        assert_eq!(path(0, true).num_edges(), 0);
        assert_eq!(path(1, true).num_edges(), 0);
    }

    #[test]
    fn cycle_degree_two_everywhere() {
        let g = cycle(6, true);
        for v in g.vertices() {
            assert_eq!(g.out_degree(v), 2);
        }
        assert_eq!(cycle(2, false).num_edges(), 1);
    }

    #[test]
    fn star_hub_degree() {
        let g = star(10, true);
        assert_eq!(g.out_degree(0), 9);
        assert_eq!(g.out_degree(5), 1);
    }

    #[test]
    fn complete_graph_edge_count() {
        let g = complete(6);
        assert_eq!(g.num_edges(), 6 * 5); // both arcs
        for v in g.vertices() {
            assert_eq!(g.out_degree(v), 5);
        }
    }

    #[test]
    fn bipartite_has_no_triangles_shape() {
        let g = bipartite_complete(3, 4);
        assert_eq!(g.num_vertices(), 7);
        assert_eq!(g.num_edges(), 2 * 12);
        assert_eq!(g.out_degree(0), 4);
        assert_eq!(g.out_degree(3), 3);
    }

    #[test]
    fn binary_tree_structure() {
        let g = binary_tree(7, false);
        assert_eq!(g.out_neighbors(0), &[1, 2]);
        assert_eq!(g.out_neighbors(2), &[5, 6]);
        assert_eq!(g.out_degree(3), 0);
        assert_eq!(g.num_edges(), 6);
    }
}
