//! Two-dimensional grid graphs.

use crate::{Graph, GraphBuilder, VertexId};

/// Generates a `rows × cols` 4-connected grid (undirected). Vertex
/// `(r, c)` has id `r * cols + c`.
///
/// Grids have diameter `rows + cols - 2` and average degree < 4 — the same
/// regime as the paper's road networks, where one-hop-at-a-time label
/// propagation needs thousands of supersteps.
pub fn grid2d(rows: usize, cols: usize) -> Graph {
    let n = rows * cols;
    let id = |r: usize, c: usize| (r * cols + c) as VertexId;
    let mut b = GraphBuilder::new(n).symmetric(true);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b = b.edge(id(r, c), id(r, c + 1));
            }
            if r + 1 < rows {
                b = b.edge(id(r, c), id(r + 1, c));
            }
        }
    }
    b.build().expect("grid generator produces valid edges")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_count_matches_formula() {
        let g = grid2d(4, 5);
        // Horizontal: 4 * 4, vertical: 3 * 5 → 31 undirected edges.
        assert_eq!(g.num_edges(), 2 * (4 * 4 + 3 * 5));
    }

    #[test]
    fn corner_interior_degrees() {
        let g = grid2d(3, 3);
        assert_eq!(g.out_degree(0), 2); // corner
        assert_eq!(g.out_degree(1), 3); // edge
        assert_eq!(g.out_degree(4), 4); // center
    }

    #[test]
    fn degenerate_grids() {
        assert_eq!(grid2d(1, 1).num_edges(), 0);
        let line = grid2d(1, 10);
        assert_eq!(line.num_edges(), 18);
    }
}
