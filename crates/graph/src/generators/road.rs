//! Road-network-like graphs: near-planar, low degree, huge diameter.

use super::rng;
use crate::{Graph, GraphBuilder, VertexId};

/// Generates a road-network stand-in for the paper's `road-USA` /
/// `europe-osm` datasets: a sparse 2-D lattice backbone where a fraction of
/// lattice edges is removed (dead ends, irregular blocks) and a few long
/// "highway" shortcuts are added, then patched back to a single connected
/// component.
///
/// The result keeps the two properties the paper's evaluation leans on:
/// average degree ≈ 2–3 and diameter `Θ(rows + cols)` (thousands of
/// label-propagation supersteps, Fig. 3's dense-mode blowup).
pub fn road_network(rows: usize, cols: usize, seed: u64) -> Graph {
    let n = rows * cols;
    let id = |r: usize, c: usize| (r * cols + c) as VertexId;
    let mut rand = rng(seed);
    let mut edges: Vec<(VertexId, VertexId)> = Vec::with_capacity(2 * n);

    // Lattice backbone with 20% of street segments missing.
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols && rand.gen::<f64>() > 0.20 {
                edges.push((id(r, c), id(r, c + 1)));
            }
            if r + 1 < rows && rand.gen::<f64>() > 0.20 {
                edges.push((id(r, c), id(r + 1, c)));
            }
        }
    }

    // Sparse highways: a few medium-range shortcuts along rows. Kept short
    // and rare so the network's diameter stays Θ(rows + cols) — the huge
    // diameters (1452/2037) are what define the paper's road networks.
    if cols > 20 {
        for _ in 0..(n / 500).max(1) {
            let r = rand.gen_range(0..rows);
            let c = rand.gen_range(0..cols - 17);
            let span = rand.gen_range(4..16);
            edges.push((id(r, c), id(r, (c + span).min(cols - 1))));
        }
    }

    // Reconnect: stitch every vertex to its successor if the deletion pass
    // disconnected them from the component of vertex 0.
    let mut dsu = crate::dsu::DisjointSets::new(n);
    for &(s, d) in &edges {
        dsu.union(s, d);
    }
    for v in 1..n as VertexId {
        if !dsu.same(0, v) {
            // Connect to the previous vertex in row-major order (a plausible
            // short street), merging the components.
            edges.push((v - 1, v));
            dsu.union(v - 1, v);
        }
    }

    GraphBuilder::new(n)
        .edges(edges)
        .symmetric(true)
        .dedup(true)
        .build()
        .expect("road generator produces valid edges")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsu::DisjointSets;
    use crate::stats::pseudo_diameter;

    #[test]
    fn connected_single_component() {
        let g = road_network(30, 30, 3);
        let mut d = DisjointSets::new(g.num_vertices());
        for (s, t, _) in g.edges() {
            d.union(s, t);
        }
        assert_eq!(d.num_sets(), 1);
    }

    #[test]
    fn low_average_degree() {
        let g = road_network(40, 40, 1);
        assert!(g.avg_degree() < 4.5, "avg degree {}", g.avg_degree());
    }

    #[test]
    fn large_diameter() {
        let g = road_network(40, 40, 9);
        let diam = pseudo_diameter(&g, 0);
        assert!(diam >= 40, "road net diameter too small: {diam}");
    }

    #[test]
    fn deterministic() {
        let a = road_network(10, 10, 5);
        let b = road_network(10, 10, 5);
        assert_eq!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
    }
}
