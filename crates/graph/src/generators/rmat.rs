//! Recursive-MATrix (R-MAT) generator for skewed social-network-like graphs.

use super::rng;
use crate::{Graph, GraphBuilder, VertexId};

/// R-MAT quadrant probabilities. The defaults `(0.57, 0.19, 0.19, 0.05)` are
/// the Graph500 parameters, producing the heavy-tailed degree distribution
/// characteristic of the paper's social-network datasets (OR, TW): "a very
/// skew distribution of edges, usually with some 'hot' vertices having an
/// extremely high degree".
#[derive(Clone, Copy, Debug)]
pub struct RmatParams {
    /// Probability of the top-left quadrant (hub-hub edges).
    pub a: f64,
    /// Probability of the top-right quadrant.
    pub b: f64,
    /// Probability of the bottom-left quadrant.
    pub c: f64,
    /// Noise applied to the quadrant probabilities at each level.
    pub noise: f64,
}

impl Default for RmatParams {
    fn default() -> Self {
        RmatParams {
            a: 0.57,
            b: 0.19,
            c: 0.19,
            noise: 0.1,
        }
    }
}

/// Generates an R-MAT graph with `2^scale` vertices and up to
/// `edge_factor * 2^scale` undirected edges (self-loops and duplicate
/// samples dropped, so the realized count is slightly lower — as in the
/// Graph500 reference generator's simple-graph mode).
pub fn rmat(scale: u32, edge_factor: usize, params: RmatParams, seed: u64) -> Graph {
    assert!(scale < 32, "2^{scale} vertices exceeds the u32 id space");
    let n = 1usize << scale;
    let m = edge_factor
        .checked_mul(n)
        .expect("edge_factor * 2^scale overflows usize");
    let mut r = rng(seed);
    let mut edges = Vec::with_capacity(m);
    for _ in 0..m {
        let (mut x, mut y) = (0usize, 0usize);
        let mut half = n >> 1;
        while half > 0 {
            // Perturb quadrant probabilities to avoid exact self-similarity.
            let mut jitter =
                |p: f64| p * (1.0 - params.noise + 2.0 * params.noise * r.gen::<f64>());
            let (a, b, c) = (jitter(params.a), jitter(params.b), jitter(params.c));
            let total = a + b + c + jitter(1.0 - params.a - params.b - params.c);
            let roll = r.gen::<f64>() * total;
            if roll < a {
                // top-left
            } else if roll < a + b {
                y += half;
            } else if roll < a + b + c {
                x += half;
            } else {
                x += half;
                y += half;
            }
            half >>= 1;
        }
        if x != y {
            edges.push((x as VertexId, y as VertexId));
        }
    }
    GraphBuilder::new(n)
        .edges(edges)
        .symmetric(true)
        .dedup(true)
        .build()
        .expect("rmat generator produces valid edges")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_by_seed() {
        let a = rmat(8, 8, RmatParams::default(), 42);
        let b = rmat(8, 8, RmatParams::default(), 42);
        let c = rmat(8, 8, RmatParams::default(), 43);
        assert_eq!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
        assert_ne!(a.edges().collect::<Vec<_>>(), c.edges().collect::<Vec<_>>());
    }

    #[test]
    fn size_is_as_requested() {
        let g = rmat(10, 8, RmatParams::default(), 1);
        assert_eq!(g.num_vertices(), 1024);
        // Self-loops and duplicates are dropped: under 2 * 8 * 1024 arcs.
        assert!(g.num_edges() > 9_000 && g.num_edges() <= 16_384);
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let g = rmat(10, 16, RmatParams::default(), 7);
        let max = g.max_degree() as f64;
        let avg = g.avg_degree();
        // Hot vertices: max degree far above the mean (paper's SN trait).
        assert!(max > 8.0 * avg, "expected skew, got max {max} vs avg {avg}");
    }

    #[test]
    fn symmetric_output() {
        let g = rmat(6, 4, RmatParams::default(), 3);
        assert!(g.is_symmetric());
        for (s, d, _) in g.edges() {
            assert!(g.has_edge(d, s));
        }
    }
}
