//! Watts–Strogatz small-world graphs.

use super::rng;
use crate::{Graph, GraphBuilder, VertexId};

/// Generates a Watts–Strogatz small-world graph: a ring lattice where each
/// vertex connects to its `k` nearest neighbors (`k` even), with each edge
/// rewired to a random target with probability `beta`.
///
/// High clustering + short paths: a triangle-dense workload for the mining
/// applications (TC, CL) at controllable density.
pub fn watts_strogatz(n: usize, k: usize, beta: f64, seed: u64) -> Graph {
    assert!(k.is_multiple_of(2) && k >= 2, "k must be even and >= 2");
    assert!(n > k, "need n > k");
    let mut r = rng(seed);
    let mut edges: Vec<(VertexId, VertexId)> = Vec::with_capacity(n * k / 2);
    for v in 0..n {
        for j in 1..=(k / 2) {
            let mut d = ((v + j) % n) as VertexId;
            if r.gen::<f64>() < beta {
                // Rewire to a uniform non-self target.
                loop {
                    let t = r.gen_range(0..n as VertexId);
                    if t != v as VertexId {
                        d = t;
                        break;
                    }
                }
            }
            edges.push((v as VertexId, d));
        }
    }
    GraphBuilder::new(n)
        .edges(edges)
        .symmetric(true)
        .dedup(true)
        .build()
        .expect("ws generator produces valid edges")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unrewired_is_ring_lattice() {
        let g = watts_strogatz(10, 4, 0.0, 1);
        for v in g.vertices() {
            assert_eq!(g.out_degree(v), 4);
        }
        assert!(g.has_edge(0, 1) && g.has_edge(0, 2) && g.has_edge(0, 8) && g.has_edge(0, 9));
    }

    #[test]
    fn rewiring_preserves_edge_budget_roughly() {
        let g = watts_strogatz(100, 6, 0.3, 2);
        // dedup may remove a few collisions; stay within 5%.
        assert!(g.num_edges() as f64 >= 0.95 * (100.0 * 6.0));
    }

    #[test]
    fn deterministic() {
        let a = watts_strogatz(64, 4, 0.2, 7);
        let b = watts_strogatz(64, 4, 0.2, 7);
        assert_eq!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_k_panics() {
        watts_strogatz(10, 3, 0.1, 0);
    }
}
