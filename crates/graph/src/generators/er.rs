//! Erdős–Rényi G(n, m) random graphs.

use super::rng;
use crate::{Graph, GraphBuilder, VertexId};

/// Generates a uniform random graph with `n` vertices and `m` distinct
/// undirected edges (no self-loops). Used by property tests as the "no
/// special structure" case.
///
/// # Panics
/// Panics if `m` exceeds the number of possible undirected edges.
pub fn erdos_renyi(n: usize, m: usize, seed: u64) -> Graph {
    let max_edges = n.saturating_mul(n.saturating_sub(1)) / 2;
    assert!(
        m <= max_edges,
        "requested {m} edges but K_{n} has only {max_edges}"
    );
    let mut r = rng(seed);
    let mut chosen = std::collections::HashSet::with_capacity(m * 2);
    let mut edges = Vec::with_capacity(m);
    while edges.len() < m {
        let s = r.gen_range(0..n as VertexId);
        let d = r.gen_range(0..n as VertexId);
        if s == d {
            continue;
        }
        let key = if s < d { (s, d) } else { (d, s) };
        if chosen.insert(key) {
            edges.push(key);
        }
    }
    GraphBuilder::new(n)
        .edges(edges)
        .symmetric(true)
        .build()
        .expect("er generator produces valid edges")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_edge_count_no_dups() {
        let g = erdos_renyi(100, 250, 5);
        assert_eq!(g.num_vertices(), 100);
        assert_eq!(g.num_edges(), 500);
        for (s, d, _) in g.edges() {
            assert_ne!(s, d);
        }
    }

    #[test]
    fn deterministic() {
        let a = erdos_renyi(50, 100, 9);
        let b = erdos_renyi(50, 100, 9);
        assert_eq!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
    }

    #[test]
    fn dense_limit_complete() {
        let g = erdos_renyi(5, 10, 1);
        assert_eq!(g.num_edges(), 20);
        for v in g.vertices() {
            assert_eq!(g.out_degree(v), 4);
        }
    }

    #[test]
    #[should_panic(expected = "only")]
    fn too_many_edges_panics() {
        erdos_renyi(3, 4, 0);
    }
}
