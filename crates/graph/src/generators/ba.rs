//! Barabási–Albert preferential attachment.

use super::rng;
use crate::{Graph, GraphBuilder, VertexId};

/// Generates a Barabási–Albert graph: vertices arrive one at a time and
/// attach `k` edges to existing vertices with probability proportional to
/// degree. Produces a power-law tail similar to R-MAT but with guaranteed
/// connectivity — useful when algorithms under test need one component.
pub fn barabasi_albert(n: usize, k: usize, seed: u64) -> Graph {
    assert!(k >= 1, "attachment degree must be >= 1");
    assert!(n > k, "need more vertices than the attachment degree");
    let mut r = rng(seed);
    // The repeated-endpoints trick: sampling a uniform element of `endpoints`
    // is sampling proportional to degree.
    let mut endpoints: Vec<VertexId> = Vec::with_capacity(2 * n * k);
    let mut edges: Vec<(VertexId, VertexId)> = Vec::with_capacity(n * k);

    // Seed clique over the first k+1 vertices keeps early sampling sane.
    for s in 0..=(k as VertexId) {
        for d in (s + 1)..=(k as VertexId) {
            edges.push((s, d));
            endpoints.push(s);
            endpoints.push(d);
        }
    }

    for v in (k + 1)..n {
        let mut targets: Vec<VertexId> = Vec::with_capacity(k);
        while targets.len() < k {
            let t = endpoints[r.gen_range(0..endpoints.len())];
            if t != v as VertexId && !targets.contains(&t) {
                targets.push(t);
            }
        }
        for t in targets {
            edges.push((v as VertexId, t));
            endpoints.push(v as VertexId);
            endpoints.push(t);
        }
    }

    GraphBuilder::new(n)
        .edges(edges)
        .symmetric(true)
        .dedup(true)
        .build()
        .expect("ba generator produces valid edges")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsu::DisjointSets;

    #[test]
    fn always_connected() {
        let g = barabasi_albert(200, 3, 11);
        let mut d = DisjointSets::new(200);
        for (s, t, _) in g.edges() {
            d.union(s, t);
        }
        assert_eq!(d.num_sets(), 1);
    }

    #[test]
    fn min_degree_at_least_k() {
        let g = barabasi_albert(100, 4, 2);
        for v in g.vertices() {
            assert!(g.out_degree(v) >= 4, "vertex {v} has degree < k");
        }
    }

    #[test]
    fn deterministic() {
        let a = barabasi_albert(64, 2, 5);
        let b = barabasi_albert(64, 2, 5);
        assert_eq!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
    }

    #[test]
    fn hub_emerges() {
        let g = barabasi_albert(500, 2, 1);
        assert!(g.max_degree() as f64 > 4.0 * g.avg_degree());
    }
}
