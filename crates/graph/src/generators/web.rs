//! Web-graph-like generator: communities + preferential attachment.

use super::rng;
use crate::{Graph, GraphBuilder, VertexId};

/// Generates a web-graph stand-in for the paper's `uk-2002` / `sk-2005`
/// datasets: vertices are grouped into "host" communities; most links stay
/// within the community (dense local blocks), the rest follow preferential
/// attachment to global hubs. Per Table III the web graphs "lie somewhere in
/// the middle" between social and road networks — moderate diameter (~25),
/// moderate skew, high local density.
pub fn web_graph(n: usize, avg_degree: usize, communities: usize, seed: u64) -> Graph {
    assert!(communities >= 1 && communities <= n, "bad community count");
    assert!(
        n < u32::MAX as usize,
        "{n} vertices exceeds the u32 id space"
    );
    let mut r = rng(seed);
    let m = n
        .checked_mul(avg_degree)
        .expect("n * avg_degree overflows usize")
        / 2;
    let comm_size = n.div_ceil(communities);
    let mut edges: Vec<(VertexId, VertexId)> = Vec::with_capacity(m + n);
    let mut endpoints: Vec<VertexId> = Vec::with_capacity(2 * m);

    // Ring through the communities keeps the graph connected.
    for v in 1..n {
        edges.push((v as VertexId - 1, v as VertexId));
        endpoints.push(v as VertexId - 1);
        endpoints.push(v as VertexId);
    }

    // Every page links to its community's root ("host home page"), making
    // the roots moderately hot — the web graphs' degree skew sits between
    // the social and road classes.
    for v in 0..n {
        let root_id = (v / comm_size) * comm_size;
        debug_assert!(root_id < n, "community root wrapped past n");
        let root = root_id as VertexId;
        if root != v as VertexId {
            edges.push((v as VertexId, root));
            endpoints.push(root);
        }
    }

    for _ in 0..m {
        let s = r.gen_range(0..n as VertexId);
        let d = if r.gen::<f64>() < 0.8 {
            // Intra-community link.
            let comm = (s as usize) / comm_size;
            let lo = comm * comm_size;
            let hi = (comm + 1).saturating_mul(comm_size).min(n);
            debug_assert!(lo < hi && hi <= n, "community range wrapped");
            r.gen_range(lo as VertexId..hi as VertexId)
        } else if endpoints.is_empty() {
            r.gen_range(0..n as VertexId)
        } else {
            // Global preferential attachment.
            endpoints[r.gen_range(0..endpoints.len())]
        };
        if s != d {
            edges.push((s, d));
            endpoints.push(s);
            endpoints.push(d);
        }
    }

    GraphBuilder::new(n)
        .edges(edges)
        .symmetric(true)
        .dedup(true)
        .build()
        .expect("web generator produces valid edges")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsu::DisjointSets;
    use crate::stats::pseudo_diameter;

    #[test]
    fn connected() {
        let g = web_graph(500, 10, 20, 3);
        let mut d = DisjointSets::new(500);
        for (s, t, _) in g.edges() {
            d.union(s, t);
        }
        assert_eq!(d.num_sets(), 1);
    }

    #[test]
    fn moderate_diameter() {
        let g = web_graph(2000, 12, 40, 1);
        let diam = pseudo_diameter(&g, 0);
        assert!((4..=60).contains(&diam), "web diameter {diam}");
    }

    #[test]
    fn some_skew_present() {
        let g = web_graph(1000, 14, 25, 9);
        assert!(g.max_degree() as f64 > 2.5 * g.avg_degree());
    }

    #[test]
    fn deterministic() {
        let a = web_graph(128, 8, 8, 4);
        let b = web_graph(128, 8, 8, 4);
        assert_eq!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
    }
}
