//! Deterministic synthetic graph generators.
//!
//! The paper evaluates on six real-world graphs (Table III) spanning three
//! topology classes: skewed social networks, huge-diameter road networks and
//! in-between web graphs. Those datasets (up to 1.95B edges) are not
//! available here, so these generators produce scaled synthetic stand-ins
//! with the *same qualitative structure* — that structure (degree skew,
//! diameter, density) is what drives every evaluation claim in the paper
//! (push/pull switching, CC-opt convergence, mining cost).
//!
//! All generators are deterministic functions of their `seed`.

mod ba;
mod classic;
mod er;
mod grid;
mod rmat;
mod road;
mod smallworld;
mod web;

pub use ba::barabasi_albert;
pub use classic::{binary_tree, bipartite_complete, complete, cycle, path, star};
pub use er::erdos_renyi;
pub use grid::grid2d;
pub use rmat::{rmat, RmatParams};
pub use road::road_network;
pub use smallworld::watts_strogatz;
pub use web::web_graph;

use crate::rng::Prng;
use crate::{Graph, GraphBuilder, Weight};

/// Creates a seeded RNG shared by all generators.
pub(crate) fn rng(seed: u64) -> Prng {
    Prng::seed_from_u64(seed)
}

/// Attaches uniform random weights in `[lo, hi)` to every edge of `g`,
/// mirroring the paper's setup: "for unweighted graphs, random weights are
/// added to each of the edges if necessary".
///
/// Symmetric graphs get symmetric weights: the weight of `(s, d)` equals the
/// weight of `(d, s)`, derived from a hash of the unordered pair and `seed`.
pub fn with_random_weights(g: &Graph, lo: Weight, hi: Weight, seed: u64) -> Graph {
    let span = hi - lo;
    let weight_of = |s: u32, d: u32| -> Weight {
        let (a, b) = if g.is_symmetric() && s > d {
            (d, s)
        } else {
            (s, d)
        };
        let mut h = (a as u64) << 32 | b as u64;
        h ^= seed;
        // SplitMix64 finalizer: uniform in [0, 1).
        h = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
        h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        h ^= h >> 31;
        lo + span * ((h >> 11) as f64 / (1u64 << 53) as f64) as Weight
    };
    let mut b = GraphBuilder::new(g.num_vertices()).symmetric(g.is_symmetric());
    for (s, d, _) in g.edges() {
        // On symmetric graphs, emit each undirected edge once and let the
        // builder mirror it, preserving the symmetric flag.
        if !g.is_symmetric() || s <= d {
            b = b.weighted_edge(s, d, weight_of(s, d));
        }
    }
    b.build().expect("re-weighting a valid graph cannot fail")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_weights_are_in_range_and_symmetric() {
        let g = path(50, true);
        let wg = with_random_weights(&g, 1.0, 10.0, 7);
        assert!(wg.is_weighted());
        for (s, d, w) in wg.edges() {
            assert!((1.0..10.0).contains(&w), "weight {w} out of range");
            // Symmetric weight check.
            let back: Vec<_> = wg
                .out_edges(d)
                .filter(|&(t, _)| t == s)
                .map(|(_, w)| w)
                .collect();
            assert_eq!(back, vec![w]);
        }
    }

    #[test]
    fn random_weights_deterministic_by_seed() {
        let g = star(20, true);
        let a = with_random_weights(&g, 0.0, 1.0, 3);
        let b = with_random_weights(&g, 0.0, 1.0, 3);
        let c = with_random_weights(&g, 0.0, 1.0, 4);
        let wa: Vec<_> = a.edges().collect();
        let wb: Vec<_> = b.edges().collect();
        let wc: Vec<_> = c.edges().collect();
        assert_eq!(wa, wb);
        assert_ne!(wa, wc);
    }

    #[test]
    fn seeded_rng_is_deterministic() {
        let mut a = rng(9);
        let mut b = rng(9);
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }
}
