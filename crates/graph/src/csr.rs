//! Compressed Sparse Row adjacency storage.

use crate::{VertexId, Weight};

/// One adjacency direction of a graph in CSR form.
///
/// `offsets` has `n + 1` entries; the neighbors of vertex `v` are
/// `targets[offsets[v] .. offsets[v+1]]`, with parallel `weights` when the
/// graph is weighted. Neighbor lists are sorted by target id, which makes
/// intersection-based algorithms (triangle/rectangle/clique counting) cheap.
#[derive(Clone, Debug, Default)]
pub struct Csr {
    offsets: Vec<usize>,
    targets: Vec<VertexId>,
    weights: Option<Vec<Weight>>,
}

impl Csr {
    /// Builds a CSR from an edge list. `edges` may be in any order;
    /// `weights`, when present, must parallel `edges`.
    ///
    /// The construction is the classic two-pass counting sort (O(n + m)).
    pub fn from_edges(
        n: usize,
        edges: &[(VertexId, VertexId)],
        weights: Option<&[Weight]>,
    ) -> Self {
        let mut offsets = vec![0usize; n + 1];
        for &(s, _) in edges {
            offsets[s as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut targets = vec![0 as VertexId; edges.len()];
        let mut w_out = weights.map(|_| vec![0.0 as Weight; edges.len()]);
        let mut cursor = offsets.clone();
        for (i, &(s, d)) in edges.iter().enumerate() {
            let pos = cursor[s as usize];
            cursor[s as usize] += 1;
            targets[pos] = d;
            if let (Some(w_out), Some(w_in)) = (w_out.as_mut(), weights) {
                w_out[pos] = w_in[i];
            }
        }
        let mut csr = Csr {
            offsets,
            targets,
            weights: w_out,
        };
        csr.sort_neighbor_lists();
        csr
    }

    /// Sorts every neighbor list by target id (stable w.r.t. weights).
    fn sort_neighbor_lists(&mut self) {
        let n = self.offsets.len() - 1;
        for v in 0..n {
            let (lo, hi) = (self.offsets[v], self.offsets[v + 1]);
            if hi - lo <= 1 {
                continue;
            }
            match self.weights.as_mut() {
                None => self.targets[lo..hi].sort_unstable(),
                Some(w) => {
                    let mut pairs: Vec<(VertexId, Weight)> = self.targets[lo..hi]
                        .iter()
                        .copied()
                        .zip(w[lo..hi].iter().copied())
                        .collect();
                    pairs.sort_unstable_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
                    for (i, (t, wt)) in pairs.into_iter().enumerate() {
                        self.targets[lo + i] = t;
                        w[lo + i] = wt;
                    }
                }
            }
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of stored arcs.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// Degree of `v` in this direction.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// Neighbor ids of `v`, sorted ascending.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.targets[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Weights parallel to [`Csr::neighbors`], if the graph is weighted.
    #[inline]
    pub fn neighbor_weights(&self, v: VertexId) -> Option<&[Weight]> {
        self.weights
            .as_ref()
            .map(|w| &w[self.offsets[v as usize]..self.offsets[v as usize + 1]])
    }

    /// `true` when edge weights are stored.
    #[inline]
    pub fn is_weighted(&self) -> bool {
        self.weights.is_some()
    }

    /// Iterates `(target, weight)` pairs for `v` (weight = 1.0 if unweighted).
    pub fn edges(&self, v: VertexId) -> impl Iterator<Item = (VertexId, Weight)> + '_ {
        let lo = self.offsets[v as usize];
        let hi = self.offsets[v as usize + 1];
        (lo..hi).map(move |i| (self.targets[i], self.weights.as_ref().map_or(1.0, |w| w[i])))
    }

    /// Binary-searches the (sorted) neighbor list of `v` for `target`.
    pub fn has_edge(&self, v: VertexId, target: VertexId) -> bool {
        self.neighbors(v).binary_search(&target).is_ok()
    }

    /// Approximate heap footprint in bytes (offsets + targets + weights).
    pub fn heap_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<usize>()
            + self.targets.len() * std::mem::size_of::<VertexId>()
            + self
                .weights
                .as_ref()
                .map_or(0, |w| w.len() * std::mem::size_of::<Weight>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr {
        // 0 -> {1, 2}, 1 -> {2}, 2 -> {}, 3 -> {0}
        Csr::from_edges(4, &[(1, 2), (0, 2), (0, 1), (3, 0)], None)
    }

    #[test]
    fn builds_and_sorts() {
        let c = sample();
        assert_eq!(c.num_vertices(), 4);
        assert_eq!(c.num_edges(), 4);
        assert_eq!(c.neighbors(0), &[1, 2]);
        assert_eq!(c.neighbors(1), &[2]);
        assert_eq!(c.neighbors(2), &[] as &[u32]);
        assert_eq!(c.neighbors(3), &[0]);
        assert_eq!(c.degree(0), 2);
    }

    #[test]
    fn weighted_edges_stay_aligned() {
        let edges = [(0u32, 2u32), (0, 1), (1, 0)];
        let weights = [2.5f32, 1.5, 9.0];
        let c = Csr::from_edges(3, &edges, Some(&weights));
        assert_eq!(c.neighbors(0), &[1, 2]);
        assert_eq!(c.neighbor_weights(0).unwrap(), &[1.5, 2.5]);
        assert_eq!(c.neighbor_weights(1).unwrap(), &[9.0]);
        let collected: Vec<_> = c.edges(0).collect();
        assert_eq!(collected, vec![(1, 1.5), (2, 2.5)]);
    }

    #[test]
    fn unweighted_edges_default_weight_one() {
        let c = sample();
        assert!(!c.is_weighted());
        assert_eq!(c.edges(3).next(), Some((0, 1.0)));
        assert!(c.neighbor_weights(0).is_none());
    }

    #[test]
    fn has_edge_binary_search() {
        let c = sample();
        assert!(c.has_edge(0, 1));
        assert!(c.has_edge(0, 2));
        assert!(!c.has_edge(0, 3));
        assert!(!c.has_edge(2, 0));
    }

    #[test]
    fn empty_graph() {
        let c = Csr::from_edges(0, &[], None);
        assert_eq!(c.num_vertices(), 0);
        assert_eq!(c.num_edges(), 0);
    }

    #[test]
    fn parallel_edges_are_kept() {
        let c = Csr::from_edges(2, &[(0, 1), (0, 1)], None);
        assert_eq!(c.neighbors(0), &[1, 1]);
    }

    #[test]
    fn heap_bytes_is_positive() {
        assert!(sample().heap_bytes() > 0);
    }
}
