//! Compressed Sparse Row adjacency storage.
//!
//! The three CSR arrays (`offsets`, `targets`, `weights`) are stored as
//! [`Segment`]s: either plain owned vectors (the in-memory default) or
//! read-only views into a shared byte buffer backing an on-disk block
//! file (see [`crate::blocks`]). Every accessor works identically on
//! both representations, so the vertex-centric layer never needs to know
//! where the adjacency lives.

use crate::{VertexId, Weight};
use std::sync::Arc;

mod sealed {
    pub trait Sealed {}
    impl Sealed for u32 {}
    impl Sealed for u64 {}
    impl Sealed for usize {}
    impl Sealed for f32 {}
}

/// Marker for plain-old-data element types a [`Segment`] may view: fixed
/// layout, no padding, any bit pattern valid. Sealed — only the numeric
/// types the CSR arrays actually use implement it.
pub trait Pod: Copy + sealed::Sealed {}
impl Pod for u32 {}
impl Pod for u64 {}
impl Pod for usize {}
impl Pod for f32 {}

/// A shared read-only byte buffer backing mapped [`Segment`]s: either an
/// `mmap`ed file region or a heap copy (the fallback when mapping is
/// unavailable or disabled via `FLASH_NO_MMAP=1`). The heap variant is
/// allocated as `u64` words so every 8-aligned section offset stays
/// 8-aligned in memory.
pub struct MapBuf {
    inner: MapBufInner,
}

enum MapBufInner {
    /// Heap fallback: `words` owns the storage, `len` is the byte length.
    Heap { words: Vec<u64>, len: usize },
    /// A live `mmap(2)` region, unmapped on drop.
    #[cfg(all(unix, target_pointer_width = "64"))]
    Mmap { ptr: *mut u8, len: usize },
}

// SAFETY: the buffer is read-only after construction; both variants point
// at memory that is never mutated or freed while the `MapBuf` is alive.
unsafe impl Send for MapBuf {}
unsafe impl Sync for MapBuf {}

impl MapBuf {
    /// Wraps a heap copy of `bytes.len()` bytes, 8-aligned.
    pub(crate) fn from_bytes(bytes: &[u8]) -> Self {
        let words = vec![0u64; bytes.len().div_ceil(8)];
        let mut buf = MapBuf {
            inner: MapBufInner::Heap {
                words,
                len: bytes.len(),
            },
        };
        if let MapBufInner::Heap { words, len } = &mut buf.inner {
            // SAFETY: the word vector spans at least `len` bytes and u64
            // tolerates any byte pattern.
            let dst =
                unsafe { std::slice::from_raw_parts_mut(words.as_mut_ptr() as *mut u8, *len) };
            dst.copy_from_slice(bytes);
        }
        buf
    }

    /// Adopts an `mmap`ed region; unmapped on drop.
    #[cfg(all(unix, target_pointer_width = "64"))]
    pub(crate) fn from_mmap(ptr: *mut u8, len: usize) -> Self {
        MapBuf {
            inner: MapBufInner::Mmap { ptr, len },
        }
    }

    /// Base pointer of the buffer.
    #[inline]
    pub(crate) fn as_ptr(&self) -> *const u8 {
        match &self.inner {
            MapBufInner::Heap { words, .. } => words.as_ptr() as *const u8,
            #[cfg(all(unix, target_pointer_width = "64"))]
            MapBufInner::Mmap { ptr, .. } => *ptr,
        }
    }

    /// Byte length of the buffer.
    #[inline]
    pub(crate) fn len(&self) -> usize {
        match &self.inner {
            MapBufInner::Heap { len, .. } => *len,
            #[cfg(all(unix, target_pointer_width = "64"))]
            MapBufInner::Mmap { len, .. } => *len,
        }
    }

    /// The whole buffer as a byte slice.
    #[inline]
    pub(crate) fn as_slice(&self) -> &[u8] {
        // SAFETY: pointer and length describe a live allocation that is
        // never mutated while the `MapBuf` is alive.
        unsafe { std::slice::from_raw_parts(self.as_ptr(), self.len()) }
    }

    /// `true` when the buffer is a live file mapping (not a heap copy).
    pub(crate) fn is_mmap(&self) -> bool {
        match &self.inner {
            MapBufInner::Heap { .. } => false,
            #[cfg(all(unix, target_pointer_width = "64"))]
            MapBufInner::Mmap { .. } => true,
        }
    }
}

impl Drop for MapBuf {
    fn drop(&mut self) {
        #[cfg(all(unix, target_pointer_width = "64"))]
        if let MapBufInner::Mmap { ptr, len } = self.inner {
            // SAFETY: the pointer/length pair came from a successful mmap
            // and is unmapped exactly once, here.
            unsafe {
                crate::blocks::munmap_region(ptr, len);
            }
        }
    }
}

impl std::fmt::Debug for MapBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MapBuf")
            .field("len", &self.len())
            .field("mmap", &self.is_mmap())
            .finish()
    }
}

/// One CSR array: owned on the heap, or a typed view into a [`MapBuf`].
///
/// Derefs to `&[T]`, so all slice operations work on either variant.
pub enum Segment<T: Pod> {
    /// An owned vector (the in-memory representation).
    Owned(Vec<T>),
    /// A read-only view of `len` elements at `offset` bytes into `buf`.
    Mapped {
        /// Shared backing buffer.
        buf: Arc<MapBuf>,
        /// Byte offset of the first element (must be aligned for `T`).
        offset: usize,
        /// Element count.
        len: usize,
    },
}

impl<T: Pod> Segment<T> {
    /// Creates a mapped view, validating bounds and alignment.
    pub(crate) fn mapped(buf: Arc<MapBuf>, offset: usize, len: usize) -> Self {
        let bytes = len
            .checked_mul(std::mem::size_of::<T>())
            .expect("segment byte length overflows");
        assert!(
            offset
                .checked_add(bytes)
                .is_some_and(|end| end <= buf.len()),
            "segment [{offset}, {offset}+{bytes}) out of buffer bounds ({})",
            buf.len()
        );
        assert_eq!(
            (buf.as_ptr() as usize + offset) % std::mem::align_of::<T>(),
            0,
            "segment offset {offset} misaligned for element type"
        );
        Segment::Mapped { buf, offset, len }
    }

    /// Bytes of this segment that live in a mapped buffer (0 when owned).
    pub(crate) fn mapped_bytes(&self) -> usize {
        match self {
            Segment::Owned(_) => 0,
            Segment::Mapped { len, .. } => len * std::mem::size_of::<T>(),
        }
    }

    /// Bytes of this segment that live on the owned heap (0 when mapped).
    pub(crate) fn owned_bytes(&self) -> usize {
        match self {
            Segment::Owned(v) => v.len() * std::mem::size_of::<T>(),
            Segment::Mapped { .. } => 0,
        }
    }
}

impl<T: Pod> std::ops::Deref for Segment<T> {
    type Target = [T];

    #[inline]
    fn deref(&self) -> &[T] {
        match self {
            Segment::Owned(v) => v,
            Segment::Mapped { buf, offset, len } => {
                // SAFETY: bounds and alignment were validated in
                // `Segment::mapped`, the buffer outlives the view (Arc),
                // and `T: Pod` accepts any byte pattern.
                unsafe { std::slice::from_raw_parts(buf.as_ptr().add(*offset) as *const T, *len) }
            }
        }
    }
}

impl<T: Pod> Clone for Segment<T> {
    fn clone(&self) -> Self {
        match self {
            Segment::Owned(v) => Segment::Owned(v.clone()),
            Segment::Mapped { buf, offset, len } => Segment::Mapped {
                buf: Arc::clone(buf),
                offset: *offset,
                len: *len,
            },
        }
    }
}

impl<T: Pod> Default for Segment<T> {
    fn default() -> Self {
        Segment::Owned(Vec::new())
    }
}

impl<T: Pod> std::fmt::Debug for Segment<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match self {
            Segment::Owned(_) => "owned",
            Segment::Mapped { .. } => "mapped",
        };
        write!(f, "Segment({kind}, len={})", self.len())
    }
}

/// One adjacency direction of a graph in CSR form.
///
/// `offsets` has `n + 1` entries; the neighbors of vertex `v` are
/// `targets[offsets[v] .. offsets[v+1]]`, with parallel `weights` when the
/// graph is weighted. Neighbor lists are sorted by target id, which makes
/// intersection-based algorithms (triangle/rectangle/clique counting) cheap.
#[derive(Clone, Debug, Default)]
pub struct Csr {
    offsets: Segment<usize>,
    targets: Segment<VertexId>,
    weights: Option<Segment<Weight>>,
}

impl Csr {
    /// Builds a CSR from an edge list. `edges` may be in any order;
    /// `weights`, when present, must parallel `edges`.
    ///
    /// The construction is the classic two-pass counting sort (O(n + m)).
    pub fn from_edges(
        n: usize,
        edges: &[(VertexId, VertexId)],
        weights: Option<&[Weight]>,
    ) -> Self {
        let mut offsets = vec![0usize; n + 1];
        for &(s, _) in edges {
            offsets[s as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut targets = vec![0 as VertexId; edges.len()];
        let mut w_out = weights.map(|_| vec![0.0 as Weight; edges.len()]);
        let mut cursor = offsets.clone();
        for (i, &(s, d)) in edges.iter().enumerate() {
            let pos = cursor[s as usize];
            cursor[s as usize] += 1;
            targets[pos] = d;
            if let (Some(w_out), Some(w_in)) = (w_out.as_mut(), weights) {
                w_out[pos] = w_in[i];
            }
        }
        sort_neighbor_lists(&offsets, &mut targets, w_out.as_deref_mut());
        Csr {
            offsets: Segment::Owned(offsets),
            targets: Segment::Owned(targets),
            weights: w_out.map(Segment::Owned),
        }
    }

    /// Assembles a CSR directly from (possibly mapped) segments. The
    /// caller promises the usual CSR invariants; they are spot-checked in
    /// debug builds.
    pub(crate) fn from_raw_segments(
        offsets: Segment<usize>,
        targets: Segment<VertexId>,
        weights: Option<Segment<Weight>>,
    ) -> Self {
        assert!(!offsets.is_empty(), "offsets must have n + 1 entries");
        assert_eq!(offsets[0], 0, "offsets must start at 0");
        assert_eq!(
            offsets[offsets.len() - 1],
            targets.len(),
            "offsets must end at the arc count"
        );
        if let Some(w) = &weights {
            assert_eq!(w.len(), targets.len(), "weights must parallel targets");
        }
        debug_assert!(
            offsets.windows(2).all(|p| p[0] <= p[1]),
            "offsets must be monotone"
        );
        Csr {
            offsets,
            targets,
            weights,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of stored arcs.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// Degree of `v` in this direction.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// Neighbor ids of `v`, sorted ascending.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.targets[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Weights parallel to [`Csr::neighbors`], if the graph is weighted.
    #[inline]
    pub fn neighbor_weights(&self, v: VertexId) -> Option<&[Weight]> {
        self.weights
            .as_ref()
            .map(|w| &w[self.offsets[v as usize]..self.offsets[v as usize + 1]])
    }

    /// The full `n + 1` offset array.
    #[inline]
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// The full arc-target array (all neighbor lists, concatenated).
    #[inline]
    pub fn targets(&self) -> &[VertexId] {
        &self.targets
    }

    /// The full weight array parallel to [`Csr::targets`], when weighted.
    #[inline]
    pub fn weights(&self) -> Option<&[Weight]> {
        self.weights.as_deref()
    }

    /// `true` when edge weights are stored.
    #[inline]
    pub fn is_weighted(&self) -> bool {
        self.weights.is_some()
    }

    /// Iterates `(target, weight)` pairs for `v` (weight = 1.0 if unweighted).
    pub fn edges(&self, v: VertexId) -> impl Iterator<Item = (VertexId, Weight)> + '_ {
        let lo = self.offsets[v as usize];
        let hi = self.offsets[v as usize + 1];
        (lo..hi).map(move |i| (self.targets[i], self.weights.as_ref().map_or(1.0, |w| w[i])))
    }

    /// Binary-searches the (sorted) neighbor list of `v` for `target`.
    pub fn has_edge(&self, v: VertexId, target: VertexId) -> bool {
        self.neighbors(v).binary_search(&target).is_ok()
    }

    /// Approximate heap footprint in bytes (owned arrays only — mapped
    /// segments are backed by the shared block buffer, see
    /// [`Csr::mapped_bytes`]).
    pub fn heap_bytes(&self) -> usize {
        self.offsets.owned_bytes()
            + self.targets.owned_bytes()
            + self.weights.as_ref().map_or(0, Segment::owned_bytes)
    }

    /// Bytes of this CSR served from a mapped block buffer (0 when the
    /// graph is fully in-memory).
    pub fn mapped_bytes(&self) -> usize {
        self.offsets.mapped_bytes()
            + self.targets.mapped_bytes()
            + self.weights.as_ref().map_or(0, Segment::mapped_bytes)
    }
}

/// Sorts every neighbor list by target id (stable w.r.t. weights).
fn sort_neighbor_lists(
    offsets: &[usize],
    targets: &mut [VertexId],
    mut weights: Option<&mut [Weight]>,
) {
    let n = offsets.len() - 1;
    for v in 0..n {
        let (lo, hi) = (offsets[v], offsets[v + 1]);
        if hi - lo <= 1 {
            continue;
        }
        match weights.as_mut() {
            None => targets[lo..hi].sort_unstable(),
            Some(w) => {
                let mut pairs: Vec<(VertexId, Weight)> = targets[lo..hi]
                    .iter()
                    .copied()
                    .zip(w[lo..hi].iter().copied())
                    .collect();
                pairs.sort_unstable_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
                for (i, (t, wt)) in pairs.into_iter().enumerate() {
                    targets[lo + i] = t;
                    w[lo + i] = wt;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr {
        // 0 -> {1, 2}, 1 -> {2}, 2 -> {}, 3 -> {0}
        Csr::from_edges(4, &[(1, 2), (0, 2), (0, 1), (3, 0)], None)
    }

    #[test]
    fn builds_and_sorts() {
        let c = sample();
        assert_eq!(c.num_vertices(), 4);
        assert_eq!(c.num_edges(), 4);
        assert_eq!(c.neighbors(0), &[1, 2]);
        assert_eq!(c.neighbors(1), &[2]);
        assert_eq!(c.neighbors(2), &[] as &[u32]);
        assert_eq!(c.neighbors(3), &[0]);
        assert_eq!(c.degree(0), 2);
    }

    #[test]
    fn weighted_edges_stay_aligned() {
        let edges = [(0u32, 2u32), (0, 1), (1, 0)];
        let weights = [2.5f32, 1.5, 9.0];
        let c = Csr::from_edges(3, &edges, Some(&weights));
        assert_eq!(c.neighbors(0), &[1, 2]);
        assert_eq!(c.neighbor_weights(0).unwrap(), &[1.5, 2.5]);
        assert_eq!(c.neighbor_weights(1).unwrap(), &[9.0]);
        let collected: Vec<_> = c.edges(0).collect();
        assert_eq!(collected, vec![(1, 1.5), (2, 2.5)]);
    }

    #[test]
    fn unweighted_edges_default_weight_one() {
        let c = sample();
        assert!(!c.is_weighted());
        assert_eq!(c.edges(3).next(), Some((0, 1.0)));
        assert!(c.neighbor_weights(0).is_none());
    }

    #[test]
    fn has_edge_binary_search() {
        let c = sample();
        assert!(c.has_edge(0, 1));
        assert!(c.has_edge(0, 2));
        assert!(!c.has_edge(0, 3));
        assert!(!c.has_edge(2, 0));
    }

    #[test]
    fn empty_graph() {
        let c = Csr::from_edges(0, &[], None);
        assert_eq!(c.num_vertices(), 0);
        assert_eq!(c.num_edges(), 0);
    }

    #[test]
    fn parallel_edges_are_kept() {
        let c = Csr::from_edges(2, &[(0, 1), (0, 1)], None);
        assert_eq!(c.neighbors(0), &[1, 1]);
    }

    #[test]
    fn heap_bytes_is_positive() {
        assert!(sample().heap_bytes() > 0);
        assert_eq!(sample().mapped_bytes(), 0);
    }

    #[test]
    fn mapped_segment_views_the_buffer() {
        let words: Vec<u32> = vec![7, 8, 9, 10];
        // SAFETY (test): u32 words viewed as bytes.
        let bytes = unsafe { std::slice::from_raw_parts(words.as_ptr() as *const u8, 16) };
        let buf = Arc::new(MapBuf::from_bytes(bytes));
        let seg: Segment<u32> = Segment::mapped(buf, 4, 2);
        assert_eq!(&seg[..], &[8, 9]);
        assert_eq!(seg.mapped_bytes(), 8);
        assert_eq!(seg.owned_bytes(), 0);
        let clone = seg.clone();
        assert_eq!(&clone[..], &[8, 9]);
        assert_eq!(format!("{seg:?}"), "Segment(mapped, len=2)");
    }

    #[test]
    fn raw_segments_round_trip() {
        let base = sample();
        let c = Csr::from_raw_segments(
            Segment::Owned(base.offsets().to_vec()),
            Segment::Owned(base.targets().to_vec()),
            None,
        );
        assert_eq!(c.neighbors(0), &[1, 2]);
        assert_eq!(c.num_edges(), 4);
    }
}
