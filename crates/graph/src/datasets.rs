//! Registry of the paper's Table III datasets as synthetic stand-ins.
//!
//! The real graphs (up to 50.6M vertices / 1.95B edges) are not shipped with
//! this reproduction; each entry generates a scaled synthetic graph of the
//! same topology class (see [`crate::generators`] and DESIGN.md §1). Sizes
//! preserve the *relative* ordering within each class (TW > OR, SK > UK,
//! EU > US) so crossover behaviour in the evaluation carries over.

use crate::generators;
use crate::graph::Graph;

/// The topology domain of a dataset (Table III's "Domain" column).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Domain {
    /// Social network: skewed degrees, hot vertices, small diameter.
    SocialNetwork,
    /// Road network: near-planar, degree ≈ 2–3, huge diameter.
    RoadNetwork,
    /// Web graph: community structure, "somewhere in the middle".
    WebGraph,
}

impl Domain {
    /// Table III's abbreviation for the domain.
    pub fn abbr(self) -> &'static str {
        match self {
            Domain::SocialNetwork => "SN",
            Domain::RoadNetwork => "RN",
            Domain::WebGraph => "WG",
        }
    }
}

/// One dataset of the evaluation: a named, deterministic synthetic graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dataset {
    /// Stand-in for `soc-orkut` (3.07M vertices / 117M edges in the paper).
    Orkut,
    /// Stand-in for `soc-twitter` (41.7M / 1.47B).
    Twitter,
    /// Stand-in for `road-USA` (23.9M / 28.9M, diameter 1452).
    RoadUsa,
    /// Stand-in for `europe-osm` (50.9M / 54.1M, diameter 2037).
    EuropeOsm,
    /// Stand-in for `uk-2002` (18.5M / 298M).
    Uk2002,
    /// Stand-in for `sk-2005` (50.6M / 1.95B).
    Sk2005,
}

impl Dataset {
    /// All six datasets in Table III order.
    pub const ALL: [Dataset; 6] = [
        Dataset::Orkut,
        Dataset::Twitter,
        Dataset::RoadUsa,
        Dataset::EuropeOsm,
        Dataset::Uk2002,
        Dataset::Sk2005,
    ];

    /// Table III's two-letter abbreviation.
    pub fn abbr(self) -> &'static str {
        match self {
            Dataset::Orkut => "OR",
            Dataset::Twitter => "TW",
            Dataset::RoadUsa => "US",
            Dataset::EuropeOsm => "EU",
            Dataset::Uk2002 => "UK",
            Dataset::Sk2005 => "SK",
        }
    }

    /// The synthetic stand-in's name.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::Orkut => "soc-orkut-sim",
            Dataset::Twitter => "soc-twitter-sim",
            Dataset::RoadUsa => "road-usa-sim",
            Dataset::EuropeOsm => "europe-osm-sim",
            Dataset::Uk2002 => "uk-2002-sim",
            Dataset::Sk2005 => "sk-2005-sim",
        }
    }

    /// Original dataset name in the paper.
    pub fn paper_name(self) -> &'static str {
        match self {
            Dataset::Orkut => "soc-orkut",
            Dataset::Twitter => "soc-twitter",
            Dataset::RoadUsa => "road-USA",
            Dataset::EuropeOsm => "europe-osm",
            Dataset::Uk2002 => "uk-2002",
            Dataset::Sk2005 => "sk-2005",
        }
    }

    /// Original `(|V|, |E|)` as reported in Table III (for the report).
    pub fn paper_size(self) -> (&'static str, &'static str) {
        match self {
            Dataset::Orkut => ("3.07M", "117M"),
            Dataset::Twitter => ("41.7M", "1.47B"),
            Dataset::RoadUsa => ("23.9M", "28.9M"),
            Dataset::EuropeOsm => ("50.9M", "54.1M"),
            Dataset::Uk2002 => ("18.5M", "298M"),
            Dataset::Sk2005 => ("50.6M", "1.95B"),
        }
    }

    /// The topology domain.
    pub fn domain(self) -> Domain {
        match self {
            Dataset::Orkut | Dataset::Twitter => Domain::SocialNetwork,
            Dataset::RoadUsa | Dataset::EuropeOsm => Domain::RoadNetwork,
            Dataset::Uk2002 | Dataset::Sk2005 => Domain::WebGraph,
        }
    }

    /// Generates the synthetic graph (deterministic; symmetric/undirected,
    /// matching the paper's treatment of these datasets).
    pub fn load(self) -> Graph {
        match self {
            Dataset::Orkut => generators::rmat(13, 14, Default::default(), 0xF1A5_0001),
            Dataset::Twitter => generators::rmat(15, 16, Default::default(), 0xF1A5_0002),
            Dataset::RoadUsa => generators::road_network(60, 540, 0xF1A5_0003),
            Dataset::EuropeOsm => generators::road_network(80, 845, 0xF1A5_0004),
            Dataset::Uk2002 => generators::web_graph(16_384, 18, 64, 0xF1A5_0005),
            Dataset::Sk2005 => generators::web_graph(49_152, 26, 96, 0xF1A5_0006),
        }
    }

    /// A ~10x smaller variant of the same topology, for tests and smoke runs.
    pub fn load_small(self) -> Graph {
        match self {
            Dataset::Orkut => generators::rmat(10, 12, Default::default(), 0xF1A5_1001),
            Dataset::Twitter => generators::rmat(11, 14, Default::default(), 0xF1A5_1002),
            Dataset::RoadUsa => generators::road_network(30, 105, 0xF1A5_1003),
            Dataset::EuropeOsm => generators::road_network(40, 160, 0xF1A5_1004),
            Dataset::Uk2002 => generators::web_graph(2_048, 14, 16, 0xF1A5_1005),
            Dataset::Sk2005 => generators::web_graph(5_120, 20, 24, 0xF1A5_1006),
        }
    }

    /// Parses a dataset from its Table III abbreviation (case-insensitive).
    pub fn from_abbr(abbr: &str) -> Option<Dataset> {
        Dataset::ALL
            .into_iter()
            .find(|d| d.abbr().eq_ignore_ascii_case(abbr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::graph_stats;

    #[test]
    fn registry_is_complete_and_parseable() {
        for d in Dataset::ALL {
            assert_eq!(Dataset::from_abbr(d.abbr()), Some(d));
            assert_eq!(Dataset::from_abbr(&d.abbr().to_lowercase()), Some(d));
            assert!(!d.name().is_empty());
        }
        assert_eq!(Dataset::from_abbr("zz"), None);
    }

    #[test]
    fn small_variants_preserve_topology_class() {
        // Road nets: long diameter, low degree. Social: skew. Web: middle.
        let us = Dataset::RoadUsa.load_small();
        let us_stats = graph_stats(&us);
        assert!(us_stats.avg_degree < 5.0);
        assert!(us_stats.pseudo_diameter > 50);
        assert_eq!(us_stats.components, 1);

        let or = Dataset::Orkut.load_small();
        let or_stats = graph_stats(&or);
        assert!(or_stats.max_degree as f64 > 5.0 * or_stats.avg_degree);
        assert!(or_stats.pseudo_diameter < 20);

        let uk = Dataset::Uk2002.load_small();
        let uk_stats = graph_stats(&uk);
        assert_eq!(uk_stats.components, 1);
        assert!(uk_stats.pseudo_diameter < us_stats.pseudo_diameter);
    }

    #[test]
    fn relative_ordering_within_classes() {
        // Per Table III: TW > OR, EU > US, SK > UK in |V|.
        let sizes: Vec<usize> = [
            Dataset::Orkut,
            Dataset::Twitter,
            Dataset::RoadUsa,
            Dataset::EuropeOsm,
            Dataset::Uk2002,
            Dataset::Sk2005,
        ]
        .iter()
        .map(|d| d.load_small().num_vertices())
        .collect();
        assert!(sizes[1] > sizes[0]);
        assert!(sizes[3] > sizes[2]);
        assert!(sizes[5] > sizes[4]);
    }
}
