//! Edge-cut graph partitioning with master/mirror bookkeeping.
//!
//! Per the paper (§II "Graph partitions", §IV-A "Data layout"), an
//! `m`-worker cluster partitions `G = (V, E)` so that every vertex is owned
//! by exactly one worker (its *master*); other workers that touch the vertex
//! through local edges hold *mirrors*. [`PartitionMap`] captures the
//! ownership function plus the mirror placement needed for the
//! "communicate with only necessary mirrors" optimization (§IV-C).

use crate::error::GraphError;
use crate::graph::Graph;
use crate::VertexId;

/// A vertex-ownership scheme: maps each vertex to its master worker.
pub trait Partitioner {
    /// The worker that owns vertex `v` in an `m`-worker cluster.
    fn owner(&self, v: VertexId, n: usize, m: usize) -> usize;

    /// Human-readable scheme name (used in reports).
    fn name(&self) -> &'static str;
}

/// Hash partitioning: `owner(v) = mix(v) % m`.
///
/// This is the default scheme; a multiplicative mix keeps consecutive ids
/// (which generators tend to make topologically close) from landing on the
/// same worker, exercising the communication paths realistically.
#[derive(Clone, Copy, Debug, Default)]
pub struct HashPartitioner;

impl Partitioner for HashPartitioner {
    #[inline]
    fn owner(&self, v: VertexId, _n: usize, m: usize) -> usize {
        // Fibonacci hashing — cheap and well-spread for sequential ids.
        let mixed = (v as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        (mixed % m as u64) as usize
    }

    fn name(&self) -> &'static str {
        "hash"
    }
}

/// Chunked (range) partitioning: worker `i` owns a contiguous id range.
///
/// Keeps topological locality when ids correlate with structure (road grids),
/// minimizing mirrors — the contrast case for partitioning ablations.
#[derive(Clone, Copy, Debug, Default)]
pub struct ChunkPartitioner;

impl Partitioner for ChunkPartitioner {
    #[inline]
    fn owner(&self, v: VertexId, n: usize, m: usize) -> usize {
        if n == 0 {
            return 0;
        }
        let chunk = n.div_ceil(m);
        ((v as usize) / chunk).min(m - 1)
    }

    fn name(&self) -> &'static str {
        "chunk"
    }
}

/// The materialized result of partitioning a graph for `m` workers.
///
/// Holds, per worker: the list of owned (master) vertices, and per vertex:
/// the owner and the set of workers holding a *necessary* mirror (workers
/// with at least one edge incident to the vertex, §IV-C).
#[derive(Clone, Debug)]
pub struct PartitionMap {
    m: usize,
    owner: Vec<u16>,
    masters: Vec<Vec<VertexId>>,
    /// `mirror_workers[v]` = sorted worker ids (excluding the owner) that
    /// hold a necessary mirror of `v`.
    mirror_workers: Vec<Vec<u16>>,
    scheme: &'static str,
}

impl PartitionMap {
    /// Partitions `graph` across `m` workers using `scheme`.
    pub fn build(
        graph: &Graph,
        m: usize,
        scheme: &dyn Partitioner,
    ) -> Result<PartitionMap, GraphError> {
        if m == 0 {
            return Err(GraphError::NoWorkers);
        }
        if m > u16::MAX as usize {
            return Err(GraphError::NoWorkers);
        }
        let n = graph.num_vertices();
        let mut owner = vec![0u16; n];
        let mut masters: Vec<Vec<VertexId>> = vec![Vec::new(); m];
        for v in 0..n as VertexId {
            let w = scheme.owner(v, n, m);
            debug_assert!(w < m, "partitioner returned worker {w} >= {m}");
            owner[v as usize] = w as u16;
            masters[w].push(v);
        }

        // A worker holds a necessary mirror of v if it has an edge touching v
        // but does not own v. Collect via per-vertex worker sets (bit mask up
        // to 64 workers, spill to sorted vec otherwise).
        let mut mirror_workers: Vec<Vec<u16>> = vec![Vec::new(); n];
        if m > 1 {
            let mut touched: Vec<u64> = vec![0u64; n]; // bitmask for m <= 64
            let wide = m > 64;
            let mut touched_wide: Vec<Vec<u16>> = if wide {
                vec![Vec::new(); n]
            } else {
                Vec::new()
            };
            let touch =
                |v: usize, w: u16, touched: &mut Vec<u64>, touched_wide: &mut Vec<Vec<u16>>| {
                    if wide {
                        if !touched_wide[v].contains(&w) {
                            touched_wide[v].push(w);
                        }
                    } else {
                        touched[v] |= 1u64 << w;
                    }
                };
            for (s, d, _) in graph.edges() {
                let ws = owner[s as usize];
                let wd = owner[d as usize];
                if ws != wd {
                    // The source's worker touches d (push destination);
                    // the target's worker touches s (pull source).
                    touch(d as usize, ws, &mut touched, &mut touched_wide);
                    touch(s as usize, wd, &mut touched, &mut touched_wide);
                }
            }
            for v in 0..n {
                if wide {
                    let mut ws = std::mem::take(&mut touched_wide[v]);
                    ws.retain(|&w| w != owner[v]);
                    ws.sort_unstable();
                    mirror_workers[v] = ws;
                } else {
                    let mut mask = touched[v];
                    mask &= !(1u64 << owner[v]);
                    let mut ws = Vec::with_capacity(mask.count_ones() as usize);
                    while mask != 0 {
                        let w = mask.trailing_zeros() as u16;
                        ws.push(w);
                        mask &= mask - 1;
                    }
                    mirror_workers[v] = ws;
                }
            }
        }

        Ok(PartitionMap {
            m,
            owner,
            masters,
            mirror_workers,
            scheme: scheme.name(),
        })
    }

    /// Number of workers `m`.
    #[inline]
    pub fn num_workers(&self) -> usize {
        self.m
    }

    /// Number of vertices in the partitioned graph.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.owner.len()
    }

    /// The master worker of `v`.
    #[inline]
    pub fn owner(&self, v: VertexId) -> usize {
        self.owner[v as usize] as usize
    }

    /// `true` if worker `w` is the master of `v`.
    #[inline]
    pub fn is_master(&self, w: usize, v: VertexId) -> bool {
        self.owner[v as usize] as usize == w
    }

    /// The vertices mastered by worker `w`, ascending.
    #[inline]
    pub fn masters(&self, w: usize) -> &[VertexId] {
        &self.masters[w]
    }

    /// Workers (excluding the owner) holding a necessary mirror of `v` —
    /// the recipients under the "necessary mirrors only" sync policy.
    #[inline]
    pub fn necessary_mirrors(&self, v: VertexId) -> &[u16] {
        &self.mirror_workers[v as usize]
    }

    /// Total number of necessary mirror replicas across all vertices
    /// (the replication factor numerator).
    pub fn total_mirrors(&self) -> usize {
        self.mirror_workers.iter().map(Vec::len).sum()
    }

    /// Average replicas per vertex, counting the master (>= 1.0).
    pub fn replication_factor(&self) -> f64 {
        if self.owner.is_empty() {
            return 1.0;
        }
        1.0 + self.total_mirrors() as f64 / self.owner.len() as f64
    }

    /// The partitioning scheme name.
    pub fn scheme(&self) -> &'static str {
        self.scheme
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn path(n: usize) -> Graph {
        GraphBuilder::new(n)
            .edges((0..n as u32 - 1).map(|i| (i, i + 1)))
            .symmetric(true)
            .build()
            .unwrap()
    }

    #[test]
    fn rejects_zero_workers() {
        let g = path(4);
        assert!(matches!(
            PartitionMap::build(&g, 0, &HashPartitioner),
            Err(GraphError::NoWorkers)
        ));
    }

    #[test]
    fn masters_partition_v_exactly() {
        let g = path(100);
        for m in [1usize, 2, 3, 7] {
            let p = PartitionMap::build(&g, m, &HashPartitioner).unwrap();
            let mut seen = [false; 100];
            for w in 0..m {
                for &v in p.masters(w) {
                    assert_eq!(p.owner(v), w);
                    assert!(!seen[v as usize], "vertex owned twice");
                    seen[v as usize] = true;
                }
            }
            assert!(seen.iter().all(|&s| s), "vertex unowned");
        }
    }

    #[test]
    fn chunk_partitioner_is_contiguous() {
        let g = path(10);
        let p = PartitionMap::build(&g, 3, &ChunkPartitioner).unwrap();
        assert_eq!(p.masters(0), &[0, 1, 2, 3]);
        assert_eq!(p.masters(1), &[4, 5, 6, 7]);
        assert_eq!(p.masters(2), &[8, 9]);
    }

    #[test]
    fn single_worker_has_no_mirrors() {
        let g = path(10);
        let p = PartitionMap::build(&g, 1, &HashPartitioner).unwrap();
        assert_eq!(p.total_mirrors(), 0);
        assert_eq!(p.replication_factor(), 1.0);
    }

    #[test]
    fn necessary_mirrors_cover_cut_edges() {
        let g = path(10);
        let p = PartitionMap::build(&g, 2, &ChunkPartitioner).unwrap();
        // Cut edges: (4,5) and (5,4). Worker 1 must mirror 4, worker 0 must mirror 5.
        assert_eq!(p.necessary_mirrors(4), &[1]);
        assert_eq!(p.necessary_mirrors(5), &[0]);
        // Interior vertices have no mirrors.
        assert!(p.necessary_mirrors(0).is_empty());
        assert!(p.necessary_mirrors(9).is_empty());
    }

    #[test]
    fn mirror_never_includes_owner() {
        let g = path(64);
        let p = PartitionMap::build(&g, 5, &HashPartitioner).unwrap();
        for v in 0..64u32 {
            for &w in p.necessary_mirrors(v) {
                assert_ne!(w as usize, p.owner(v));
            }
        }
    }

    #[test]
    fn replication_grows_with_workers() {
        let g = path(200);
        let p2 = PartitionMap::build(&g, 2, &HashPartitioner).unwrap();
        let p8 = PartitionMap::build(&g, 8, &HashPartitioner).unwrap();
        assert!(p8.replication_factor() >= p2.replication_factor());
    }

    #[test]
    fn wide_cluster_over_64_workers() {
        let g = path(300);
        let p = PartitionMap::build(&g, 80, &HashPartitioner).unwrap();
        let mut total = 0;
        for w in 0..80 {
            total += p.masters(w).len();
        }
        assert_eq!(total, 300);
        for v in 0..300u32 {
            for &w in p.necessary_mirrors(v) {
                assert_ne!(w as usize, p.owner(v));
                assert!((w as usize) < 80);
            }
        }
    }
}
