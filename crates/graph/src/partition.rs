//! Edge-cut graph partitioning with master/mirror bookkeeping.
//!
//! Per the paper (§II "Graph partitions", §IV-A "Data layout"), an
//! `m`-worker cluster partitions `G = (V, E)` so that every vertex is owned
//! by exactly one worker (its *master*); other workers that touch the vertex
//! through local edges hold *mirrors*. [`PartitionMap`] captures the
//! ownership function plus the mirror placement needed for the
//! "communicate with only necessary mirrors" optimization (§IV-C).
//!
//! # Elastic membership
//!
//! The paper's MPI deployment aborts when a worker is lost for good. The
//! simulated cluster instead supports *elastic membership*: the `m` logical
//! partitions built here are fixed for the life of a run, but each is
//! **hosted** by a physical host (initially host `w` hosts partition `w`).
//! When a host is declared dead, [`PartitionMap::rebalance`] re-homes its
//! partitions onto the least-loaded survivors and bumps a monotonically
//! increasing membership *epoch*; [`PartitionMap::rejoin`] lets a host come
//! back and reclaim its home partition. Keeping the logical partitions (and
//! therefore ownership, combiner groupings and reduce orderings) fixed is
//! what makes post-failure results bit-identical to a clean run — only the
//! host routing, and with it the charged network traffic, changes.

use crate::error::GraphError;
use crate::graph::Graph;
use crate::VertexId;

/// A vertex-ownership scheme: maps each vertex to its master worker.
pub trait Partitioner {
    /// The worker that owns vertex `v` in an `m`-worker cluster.
    fn owner(&self, v: VertexId, n: usize, m: usize) -> usize;

    /// Human-readable scheme name (used in reports).
    fn name(&self) -> &'static str;
}

/// Hash partitioning: `owner(v) = mix(v) % m`.
///
/// This is the default scheme; a multiplicative mix keeps consecutive ids
/// (which generators tend to make topologically close) from landing on the
/// same worker, exercising the communication paths realistically.
#[derive(Clone, Copy, Debug, Default)]
pub struct HashPartitioner;

impl Partitioner for HashPartitioner {
    #[inline]
    fn owner(&self, v: VertexId, _n: usize, m: usize) -> usize {
        // Fibonacci hashing — cheap and well-spread for sequential ids.
        let mixed = (v as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        (mixed % m as u64) as usize
    }

    fn name(&self) -> &'static str {
        "hash"
    }
}

/// Chunked (range) partitioning: worker `i` owns a contiguous id range.
///
/// Keeps topological locality when ids correlate with structure (road grids),
/// minimizing mirrors — the contrast case for partitioning ablations.
#[derive(Clone, Copy, Debug, Default)]
pub struct ChunkPartitioner;

impl Partitioner for ChunkPartitioner {
    #[inline]
    fn owner(&self, v: VertexId, n: usize, m: usize) -> usize {
        if n == 0 {
            return 0;
        }
        let chunk = n.div_ceil(m);
        ((v as usize) / chunk).min(m - 1)
    }

    fn name(&self) -> &'static str {
        "chunk"
    }
}

/// The materialized result of partitioning a graph for `m` workers.
///
/// Holds, per worker: the list of owned (master) vertices, and per vertex:
/// the owner and the set of workers holding a *necessary* mirror (workers
/// with at least one edge incident to the vertex, §IV-C).
#[derive(Clone, Debug)]
pub struct PartitionMap {
    m: usize,
    owner: Vec<u16>,
    masters: Vec<Vec<VertexId>>,
    /// `mirror_workers[v]` = sorted worker ids (excluding the owner) that
    /// hold a necessary mirror of `v`.
    mirror_workers: Vec<Vec<u16>>,
    scheme: &'static str,
    /// Membership epoch: bumped by every [`rebalance`](Self::rebalance) or
    /// [`rejoin`](Self::rejoin). Epoch 0 is the initial identity hosting.
    epoch: u64,
    /// `host[w]` = physical host currently hosting logical partition `w`.
    host: Vec<u16>,
    /// `dead[h]` = physical host `h` has been declared permanently lost.
    dead: Vec<bool>,
}

/// One logical partition re-homed by a membership change.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartitionMove {
    /// The logical partition (worker id) that moved.
    pub worker: usize,
    /// The host it was evacuated from.
    pub from: usize,
    /// The host it now lives on.
    pub to: usize,
}

/// The outcome of one membership epoch change ([`PartitionMap::rebalance`]
/// or [`PartitionMap::rejoin`]): the new epoch and the partitions moved.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RebalanceReport {
    /// The epoch the map is now at.
    pub epoch: u64,
    /// Every partition re-homed by this change, ascending by worker id.
    pub moved: Vec<PartitionMove>,
}

impl PartitionMap {
    /// Partitions `graph` across `m` workers using `scheme`.
    pub fn build(
        graph: &Graph,
        m: usize,
        scheme: &dyn Partitioner,
    ) -> Result<PartitionMap, GraphError> {
        if m == 0 {
            return Err(GraphError::NoWorkers);
        }
        if m > u16::MAX as usize {
            return Err(GraphError::NoWorkers);
        }
        let n = graph.num_vertices();
        let mut owner = vec![0u16; n];
        let mut masters: Vec<Vec<VertexId>> = vec![Vec::new(); m];
        for v in 0..n as VertexId {
            let w = scheme.owner(v, n, m);
            debug_assert!(w < m, "partitioner returned worker {w} >= {m}");
            owner[v as usize] = w as u16;
            masters[w].push(v);
        }

        // A worker holds a necessary mirror of v if it has an edge touching v
        // but does not own v. Collect via per-vertex worker sets (bit mask up
        // to 64 workers, spill to sorted vec otherwise).
        let mut mirror_workers: Vec<Vec<u16>> = vec![Vec::new(); n];
        if m > 1 {
            let mut touched: Vec<u64> = vec![0u64; n]; // bitmask for m <= 64
            let wide = m > 64;
            let mut touched_wide: Vec<Vec<u16>> = if wide {
                vec![Vec::new(); n]
            } else {
                Vec::new()
            };
            let touch =
                |v: usize, w: u16, touched: &mut Vec<u64>, touched_wide: &mut Vec<Vec<u16>>| {
                    if wide {
                        if !touched_wide[v].contains(&w) {
                            touched_wide[v].push(w);
                        }
                    } else {
                        touched[v] |= 1u64 << w;
                    }
                };
            for (s, d, _) in graph.edges() {
                let ws = owner[s as usize];
                let wd = owner[d as usize];
                if ws != wd {
                    // The source's worker touches d (push destination);
                    // the target's worker touches s (pull source).
                    touch(d as usize, ws, &mut touched, &mut touched_wide);
                    touch(s as usize, wd, &mut touched, &mut touched_wide);
                }
            }
            for v in 0..n {
                if wide {
                    let mut ws = std::mem::take(&mut touched_wide[v]);
                    ws.retain(|&w| w != owner[v]);
                    ws.sort_unstable();
                    mirror_workers[v] = ws;
                } else {
                    let mut mask = touched[v];
                    mask &= !(1u64 << owner[v]);
                    let mut ws = Vec::with_capacity(mask.count_ones() as usize);
                    while mask != 0 {
                        let w = mask.trailing_zeros() as u16;
                        ws.push(w);
                        mask &= mask - 1;
                    }
                    mirror_workers[v] = ws;
                }
            }
        }

        Ok(PartitionMap {
            m,
            owner,
            masters,
            mirror_workers,
            scheme: scheme.name(),
            epoch: 0,
            host: (0..m as u16).collect(),
            dead: vec![false; m],
        })
    }

    /// Number of workers `m`.
    #[inline]
    pub fn num_workers(&self) -> usize {
        self.m
    }

    /// Number of vertices in the partitioned graph.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.owner.len()
    }

    /// The master worker of `v`.
    #[inline]
    pub fn owner(&self, v: VertexId) -> usize {
        self.owner[v as usize] as usize
    }

    /// `true` if worker `w` is the master of `v`.
    #[inline]
    pub fn is_master(&self, w: usize, v: VertexId) -> bool {
        self.owner[v as usize] as usize == w
    }

    /// The vertices mastered by worker `w`, ascending.
    #[inline]
    pub fn masters(&self, w: usize) -> &[VertexId] {
        &self.masters[w]
    }

    /// Workers (excluding the owner) holding a necessary mirror of `v` —
    /// the recipients under the "necessary mirrors only" sync policy.
    #[inline]
    pub fn necessary_mirrors(&self, v: VertexId) -> &[u16] {
        &self.mirror_workers[v as usize]
    }

    /// Total number of necessary mirror replicas across all vertices
    /// (the replication factor numerator).
    pub fn total_mirrors(&self) -> usize {
        self.mirror_workers.iter().map(Vec::len).sum()
    }

    /// Average replicas per vertex, counting the master (>= 1.0).
    pub fn replication_factor(&self) -> f64 {
        if self.owner.is_empty() {
            return 1.0;
        }
        1.0 + self.total_mirrors() as f64 / self.owner.len() as f64
    }

    /// The partitioning scheme name.
    pub fn scheme(&self) -> &'static str {
        self.scheme
    }

    // ---- elastic membership ------------------------------------------------

    /// Current membership epoch (0 until the first rebalance/rejoin).
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The physical host currently hosting logical partition `w`.
    #[inline]
    pub fn host_of_worker(&self, w: usize) -> usize {
        self.host[w] as usize
    }

    /// The physical host currently hosting the master of vertex `v`.
    #[inline]
    pub fn host_of(&self, v: VertexId) -> usize {
        self.host[self.owner[v as usize] as usize] as usize
    }

    /// `true` unless host `h` has been declared permanently lost.
    #[inline]
    pub fn is_host_live(&self, h: usize) -> bool {
        !self.dead[h]
    }

    /// Number of hosts not declared dead.
    pub fn num_live_hosts(&self) -> usize {
        self.dead.iter().filter(|&&d| !d).count()
    }

    /// Host ids not declared dead, ascending.
    pub fn live_hosts(&self) -> Vec<usize> {
        (0..self.m).filter(|&h| !self.dead[h]).collect()
    }

    /// Distinct physical hosts (excluding the owner's host) that must
    /// receive a sync of `v` under the "necessary mirrors" policy, collected
    /// into `buf`. Returns the count. With the identity hosting of epoch 0
    /// this equals `necessary_mirrors(v).len()`; after a rebalance,
    /// co-hosted mirrors collapse into one message.
    pub fn necessary_mirror_hosts(&self, v: VertexId, buf: &mut Vec<u16>) -> usize {
        buf.clear();
        let owner_host = self.host[self.owner[v as usize] as usize];
        for &w in &self.mirror_workers[v as usize] {
            let h = self.host[w as usize];
            if h != owner_host && !buf.contains(&h) {
                buf.push(h);
            }
        }
        buf.len()
    }

    /// Declares the hosts in `dead` permanently lost and re-homes every
    /// logical partition they hosted onto the live host with the fewest
    /// owned vertices (ties broken by the lower host id) — a deterministic
    /// greedy balance. Bumps the membership epoch and reports the moves.
    ///
    /// Fails without modifying the map if a host id is out of range, a host
    /// is already dead, the dead-set has duplicates, or the change would
    /// leave no live hosts.
    pub fn rebalance(&mut self, dead: &[usize]) -> Result<RebalanceReport, GraphError> {
        for (i, &h) in dead.iter().enumerate() {
            if h >= self.m {
                return Err(GraphError::Membership(format!(
                    "host {h} is out of range for {} hosts",
                    self.m
                )));
            }
            if self.dead[h] {
                return Err(GraphError::Membership(format!("host {h} is already dead")));
            }
            if dead[..i].contains(&h) {
                return Err(GraphError::Membership(format!(
                    "host {h} appears twice in the dead-set"
                )));
            }
        }
        if self.num_live_hosts() <= dead.len() {
            return Err(GraphError::Membership(
                "a membership change must leave at least one live host".into(),
            ));
        }
        for &h in dead {
            self.dead[h] = true;
        }
        // Load = owned vertices per live host under the current hosting.
        let mut load = vec![0usize; self.m];
        for w in 0..self.m {
            load[self.host[w] as usize] += self.masters[w].len();
        }
        let mut moved = Vec::new();
        for w in 0..self.m {
            let from = self.host[w] as usize;
            if !self.dead[from] {
                continue;
            }
            let to = (0..self.m)
                .filter(|&h| !self.dead[h])
                .min_by_key(|&h| (load[h], h))
                .expect("at least one live host");
            debug_assert!(to <= u16::MAX as usize, "host id {to} overflows u16");
            self.host[w] = to as u16;
            load[to] += self.masters[w].len();
            moved.push(PartitionMove {
                worker: w,
                from,
                to,
            });
        }
        self.epoch += 1;
        Ok(RebalanceReport {
            epoch: self.epoch,
            moved,
        })
    }

    /// Brings a previously dead host back and re-homes its *home* partition
    /// (logical partition `host`) onto it. Partitions the host had adopted
    /// from earlier deaths stay where the intervening rebalances put them.
    /// Bumps the membership epoch and reports the move.
    pub fn rejoin(&mut self, host: usize) -> Result<RebalanceReport, GraphError> {
        if host >= self.m {
            return Err(GraphError::Membership(format!(
                "host {host} is out of range for {} hosts",
                self.m
            )));
        }
        if !self.dead[host] {
            return Err(GraphError::Membership(format!(
                "host {host} is live and cannot rejoin"
            )));
        }
        self.dead[host] = false;
        let from = self.host[host] as usize;
        debug_assert!(host <= u16::MAX as usize, "host id {host} overflows u16");
        self.host[host] = host as u16;
        self.epoch += 1;
        Ok(RebalanceReport {
            epoch: self.epoch,
            moved: vec![PartitionMove {
                worker: host,
                from,
                to: host,
            }],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn path(n: usize) -> Graph {
        GraphBuilder::new(n)
            .edges((0..n as u32 - 1).map(|i| (i, i + 1)))
            .symmetric(true)
            .build()
            .unwrap()
    }

    #[test]
    fn rejects_zero_workers() {
        let g = path(4);
        assert!(matches!(
            PartitionMap::build(&g, 0, &HashPartitioner),
            Err(GraphError::NoWorkers)
        ));
    }

    #[test]
    fn masters_partition_v_exactly() {
        let g = path(100);
        for m in [1usize, 2, 3, 7] {
            let p = PartitionMap::build(&g, m, &HashPartitioner).unwrap();
            let mut seen = [false; 100];
            for w in 0..m {
                for &v in p.masters(w) {
                    assert_eq!(p.owner(v), w);
                    assert!(!seen[v as usize], "vertex owned twice");
                    seen[v as usize] = true;
                }
            }
            assert!(seen.iter().all(|&s| s), "vertex unowned");
        }
    }

    #[test]
    fn chunk_partitioner_is_contiguous() {
        let g = path(10);
        let p = PartitionMap::build(&g, 3, &ChunkPartitioner).unwrap();
        assert_eq!(p.masters(0), &[0, 1, 2, 3]);
        assert_eq!(p.masters(1), &[4, 5, 6, 7]);
        assert_eq!(p.masters(2), &[8, 9]);
    }

    #[test]
    fn single_worker_has_no_mirrors() {
        let g = path(10);
        let p = PartitionMap::build(&g, 1, &HashPartitioner).unwrap();
        assert_eq!(p.total_mirrors(), 0);
        assert_eq!(p.replication_factor(), 1.0);
    }

    #[test]
    fn necessary_mirrors_cover_cut_edges() {
        let g = path(10);
        let p = PartitionMap::build(&g, 2, &ChunkPartitioner).unwrap();
        // Cut edges: (4,5) and (5,4). Worker 1 must mirror 4, worker 0 must mirror 5.
        assert_eq!(p.necessary_mirrors(4), &[1]);
        assert_eq!(p.necessary_mirrors(5), &[0]);
        // Interior vertices have no mirrors.
        assert!(p.necessary_mirrors(0).is_empty());
        assert!(p.necessary_mirrors(9).is_empty());
    }

    #[test]
    fn mirror_never_includes_owner() {
        let g = path(64);
        let p = PartitionMap::build(&g, 5, &HashPartitioner).unwrap();
        for v in 0..64u32 {
            for &w in p.necessary_mirrors(v) {
                assert_ne!(w as usize, p.owner(v));
            }
        }
    }

    #[test]
    fn replication_grows_with_workers() {
        let g = path(200);
        let p2 = PartitionMap::build(&g, 2, &HashPartitioner).unwrap();
        let p8 = PartitionMap::build(&g, 8, &HashPartitioner).unwrap();
        assert!(p8.replication_factor() >= p2.replication_factor());
    }

    #[test]
    fn rebalance_rehomes_dead_hosts_partitions_deterministically() {
        let g = path(100);
        let mut p = PartitionMap::build(&g, 4, &HashPartitioner).unwrap();
        assert_eq!(p.epoch(), 0);
        for w in 0..4 {
            assert_eq!(p.host_of_worker(w), w);
        }
        let report = p.rebalance(&[1]).unwrap();
        assert_eq!(report.epoch, 1);
        assert_eq!(p.epoch(), 1);
        assert_eq!(report.moved.len(), 1);
        assert_eq!(report.moved[0].worker, 1);
        assert_eq!(report.moved[0].from, 1);
        let adopter = report.moved[0].to;
        assert!(adopter != 1 && adopter < 4);
        assert_eq!(p.host_of_worker(1), adopter);
        assert!(!p.is_host_live(1));
        assert_eq!(p.num_live_hosts(), 3);
        assert_eq!(p.live_hosts(), vec![0, 2, 3]);
        // Ownership is untouched — only the hosting changed.
        for v in 0..100u32 {
            assert!(p.owner(v) < 4);
            assert!(p.is_host_live(p.host_of(v)));
        }
        // Deterministic: an identical map rebalanced the same way agrees.
        let mut q = PartitionMap::build(&g, 4, &HashPartitioner).unwrap();
        let r2 = q.rebalance(&[1]).unwrap();
        assert_eq!(report, r2);
    }

    #[test]
    fn rejoin_restores_the_home_partition() {
        let g = path(100);
        let mut p = PartitionMap::build(&g, 4, &HashPartitioner).unwrap();
        let dead = p.rebalance(&[2]).unwrap();
        let back = p.rejoin(2).unwrap();
        assert_eq!(back.epoch, 2);
        assert_eq!(
            back.moved,
            vec![PartitionMove {
                worker: 2,
                from: dead.moved[0].to,
                to: 2
            }]
        );
        assert!(p.is_host_live(2));
        assert_eq!(p.num_live_hosts(), 4);
        assert_eq!(p.host_of_worker(2), 2);
    }

    #[test]
    fn membership_changes_validate_their_inputs() {
        let g = path(20);
        let mut p = PartitionMap::build(&g, 3, &HashPartitioner).unwrap();
        assert!(matches!(p.rebalance(&[7]), Err(GraphError::Membership(_))));
        assert!(matches!(
            p.rebalance(&[1, 1]),
            Err(GraphError::Membership(_))
        ));
        assert!(matches!(
            p.rebalance(&[0, 1, 2]),
            Err(GraphError::Membership(_))
        ));
        assert!(matches!(p.rejoin(0), Err(GraphError::Membership(_))));
        assert!(matches!(p.rejoin(9), Err(GraphError::Membership(_))));
        // Failed changes leave the map untouched.
        assert_eq!(p.epoch(), 0);
        p.rebalance(&[1]).unwrap();
        assert!(matches!(p.rebalance(&[1]), Err(GraphError::Membership(_))));
        assert_eq!(p.epoch(), 1);
    }

    #[test]
    fn mirror_hosts_collapse_after_a_rebalance() {
        let g = path(64);
        let mut p = PartitionMap::build(&g, 4, &HashPartitioner).unwrap();
        let mut buf = Vec::new();
        // Identity hosting: host count equals worker count for every vertex.
        for v in 0..64u32 {
            let n = p.necessary_mirror_hosts(v, &mut buf);
            assert_eq!(n, p.necessary_mirrors(v).len());
        }
        p.rebalance(&[1]).unwrap();
        for v in 0..64u32 {
            let n = p.necessary_mirror_hosts(v, &mut buf);
            // Never more hosts than mirror workers, all live, owner excluded,
            // no duplicates.
            assert!(n <= p.necessary_mirrors(v).len());
            let owner_host = p.host_of(v) as u16;
            for (i, &h) in buf.iter().enumerate() {
                assert!(p.is_host_live(h as usize));
                assert_ne!(h, owner_host);
                assert!(!buf[..i].contains(&h));
            }
        }
    }

    #[test]
    fn successive_epochs_keep_loads_on_live_hosts() {
        let g = path(200);
        let mut p = PartitionMap::build(&g, 6, &HashPartitioner).unwrap();
        p.rebalance(&[0, 3]).unwrap();
        p.rebalance(&[5]).unwrap();
        assert_eq!(p.epoch(), 2);
        assert_eq!(p.num_live_hosts(), 3);
        for w in 0..6 {
            assert!(p.is_host_live(p.host_of_worker(w)));
        }
    }

    #[test]
    fn wide_cluster_over_64_workers() {
        let g = path(300);
        let p = PartitionMap::build(&g, 80, &HashPartitioner).unwrap();
        let mut total = 0;
        for w in 0..80 {
            total += p.masters(w).len();
        }
        assert_eq!(total, 300);
        for v in 0..300u32 {
            for &w in p.necessary_mirrors(v) {
                assert_ne!(w as usize, p.owner(v));
                assert!((w as usize) < 80);
            }
        }
    }
}
