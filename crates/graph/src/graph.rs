//! The immutable property graph shared by all FLASH components.

use crate::blocks::BlockHandle;
use crate::csr::Csr;
use crate::{VertexId, Weight};
use std::sync::Arc;

/// An immutable directed (optionally weighted) graph in dual-CSR form.
///
/// Per the paper (§II "Graph algorithms"), edges are immutable objects —
/// algorithms mutate vertex state only — so `Graph` is a read-only structure
/// that can be shared freely across workers (`Arc<Graph>` in practice).
///
/// Both out-adjacency (needed by the *push*/sparse `EDGEMAP` kernel) and
/// in-adjacency (needed by the *pull*/dense kernel, Algorithm 5) are stored.
/// For symmetric (undirected) graphs the two coincide in content.
#[derive(Clone, Debug)]
pub struct Graph {
    n: usize,
    out: Csr,
    inn: Csr,
    symmetric: bool,
    blocks: Option<Arc<BlockHandle>>,
}

impl Graph {
    /// Assembles a graph from prebuilt CSRs. Prefer [`crate::GraphBuilder`].
    pub(crate) fn from_parts(n: usize, out: Csr, inn: Csr, symmetric: bool) -> Self {
        debug_assert_eq!(out.num_vertices(), n);
        debug_assert_eq!(inn.num_vertices(), n);
        debug_assert_eq!(out.num_edges(), inn.num_edges());
        Graph {
            n,
            out,
            inn,
            symmetric,
            blocks: None,
        }
    }

    /// Attaches the block grid/cache handle a block-backed graph streams
    /// through (set by [`crate::blocks::open_blocks`]).
    pub(crate) fn attach_blocks(&mut self, handle: Arc<BlockHandle>) {
        self.blocks = Some(handle);
    }

    /// The block grid/cache handle, when this graph is block-backed.
    #[inline]
    pub fn block_handle(&self) -> Option<&Arc<BlockHandle>> {
        self.blocks.as_ref()
    }

    /// Number of vertices `|V|`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of directed arcs `|E|` (an undirected edge counts twice).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.out.num_edges()
    }

    /// `true` if the graph was built symmetric (every edge has its reverse).
    #[inline]
    pub fn is_symmetric(&self) -> bool {
        self.symmetric
    }

    /// `true` if edge weights are stored.
    #[inline]
    pub fn is_weighted(&self) -> bool {
        self.out.is_weighted()
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: VertexId) -> usize {
        self.out.degree(v)
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: VertexId) -> usize {
        self.inn.degree(v)
    }

    /// Degree used by the paper's algorithms (`v.deg`): the out-degree,
    /// which equals the undirected degree on symmetric graphs.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.out.degree(v)
    }

    /// Out-neighbors of `v`, sorted ascending.
    #[inline]
    pub fn out_neighbors(&self, v: VertexId) -> &[VertexId] {
        self.out.neighbors(v)
    }

    /// In-neighbors of `v`, sorted ascending.
    #[inline]
    pub fn in_neighbors(&self, v: VertexId) -> &[VertexId] {
        self.inn.neighbors(v)
    }

    /// `(target, weight)` pairs out of `v` (weight 1.0 when unweighted).
    pub fn out_edges(&self, v: VertexId) -> impl Iterator<Item = (VertexId, Weight)> + '_ {
        self.out.edges(v)
    }

    /// `(source, weight)` pairs into `v` (weight 1.0 when unweighted).
    pub fn in_edges(&self, v: VertexId) -> impl Iterator<Item = (VertexId, Weight)> + '_ {
        self.inn.edges(v)
    }

    /// Weights parallel to [`Graph::out_neighbors`], when weighted.
    pub fn out_weights(&self, v: VertexId) -> Option<&[Weight]> {
        self.out.neighbor_weights(v)
    }

    /// Weights parallel to [`Graph::in_neighbors`], when weighted.
    pub fn in_weights(&self, v: VertexId) -> Option<&[Weight]> {
        self.inn.neighbor_weights(v)
    }

    /// O(log d) membership test for arc `(s, d)`.
    pub fn has_edge(&self, s: VertexId, d: VertexId) -> bool {
        self.out.has_edge(s, d)
    }

    /// Iterates all arcs as `(source, target, weight)` triples.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId, Weight)> + '_ {
        (0..self.n as VertexId).flat_map(move |s| self.out.edges(s).map(move |(d, w)| (s, d, w)))
    }

    /// Iterates all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> {
        0..self.n as VertexId
    }

    /// Maximum out-degree over all vertices (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.n as VertexId)
            .map(|v| self.out.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Average out-degree (`|E| / |V|`, 0.0 for an empty graph).
    pub fn avg_degree(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.num_edges() as f64 / self.n as f64
        }
    }

    /// Approximate heap footprint in bytes (owned CSR arrays only).
    pub fn heap_bytes(&self) -> usize {
        self.out.heap_bytes() + self.inn.heap_bytes()
    }

    /// Bytes of adjacency served from a mapped block file (0 when fully
    /// in-memory).
    pub fn mapped_bytes(&self) -> usize {
        self.out.mapped_bytes() + self.inn.mapped_bytes()
    }

    /// The out-adjacency CSR (for engines that need raw access).
    pub fn out_csr(&self) -> &Csr {
        &self.out
    }

    /// The in-adjacency CSR (for engines that need raw access).
    pub fn in_csr(&self) -> &Csr {
        &self.inn
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn directed_triangle() -> Graph {
        GraphBuilder::new(3)
            .edges([(0, 1), (1, 2), (2, 0)])
            .build()
            .unwrap()
    }

    #[test]
    fn directed_in_out_are_distinct() {
        let g = directed_triangle();
        assert_eq!(g.out_neighbors(0), &[1]);
        assert_eq!(g.in_neighbors(0), &[2]);
        assert_eq!(g.out_degree(0), 1);
        assert_eq!(g.in_degree(0), 1);
        assert!(!g.is_symmetric());
    }

    #[test]
    fn symmetric_graph_mirrors_edges() {
        let g = GraphBuilder::new(3)
            .edges([(0, 1), (1, 2)])
            .symmetric(true)
            .build()
            .unwrap();
        assert!(g.is_symmetric());
        assert_eq!(g.out_neighbors(1), &[0, 2]);
        assert_eq!(g.in_neighbors(1), &[0, 2]);
        assert_eq!(g.num_edges(), 4);
    }

    #[test]
    fn edge_iteration_covers_all() {
        let g = directed_triangle();
        let all: Vec<_> = g.edges().map(|(s, d, _)| (s, d)).collect();
        assert_eq!(all, vec![(0, 1), (1, 2), (2, 0)]);
    }

    #[test]
    fn degree_statistics() {
        let g = GraphBuilder::new(4)
            .edges([(0, 1), (0, 2), (0, 3)])
            .build()
            .unwrap();
        assert_eq!(g.max_degree(), 3);
        assert!((g.avg_degree() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn has_edge_checks_direction() {
        let g = directed_triangle();
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
    }
}
