//! Dependency-free deterministic pseudo-random number generation.
//!
//! The workspace builds fully offline, so the synthetic-graph generators
//! cannot pull in the `rand` crate. This module provides the small slice of
//! its API they need: a seeded generator with `gen::<T>()` and
//! `gen_range(..)`, deterministic across platforms and releases.
//!
//! The engine is **xoshiro256\*\*** (Blackman & Vigna) seeded through a
//! **SplitMix64** expansion of the `u64` seed — the standard pairing, since
//! xoshiro must not be seeded with a state that is all zeros and SplitMix64
//! decorrelates consecutive seeds.

/// A deterministic xoshiro256** generator.
///
/// Two generators built from the same seed produce identical streams;
/// different seeds produce (statistically) independent streams.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Prng {
    s: [u64; 4],
}

/// The SplitMix64 step: advances `state` and returns the next output.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Prng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Prng { s }
    }

    /// The next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// A uniformly distributed value of `T` (`u64`, `u32`, `f64` in
    /// `[0, 1)`, or `bool`).
    #[inline]
    pub fn gen<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// A uniform value in `[range.start, range.end)`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    #[inline]
    pub fn gen_range<T: UniformRange>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample(self, range.start, range.end)
    }

    /// Uniform `u64` in `[0, bound)` by Lemire's multiply-shift rejection
    /// method (unbiased, usually a single multiplication).
    #[inline]
    fn bounded_u64(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let mut m = (self.next_u64() as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            // Reject the biased low slice (at most bound-1 values of 2^64).
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                m = (self.next_u64() as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }
}

/// Types [`Prng::gen`] can produce.
pub trait Random {
    /// Draws a uniform value.
    fn random(rng: &mut Prng) -> Self;
}

impl Random for u64 {
    #[inline]
    fn random(rng: &mut Prng) -> u64 {
        rng.next_u64()
    }
}

impl Random for u32 {
    #[inline]
    fn random(rng: &mut Prng) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Random for bool {
    #[inline]
    fn random(rng: &mut Prng) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

impl Random for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn random(rng: &mut Prng) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer types [`Prng::gen_range`] can sample.
pub trait UniformRange: Sized {
    /// Uniform in `[lo, hi)`; panics if the range is empty.
    fn sample(rng: &mut Prng, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_range {
    ($($t:ty),*) => {$(
        impl UniformRange for $t {
            #[inline]
            fn sample(rng: &mut Prng, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "gen_range called with empty range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                lo + rng.bounded_u64(span) as $t
            }
        }
    )*};
}

impl_uniform_range!(u32, u64, usize);

impl UniformRange for i32 {
    #[inline]
    fn sample(rng: &mut Prng, lo: i32, hi: i32) -> i32 {
        assert!(lo < hi, "gen_range called with empty range");
        let span = (hi as i64 - lo as i64) as u64;
        (lo as i64 + rng.bounded_u64(span) as i64) as i32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Prng::seed_from_u64(42);
        let mut b = Prng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Prng::seed_from_u64(1);
        let mut b = Prng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn zero_seed_is_usable() {
        // SplitMix64 expansion guarantees a non-zero xoshiro state.
        let mut r = Prng::seed_from_u64(0);
        assert_ne!(r.s, [0; 4]);
        assert_ne!(r.next_u64(), r.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Prng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_is_roughly_uniform() {
        let mut r = Prng::seed_from_u64(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_stays_in_bounds_all_types() {
        let mut r = Prng::seed_from_u64(3);
        for _ in 0..10_000 {
            let a = r.gen_range(5u32..17);
            assert!((5..17).contains(&a));
            let b = r.gen_range(0usize..3);
            assert!(b < 3);
            let c = r.gen_range(-4i32..9);
            assert!((-4..9).contains(&c));
            let d = r.gen_range(0u64..1);
            assert_eq!(d, 0);
        }
    }

    #[test]
    fn gen_range_hits_every_value() {
        let mut r = Prng::seed_from_u64(8);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[r.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        Prng::seed_from_u64(0).gen_range(3u32..3);
    }

    #[test]
    fn bool_is_balanced() {
        let mut r = Prng::seed_from_u64(13);
        let heads = (0..10_000).filter(|_| r.gen::<bool>()).count();
        assert!((4_500..5_500).contains(&heads), "{heads} heads");
    }
}
