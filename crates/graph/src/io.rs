//! Plain-text edge-list I/O.
//!
//! The format is the usual whitespace-separated `src dst [weight]` per line,
//! with `#`/`%`-prefixed comment lines — compatible with SNAP and the
//! network-repository dumps the paper's Table III datasets ship in.

use crate::builder::GraphBuilder;
use crate::error::GraphError;
use crate::graph::Graph;
use crate::VertexId;
use std::io::{BufRead, BufReader, Read, Write};

/// Options controlling [`read_edge_list`].
#[derive(Clone, Copy, Debug, Default)]
pub struct ReadOptions {
    /// Symmetrize the parsed graph.
    pub symmetric: bool,
    /// Collapse duplicate edges.
    pub dedup: bool,
    /// Remove self-loops.
    pub drop_self_loops: bool,
}

/// Parses an edge list from `reader`. The vertex count is inferred as
/// `max_id + 1`; weights are read when a third column is present on the
/// first data line.
pub fn read_edge_list<R: Read>(reader: R, opts: ReadOptions) -> Result<Graph, GraphError> {
    let buf = BufReader::new(reader);
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    let mut weights: Vec<f32> = Vec::new();
    let mut weighted: Option<bool> = None;
    let mut max_id: u64 = 0;

    for (idx, line) in buf.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let mut it = line.split_whitespace();
        let lineno = idx + 1;
        let parse_id = |tok: Option<&str>, what: &str| -> Result<u64, GraphError> {
            let tok = tok.ok_or_else(|| GraphError::Parse {
                line: lineno,
                msg: format!("missing {what}"),
            })?;
            tok.parse::<u64>().map_err(|_| GraphError::Parse {
                line: lineno,
                msg: format!("invalid {what}: {tok:?}"),
            })
        };
        let s = parse_id(it.next(), "source id")?;
        let d = parse_id(it.next(), "target id")?;
        if s >= u32::MAX as u64 || d >= u32::MAX as u64 {
            return Err(GraphError::VertexOutOfRange {
                id: s.max(d),
                n: u32::MAX as usize,
            });
        }
        max_id = max_id.max(s).max(d);
        let wtok = it.next();
        match weighted {
            None => weighted = Some(wtok.is_some()),
            Some(true) if wtok.is_none() => {
                return Err(GraphError::Parse {
                    line: lineno,
                    msg: "weight column missing on weighted edge list".into(),
                })
            }
            Some(false) if wtok.is_some() => {
                return Err(GraphError::Parse {
                    line: lineno,
                    msg: "unexpected weight column on unweighted edge list".into(),
                })
            }
            _ => {}
        }
        if weighted == Some(true) {
            let tok = wtok.unwrap_or("1");
            let w: f32 = tok.parse().map_err(|_| GraphError::Parse {
                line: lineno,
                msg: format!("invalid weight: {tok:?}"),
            })?;
            weights.push(w);
        }
        edges.push((s as VertexId, d as VertexId));
    }

    let n = if edges.is_empty() {
        0
    } else {
        max_id as usize + 1
    };
    let mut b = GraphBuilder::new(n)
        .symmetric(opts.symmetric)
        .dedup(opts.dedup)
        .drop_self_loops(opts.drop_self_loops);
    if weighted == Some(true) {
        b = b.weighted_edges(edges.into_iter().zip(weights).map(|((s, d), w)| (s, d, w)));
    } else {
        b = b.edges(edges);
    }
    b.build()
}

/// Writes `g` as an edge list (one `src dst [weight]` line per arc).
pub fn write_edge_list<W: Write>(g: &Graph, mut writer: W) -> Result<(), GraphError> {
    for (s, d, w) in g.edges() {
        if g.is_weighted() {
            writeln!(writer, "{s} {d} {w}")?;
        } else {
            writeln!(writer, "{s} {d}")?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_comments_and_blank_lines() {
        let text = "# header\n\n0 1\n% more\n1 2\n";
        let g = read_edge_list(text.as_bytes(), ReadOptions::default()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn parses_weights() {
        let text = "0 1 2.5\n1 2 0.5\n";
        let g = read_edge_list(text.as_bytes(), ReadOptions::default()).unwrap();
        assert!(g.is_weighted());
        assert_eq!(g.out_weights(0).unwrap(), &[2.5]);
    }

    #[test]
    fn mixed_weight_columns_error() {
        let text = "0 1 2.5\n1 2\n";
        let err = read_edge_list(text.as_bytes(), ReadOptions::default()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 2, .. }));
    }

    #[test]
    fn weight_column_appearing_late_errors_instead_of_dropping() {
        // The first line fixes the arity at 2; a later 3-column line must
        // be a typed error (it used to be silently truncated).
        let text = "0 1\n1 2 2.5\n";
        let err = read_edge_list(text.as_bytes(), ReadOptions::default()).unwrap_err();
        match err {
            GraphError::Parse { line, msg } => {
                assert_eq!(line, 2);
                assert!(msg.contains("unexpected weight column"), "{msg}");
            }
            other => panic!("expected Parse, got {other:?}"),
        }
    }

    #[test]
    fn bad_tokens_error_with_line() {
        let text = "0 1\nfoo 2\n";
        let err = read_edge_list(text.as_bytes(), ReadOptions::default()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 2, .. }));
        let text2 = "0\n";
        assert!(read_edge_list(text2.as_bytes(), ReadOptions::default()).is_err());
    }

    #[test]
    fn roundtrip() {
        let g = crate::generators::erdos_renyi(20, 40, 3);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(buf.as_slice(), ReadOptions::default()).unwrap();
        assert_eq!(g.num_vertices(), g2.num_vertices());
        assert_eq!(
            g.edges().map(|(s, d, _)| (s, d)).collect::<Vec<_>>(),
            g2.edges().map(|(s, d, _)| (s, d)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn options_apply() {
        let text = "0 0\n0 1\n0 1\n";
        let g = read_edge_list(
            text.as_bytes(),
            ReadOptions {
                symmetric: true,
                dedup: true,
                drop_self_loops: true,
            },
        )
        .unwrap();
        assert_eq!(g.num_edges(), 2); // (0,1) and (1,0)
    }

    #[test]
    fn empty_input() {
        let g = read_edge_list("".as_bytes(), ReadOptions::default()).unwrap();
        assert_eq!(g.num_vertices(), 0);
    }
}
