//! Ablations of the §IV-C runtime optimizations: dual-mode propagation,
//! critical-property synchronization, and necessary-mirror communication.
//! Runs on the offline harness in `flash_bench::microbench`.

use flash_bench::microbench::{finish_suite, BenchResult, Group};
use flash_core::prelude::*;
use flash_graph::Dataset;
use flash_runtime::{ClusterConfig, ModePolicy, SyncMode};
use std::sync::Arc;

/// Figure 3's ablation: BFS under forced push, forced pull, and adaptive.
fn bench_mode_policies() -> Vec<BenchResult> {
    let mut group = Group::new("mode_policy");
    for d in [Dataset::Twitter, Dataset::RoadUsa, Dataset::Uk2002] {
        let g = Arc::new(d.load_small());
        for (name, mode) in [
            ("sparse", ModePolicy::ForceSparse),
            ("dense", ModePolicy::ForceDense),
            ("adaptive", ModePolicy::Adaptive),
        ] {
            let cfg = ClusterConfig::with_workers(4).mode(mode);
            group.bench(&format!("bfs_{name}/{}", d.abbr()), || {
                flash_algos::bfs::run(&g, cfg.clone(), 0).unwrap()
            });
        }
    }
    group.finish()
}

/// Critical-only vs full mirror synchronization (§IV-C "synchronize
/// critical properties only"), on an algorithm with heavy local scratch.
fn bench_sync_modes() -> Vec<BenchResult> {
    let mut group = Group::new("sync_mode");
    let g = Arc::new(Dataset::Uk2002.load_small());
    for (name, mode) in [
        ("critical_only", SyncMode::CriticalOnly),
        ("full", SyncMode::Full),
    ] {
        let cfg = ClusterConfig::with_workers(4).sync_mode(mode);
        group.bench(&format!("kcore_opt/{name}"), || {
            flash_algos::kcore_opt::run(&g, cfg.clone()).unwrap()
        });
        let cfg = ClusterConfig::with_workers(4).sync_mode(mode);
        group.bench(&format!("gc/{name}"), || {
            flash_algos::gc::run(&g, cfg.clone()).unwrap()
        });
    }
    group.finish()
}

/// Necessary-mirrors vs all-mirrors synchronization (§IV-C "communicate
/// with necessary mirrors only"): the same propagation over the real edge
/// set (necessary) and over an identical virtual copy (all mirrors).
fn bench_mirror_scopes() -> Vec<BenchResult> {
    #[derive(Clone, Default)]
    struct Val {
        x: u64,
    }
    flash_runtime::full_sync!(Val);

    let mut group = Group::new("mirror_scope");
    let g = Arc::new(Dataset::Orkut.load_small());

    let run = |all_mirrors: bool| {
        let g = Arc::clone(&g);
        move || {
            let mut ctx =
                FlashContext::build(Arc::clone(&g), ClusterConfig::with_workers(4), |v| Val {
                    x: v as u64,
                })
                .unwrap();
            let all = ctx.all();
            let h: EdgeSet<Val> = if all_mirrors {
                // Identical edges, but declared virtual → All-scope sync.
                let ge = Arc::clone(&g);
                let gi = Arc::clone(&g);
                EdgeSet::custom(
                    move |v, _| ge.out_neighbors(v).to_vec(),
                    move |v, _| gi.in_neighbors(v).to_vec(),
                )
            } else {
                EdgeSet::forward()
            };
            for _ in 0..3 {
                ctx.edge_map_sparse(
                    &all,
                    &h,
                    |_, s, d| s.x < d.x,
                    |_, s, d| d.x = d.x.min(s.x),
                    |_, _| true,
                    |t, d| d.x = d.x.min(t.x),
                );
            }
            ctx.stats().total_bytes()
        }
    };

    group.bench("necessary_only", run(false));
    group.bench("all_mirrors", run(true));
    group.finish()
}

fn main() {
    let mut results = bench_mode_policies();
    results.extend(bench_sync_modes());
    results.extend(bench_mirror_scopes());
    finish_suite("ablations", &results);
}
