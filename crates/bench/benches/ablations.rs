//! Criterion ablations of the §IV-C runtime optimizations: dual-mode
//! propagation, critical-property synchronization, and necessary-mirror
//! communication.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flash_core::prelude::*;
use flash_graph::Dataset;
use flash_runtime::{ClusterConfig, ModePolicy, SyncMode};
use std::sync::Arc;

/// Figure 3's ablation: BFS under forced push, forced pull, and adaptive.
fn bench_mode_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("mode_policy");
    for d in [Dataset::Twitter, Dataset::RoadUsa, Dataset::Uk2002] {
        let g = Arc::new(d.load_small());
        for (name, mode) in [
            ("sparse", ModePolicy::ForceSparse),
            ("dense", ModePolicy::ForceDense),
            ("adaptive", ModePolicy::Adaptive),
        ] {
            group.bench_with_input(
                BenchmarkId::new(format!("bfs_{name}"), d.abbr()),
                &g,
                |b, g| {
                    let cfg = ClusterConfig::with_workers(4).mode(mode);
                    b.iter(|| flash_algos::bfs::run(g, cfg.clone(), 0).unwrap());
                },
            );
        }
    }
    group.finish();
}

/// Critical-only vs full mirror synchronization (§IV-C "synchronize
/// critical properties only"), on an algorithm with heavy local scratch.
fn bench_sync_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("sync_mode");
    let g = Arc::new(Dataset::Uk2002.load_small());
    for (name, mode) in [
        ("critical_only", SyncMode::CriticalOnly),
        ("full", SyncMode::Full),
    ] {
        group.bench_with_input(BenchmarkId::new("kcore_opt", name), &g, |b, g| {
            let cfg = ClusterConfig::with_workers(4).sync_mode(mode);
            b.iter(|| flash_algos::kcore_opt::run(g, cfg.clone()).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("gc", name), &g, |b, g| {
            let cfg = ClusterConfig::with_workers(4).sync_mode(mode);
            b.iter(|| flash_algos::gc::run(g, cfg.clone()).unwrap());
        });
    }
    group.finish();
}

/// Necessary-mirrors vs all-mirrors synchronization (§IV-C "communicate
/// with necessary mirrors only"): the same propagation over the real edge
/// set (necessary) and over an identical virtual copy (all mirrors).
fn bench_mirror_scopes(c: &mut Criterion) {
    #[derive(Clone, Default)]
    struct Val {
        x: u64,
    }
    flash_runtime::full_sync!(Val);

    let mut group = c.benchmark_group("mirror_scope");
    let g = Arc::new(Dataset::Orkut.load_small());

    let run = |all_mirrors: bool| {
        let g = Arc::clone(&g);
        move || {
            let mut ctx =
                FlashContext::build(Arc::clone(&g), ClusterConfig::with_workers(4), |v| Val {
                    x: v as u64,
                })
                .unwrap();
            let all = ctx.all();
            let h: EdgeSet<Val> = if all_mirrors {
                // Identical edges, but declared virtual → All-scope sync.
                let ge = Arc::clone(&g);
                let gi = Arc::clone(&g);
                EdgeSet::custom(
                    move |v, _| ge.out_neighbors(v).to_vec(),
                    move |v, _| gi.in_neighbors(v).to_vec(),
                )
            } else {
                EdgeSet::forward()
            };
            for _ in 0..3 {
                ctx.edge_map_sparse(
                    &all,
                    &h,
                    |_, s, d| s.x < d.x,
                    |_, s, d| d.x = d.x.min(s.x),
                    |_, _| true,
                    |t, d| d.x = d.x.min(t.x),
                );
            }
            ctx.stats().total_bytes()
        }
    };

    group.bench_function("necessary_only", |b| b.iter(run(false)));
    group.bench_function("all_mirrors", |b| b.iter(run(true)));
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_mode_policies, bench_sync_modes, bench_mirror_scopes
}
criterion_main!(benches);
