//! End-to-end algorithm benchmarks on the small dataset variants (the
//! full Table V/VI runs live in the `table5_runtime` / `table6_runtime`
//! binaries). Runs on the offline harness in `flash_bench::microbench`.

use flash_bench::microbench::{finish_suite, BenchResult, Group};
use flash_graph::Dataset;
use flash_runtime::ClusterConfig;
use std::sync::Arc;

fn cfg() -> ClusterConfig {
    ClusterConfig::with_workers(4)
}

fn bench_traversal() -> Vec<BenchResult> {
    let mut group = Group::new("traversal");
    for d in [Dataset::Orkut, Dataset::RoadUsa] {
        let g = Arc::new(d.load_small());
        let abbr = d.abbr();
        group.bench(&format!("bfs/{abbr}"), || {
            flash_algos::bfs::run(&g, cfg(), 0).unwrap()
        });
        group.bench(&format!("cc_basic/{abbr}"), || {
            flash_algos::cc::run(&g, cfg()).unwrap()
        });
        group.bench(&format!("cc_opt/{abbr}"), || {
            flash_algos::cc_opt::run(&g, cfg()).unwrap()
        });
        group.bench(&format!("bc/{abbr}"), || {
            flash_algos::bc::run(&g, cfg(), 0).unwrap()
        });
    }
    group.finish()
}

fn bench_mining() -> Vec<BenchResult> {
    let mut group = Group::new("mining");
    let g = Arc::new(Dataset::Orkut.load_small());
    group.bench("tc", || flash_algos::tc::run(&g, cfg()).unwrap());
    group.bench("rc", || flash_algos::rc::run(&g, cfg()).unwrap());
    group.bench("clique4", || {
        flash_algos::clique::run(&g, cfg(), 4).unwrap()
    });
    group.bench("kcore_opt", || {
        flash_algos::kcore_opt::run(&g, cfg()).unwrap()
    });
    group.finish()
}

fn bench_matching_family() -> Vec<BenchResult> {
    let mut group = Group::new("matching");
    let g = Arc::new(Dataset::Orkut.load_small());
    group.bench("mis", || flash_algos::mis::run(&g, cfg()).unwrap());
    group.bench("mm_basic", || flash_algos::mm::run(&g, cfg()).unwrap());
    group.bench("mm_opt", || flash_algos::mm_opt::run(&g, cfg()).unwrap());
    group.finish()
}

fn main() {
    let mut results = bench_traversal();
    results.extend(bench_mining());
    results.extend(bench_matching_family());
    finish_suite("algorithms", &results);
}
