//! Criterion end-to-end algorithm benchmarks on the small dataset
//! variants (the full Table V/VI runs live in the `table5_runtime` /
//! `table6_runtime` binaries).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flash_graph::Dataset;
use flash_runtime::ClusterConfig;
use std::sync::Arc;

fn cfg() -> ClusterConfig {
    ClusterConfig::with_workers(4)
}

fn bench_traversal(c: &mut Criterion) {
    let mut group = c.benchmark_group("traversal");
    for d in [Dataset::Orkut, Dataset::RoadUsa] {
        let g = Arc::new(d.load_small());
        group.bench_with_input(BenchmarkId::new("bfs", d.abbr()), &g, |b, g| {
            b.iter(|| flash_algos::bfs::run(g, cfg(), 0).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("cc_basic", d.abbr()), &g, |b, g| {
            b.iter(|| flash_algos::cc::run(g, cfg()).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("cc_opt", d.abbr()), &g, |b, g| {
            b.iter(|| flash_algos::cc_opt::run(g, cfg()).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("bc", d.abbr()), &g, |b, g| {
            b.iter(|| flash_algos::bc::run(g, cfg(), 0).unwrap());
        });
    }
    group.finish();
}

fn bench_mining(c: &mut Criterion) {
    let mut group = c.benchmark_group("mining");
    group.sample_size(10);
    let g = Arc::new(Dataset::Orkut.load_small());
    group.bench_function("tc", |b| {
        b.iter(|| flash_algos::tc::run(&g, cfg()).unwrap());
    });
    group.bench_function("rc", |b| {
        b.iter(|| flash_algos::rc::run(&g, cfg()).unwrap());
    });
    group.bench_function("clique4", |b| {
        b.iter(|| flash_algos::clique::run(&g, cfg(), 4).unwrap());
    });
    group.bench_function("kcore_opt", |b| {
        b.iter(|| flash_algos::kcore_opt::run(&g, cfg()).unwrap());
    });
    group.finish();
}

fn bench_matching_family(c: &mut Criterion) {
    let mut group = c.benchmark_group("matching");
    group.sample_size(10);
    let g = Arc::new(Dataset::Orkut.load_small());
    group.bench_function("mis", |b| {
        b.iter(|| flash_algos::mis::run(&g, cfg()).unwrap());
    });
    group.bench_function("mm_basic", |b| {
        b.iter(|| flash_algos::mm::run(&g, cfg()).unwrap());
    });
    group.bench_function("mm_opt", |b| {
        b.iter(|| flash_algos::mm_opt::run(&g, cfg()).unwrap());
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_traversal, bench_mining, bench_matching_family
}
criterion_main!(benches);
