//! Criterion micro-benchmarks: the primitive operations of the FLASH
//! programming model and its substrate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flash_core::prelude::*;
use flash_graph::{generators, HashPartitioner, PartitionMap};
use std::sync::Arc;

#[derive(Clone, Default)]
struct Val {
    x: u64,
}
flash_runtime::full_sync!(Val);

fn bench_primitives(c: &mut Criterion) {
    let g = Arc::new(generators::rmat(12, 8, Default::default(), 7));
    let mut group = c.benchmark_group("primitives");

    group.bench_function("vertex_map_full", |b| {
        let mut ctx = FlashContext::build(Arc::clone(&g), ClusterConfig::with_workers(4), |v| {
            Val { x: v as u64 }
        })
        .unwrap();
        let all = ctx.all();
        b.iter(|| ctx.vertex_map(&all, |_, _| true, |_, val| val.x = val.x.wrapping_add(1)));
    });

    group.bench_function("vertex_filter_full", |b| {
        let mut ctx = FlashContext::build(Arc::clone(&g), ClusterConfig::with_workers(4), |v| {
            Val { x: v as u64 }
        })
        .unwrap();
        let all = ctx.all();
        b.iter(|| ctx.vertex_filter(&all, |_, val| val.x % 2 == 0));
    });

    group.bench_function("edge_map_dense_full", |b| {
        let mut ctx = FlashContext::build(Arc::clone(&g), ClusterConfig::with_workers(4), |v| {
            Val { x: v as u64 }
        })
        .unwrap();
        let all = ctx.all();
        b.iter(|| {
            ctx.edge_map_dense(
                &all,
                &EdgeSet::forward(),
                |_, s, d| s.x < d.x,
                |_, s, d| d.x = d.x.min(s.x),
                |_, _| true,
            )
        });
    });

    group.bench_function("edge_map_sparse_small_frontier", |b| {
        let mut ctx = FlashContext::build(Arc::clone(&g), ClusterConfig::with_workers(4), |v| {
            Val { x: v as u64 }
        })
        .unwrap();
        let frontier = ctx.subset(0..64u32);
        b.iter(|| {
            ctx.edge_map_sparse(
                &frontier,
                &EdgeSet::forward(),
                |_, _, _| true,
                |_, s, d| d.x = d.x.max(s.x),
                |_, _| true,
                |t, d| d.x = d.x.max(t.x),
            )
        });
    });

    group.finish();
}

fn bench_substrate(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate");

    for scale in [10u32, 12] {
        group.bench_with_input(BenchmarkId::new("rmat_generate", scale), &scale, |b, &s| {
            b.iter(|| generators::rmat(s, 8, Default::default(), 1));
        });
    }

    let g = generators::rmat(12, 8, Default::default(), 3);
    for workers in [2usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("partition_build", workers),
            &workers,
            |b, &m| {
                b.iter(|| PartitionMap::build(&g, m, &HashPartitioner).unwrap());
            },
        );
    }

    group.bench_function("subset_ops", |b| {
        let a = VertexSubset::from_ids(100_000, (0..100_000u32).step_by(3));
        let c2 = VertexSubset::from_ids(100_000, (0..100_000u32).step_by(5));
        b.iter(|| {
            let u = a.union(&c2);
            let i = a.intersect(&c2);
            let m = u.minus(&i);
            m.len()
        });
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_primitives, bench_substrate
}
criterion_main!(benches);
