//! Micro-benchmarks: the primitive operations of the FLASH programming
//! model and its substrate. Runs on the offline harness in
//! `flash_bench::microbench` (run with `cargo bench -p flash-bench`).

use flash_bench::microbench::{finish_suite, Group};
use flash_core::prelude::*;
use flash_graph::{generators, HashPartitioner, PartitionMap};
use std::sync::Arc;

#[derive(Clone, Default)]
struct Val {
    x: u64,
}
flash_runtime::full_sync!(Val);

fn bench_primitives() -> Vec<flash_bench::microbench::BenchResult> {
    let g = Arc::new(generators::rmat(12, 8, Default::default(), 7));
    let mut group = Group::new("primitives");

    {
        let mut ctx = FlashContext::build(Arc::clone(&g), ClusterConfig::with_workers(4), |v| {
            Val { x: v as u64 }
        })
        .unwrap();
        let all = ctx.all();
        group.bench("vertex_map_full", || {
            ctx.vertex_map(&all, |_, _| true, |_, val| val.x = val.x.wrapping_add(1))
        });
    }

    {
        let mut ctx = FlashContext::build(Arc::clone(&g), ClusterConfig::with_workers(4), |v| {
            Val { x: v as u64 }
        })
        .unwrap();
        let all = ctx.all();
        group.bench("vertex_filter_full", || {
            ctx.vertex_filter(&all, |_, val| val.x % 2 == 0)
        });
    }

    {
        let mut ctx = FlashContext::build(Arc::clone(&g), ClusterConfig::with_workers(4), |v| {
            Val { x: v as u64 }
        })
        .unwrap();
        let all = ctx.all();
        group.bench("edge_map_dense_full", || {
            ctx.edge_map_dense(
                &all,
                &EdgeSet::forward(),
                |_, s, d| s.x < d.x,
                |_, s, d| d.x = d.x.min(s.x),
                |_, _| true,
            )
        });
    }

    {
        let mut ctx = FlashContext::build(Arc::clone(&g), ClusterConfig::with_workers(4), |v| {
            Val { x: v as u64 }
        })
        .unwrap();
        let frontier = ctx.subset(0..64u32);
        group.bench("edge_map_sparse_small_frontier", || {
            ctx.edge_map_sparse(
                &frontier,
                &EdgeSet::forward(),
                |_, _, _| true,
                |_, s, d| d.x = d.x.max(s.x),
                |_, _| true,
                |t, d| d.x = d.x.max(t.x),
            )
        });
    }

    group.finish()
}

fn bench_substrate() -> Vec<flash_bench::microbench::BenchResult> {
    let mut group = Group::new("substrate");

    for scale in [10u32, 12] {
        group.bench(&format!("rmat_generate/{scale}"), || {
            generators::rmat(scale, 8, Default::default(), 1)
        });
    }

    let g = generators::rmat(12, 8, Default::default(), 3);
    for workers in [2usize, 4, 8] {
        group.bench(&format!("partition_build/{workers}"), || {
            PartitionMap::build(&g, workers, &HashPartitioner).unwrap()
        });
    }

    {
        let a = VertexSubset::from_ids(100_000, (0..100_000u32).step_by(3));
        let c2 = VertexSubset::from_ids(100_000, (0..100_000u32).step_by(5));
        group.bench("subset_ops", || {
            let u = a.union(&c2);
            let i = a.intersect(&c2);
            let m = u.minus(&i);
            m.len()
        });
    }

    group.finish()
}

/// Superstep-phase benchmarks for the hot-path overhaul: the upd-round
/// bucketing phase (a full-frontier sparse step) and the mirror-sync
/// fan-out (a write-all vertex map), each under the pooled-parallel hot
/// path and the pre-overhaul fresh-serial baseline so the pooled-vs-fresh
/// delta stays visible in the trajectory.
fn bench_superstep_phases() -> Vec<flash_bench::microbench::BenchResult> {
    let g = Arc::new(generators::rmat(12, 8, Default::default(), 7));
    let mut group = Group::new("superstep_phases");

    for (label, hotpath) in [
        ("pooled", HotPath::PooledParallel),
        ("fresh", HotPath::FreshSerial),
    ] {
        let mut ctx = FlashContext::build(
            Arc::clone(&g),
            ClusterConfig::with_workers(8).hotpath(hotpath),
            |v| Val { x: v as u64 },
        )
        .unwrap();
        let all = ctx.all();
        group.bench(&format!("upd_bucketing/{label}"), || {
            ctx.edge_map_sparse(
                &all,
                &EdgeSet::forward(),
                |_, _, _| true,
                |_, s, d| d.x = d.x.max(s.x),
                |_, _| true,
                |t, d| d.x = d.x.max(t.x),
            )
        });
    }

    for (label, hotpath) in [
        ("pooled", HotPath::PooledParallel),
        ("fresh", HotPath::FreshSerial),
    ] {
        let mut ctx = FlashContext::build(
            Arc::clone(&g),
            ClusterConfig::with_workers(8).hotpath(hotpath),
            |v| Val { x: v as u64 },
        )
        .unwrap();
        let all = ctx.all();
        group.bench(&format!("mirror_sync/{label}"), || {
            ctx.vertex_map(&all, |_, _| true, |_, val| val.x = val.x.wrapping_add(1))
        });
    }

    group.finish()
}

/// Observability overhead: the cost of one full-frontier vertex-map
/// superstep under each sink (none, `NullSink`, `CollectSink`, a
/// `JsonLinesSink` into `io::sink()`), plus the `--metrics` registry.
/// The delta against `sink/none` is the per-superstep event cost; the
/// JSONL number exercises the buffered writer path end to end.
fn bench_obs_overhead() -> Vec<flash_bench::microbench::BenchResult> {
    use flash_obs::{CollectSink, JsonLinesSink, NullSink, Sink};

    let g = Arc::new(generators::rmat(12, 8, Default::default(), 7));
    let mut group = Group::new("obs_overhead");

    let configs: Vec<(&str, ClusterConfig)> = vec![
        ("sink/none", ClusterConfig::with_workers(4)),
        (
            "sink/null",
            ClusterConfig::with_workers(4).sink(Arc::new(NullSink) as Arc<dyn Sink>),
        ),
        (
            "sink/collect",
            ClusterConfig::with_workers(4).sink(Arc::new(CollectSink::new()) as Arc<dyn Sink>),
        ),
        (
            "sink/jsonl",
            ClusterConfig::with_workers(4)
                .sink(Arc::new(JsonLinesSink::new(std::io::sink())) as Arc<dyn Sink>),
        ),
        ("metrics/on", ClusterConfig::with_workers(4).metrics()),
    ];
    for (label, cfg) in configs {
        let mut ctx = FlashContext::build(Arc::clone(&g), cfg, |v| Val { x: v as u64 }).unwrap();
        let all = ctx.all();
        group.bench(label, || {
            ctx.vertex_map(&all, |_, _| true, |_, val| val.x = val.x.wrapping_add(1))
        });
    }

    group.finish()
}

fn main() {
    let mut results = bench_primitives();
    results.extend(bench_substrate());
    results.extend(bench_superstep_phases());
    results.extend(bench_obs_overhead());
    finish_suite("microbench", &results);
}
