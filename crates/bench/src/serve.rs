//! The `flash serve` workload driver (DESIGN.md §16).
//!
//! Serving splits the system into two planes sharing one machine:
//!
//! * **Query plane** — `N` concurrent [`Session`]s over a single frozen
//!   `Arc<Graph>` snapshot, each thread answering a seeded mix of
//!   BFS / SSSP / PageRank / CC point queries through the full FLASH
//!   runtime. Sessions share the partition map and a buffer pool but
//!   keep private storage/latency accounting; every answer is
//!   checksummed and compared against a solo (single-session) baseline
//!   computed up front — the results must be **bit-identical**, which is
//!   what snapshot isolation promises.
//! * **Update plane** — one mutator applying seeded edge insert/delete
//!   batches to a [`DeltaOverlay`] over the same base, repairing a
//!   [`MaintainedCc`] (verified bit-identical to a full recompute) and a
//!   [`MaintainedPageRank`] (verified within its documented tolerance
//!   bound) after every batch.
//!
//! [`run_serve`] executes both planes concurrently, folds the per-session
//! histograms into a [`ServingStats`] block with p50/p90/p99 query
//! latency, and reports every verification failure instead of panicking —
//! the binaries turn a non-empty failure list into a non-zero exit.

use flash_algos::incremental::{full_cc, full_pagerank, MaintainedCc, MaintainedPageRank};
use flash_graph::{generators, DeltaOverlay, EdgeUpdate, Prng, VertexId};
use flash_obs::Json;
use flash_runtime::{BufferPool, ClusterConfig, ServingStats, Session};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

/// Serving workload parameters.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Concurrent query sessions (one thread each).
    pub sessions: usize,
    /// Queries each session answers.
    pub queries_per_session: usize,
    /// Update batches the mutator applies.
    pub update_batches: usize,
    /// Edge updates per batch (~2/3 inserts, ~1/3 deletes).
    pub batch_size: usize,
    /// Workers per query cluster.
    pub workers: usize,
    /// RMAT scale of the served snapshot (`2^scale` vertices).
    pub scale: u32,
    /// RMAT edge factor.
    pub edge_factor: usize,
    /// PageRank repair tolerance (L1 step delta).
    pub eps: f64,
    /// Workload seed: queries, roots, and update batches all derive
    /// from it, so a run is fully reproducible.
    pub seed: u64,
}

impl ServeOptions {
    /// The CI smoke configuration: small graph, two sessions, enough
    /// queries to cross every code path in seconds.
    pub fn smoke() -> ServeOptions {
        ServeOptions {
            sessions: 2,
            queries_per_session: 6,
            update_batches: 4,
            batch_size: 8,
            workers: 2,
            scale: 7,
            edge_factor: 6,
            eps: 1e-9,
            seed: 0xF1A5,
        }
    }

    /// The full experiment: sustains ≥1k mixed queries + updates.
    pub fn full() -> ServeOptions {
        ServeOptions {
            sessions: 4,
            queries_per_session: 256,
            update_batches: 64,
            batch_size: 16,
            workers: 2,
            scale: 10,
            edge_factor: 8,
            eps: 1e-9,
            seed: 0xF1A5,
        }
    }

    /// Total mixed operations (queries + update batches) the run issues.
    pub fn total_ops(&self) -> usize {
        self.sessions * self.queries_per_session + self.update_batches
    }
}

/// One point query of the serving mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Query {
    /// BFS hop distances from a root.
    Bfs(VertexId),
    /// Shortest-path distances from a root (unit weights on the
    /// unweighted snapshot).
    Sssp(VertexId),
    /// PageRank, fixed sweep count (deterministic).
    PageRank,
    /// Connected-component labels.
    Cc,
}

impl Query {
    /// Human-readable tag for reports.
    pub fn tag(&self) -> String {
        match self {
            Query::Bfs(r) => format!("bfs@{r}"),
            Query::Sssp(r) => format!("sssp@{r}"),
            Query::PageRank => "pagerank".to_string(),
            Query::Cc => "cc".to_string(),
        }
    }
}

/// PageRank sweeps per query: fixed, so answers are deterministic.
const PR_QUERY_ITERS: usize = 5;

/// FNV-1a over a little-endian byte stream — the result checksum used
/// for bit-identity comparison.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x1_0000_01b3);
        }
    }
}

/// Checksums a `u32` result vector (BFS distances, CC labels).
fn checksum_u32(values: &[u32]) -> u64 {
    let mut h = Fnv::new();
    for v in values {
        h.write(&v.to_le_bytes());
    }
    h.0
}

/// Checksums an `f64` result vector through the exact bit patterns, so
/// equality really is bit-identity.
fn checksum_f64(values: &[f64]) -> u64 {
    let mut h = Fnv::new();
    for v in values {
        h.write(&v.to_bits().to_le_bytes());
    }
    h.0
}

/// Answers one query on a session's snapshot, returning the checksum.
fn answer(session: &Session, query: Query) -> Result<u64, flash_runtime::RuntimeError> {
    let graph = session.graph();
    let cfg = session.config();
    Ok(match query {
        Query::Bfs(root) => checksum_u32(&flash_algos::bfs::run(graph, cfg, root)?.result),
        Query::Sssp(root) => checksum_f64(&flash_algos::sssp::run(graph, cfg, root)?.result),
        Query::PageRank => {
            checksum_f64(&flash_algos::pagerank::run(graph, cfg, PR_QUERY_ITERS)?.result)
        }
        Query::Cc => checksum_u32(&flash_algos::cc::run(graph, cfg)?.result),
    })
}

/// Builds the deterministic query mix for one session: a rotation of the
/// four kinds with roots drawn from the seed.
fn query_mix(opts: &ServeOptions, session: usize, n: usize) -> Vec<Query> {
    let mut rng = Prng::seed_from_u64(opts.seed ^ (session as u64).wrapping_mul(0x9e37));
    (0..opts.queries_per_session)
        .map(|i| {
            let root = (rng.next_u64() % n as u64) as VertexId;
            match i % 4 {
                0 => Query::Bfs(root),
                1 => Query::Sssp(root),
                2 => Query::PageRank,
                _ => Query::Cc,
            }
        })
        .collect()
}

/// Builds update batch `b` from the workload seed.
fn update_batch(opts: &ServeOptions, b: usize, n: usize) -> Vec<EdgeUpdate> {
    let mut rng = Prng::seed_from_u64(opts.seed ^ 0xDE17A ^ (b as u64).wrapping_mul(0x85eb));
    (0..opts.batch_size)
        .map(|_| {
            let s = (rng.next_u64() % n as u64) as VertexId;
            let d = (rng.next_u64() % n as u64) as VertexId;
            if rng.next_u64().is_multiple_of(3) {
                EdgeUpdate::Delete(s, d)
            } else {
                EdgeUpdate::Insert(s, d)
            }
        })
        .collect()
}

/// Everything one serving run produced.
#[derive(Debug)]
pub struct ServeReport {
    /// The options that generated the run.
    pub opts: ServeOptions,
    /// Vertices in the served snapshot.
    pub vertices: usize,
    /// Directed adjacency entries in the served snapshot.
    pub edges: usize,
    /// Queries answered across all sessions.
    pub queries: u64,
    /// Update batches applied.
    pub updates: u64,
    /// Edges the update plane inserted / removed (net of no-ops).
    pub inserted: u64,
    /// Edges the update plane removed.
    pub removed: u64,
    /// Vertices the incremental CC repair re-labeled.
    pub cc_repaired: u64,
    /// Power-iteration sweeps the PageRank maintenance spent.
    pub pr_sweeps: u64,
    /// Final L1 distance between maintained and recomputed PageRank.
    pub pr_l1: f64,
    /// The documented bound that distance must respect.
    pub pr_bound: f64,
    /// Folded per-session accounting (latency percentiles live here).
    pub stats: ServingStats,
    /// Pool reuse ratio evidence: (checkouts, reuses).
    pub pool: (u64, u64),
    /// Wall-clock seconds for the whole run.
    pub wall_seconds: f64,
    /// Every verification failure (empty == the run is good).
    pub failures: Vec<String>,
}

impl ServeReport {
    /// `true` when every bit-identity and tolerance check passed.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }

    /// The stats-JSON document (EXPERIMENTS.md "serve.json").
    pub fn to_json(&self) -> Json {
        let o = &self.opts;
        Json::object()
            .set("experiment", "serve")
            .set(
                "options",
                Json::object()
                    .set("sessions", o.sessions)
                    .set("queries_per_session", o.queries_per_session)
                    .set("update_batches", o.update_batches)
                    .set("batch_size", o.batch_size)
                    .set("workers", o.workers)
                    .set("scale", o.scale as u64)
                    .set("edge_factor", o.edge_factor)
                    .set("eps", o.eps)
                    .set("seed", o.seed),
            )
            .set(
                "graph",
                Json::object()
                    .set("vertices", self.vertices)
                    .set("edges", self.edges as u64),
            )
            .set("serving", self.stats.to_json())
            .set(
                "updates",
                Json::object()
                    .set("batches", self.updates)
                    .set("inserted", self.inserted)
                    .set("removed", self.removed)
                    .set("cc_repaired", self.cc_repaired)
                    .set("pr_sweeps", self.pr_sweeps)
                    .set("pr_l1", self.pr_l1)
                    .set("pr_bound", self.pr_bound),
            )
            .set(
                "pool",
                Json::object()
                    .set("checkouts", self.pool.0)
                    .set("reuses", self.pool.1),
            )
            .set("wall_seconds", self.wall_seconds)
            .set("failures", Json::from(self.failures.clone()))
            .set("ok", self.ok())
    }
}

/// The maintained state of the update plane, mutated under one lock.
struct UpdatePlane {
    overlay: DeltaOverlay,
    cc: MaintainedCc,
    pr: MaintainedPageRank,
    inserted: u64,
    removed: u64,
}

/// Runs the serving workload: solo baselines, then the concurrent
/// query/update phase, then verification.
pub fn run_serve(opts: &ServeOptions) -> Result<ServeReport, String> {
    let t0 = Instant::now();
    let graph = Arc::new(generators::rmat(
        opts.scale,
        opts.edge_factor,
        generators::RmatParams::default(),
        opts.seed,
    ));
    let n = graph.num_vertices();
    let template = ClusterConfig::with_workers(opts.workers);

    // ---- Solo baselines -------------------------------------------------
    // Answer every distinct query once on a lone session; the concurrent
    // phase must reproduce these checksums bit for bit.
    let mut baselines: HashMap<Query, u64> = HashMap::new();
    {
        let solo = Session::new(0, Arc::clone(&graph), template.clone())
            .map_err(|e| format!("solo session: {e}"))?;
        for s in 0..opts.sessions {
            for q in query_mix(opts, s, n) {
                if let std::collections::hash_map::Entry::Vacant(slot) = baselines.entry(q) {
                    slot.insert(
                        answer(&solo, q).map_err(|e| format!("baseline {}: {e}", q.tag()))?,
                    );
                }
            }
        }
        solo.end();
    }

    // ---- Concurrent phase ----------------------------------------------
    // Shared substrate: one partition map and one buffer pool, stamped
    // into every session through the template.
    let pool = Arc::new(BufferPool::new());
    let shared = Session::new(1, Arc::clone(&graph), template.clone())
        .map_err(|e| format!("shared session: {e}"))?;
    let session_template = {
        let mut cfg = template.clone();
        cfg.shared_partition = Some(Arc::clone(shared.partition()));
        cfg.buffer_pool = Some(Arc::clone(&pool));
        cfg
    };
    shared.end();

    let failures: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let fail = |failures: &Arc<Mutex<Vec<String>>>, msg: String| {
        failures
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(msg);
    };

    let plane = Arc::new(Mutex::new(UpdatePlane {
        overlay: DeltaOverlay::new(Arc::clone(&graph)),
        cc: MaintainedCc::new(&DeltaOverlay::new(Arc::clone(&graph))),
        pr: MaintainedPageRank::new(&DeltaOverlay::new(Arc::clone(&graph)), opts.eps),
        inserted: 0,
        removed: 0,
    }));

    let update_session = Arc::new(
        Session::new(2, Arc::clone(&graph), session_template.clone())
            .map_err(|e| format!("update session: {e}"))?,
    );
    let queries_done = Arc::new(AtomicU64::new(0));

    let mut sessions: Vec<Arc<Session>> = Vec::with_capacity(opts.sessions);
    let report = std::thread::scope(|scope| -> Result<(), String> {
        // Query-plane threads: one session each.
        for s in 0..opts.sessions {
            let session = Arc::new(
                Session::new(10 + s as u64, Arc::clone(&graph), session_template.clone())
                    .map_err(|e| format!("session {s}: {e}"))?,
            );
            sessions.push(Arc::clone(&session));
            let mix = query_mix(opts, s, n);
            let baselines = &baselines;
            let failures = Arc::clone(&failures);
            let queries_done = Arc::clone(&queries_done);
            scope.spawn(move || {
                for q in mix {
                    let t = Instant::now();
                    match answer(&session, q) {
                        Ok(sum) => {
                            session.record_query(t.elapsed().as_micros() as u64);
                            queries_done.fetch_add(1, Ordering::Relaxed);
                            if baselines.get(&q) != Some(&sum) {
                                fail(
                                    &failures,
                                    format!(
                                        "session {}: {} diverged from solo baseline",
                                        session.id(),
                                        q.tag()
                                    ),
                                );
                            }
                        }
                        Err(e) => fail(
                            &failures,
                            format!("session {}: {} failed: {e}", session.id(), q.tag()),
                        ),
                    }
                }
                session.end();
            });
        }

        // Update plane: apply batches, repair maintained results.
        {
            let plane = Arc::clone(&plane);
            let update_session = Arc::clone(&update_session);
            let failures = Arc::clone(&failures);
            let opts = opts.clone();
            scope.spawn(move || {
                for b in 0..opts.update_batches {
                    let updates = update_batch(&opts, b, n);
                    let mut p = plane.lock().unwrap_or_else(PoisonError::into_inner);
                    let batch = p.overlay.apply_batch(&updates);
                    if batch.is_empty() {
                        update_session.record_update(b as u64, 0, 0, 0, "none");
                        continue;
                    }
                    let view = p.overlay.clone();
                    p.cc.repair(&view, &batch.touched);
                    let sweeps = p.pr.repair(&view);
                    p.inserted += batch.inserted;
                    p.removed += batch.removed;
                    // Bit-identity of the incremental CC after *every*
                    // batch, not just at the end.
                    if p.cc.labels() != full_cc(&view).as_slice() {
                        fail(
                            &failures,
                            format!("batch {b}: incremental CC diverged from full recompute"),
                        );
                    }
                    update_session.record_update(
                        b as u64,
                        batch.inserted,
                        batch.removed,
                        batch.touched.len() as u64,
                        &format!("cc+pr:{sweeps}sweeps"),
                    );
                }
            });
        }
        Ok(())
    });
    report?;
    update_session.end();

    // ---- Verification ---------------------------------------------------
    let (pr_l1, pr_bound, cc_repaired, pr_sweeps, inserted, removed) = {
        let p = plane.lock().unwrap_or_else(PoisonError::into_inner);
        let reference = full_pagerank(&p.overlay, opts.eps);
        let l1: f64 =
            p.pr.ranks()
                .iter()
                .zip(reference.iter())
                .map(|(a, b)| (a - b).abs())
                .sum();
        if l1 > p.pr.comparison_bound() {
            fail(
                &failures,
                format!(
                    "maintained PageRank L1 {l1:e} exceeds bound {:e}",
                    p.pr.comparison_bound()
                ),
            );
        }
        if p.cc.labels() != full_cc(&p.overlay).as_slice() {
            fail(
                &failures,
                "final incremental CC diverged from full recompute".to_string(),
            );
        }
        (
            l1,
            p.pr.comparison_bound(),
            p.cc.repaired(),
            p.pr.sweeps(),
            p.inserted,
            p.removed,
        )
    };

    let mut stats = ServingStats::new();
    for s in &sessions {
        stats.absorb(s);
    }
    stats.absorb(&update_session);

    let failures = match Arc::try_unwrap(failures) {
        Ok(m) => m.into_inner().unwrap_or_else(PoisonError::into_inner),
        Err(arc) => arc.lock().unwrap_or_else(PoisonError::into_inner).clone(),
    };
    Ok(ServeReport {
        opts: opts.clone(),
        vertices: n,
        edges: graph.num_edges(),
        queries: queries_done.load(Ordering::Relaxed),
        updates: update_session.updates(),
        inserted,
        removed,
        cc_repaired,
        pr_sweeps,
        pr_l1,
        pr_bound,
        stats,
        pool: (pool.checkouts(), pool.reuses()),
        wall_seconds: t0.elapsed().as_secs_f64(),
        failures,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_is_clean_and_accounts_everything() {
        let opts = ServeOptions::smoke();
        let report = run_serve(&opts).expect("serve run");
        assert!(report.ok(), "failures: {:?}", report.failures);
        assert_eq!(
            report.queries,
            (opts.sessions * opts.queries_per_session) as u64
        );
        assert_eq!(report.updates, opts.update_batches as u64);
        assert!(report.pr_l1 <= report.pr_bound);
        assert!(report.pool.1 > 0, "buffer pool never reused a buffer");
        let j = report.to_json();
        assert_eq!(j.get("ok").and_then(Json::as_bool), Some(true));
        assert!(j.get("serving").is_some());
    }

    #[test]
    fn query_mix_is_deterministic_per_session() {
        let opts = ServeOptions::smoke();
        assert_eq!(query_mix(&opts, 0, 128), query_mix(&opts, 0, 128));
        assert_ne!(query_mix(&opts, 0, 128), query_mix(&opts, 1, 128));
    }
}
