//! Logical-lines-of-code counting for Table I.
//!
//! The paper counts LLoCs "in the core functions, while ignoring the
//! comments, input/output expressions, and data structure (e.g., the
//! graph) definitions". We do the same mechanically: every algorithm in
//! `flash-algos` brackets its core with `FLASH-ALGORITHM-BEGIN/END`
//! markers, and [`count_lloc`] counts the logical lines between them —
//! non-empty, non-comment lines, with multi-line expressions folded by
//! counting only lines that *end* a statement or open/close a block.
//!
//! Competitor LLoCs cannot be measured (we own none of their code); Table
//! I's reported constants are reproduced in [`PAPER_LLOC`].

/// One algorithm's embedded source and metadata.
pub struct AlgoSource {
    /// Table I row label.
    pub name: &'static str,
    /// Marker key inside the source file.
    pub key: &'static str,
    /// The full module source (embedded at compile time).
    pub source: &'static str,
}

/// All Table I rows with their FLASH sources.
pub fn sources() -> Vec<AlgoSource> {
    vec![
        AlgoSource {
            name: "CC-basic",
            key: "cc",
            source: include_str!("../../algos/src/cc.rs"),
        },
        AlgoSource {
            name: "CC-opt",
            key: "cc_opt",
            source: include_str!("../../algos/src/cc_opt.rs"),
        },
        AlgoSource {
            name: "BFS",
            key: "bfs",
            source: include_str!("../../algos/src/bfs.rs"),
        },
        AlgoSource {
            name: "BC",
            key: "bc",
            source: include_str!("../../algos/src/bc.rs"),
        },
        AlgoSource {
            name: "MIS",
            key: "mis",
            source: include_str!("../../algos/src/mis.rs"),
        },
        AlgoSource {
            name: "MM-basic",
            key: "mm",
            source: include_str!("../../algos/src/mm.rs"),
        },
        AlgoSource {
            name: "MM-opt",
            key: "mm_opt",
            source: include_str!("../../algos/src/mm_opt.rs"),
        },
        AlgoSource {
            name: "KC",
            key: "kcore",
            source: include_str!("../../algos/src/kcore.rs"),
        },
        AlgoSource {
            name: "TC",
            key: "tc",
            source: include_str!("../../algos/src/tc.rs"),
        },
        AlgoSource {
            name: "GC",
            key: "gc",
            source: include_str!("../../algos/src/gc.rs"),
        },
        AlgoSource {
            name: "SCC",
            key: "scc",
            source: include_str!("../../algos/src/scc.rs"),
        },
        AlgoSource {
            name: "BCC",
            key: "bcc",
            source: include_str!("../../algos/src/bcc.rs"),
        },
        AlgoSource {
            name: "LPA",
            key: "lpa",
            source: include_str!("../../algos/src/lpa.rs"),
        },
        AlgoSource {
            name: "MSF",
            key: "msf",
            source: include_str!("../../algos/src/msf.rs"),
        },
        AlgoSource {
            name: "RC",
            key: "rc",
            source: include_str!("../../algos/src/rc.rs"),
        },
        AlgoSource {
            name: "CL",
            key: "clique",
            source: include_str!("../../algos/src/clique.rs"),
        },
    ]
}

/// Extracts the marked core region of an algorithm source.
pub fn core_region<'a>(source: &'a str, key: &str) -> Option<&'a str> {
    let begin = format!("FLASH-ALGORITHM-BEGIN: {key}");
    let end = format!("FLASH-ALGORITHM-END: {key}");
    let b = source.find(&begin)? + begin.len();
    let e = source[b..].find(&end)? + b;
    Some(&source[b..e])
}

/// Counts logical lines: skips blanks and comments; a physical line counts
/// only when it completes a statement or opens/closes a block (`;`, `{`,
/// `}`, or a closure arm ending in `,` at top level of a call are the
/// practical Rust statement terminators).
pub fn count_lloc(code: &str) -> usize {
    code.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty())
        .filter(|l| !l.starts_with("//"))
        .filter(|l| {
            l.ends_with(';')
                || l.ends_with('{')
                || l.ends_with('}')
                || l.ends_with("},")
                || l.ends_with(");")
                || l.ends_with(')')
        })
        .count()
}

/// LLoC of one Table I row's FLASH implementation.
pub fn flash_lloc(key: &str) -> Option<usize> {
    sources()
        .into_iter()
        .find(|s| s.key == key)
        .and_then(|s| core_region(s.source, s.key).map(count_lloc))
}

/// Table I as reported by the paper: `(row, pregel+, powergraph, gemini,
/// ligra, flash)`; `None` = the paper's ∅ (inexpressible).
pub type PaperRow = (
    &'static str,
    Option<usize>,
    Option<usize>,
    Option<usize>,
    Option<usize>,
    usize,
);

/// The paper's reported Table I numbers.
pub const PAPER_LLOC: [PaperRow; 16] = [
    ("CC-basic", Some(30), Some(36), Some(50), Some(26), 12),
    ("CC-opt", Some(63), None, None, None, 56),
    ("BFS", Some(22), Some(25), Some(56), Some(20), 13),
    ("BC", Some(49), Some(162), Some(139), Some(75), 33),
    ("MIS", Some(48), Some(53), Some(112), Some(37), 23),
    ("MM-basic", Some(57), Some(66), Some(98), Some(59), 20),
    ("MM-opt", Some(84), None, None, None, 27),
    ("KC", Some(35), Some(32), None, Some(45), 20),
    ("TC", Some(31), Some(181), None, Some(38), 22),
    ("GC", Some(48), Some(58), None, None, 24),
    ("SCC", Some(275), None, None, None, 74),
    ("BCC", Some(1057), None, None, None, 77),
    ("LPA", Some(51), Some(46), None, None, 26),
    ("MSF", Some(208), None, None, None, 24),
    ("RC", None, None, None, None, 23),
    ("CL", None, None, None, None, 33),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_algorithm_has_a_marked_core() {
        for s in sources() {
            let region = core_region(s.source, s.key);
            assert!(region.is_some(), "{} missing markers", s.name);
            let lloc = count_lloc(region.unwrap());
            assert!(lloc > 3, "{}: suspiciously few lines ({lloc})", s.name);
            assert!(lloc < 200, "{}: suspiciously many lines ({lloc})", s.name);
        }
    }

    #[test]
    fn counter_skips_blanks_and_comments() {
        let code = r#"
            // a comment
            let x = 1;

            if cond {
                y();
            }
        "#;
        assert_eq!(count_lloc(code), 4);
    }

    #[test]
    fn flash_stays_leaner_than_pregel_everywhere() {
        // The productivity claim, measured on our own sources against the
        // paper's reported Pregel+ numbers.
        for (name, pregel, _, _, _, _) in PAPER_LLOC {
            let key = sources()
                .into_iter()
                .find(|s| s.name == name)
                .map(|s| s.key)
                .unwrap();
            let ours = flash_lloc(key).unwrap();
            if let Some(p) = pregel {
                assert!(
                    ours <= p,
                    "{name}: our FLASH impl has {ours} LLoC vs Pregel+'s {p}"
                );
            }
        }
    }

    #[test]
    fn paper_table_has_16_rows() {
        assert_eq!(PAPER_LLOC.len(), 16);
        assert_eq!(sources().len(), 16);
    }
}
