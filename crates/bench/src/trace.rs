//! Critical-path analysis over FLASHWARE JSONL traces.
//!
//! A trace produced by `--trace <file>` is one JSON object per line
//! (schema: `crates/obs/src/event.rs`, versioned by the mandatory
//! `run_meta` header line). This module parses such a trace, reconstructs
//! every superstep's phase breakdown, and answers the question the raw
//! event stream cannot: *where did the simulated parallel time go?*
//!
//! Three artifacts come out:
//!
//! * a **critical-path table** — per superstep, the makespan worker (the
//!   straggler whose compute time the barrier waited on) and the dominant
//!   phase (compute, bucketing, delivery, network, or mirror-sync);
//! * a **barrier-skew distribution** — a [`Histogram`] over
//!   `barrier_skew_ns` with p50/p90/p99/max, the load-balance signal;
//! * a **Chrome trace-event export** — a `traceEvents` JSON document
//!   loadable in `chrome://tracing` / Perfetto, laying the supersteps out
//!   on a synthesized timeline (per-worker compute tracks plus a
//!   coordinator track for the serial phases).
//!
//! The `flash_trace` binary is a thin CLI over this module.

use flash_obs::json::{self, Json};
use flash_obs::Histogram;
use std::collections::BTreeMap;

/// Default number of slowest supersteps listed by the report.
pub const DEFAULT_TOP_K: usize = 5;

/// The validated `run_meta` header of a trace.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceMeta {
    /// Trace schema version (always [`flash_obs::TRACE_SCHEMA_VERSION`]
    /// after validation).
    pub schema: u64,
    /// Fault-plan PRNG seed (0 = no plan).
    pub seed: u64,
    /// Logical worker count.
    pub workers: u64,
    /// Physical host count at startup.
    pub hosts: u64,
    /// Hot-path mode label.
    pub hotpath: String,
    /// Compact fault-plan description.
    pub fault_plan: String,
}

/// One worker's compute phase within a superstep.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorkerCompute {
    /// Worker id.
    pub worker: u64,
    /// Wall-clock compute time, nanoseconds.
    pub compute_ns: u64,
}

/// The phase breakdown of one completed superstep, reassembled from its
/// `worker_phase` and `step_end` events.
#[derive(Clone, Debug, PartialEq)]
pub struct StepRecord {
    /// Superstep index.
    pub step: u64,
    /// Kernel kind label (`vmap`/`dense`/`sparse`/`global`).
    pub kind: String,
    /// Frontier size.
    pub active: u64,
    /// Slowest worker's compute time, ns.
    pub compute_max_ns: u64,
    /// Barrier skew (max − min compute), ns.
    pub barrier_skew_ns: u64,
    /// Serialization wall time, ns.
    pub serialize_ns: u64,
    /// Serialization makespan (slowest bucketing thread), ns.
    pub serialize_max_ns: u64,
    /// Mirror-sync (communicate) time, ns.
    pub communicate_ns: u64,
    /// Reliable-delivery protocol time, ns.
    pub delivery_ns: u64,
    /// Simulated network time, ns.
    pub simulated_net_ns: u64,
    /// Per-worker compute phases (possibly empty if the trace elided
    /// `worker_phase` events).
    pub workers: Vec<WorkerCompute>,
}

impl StepRecord {
    /// The superstep's charge to the simulated parallel clock: slowest
    /// compute, then the serial coordinator phases.
    pub fn path_ns(&self) -> u64 {
        self.compute_max_ns
            .saturating_add(self.serialize_max_ns)
            .saturating_add(self.delivery_ns)
            .saturating_add(self.simulated_net_ns)
            .saturating_add(self.communicate_ns)
    }

    /// The worker the barrier waited on: highest `compute_ns`, lowest id
    /// winning ties. `None` when the trace carries no `worker_phase`
    /// events for this step.
    pub fn makespan_worker(&self) -> Option<WorkerCompute> {
        self.workers.iter().copied().max_by(|a, b| {
            a.compute_ns
                .cmp(&b.compute_ns)
                .then(b.worker.cmp(&a.worker))
        })
    }

    /// The dominant phase on this step's critical path as
    /// `(label, nanoseconds)`. Ties break toward the earlier phase in
    /// superstep order (compute first).
    pub fn dominant_phase(&self) -> (&'static str, u64) {
        let phases = [
            ("compute", self.compute_max_ns),
            ("bucketing", self.serialize_max_ns),
            ("delivery", self.delivery_ns),
            ("network", self.simulated_net_ns),
            ("mirror-sync", self.communicate_ns),
        ];
        let mut best = phases[0];
        for p in phases {
            if p.1 > best.1 {
                best = p;
            }
        }
        best
    }
}

/// A parsed, schema-validated trace.
#[derive(Clone, Debug, PartialEq)]
pub struct Trace {
    /// The mandatory header line.
    pub meta: TraceMeta,
    /// Completed supersteps, in execution order.
    pub steps: Vec<StepRecord>,
    /// Total event lines parsed (including the header).
    pub events: usize,
    /// `run_end`'s simulated parallel time, ns, when the trace has one.
    pub simulated_parallel_ns: Option<u64>,
}

fn need_u64(obj: &Json, field: &str, line_no: usize) -> Result<u64, String> {
    obj.get(field)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("line {line_no}: missing numeric field {field:?}"))
}

fn str_or(obj: &Json, field: &str, default: &str) -> String {
    obj.get(field)
        .and_then(Json::as_str)
        .unwrap_or(default)
        .to_string()
}

/// Parses a JSONL trace and validates its `run_meta` header.
///
/// Refuses traces whose first event is not `run_meta` (pre-header traces
/// from older runtimes) and traces whose schema version differs from this
/// build's [`flash_obs::TRACE_SCHEMA_VERSION`].
pub fn parse_trace(text: &str) -> Result<Trace, String> {
    let mut meta: Option<TraceMeta> = None;
    let mut steps = Vec::new();
    let mut pending_workers: BTreeMap<u64, Vec<WorkerCompute>> = BTreeMap::new();
    let mut events = 0usize;
    let mut simulated_parallel_ns = None;

    for (idx, line) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let obj = json::parse(line).map_err(|e| format!("line {line_no}: {e}"))?;
        let tag = obj
            .get("event")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {line_no}: not a trace event (no \"event\" tag)"))?
            .to_string();
        events += 1;

        if meta.is_none() {
            if tag != "run_meta" {
                return Err(format!(
                    "trace has no run_meta header: first event is {tag:?} \
                     (trace predates schema v{} — re-record it with a current build)",
                    flash_obs::TRACE_SCHEMA_VERSION
                ));
            }
            let schema = need_u64(&obj, "schema", line_no)?;
            if schema != flash_obs::TRACE_SCHEMA_VERSION {
                return Err(format!(
                    "unsupported trace schema v{schema} (this build reads v{})",
                    flash_obs::TRACE_SCHEMA_VERSION
                ));
            }
            meta = Some(TraceMeta {
                schema,
                seed: need_u64(&obj, "seed", line_no)?,
                workers: need_u64(&obj, "workers", line_no)?,
                hosts: need_u64(&obj, "hosts", line_no)?,
                hotpath: str_or(&obj, "hotpath", "?"),
                fault_plan: str_or(&obj, "fault_plan", "?"),
            });
            continue;
        }

        match tag.as_str() {
            "worker_phase" => {
                let step = need_u64(&obj, "step", line_no)?;
                pending_workers
                    .entry(step)
                    .or_default()
                    .push(WorkerCompute {
                        worker: need_u64(&obj, "worker", line_no)?,
                        compute_ns: need_u64(&obj, "compute_ns", line_no)?,
                    });
            }
            "step_end" => {
                let step = need_u64(&obj, "step", line_no)?;
                steps.push(StepRecord {
                    step,
                    kind: str_or(&obj, "kind", "?"),
                    active: need_u64(&obj, "active", line_no)?,
                    compute_max_ns: need_u64(&obj, "compute_max_ns", line_no)?,
                    barrier_skew_ns: need_u64(&obj, "barrier_skew_ns", line_no)?,
                    serialize_ns: need_u64(&obj, "serialize_ns", line_no)?,
                    serialize_max_ns: need_u64(&obj, "serialize_max_ns", line_no)?,
                    communicate_ns: need_u64(&obj, "communicate_ns", line_no)?,
                    delivery_ns: need_u64(&obj, "delivery_ns", line_no)?,
                    simulated_net_ns: need_u64(&obj, "simulated_net_ns", line_no)?,
                    // A retried step leaves the failed attempts' phases in
                    // the map; only the attempt that reached step_end counts.
                    workers: pending_workers.remove(&step).unwrap_or_default(),
                });
            }
            "run_end" => {
                simulated_parallel_ns = obj.get("simulated_parallel_ns").and_then(Json::as_u64);
            }
            _ => {}
        }
    }

    let meta = meta.ok_or_else(|| "empty trace (no events)".to_string())?;
    Ok(Trace {
        meta,
        steps,
        events,
        simulated_parallel_ns,
    })
}

/// The analyzer's digest of one trace.
#[derive(Clone, Debug)]
pub struct Report {
    /// Indices into `trace.steps`, sorted by descending `path_ns` — the
    /// top-K slowest supersteps.
    pub slowest: Vec<usize>,
    /// Distribution of per-step barrier skew, ns.
    pub skew: Histogram,
    /// Sum of every step's critical path, ns.
    pub total_path_ns: u64,
}

/// Analyzes a parsed trace: ranks supersteps by critical-path length and
/// accumulates the barrier-skew distribution.
pub fn analyze(trace: &Trace, top_k: usize) -> Report {
    let mut skew = Histogram::new();
    let mut total_path_ns = 0u64;
    for s in &trace.steps {
        skew.record(s.barrier_skew_ns);
        total_path_ns = total_path_ns.saturating_add(s.path_ns());
    }
    let mut slowest: Vec<usize> = (0..trace.steps.len()).collect();
    slowest.sort_by(|&a, &b| {
        trace.steps[b]
            .path_ns()
            .cmp(&trace.steps[a].path_ns())
            .then(a.cmp(&b))
    });
    slowest.truncate(top_k);
    Report {
        slowest,
        skew,
        total_path_ns,
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000 {
        format!("{}.{:03}ms", ns / 1_000_000, (ns % 1_000_000) / 1_000)
    } else if ns >= 1_000 {
        format!("{}.{:03}us", ns / 1_000, ns % 1_000)
    } else {
        format!("{ns}ns")
    }
}

/// Renders the human-readable critical-path report.
pub fn render_report(trace: &Trace, report: &Report) -> String {
    let m = &trace.meta;
    let mut out = String::new();
    out.push_str(&format!(
        "trace: schema v{}, {} workers on {} hosts, hotpath={}, faults={}, seed={}\n",
        m.schema, m.workers, m.hosts, m.hotpath, m.fault_plan, m.seed
    ));
    out.push_str(&format!(
        "{} events, {} supersteps, critical path {}\n\n",
        trace.events,
        trace.steps.len(),
        fmt_ns(report.total_path_ns)
    ));

    out.push_str("critical path per superstep:\n");
    out.push_str("  step  kind     frontier  makespan-worker       dominant-phase        path\n");
    for s in &trace.steps {
        let (phase, phase_ns) = s.dominant_phase();
        let worker = match s.makespan_worker() {
            Some(w) => format!("w{} ({})", w.worker, fmt_ns(w.compute_ns)),
            None => "-".to_string(),
        };
        out.push_str(&format!(
            "  {:>4}  {:<8} {:>8}  {:<20}  {:<12} {:>7}  {}\n",
            s.step,
            s.kind,
            s.active,
            worker,
            phase,
            fmt_ns(phase_ns),
            fmt_ns(s.path_ns())
        ));
    }

    out.push_str(&format!(
        "\ntop {} slowest supersteps:\n",
        report.slowest.len()
    ));
    for (rank, &i) in report.slowest.iter().enumerate() {
        let s = &trace.steps[i];
        let (phase, _) = s.dominant_phase();
        out.push_str(&format!(
            "  #{:<2} step {:>4} ({:<6}) path {} — dominated by {}\n",
            rank + 1,
            s.step,
            s.kind,
            fmt_ns(s.path_ns()),
            phase
        ));
    }

    out.push_str("\nbarrier-skew distribution (ns):\n");
    match (report.skew.min(), report.skew.max()) {
        (Some(min), Some(max)) => {
            let p = |q| report.skew.percentile(q).unwrap_or(0);
            out.push_str(&format!(
                "  count={} min={} p50={} p90={} p99={} max={}\n",
                report.skew.count(),
                min,
                p(50),
                p(90),
                p(99),
                max
            ));
        }
        _ => out.push_str("  (no completed supersteps)\n"),
    }
    out
}

/// Renders the report as machine-readable JSON (mirrors
/// [`render_report`]; schema documented in EXPERIMENTS.md).
pub fn report_json(trace: &Trace, report: &Report) -> Json {
    let meta = Json::object()
        .set("schema", trace.meta.schema)
        .set("seed", trace.meta.seed)
        .set("workers", trace.meta.workers)
        .set("hosts", trace.meta.hosts)
        .set("hotpath", trace.meta.hotpath.as_str())
        .set("fault_plan", trace.meta.fault_plan.as_str());
    let steps: Vec<Json> = trace
        .steps
        .iter()
        .map(|s| {
            let (phase, phase_ns) = s.dominant_phase();
            let mut j = Json::object()
                .set("step", s.step)
                .set("kind", s.kind.as_str())
                .set("active", s.active)
                .set("path_ns", s.path_ns())
                .set("dominant_phase", phase)
                .set("dominant_ns", phase_ns)
                .set("barrier_skew_ns", s.barrier_skew_ns);
            if let Some(w) = s.makespan_worker() {
                j = j
                    .set("makespan_worker", w.worker)
                    .set("makespan_compute_ns", w.compute_ns);
            }
            j
        })
        .collect();
    let slowest: Vec<Json> = report
        .slowest
        .iter()
        .map(|&i| Json::from(trace.steps[i].step))
        .collect();
    Json::object()
        .set("report", "flash_trace")
        .set("meta", meta)
        .set("supersteps", trace.steps.len())
        .set("total_path_ns", report.total_path_ns)
        .set("steps", Json::Arr(steps))
        .set("slowest_steps", Json::Arr(slowest))
        .set("barrier_skew", report.skew.to_json())
}

fn us(ns: u64) -> Json {
    // Chrome trace timestamps are microseconds; fractional values keep
    // nanosecond precision. f64 is exact for every duration < 2^53 ns.
    #[allow(clippy::cast_precision_loss)]
    Json::Num(ns as f64 / 1000.0)
}

fn complete_event(name: &str, cat: &str, tid: u64, ts_ns: u64, dur_ns: u64) -> Json {
    Json::object()
        .set("name", name)
        .set("cat", cat)
        .set("ph", "X")
        .set("pid", 0u64)
        .set("tid", tid)
        .set("ts", us(ts_ns))
        .set("dur", us(dur_ns))
}

fn thread_name(tid: u64, name: &str) -> Json {
    Json::object()
        .set("name", "thread_name")
        .set("ph", "M")
        .set("pid", 0u64)
        .set("tid", tid)
        .set("args", Json::object().set("name", name))
}

/// Exports the trace as a Chrome trace-event document (the
/// `chrome://tracing` / Perfetto JSON format).
///
/// The timeline is synthesized from the per-step phase durations: all
/// workers' compute phases start together at the step's barrier (tid =
/// worker id + 1), then the serial coordinator phases (bucketing,
/// delivery, network, mirror-sync) run on tid 0, exactly as the
/// simulated parallel clock charges them.
pub fn chrome_trace(trace: &Trace) -> Json {
    let mut events = Vec::new();
    events.push(
        Json::object()
            .set("name", "process_name")
            .set("ph", "M")
            .set("pid", 0u64)
            .set(
                "args",
                Json::object().set(
                    "name",
                    format!(
                        "flash run ({} workers, {})",
                        trace.meta.workers, trace.meta.hotpath
                    ),
                ),
            ),
    );
    events.push(thread_name(0, "coordinator"));
    for w in 0..trace.meta.workers {
        events.push(thread_name(w + 1, &format!("worker {w}")));
    }

    let mut clock = 0u64;
    for s in &trace.steps {
        let label = format!("step {} ({})", s.step, s.kind);
        if s.workers.is_empty() {
            // No per-worker events in this trace: show the makespan as a
            // single span on the first worker track.
            events.push(complete_event(
                &format!("{label} compute"),
                "compute",
                1,
                clock,
                s.compute_max_ns,
            ));
        } else {
            for w in &s.workers {
                events.push(complete_event(
                    &format!("{label} compute"),
                    "compute",
                    w.worker + 1,
                    clock,
                    w.compute_ns,
                ));
            }
        }
        clock += s.compute_max_ns;
        for (phase, cat, dur) in [
            ("bucketing", "serialize", s.serialize_max_ns),
            ("delivery", "transport", s.delivery_ns),
            ("network", "network", s.simulated_net_ns),
            ("mirror-sync", "sync", s.communicate_ns),
        ] {
            if dur > 0 {
                events.push(complete_event(
                    &format!("{label} {phase}"),
                    cat,
                    0,
                    clock,
                    dur,
                ));
            }
            clock += dur;
        }
    }

    Json::object()
        .set("traceEvents", Json::Arr(events))
        .set("displayTimeUnit", "ms")
        .set(
            "otherData",
            Json::object()
                .set("schema", trace.meta.schema)
                .set("fault_plan", trace.meta.fault_plan.as_str())
                .set("seed", trace.meta.seed),
        )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> String {
        let header = format!(
            r#"{{"event":"run_meta","seq":0,"schema":{},"seed":7,"workers":2,"hosts":2,"hotpath":"pooled-parallel","fault_plan":"none"}}"#,
            flash_obs::TRACE_SCHEMA_VERSION
        );
        let lines = [
            header.as_str(),
            r#"{"event":"run_start","seq":1,"workers":2,"vertices":10,"edges":20,"net_latency_us":0,"net_bandwidth_bps":0}"#,
            r#"{"event":"step_start","seq":2,"step":0,"kind":"sparse","active":5}"#,
            r#"{"event":"worker_phase","seq":3,"step":0,"worker":0,"compute_us":10,"compute_ns":10000,"staged_puts":1,"staged_writes":1}"#,
            r#"{"event":"worker_phase","seq":4,"step":0,"worker":1,"compute_us":30,"compute_ns":30000,"staged_puts":1,"staged_writes":1}"#,
            r#"{"event":"step_end","seq":5,"step":0,"kind":"sparse","active":5,"upd_messages":2,"upd_bytes":32,"sync_messages":2,"sync_bytes":32,"compute_us":40,"compute_max_us":30,"compute_min_us":10,"barrier_skew_us":20,"serialize_us":2,"serialize_max_us":1,"communicate_us":3,"delivery_us":0,"simulated_net_us":0,"compute_ns":40000,"compute_max_ns":30000,"compute_min_ns":10000,"barrier_skew_ns":20000,"serialize_ns":2000,"serialize_max_ns":1000,"communicate_ns":3000,"delivery_ns":0,"simulated_net_ns":0}"#,
            r#"{"event":"step_end","seq":6,"step":1,"kind":"dense","active":9,"upd_messages":0,"upd_bytes":0,"sync_messages":0,"sync_bytes":0,"compute_us":5,"compute_max_us":5,"compute_min_us":5,"barrier_skew_us":0,"serialize_us":0,"serialize_max_us":0,"communicate_us":90,"delivery_us":0,"simulated_net_us":0,"compute_ns":5000,"compute_max_ns":5000,"compute_min_ns":5000,"barrier_skew_ns":100,"serialize_ns":0,"serialize_max_ns":0,"communicate_ns":90000,"delivery_ns":0,"simulated_net_ns":0}"#,
            r#"{"event":"run_end","seq":7,"supersteps":2,"total_bytes":64,"total_messages":4,"simulated_parallel_us":129,"simulated_parallel_ns":129000}"#,
        ];
        lines.join("\n")
    }

    #[test]
    fn parses_and_reconstructs_steps() {
        let t = parse_trace(&sample_trace()).unwrap();
        assert_eq!(t.meta.workers, 2);
        assert_eq!(t.meta.fault_plan, "none");
        assert_eq!(t.steps.len(), 2);
        assert_eq!(t.events, 8);
        assert_eq!(t.simulated_parallel_ns, Some(129_000));
        let s0 = &t.steps[0];
        assert_eq!(s0.workers.len(), 2);
        assert_eq!(
            s0.makespan_worker(),
            Some(WorkerCompute {
                worker: 1,
                compute_ns: 30_000
            })
        );
        assert_eq!(s0.dominant_phase(), ("compute", 30_000));
        assert_eq!(s0.path_ns(), 30_000 + 1_000 + 3_000);
        let s1 = &t.steps[1];
        assert_eq!(s1.dominant_phase(), ("mirror-sync", 90_000));
        assert!(s1.makespan_worker().is_none());
    }

    #[test]
    fn refuses_missing_header() {
        let text = sample_trace();
        let headless = text.lines().skip(1).collect::<Vec<_>>().join("\n");
        let err = parse_trace(&headless).unwrap_err();
        assert!(err.contains("no run_meta header"), "{err}");
    }

    #[test]
    fn refuses_mismatched_schema() {
        let text = sample_trace().replace(
            &format!("\"schema\":{}", flash_obs::TRACE_SCHEMA_VERSION),
            "\"schema\":999",
        );
        let err = parse_trace(&text).unwrap_err();
        assert!(err.contains("unsupported trace schema v999"), "{err}");
    }

    #[test]
    fn refuses_empty_and_garbage() {
        assert!(parse_trace("").is_err());
        assert!(parse_trace("not json\n").is_err());
        assert!(parse_trace("{\"x\":1}\n").is_err());
    }

    #[test]
    fn analyze_ranks_slowest_and_accumulates_skew() {
        let t = parse_trace(&sample_trace()).unwrap();
        let r = analyze(&t, 10);
        // step 1 path = 95_000 > step 0 path = 34_000.
        assert_eq!(r.slowest, vec![1, 0]);
        assert_eq!(r.total_path_ns, 34_000 + 95_000);
        assert_eq!(r.skew.count(), 2);
        assert_eq!(r.skew.max(), Some(20_000));
        let r1 = analyze(&t, 1);
        assert_eq!(r1.slowest, vec![1]);
    }

    #[test]
    fn report_text_names_the_culprits() {
        let t = parse_trace(&sample_trace()).unwrap();
        let r = analyze(&t, DEFAULT_TOP_K);
        let text = render_report(&t, &r);
        assert!(text.contains("2 supersteps"));
        assert!(text.contains("w1 (30.000us)"), "{text}");
        assert!(text.contains("mirror-sync"));
        assert!(text.contains("barrier-skew distribution"));
        assert!(text.contains("p99="));
    }

    #[test]
    fn report_json_round_trips() {
        let t = parse_trace(&sample_trace()).unwrap();
        let r = analyze(&t, 1);
        let j = report_json(&t, &r);
        let back = json::parse(&j.to_string()).unwrap();
        assert_eq!(back, j);
        assert_eq!(
            j.get("slowest_steps")
                .and_then(Json::as_array)
                .map(<[Json]>::len),
            Some(1)
        );
        assert_eq!(j.get("total_path_ns").and_then(Json::as_u64), Some(129_000));
    }

    #[test]
    fn chrome_export_is_valid_and_sequential() {
        let t = parse_trace(&sample_trace()).unwrap();
        let doc = chrome_trace(&t);
        let back = json::parse(&doc.to_string()).unwrap();
        assert_eq!(back, doc);
        let events = doc.get("traceEvents").and_then(Json::as_array).unwrap();
        // Step 0: 2 worker computes + bucketing + mirror-sync (delivery
        // and network are zero, so skipped). Step 1: 1 synthesized
        // compute span + mirror-sync.
        let complete: Vec<&Json> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .collect();
        assert_eq!(complete.len(), 6);
        // Every complete event carries ts/dur in microseconds and a tid.
        let mut coord_end = 0.0f64;
        for e in &complete {
            let ts = e.get("ts").and_then(Json::as_f64).unwrap();
            let dur = e.get("dur").and_then(Json::as_f64).unwrap();
            assert!(e.get("tid").and_then(Json::as_u64).is_some());
            if e.get("tid").and_then(Json::as_u64) == Some(0) {
                assert!(ts >= coord_end, "coordinator track overlaps");
                coord_end = ts + dur;
            }
        }
        // Step 1's compute had no worker_phase events: it lands on tid 1.
        assert!(complete
            .iter()
            .any(|e| e.get("name").and_then(Json::as_str) == Some("step 1 (dense) compute")));
    }
}
