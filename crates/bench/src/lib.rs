#![warn(missing_docs)]

//! # flash-bench — the evaluation harness
//!
//! Regenerates every table and figure of the paper's evaluation (§V) over
//! the synthetic Table III stand-ins (see DESIGN.md §3 for the full
//! experiment index):
//!
//! | Binary                 | Reproduces |
//! |------------------------|------------|
//! | `table1_lloc`          | Table I (logical lines of code) |
//! | `table3_datasets`      | Table III (dataset characteristics) |
//! | `table5_runtime`       | Table V (first eight applications) |
//! | `table6_runtime`       | Table VI (last six applications) |
//! | `fig1_heatmap`         | Figure 1 (slowdown heat map) |
//! | `fig3_bfs_modes`       | Figure 3 (push/pull/adaptive BFS) |
//! | `fig4a_mm_frontier`    | Figure 4a (MM frontier sizes) |
//! | `fig4b_scaling_cores`  | Figure 4b (intra-node scaling) |
//! | `fig4cd_scaling_nodes` | Figure 4c/d (inter-node scaling) |
//! | `fig5_breakdown`       | §V-E (time breakdown) |
//! | `summary_verdicts`     | §V-B headline claims |
//!
//! | `bench_flash`          | aggregate `BENCH_flash.json` perf snapshot, plus the `--baseline` perf-regression gate ([`baseline`]) |
//! | `flash_trace`          | critical-path analyzer over `--trace` JSONL files, with Chrome trace export ([`trace`]) |
//!
//! Micro-benchmarks live in `benches/` and run on the offline
//! [`microbench`] harness. Every binary writes a machine-readable JSON
//! artifact via [`jsonio`] alongside its text table.

pub mod baseline;
pub mod cli;
pub mod harness;
pub mod jsonio;
pub mod lloc;
pub mod microbench;
pub mod report;
pub mod serve;
pub mod trace;

pub use harness::{App, Framework, RunResult, Scale};
