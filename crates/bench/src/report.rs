//! Plain-text table/heat-map rendering for the experiment binaries.

use crate::harness::RunResult;

/// Formats a cell of a runtime table: seconds with adaptive precision,
/// "–" for unsupported, "OT"/"FAIL" for budget overruns.
pub fn cell(r: &RunResult) -> String {
    match r {
        RunResult::Ok { seconds } => format_secs(*seconds),
        RunResult::Unsupported => "-".to_string(),
        RunResult::Failed(msg) if msg.contains("converge") => "OT".to_string(),
        RunResult::Failed(_) => "FAIL".to_string(),
    }
}

/// Seconds with adaptive precision (paper style: 0.48, 25.15, 1740.0).
pub fn format_secs(s: f64) -> String {
    if s < 0.0005 {
        format!("{:.2}ms", s * 1000.0)
    } else if s < 10.0 {
        format!("{s:.3}")
    } else if s < 100.0 {
        format!("{s:.2}")
    } else {
        format!("{s:.1}")
    }
}

/// Renders a fixed-width table: `headers` then one row per entry of
/// `rows` (label + cells).
pub fn render_table(headers: &[&str], rows: &[(String, Vec<String>)]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for (label, cells) in rows {
        widths[0] = widths[0].max(label.len());
        for (i, c) in cells.iter().enumerate() {
            if i + 1 < cols {
                widths[i + 1] = widths[i + 1].max(c.len());
            }
        }
    }
    let mut out = String::new();
    let sep: String = widths
        .iter()
        .map(|w| "-".repeat(w + 2))
        .collect::<Vec<_>>()
        .join("+");
    let fmt_row = |cells: &[String]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!(" {:>width$} ", c, width = widths[i.min(widths.len() - 1)]))
            .collect::<Vec<_>>()
            .join("|")
    };
    out.push_str(&fmt_row(
        &headers.iter().map(|h| h.to_string()).collect::<Vec<_>>(),
    ));
    out.push('\n');
    out.push_str(&sep);
    out.push('\n');
    for (label, cells) in rows {
        let mut all = vec![label.clone()];
        all.extend(cells.iter().cloned());
        out.push_str(&fmt_row(&all));
        out.push('\n');
    }
    out
}

/// A heat-map glyph for a slowdown factor relative to the fastest
/// framework (Fig. 1's color scale, rendered as text).
pub fn heat_glyph(slowdown: Option<f64>) -> &'static str {
    match slowdown {
        None => "  ---  ",
        Some(s) if s < 1.05 => " BEST  ",
        Some(s) if s < 2.0 => "  <2x  ",
        Some(s) if s < 5.0 => "  <5x  ",
        Some(s) if s < 20.0 => " <20x  ",
        Some(s) if s < 100.0 => " <100x ",
        Some(_) => " >100x ",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cells_render_every_outcome() {
        assert_eq!(cell(&RunResult::Ok { seconds: 1.5 }), "1.500");
        assert_eq!(cell(&RunResult::Unsupported), "-");
        assert_eq!(
            cell(&RunResult::Failed("did not converge within 5".into())),
            "OT"
        );
        assert_eq!(cell(&RunResult::Failed("boom".into())), "FAIL");
    }

    #[test]
    fn seconds_formatting_is_adaptive() {
        assert_eq!(format_secs(0.0001), "0.10ms");
        assert_eq!(format_secs(0.48), "0.480");
        assert_eq!(format_secs(25.154), "25.15");
        assert_eq!(format_secs(1740.04), "1740.0");
    }

    #[test]
    fn table_renders_aligned() {
        let rows = vec![
            ("OR".to_string(), vec!["1.0".to_string(), "2.0".to_string()]),
            ("TW".to_string(), vec!["10.0".to_string(), "-".to_string()]),
        ];
        let t = render_table(&["Data", "A", "B"], &rows);
        assert!(t.contains("Data"));
        assert!(t.lines().count() == 4);
        let widths: Vec<usize> = t.lines().map(str::len).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1] || w[0] == w[1] + 1));
    }

    #[test]
    fn heat_glyphs_cover_scale() {
        assert_eq!(heat_glyph(Some(1.0)), " BEST  ");
        assert_eq!(heat_glyph(Some(3.0)), "  <5x  ");
        assert_eq!(heat_glyph(Some(1000.0)), " >100x ");
        assert_eq!(heat_glyph(None), "  ---  ");
    }
}
