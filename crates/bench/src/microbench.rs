//! A hand-rolled micro-benchmark harness.
//!
//! The workspace builds offline, so `criterion` is unavailable; the
//! `benches/*.rs` suites use this instead. Each benchmark runs a warmup
//! iteration followed by a fixed number of timed samples and reports
//! min/median/mean. `FLASH_BENCH_SAMPLES` overrides the sample count
//! (useful to keep smoke runs fast).

use flash_obs::Json;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One benchmark's timing summary.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Group the benchmark belongs to (e.g. `primitives`).
    pub group: String,
    /// Benchmark name (e.g. `vertex_map_full`).
    pub name: String,
    /// Number of timed samples.
    pub samples: usize,
    /// Fastest sample.
    pub min: Duration,
    /// Median sample.
    pub median: Duration,
    /// Arithmetic mean of all samples.
    pub mean: Duration,
}

impl BenchResult {
    /// Machine-readable rendering (nanosecond fields).
    pub fn to_json(&self) -> Json {
        Json::object()
            .set("group", self.group.as_str())
            .set("name", self.name.as_str())
            .set("samples", self.samples)
            .set("min_ns", self.min.as_nanos() as u64)
            .set("median_ns", self.median.as_nanos() as u64)
            .set("mean_ns", self.mean.as_nanos() as u64)
    }
}

/// Formats a duration at benchmark-friendly precision.
pub fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else {
        format!("{:.3}s", ns as f64 / 1e9)
    }
}

/// A named group of benchmarks sharing a sample count.
pub struct Group {
    name: String,
    samples: usize,
    results: Vec<BenchResult>,
}

/// Default timed samples per benchmark (overridable via
/// `FLASH_BENCH_SAMPLES`).
fn default_samples() -> usize {
    std::env::var("FLASH_BENCH_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(10)
}

impl Group {
    /// Starts a group; prints a header line.
    pub fn new(name: &str) -> Self {
        println!("group {name}");
        Group {
            name: name.to_string(),
            samples: default_samples(),
            results: Vec::new(),
        }
    }

    /// Overrides the sample count for subsequent benchmarks.
    pub fn samples(mut self, n: usize) -> Self {
        self.samples = n.max(1);
        self
    }

    /// Runs one benchmark: a warmup call, then `samples` timed calls of
    /// `f`. The closure's result is passed through [`black_box`] so the
    /// optimizer cannot elide the work.
    pub fn bench<R>(&mut self, name: &str, mut f: impl FnMut() -> R) -> &mut Self {
        black_box(f());
        let mut times = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            black_box(f());
            times.push(t.elapsed());
        }
        times.sort();
        let min = times[0];
        let median = times[times.len() / 2];
        let mean = times.iter().sum::<Duration>() / times.len() as u32;
        println!(
            "  {name:<34} min {:>10}  median {:>10}  mean {:>10}  ({} samples)",
            format_duration(min),
            format_duration(median),
            format_duration(mean),
            times.len()
        );
        self.results.push(BenchResult {
            group: self.name.clone(),
            name: name.to_string(),
            samples: times.len(),
            min,
            median,
            mean,
        });
        self
    }

    /// Ends the group, returning its results.
    pub fn finish(self) -> Vec<BenchResult> {
        self.results
    }
}

/// Renders a whole suite's results as a JSON document.
pub fn suite_json(suite: &str, results: &[BenchResult]) -> Json {
    Json::object().set("suite", suite).set(
        "benchmarks",
        Json::Arr(results.iter().map(BenchResult::to_json).collect()),
    )
}

/// Standard suite epilogue: writes `results/bench_<suite>.json` and prints
/// where it went.
pub fn finish_suite(suite: &str, results: &[BenchResult]) {
    match crate::jsonio::write_results(&format!("bench_{suite}"), &suite_json(suite, results)) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("\nwarning: could not write bench json: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_collects_stats() {
        let mut g = Group::new("unit").samples(5);
        g.bench("noop", || 1 + 1);
        let results = g.finish();
        assert_eq!(results.len(), 1);
        let r = &results[0];
        assert_eq!(r.samples, 5);
        assert!(r.min <= r.median && r.min <= r.mean);
        let j = r.to_json();
        assert_eq!(j.get("group").and_then(Json::as_str), Some("unit"));
        assert_eq!(j.get("samples").and_then(Json::as_u64), Some(5));
    }

    #[test]
    fn suite_json_lists_benchmarks() {
        let mut g = Group::new("s").samples(2);
        g.bench("a", || ());
        g.bench("b", || ());
        let j = suite_json("s", &g.finish());
        assert_eq!(
            j.get("benchmarks")
                .and_then(Json::as_array)
                .map(|a| a.len()),
            Some(2)
        );
    }

    #[test]
    fn durations_format_adaptively() {
        assert_eq!(format_duration(Duration::from_nanos(500)), "500ns");
        assert_eq!(format_duration(Duration::from_micros(1500)), "1.50ms");
        assert_eq!(format_duration(Duration::from_secs(2)), "2.000s");
    }
}
