//! The perf-regression gate: compares a fresh `bench_flash` run against a
//! committed `BENCH_flash.json` baseline.
//!
//! Each per-algorithm record in the snapshot carries three promises
//! (see [`crate::jsonio::run_record`]):
//!
//! * `supersteps` and `total_bytes` are **deterministic** — any change is
//!   a behavioral regression and fails the gate exactly;
//! * `simulated_parallel_time` is **measured** — it fails the gate only
//!   when it exceeds the baseline by more than the relative tolerance
//!   *and* the absolute noise floor (tiny runs jitter by milliseconds,
//!   so a pure ratio test would flake at `FLASH_SCALE=small`).
//!
//! Non-algorithm sections of the snapshot (e.g. `superstep_phases`) are
//! ignored. The `bench_flash --baseline <path>` CLI wraps [`compare`] and
//! exits nonzero on regression. The two promise classes are enforced
//! separately: `FLASH_BASELINE_WARN=1` downgrades **timing** regressions
//! to warnings (for small-scale CI runs where noise dominates), but
//! deterministic `supersteps`/`total_bytes` mismatches always fail —
//! they mean behavior changed, not that the machine was busy.

use flash_obs::Json;

/// Default relative tolerance for `simulated_parallel_time`: the fresh
/// run may be up to 50% slower before the gate fails. Generous because
/// the simulated clock aggregates real (noisy) compute measurements.
pub const DEFAULT_TOLERANCE: f64 = 0.5;

/// Absolute slack on `simulated_parallel_time`, in seconds. Regressions
/// smaller than this are below measurement noise regardless of ratio.
pub const NOISE_FLOOR_SECS: f64 = 0.010;

/// Outcome of one baseline comparison.
#[derive(Clone, Debug, Default)]
pub struct GateResult {
    /// One human-readable line per compared algorithm.
    pub lines: Vec<String>,
    /// Deterministic-promise breaks (`supersteps`/`total_bytes` changed,
    /// an algorithm missing, a malformed baseline). These mean behavior
    /// changed and are never downgradeable to warnings.
    pub exact_regressions: Vec<String>,
    /// Measured `simulated_parallel_time` regressions beyond tolerance.
    /// Downgradeable to warn-only on noisy hosts.
    pub time_regressions: Vec<String>,
}

impl GateResult {
    /// True when no regression of either class was detected.
    pub fn passed(&self) -> bool {
        self.exact_regressions.is_empty() && self.time_regressions.is_empty()
    }

    /// All regressions, exact first.
    pub fn all_regressions(&self) -> impl Iterator<Item = &String> {
        self.exact_regressions.iter().chain(&self.time_regressions)
    }
}

fn is_algo_record(j: &Json) -> bool {
    j.get("simulated_parallel_time")
        .and_then(Json::as_f64)
        .is_some()
        && j.get("total_bytes").and_then(Json::as_u64).is_some()
        && j.get("supersteps").and_then(Json::as_u64).is_some()
}

/// Compares a fresh snapshot against a baseline snapshot.
///
/// Every per-algorithm record of the *baseline* must be present and
/// no worse in the fresh snapshot; extra algorithms in the fresh run
/// (a growing catalogue) are fine and never fail the gate.
pub fn compare(baseline: &Json, fresh: &Json, tolerance: f64) -> GateResult {
    let mut out = GateResult::default();
    let Json::Obj(entries) = baseline else {
        out.exact_regressions
            .push("baseline is not a JSON object".to_string());
        return out;
    };
    for (algo, base) in entries {
        if !is_algo_record(base) {
            continue;
        }
        let Some(cur) = fresh.get(algo).filter(|c| is_algo_record(c)) else {
            out.exact_regressions
                .push(format!("{algo}: missing from fresh run"));
            continue;
        };
        let get_u = |j: &Json, f: &str| j.get(f).and_then(Json::as_u64).unwrap_or(0);
        let get_t = |j: &Json| {
            j.get("simulated_parallel_time")
                .and_then(Json::as_f64)
                .unwrap_or(0.0)
        };

        let (bs, cs) = (get_u(base, "supersteps"), get_u(cur, "supersteps"));
        if bs != cs {
            out.exact_regressions
                .push(format!("{algo}: supersteps changed {bs} -> {cs}"));
        }
        let (bb, cb) = (get_u(base, "total_bytes"), get_u(cur, "total_bytes"));
        if bb != cb {
            out.exact_regressions
                .push(format!("{algo}: total_bytes changed {bb} -> {cb}"));
        }

        let (bt, ct) = (get_t(base), get_t(cur));
        let ratio = if bt > 0.0 { ct / bt } else { f64::INFINITY };
        let slow = ct > bt * (1.0 + tolerance) && (ct - bt) > NOISE_FLOOR_SECS;
        if slow {
            out.time_regressions.push(format!(
                "{algo}: simulated_parallel_time {bt:.4}s -> {ct:.4}s ({ratio:.2}x, tolerance {:.0}%)",
                tolerance * 100.0
            ));
        }
        let verdict = if slow || bs != cs || bb != cb {
            "REGRESSED"
        } else if ct < bt {
            "improved"
        } else {
            "ok"
        };
        out.lines.push(format!(
            "{algo:<10} {bt:>9.4}s -> {ct:>9.4}s ({ratio:>5.2}x)  steps {bs:>4} -> {cs:<4}  bytes {bb:>12} -> {cb:<12}  {verdict}"
        ));
    }
    if out.lines.is_empty() && out.passed() {
        out.exact_regressions
            .push("baseline contains no algorithm records".to_string());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(t: f64, bytes: u64, steps: u64) -> Json {
        Json::object()
            .set("simulated_parallel_time", t)
            .set("total_bytes", bytes)
            .set("supersteps", steps)
    }

    fn snapshot(pairs: &[(&str, Json)]) -> Json {
        let mut j = Json::object();
        for (k, v) in pairs {
            j = j.set(k, v.clone());
        }
        j
    }

    #[test]
    fn clean_rerun_passes() {
        let base = snapshot(&[
            ("bfs", record(0.5, 1000, 8)),
            ("cc", record(1.0, 2000, 12)),
            ("superstep_phases", Json::object().set("workload", "cc")),
        ]);
        let r = compare(&base, &base, DEFAULT_TOLERANCE);
        assert!(r.passed(), "{:?}", r.all_regressions().collect::<Vec<_>>());
        assert_eq!(r.lines.len(), 2, "phase section is not an algo record");
    }

    #[test]
    fn injected_slowdown_fails() {
        let base = snapshot(&[("bfs", record(0.5, 1000, 8))]);
        let slow = snapshot(&[("bfs", record(1.5, 1000, 8))]);
        let r = compare(&base, &slow, DEFAULT_TOLERANCE);
        assert!(!r.passed());
        assert!(r.time_regressions[0].contains("simulated_parallel_time"));
        assert!(r.time_regressions[0].contains("3.00x"));
        assert!(
            r.exact_regressions.is_empty(),
            "slowdown is a timing regression"
        );
    }

    #[test]
    fn slowdown_within_tolerance_or_noise_floor_passes() {
        let base = snapshot(&[("bfs", record(0.5, 1000, 8))]);
        // 40% slower: within the 50% tolerance.
        let r = compare(&base, &snapshot(&[("bfs", record(0.7, 1000, 8))]), 0.5);
        assert!(r.passed(), "{:?}", r.all_regressions().collect::<Vec<_>>());
        // 3x slower but only 4ms absolute: below the noise floor.
        let tiny = snapshot(&[("bfs", record(0.002, 1000, 8))]);
        let tiny_slow = snapshot(&[("bfs", record(0.006, 1000, 8))]);
        assert!(compare(&tiny, &tiny_slow, 0.5).passed());
    }

    #[test]
    fn improvement_passes_and_is_labeled() {
        let base = snapshot(&[("bfs", record(0.5, 1000, 8))]);
        let fast = snapshot(&[("bfs", record(0.2, 1000, 8))]);
        let r = compare(&base, &fast, DEFAULT_TOLERANCE);
        assert!(r.passed());
        assert!(r.lines[0].contains("improved"));
    }

    #[test]
    fn determinism_breaks_fail_exactly() {
        let base = snapshot(&[("bfs", record(0.5, 1000, 8))]);
        let r = compare(&base, &snapshot(&[("bfs", record(0.5, 1001, 8))]), 0.5);
        assert!(!r.passed());
        assert!(r.exact_regressions[0].contains("total_bytes"));
        let r = compare(&base, &snapshot(&[("bfs", record(0.5, 1000, 9))]), 0.5);
        assert!(!r.passed());
        assert!(r.exact_regressions[0].contains("supersteps"));
    }

    #[test]
    fn missing_algorithm_fails_but_extra_is_fine() {
        let base = snapshot(&[("bfs", record(0.5, 1000, 8))]);
        let r = compare(&base, &snapshot(&[("cc", record(0.5, 1000, 8))]), 0.5);
        assert!(!r.passed());
        assert!(r.exact_regressions[0].contains("missing"));
        let grown = snapshot(&[("bfs", record(0.5, 1000, 8)), ("cc", record(1.0, 1, 1))]);
        assert!(compare(&base, &grown, 0.5).passed());
    }

    #[test]
    fn malformed_baseline_fails_closed() {
        assert!(!compare(&Json::from(3u64), &Json::object(), 0.5).passed());
        assert!(!compare(&Json::object(), &Json::object(), 0.5).passed());
    }
}
